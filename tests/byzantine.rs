//! Byzantine chaos tier: seeded sweeps in which 10–30% of the donor
//! pool returns *plausible but wrong* results (`FaultKind::WrongResult`
//! flips a payload byte before CRC framing, so the wire layer cannot
//! catch it). With K-way quorum enabled (`quorum_k = 3`) the server
//! must still reproduce the fault-free sequential digest bit-for-bit
//! on every backend, dispute every delivered lie, and promote honest
//! donors to single-issue trust — all asserted from the metrics
//! registry. A negative control shows the same plans *do* corrupt the
//! digest when quorum is off (K = 1).
//!
//! Every failure panics with the offending `(seed, plan, quorum
//! config)`; replay a single seed with:
//!
//! ```text
//! BIODIST_CHAOS_SEED=<seed> cargo test --test byzantine
//! ```
//!
//! Lies are scheduled on each Byzantine donor's *first* computes (the
//! plan horizon passed to `FaultPlan::byzantine` is far shorter than
//! the run). A donor with zero quorum agreements is never trusted, so
//! every lie meets a cross-check — and because the flip is
//! client-distinct, two liars can never agree with each other. Honest
//! behaviour afterwards may still earn the donor promotion, which is
//! then harmless. This makes the sweep deterministic: no seed can
//! promote a donor that still has a lie pending.

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::{Alphabet, Sequence};
use biodist::core::{
    audited, run_tcp_faulty, run_threaded_faulty, ChaosOptions, FaultPlan, SchedulerConfig, Server,
    SimRunner, Telemetry,
};
use biodist::dprml::{build_problem as dprml_problem, DprmlConfig, PhyloOutput};
use biodist::dsearch::{
    build_problem as dsearch_problem, search_sequential, DsearchConfig, SearchOutput,
};
use biodist::gridsim::deployments::homogeneous_lab;
use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist::phylo::patterns::PatternAlignment;
use biodist::phylo::search::stepwise_ml;
use std::sync::Arc;

// ----------------------------------------------------------- sweep sizes

/// Seeds per application on the simulated backend.
const SIM_SEEDS: u64 = 100;
/// Fixed subset the CI byzantine smoke runs (`--test byzantine smoke`).
/// Chosen so the Byzantine donors land on machines that actually
/// receive work even on the tiny staged DPRml workload (its one-unit
/// stages only ever reach the first few donors in the pool — a plan
/// whose liars all sit idle injects nothing and proves nothing).
const SMOKE_SEEDS: [u64; 6] = [0, 8, 9, 16, 18, 25];
/// Fixed seeds for the real-thread backend sweep.
const THREAD_SEEDS: [u64; 4] = [0, 8, 9, 18];
/// Fixed seeds for the real-TCP backend sweep.
const TCP_SEEDS: [u64; 3] = [0, 8, 18];

/// Pool size for every byzantine run.
const POOL: usize = 6;
/// Redundant copies per unit for untrusted donors.
const QUORUM_K: u32 = 3;
/// Wrong results per Byzantine donor.
const WRONGS_PER_DONOR: usize = 4;
/// Plan horizon for lie scheduling, virtual seconds: tiny, so every
/// lie lands on one of the donor's first computes (see module docs).
const LIE_HORIZON_SIM: f64 = 1e-4;
/// Same for the thread/TCP backends, scaled seconds.
const LIE_HORIZON_REAL: f64 = 0.02;
/// Thread/TCP-backend clock scale: scaled seconds per wall second.
const TIME_SCALE: f64 = 50.0;

fn sweep_seeds(n: u64) -> Vec<u64> {
    match std::env::var("BIODIST_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("BIODIST_CHAOS_SEED must be a u64")],
        Err(_) => (0..n).collect(),
    }
}

fn fixed_seeds(fixed: &[u64]) -> Vec<u64> {
    match std::env::var("BIODIST_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("BIODIST_CHAOS_SEED must be a u64")],
        Err(_) => fixed.to_vec(),
    }
}

/// Byzantine fraction for a seed, cycling 10% → 30% of the pool.
fn byz_frac(seed: u64) -> f64 {
    0.10 + 0.05 * (seed % 5) as f64
}

fn quorum_cfg(base: SchedulerConfig) -> SchedulerConfig {
    SchedulerConfig {
        quorum_k: QUORUM_K,
        reputation_threshold: 4,
        enable_speculative_reissue: true,
        ..base
    }
}

/// Scheduler tuning for thread/TCP byzantine runs (same rationale as
/// the chaos suite: scaled-second leases, realistic throughput prior).
fn thread_cfg() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 0.03,
        prior_ops_per_sec: 2e10,
        lease_min_secs: 0.5,
        ..Default::default()
    }
}

/// Byzantine-failure panic: replay command, seed, plan, and the quorum
/// / reputation configuration the run used (without it a replay with
/// the wrong K silently passes).
fn byz_panic(
    app: &str,
    backend: &str,
    seed: u64,
    plan: &FaultPlan,
    cfg: &SchedulerConfig,
    why: String,
) -> ! {
    panic!(
        "byzantine failure [{app}/{backend}] — replay with BIODIST_CHAOS_SEED={seed} \
         cargo test --test byzantine\n  why: {why}\n  seed: {seed}\n  \
         quorum: k={} votes={} reputation_threshold={} speculative={} (max {})\n  \
         plan digest: {:#018x}\n  plan: {plan:?}",
        cfg.quorum_k,
        cfg.quorum_votes,
        cfg.reputation_threshold,
        cfg.enable_speculative_reissue,
        cfg.speculative_max_copies,
        plan.digest()
    )
}

// ------------------------------------------------------------- workloads

struct DsearchWorkload {
    db: Vec<Sequence>,
    queries: Vec<Sequence>,
    cfg: DsearchConfig,
    reference: u64,
}

fn dsearch_workload() -> DsearchWorkload {
    let queries = vec![random_sequence(Alphabet::Protein, "q", 100, 3)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(24, 80), 4).sequences;
    let mut cfg = DsearchConfig::protein_default();
    cfg.cost_scale = 60_000.0;
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();
    DsearchWorkload {
        db,
        queries,
        cfg,
        reference,
    }
}

struct DprmlWorkload {
    data: Arc<PatternAlignment>,
    cfg: DprmlConfig,
    reference: u64,
}

fn dprml_workload() -> DprmlWorkload {
    let truth = random_yule_tree(5, 0.12, 61);
    let cfg = DprmlConfig::default();
    let model = cfg.build_model();
    let seqs = simulate_alignment(&truth, &model, 60, None, 62);
    let data = Arc::new(PatternAlignment::from_sequences(&seqs));
    let (tree, lnl) = stepwise_ml(&data, &model, None, &cfg.search);
    let newick = biodist::phylo::newick::to_newick(&tree, &data.names);
    let reference = PhyloOutput {
        tree,
        ln_likelihood: lnl,
        newick,
    }
    .digest();
    DprmlWorkload {
        data,
        cfg,
        reference,
    }
}

// --------------------------------------------------------------- runners

/// Counters a quorum run leaves behind, aggregated across a sweep.
#[derive(Default)]
struct QuorumTotals {
    disputed: u64,
    promotions: u64,
    crosschecks: u64,
}

impl QuorumTotals {
    fn absorb(&mut self, tel: &Telemetry) {
        let snap = tel.metrics_snapshot();
        self.disputed += snap.counter("quorum.disputed");
        self.promotions += snap.counter("reputation.promotions");
        self.crosschecks += snap.counter("quorum.crosscheck_dispatches");
    }

    /// The sweep-level assertions the issue's acceptance demands: at
    /// least one lie was disputed and at least one honest donor earned
    /// single-issue trust somewhere in the sweep.
    fn assert_exercised(&self, what: &str) {
        assert!(
            self.disputed > 0,
            "{what}: no quorum.disputed across the sweep — lies never met a cross-check"
        );
        assert!(
            self.promotions > 0,
            "{what}: no reputation.promotions across the sweep — trust never earned"
        );
        assert!(
            self.crosschecks > 0,
            "{what}: no quorum.crosscheck_dispatches — redundant issuance never happened"
        );
    }
}

fn run_dsearch_sim_byz(w: &DsearchWorkload, seed: u64, totals: &mut QuorumTotals) {
    let opts = ChaosOptions::for_pool(POOL, LIE_HORIZON_SIM);
    let plan = FaultPlan::byzantine(seed, &opts, byz_frac(seed), WRONGS_PER_DONOR);
    let cfg = quorum_cfg(SchedulerConfig::default());
    let telemetry = Telemetry::enabled();
    let mut server = Server::new(cfg.clone());
    server.set_telemetry(telemetry.clone());
    let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);
    let (_, mut server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7))
        .with_faults(plan.clone())
        .run();
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    if out.digest() != w.reference {
        byz_panic(
            "dsearch",
            "sim",
            seed,
            &plan,
            &cfg,
            "output differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        byz_panic(
            "dsearch",
            "sim",
            seed,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
    totals.absorb(&telemetry);
}

fn run_dprml_sim_byz(w: &DprmlWorkload, seed: u64, totals: &mut QuorumTotals) {
    let opts = ChaosOptions::for_pool(POOL, LIE_HORIZON_SIM);
    let plan = FaultPlan::byzantine(seed, &opts, byz_frac(seed), WRONGS_PER_DONOR);
    let cfg = quorum_cfg(SchedulerConfig::default());
    let telemetry = Telemetry::enabled();
    let mut server = Server::new(cfg.clone());
    server.set_telemetry(telemetry.clone());
    let (problem, audit) = audited(dprml_problem(w.data.clone(), &w.cfg, None, "byz"));
    let pid = server.submit(problem);
    let (_, mut server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7))
        .with_faults(plan.clone())
        .run();
    let out = server.take_output(pid).unwrap().into_inner::<PhyloOutput>();
    if out.digest() != w.reference {
        byz_panic(
            "dprml",
            "sim",
            seed,
            &plan,
            &cfg,
            "tree differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        byz_panic(
            "dprml",
            "sim",
            seed,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
    totals.absorb(&telemetry);
}

fn run_dsearch_thread_byz(w: &DsearchWorkload, seed: u64, totals: &mut QuorumTotals) {
    let opts = ChaosOptions::for_pool(POOL, LIE_HORIZON_REAL);
    let plan = FaultPlan::byzantine(seed, &opts, byz_frac(seed), WRONGS_PER_DONOR);
    let cfg = quorum_cfg(thread_cfg());
    let telemetry = Telemetry::enabled();
    let mut server = Server::new(cfg.clone());
    server.set_telemetry(telemetry.clone());
    let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);
    let (mut server, _) = run_threaded_faulty(server, POOL, &plan, TIME_SCALE);
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    if out.digest() != w.reference {
        byz_panic(
            "dsearch",
            "thread",
            seed,
            &plan,
            &cfg,
            "output differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        byz_panic(
            "dsearch",
            "thread",
            seed,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
    totals.absorb(&telemetry);
}

fn run_dsearch_tcp_byz(w: &DsearchWorkload, seed: u64, totals: &mut QuorumTotals) {
    let opts = ChaosOptions::for_pool(POOL, LIE_HORIZON_REAL);
    let plan = FaultPlan::byzantine(seed, &opts, byz_frac(seed), WRONGS_PER_DONOR);
    let cfg = quorum_cfg(thread_cfg());
    let telemetry = Telemetry::enabled();
    let mut server = Server::new(cfg.clone());
    server.set_telemetry(telemetry.clone());
    let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);
    let (mut server, _) = run_tcp_faulty(server, POOL, &plan, TIME_SCALE);
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    if out.digest() != w.reference {
        byz_panic(
            "dsearch",
            "tcp",
            seed,
            &plan,
            &cfg,
            "output differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        byz_panic(
            "dsearch",
            "tcp",
            seed,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
    totals.absorb(&telemetry);
}

// ----------------------------------------------------------- full sweeps

#[test]
fn byzantine_dsearch_sim_sweep() {
    let w = dsearch_workload();
    let mut totals = QuorumTotals::default();
    for seed in sweep_seeds(SIM_SEEDS) {
        run_dsearch_sim_byz(&w, seed, &mut totals);
    }
    totals.assert_exercised("dsearch/sim");
}

#[test]
fn byzantine_dprml_sim_sweep() {
    let w = dprml_workload();
    let mut totals = QuorumTotals::default();
    for seed in sweep_seeds(SIM_SEEDS) {
        run_dprml_sim_byz(&w, seed, &mut totals);
    }
    totals.assert_exercised("dprml/sim");
}

#[test]
fn byzantine_dsearch_thread_sweep() {
    let w = dsearch_workload();
    let mut totals = QuorumTotals::default();
    for seed in fixed_seeds(&THREAD_SEEDS) {
        run_dsearch_thread_byz(&w, seed, &mut totals);
    }
    totals.assert_exercised("dsearch/thread");
}

#[test]
fn byzantine_dsearch_tcp_sweep() {
    let w = dsearch_workload();
    let mut totals = QuorumTotals::default();
    for seed in fixed_seeds(&TCP_SEEDS) {
        run_dsearch_tcp_byz(&w, seed, &mut totals);
    }
    totals.assert_exercised("dsearch/tcp");
}

// -------------------------------------------------------- negative control

/// Without quorum (K = 1, the default) the very same Byzantine plans
/// DO corrupt the output: the flipped payload re-frames with a valid
/// CRC, sails through every transport check, and folds straight into
/// the result. This is the control that proves the sweep above is
/// testing something — remove the quorum and the digests diverge.
#[test]
fn byzantine_without_quorum_corrupts_the_digest() {
    let w = dsearch_workload();
    let mut corrupted = false;
    for seed in fixed_seeds(&SMOKE_SEEDS) {
        let opts = ChaosOptions::for_pool(POOL, LIE_HORIZON_SIM);
        let plan = FaultPlan::byzantine(seed, &opts, 0.30, WRONGS_PER_DONOR);
        let mut server = Server::new(SchedulerConfig::default());
        let pid = server.submit(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let (_, mut server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7))
            .with_faults(plan)
            .run();
        let out = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>();
        if out.digest() != w.reference {
            corrupted = true;
            break;
        }
    }
    assert!(
        corrupted,
        "a 30% Byzantine pool with K=1 must corrupt at least one digest \
         — if it cannot, the quorum sweep is vacuous"
    );
}

// --------------------------------------------------- CI smoke (fast path)

#[test]
fn byzantine_smoke_dsearch() {
    let w = dsearch_workload();
    let mut totals = QuorumTotals::default();
    for &seed in &SMOKE_SEEDS {
        run_dsearch_sim_byz(&w, seed, &mut totals);
    }
    totals.assert_exercised("dsearch/sim smoke");
}

#[test]
fn byzantine_smoke_dprml() {
    let w = dprml_workload();
    let mut totals = QuorumTotals::default();
    for &seed in &SMOKE_SEEDS {
        run_dprml_sim_byz(&w, seed, &mut totals);
    }
    totals.assert_exercised("dprml/sim smoke");
}
