//! Backend parity for the SIMD likelihood kernels.
//!
//! Every SIMD backend (portable, SSE2, AVX2) evaluates the same
//! elementwise per-pattern DAG, so log-likelihoods — and the branch
//! lengths Brent settles on — must be *bit-identical* across them.
//! The scalar engine keeps its historic AoS arithmetic and is only
//! required to agree to tight relative tolerance.
//!
//! CI runs this suite twice: once with the detected backend set and
//! once with `BIODIST_LIK_BACKEND=portable` forced for the whole test
//! process (env-var dispatch is covered via `LikBackend::parse` here
//! rather than `set_var`, which would race between test threads).

use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist::phylo::lik::TreeLikelihood;
use biodist::phylo::model::{GammaRates, ModelKind, SubstModel};
use biodist::phylo::patterns::PatternAlignment;
use biodist::phylo::tree::{Tree, MIN_BRANCH};
use biodist::phylo::LikBackend;

const MAX_BRANCH: f64 = 10.0;

fn workload(
    n_taxa: usize,
    sites: usize,
    model: &SubstModel,
    seed: u64,
) -> (Tree, PatternAlignment) {
    let tree = random_yule_tree(n_taxa, 0.12, seed);
    let seqs = simulate_alignment(&tree, model, sites, None, seed + 1);
    (tree, PatternAlignment::from_sequences(&seqs))
}

fn simd_backends() -> Vec<LikBackend> {
    LikBackend::supported()
        .into_iter()
        .filter(|&b| b != LikBackend::Scalar)
        .collect()
}

fn models() -> Vec<(&'static str, SubstModel)> {
    vec![
        ("jc69", SubstModel::homogeneous(ModelKind::Jc69)),
        (
            "hky85",
            SubstModel::homogeneous(ModelKind::Hky85 {
                kappa: 4.0,
                freqs: [0.3, 0.2, 0.2, 0.3],
            }),
        ),
        (
            "gtr_gamma4",
            SubstModel::new(
                ModelKind::Gtr {
                    rates: [1.0, 2.5, 0.8, 1.1, 3.0, 1.0],
                    freqs: [0.3, 0.2, 0.2, 0.3],
                },
                GammaRates::gamma(0.5, 4),
            ),
        ),
    ]
}

#[test]
fn log_likelihood_bit_identical_across_simd_backends() {
    for (name, model) in models() {
        let (tree, data) = workload(12, 400, &model, 11);
        let reference =
            TreeLikelihood::with_backend(&model, &data, LikBackend::Portable).log_likelihood(&tree);
        assert!(reference.is_finite());
        for backend in simd_backends() {
            let lnl = TreeLikelihood::with_backend(&model, &data, backend).log_likelihood(&tree);
            assert_eq!(
                lnl.to_bits(),
                reference.to_bits(),
                "{name}/{}: {lnl} differs from portable {reference}",
                backend.name()
            );
        }
    }
}

#[test]
fn log_likelihood_matches_scalar_engine() {
    for (name, model) in models() {
        let (tree, data) = workload(12, 400, &model, 23);
        let scalar =
            TreeLikelihood::with_backend(&model, &data, LikBackend::Scalar).log_likelihood(&tree);
        for backend in simd_backends() {
            let lnl = TreeLikelihood::with_backend(&model, &data, backend).log_likelihood(&tree);
            assert!(
                (lnl - scalar).abs() < 1e-9 * scalar.abs(),
                "{name}/{}: {lnl} vs scalar {scalar}",
                backend.name()
            );
        }
    }
}

#[test]
fn optimized_branch_lengths_bit_identical_across_simd_backends() {
    let model = SubstModel::homogeneous(ModelKind::Hky85 {
        kappa: 4.0,
        freqs: [0.25; 4],
    });
    let (tree, data) = workload(10, 300, &model, 37);
    let mut reference_tree = tree.clone();
    let reference_lnl = TreeLikelihood::with_backend(&model, &data, LikBackend::Portable)
        .optimize_edges(&mut reference_tree, None, 3, 1e-6);
    assert!(reference_lnl.is_finite());
    for backend in simd_backends() {
        let mut t = tree.clone();
        let lnl = TreeLikelihood::with_backend(&model, &data, backend)
            .optimize_edges(&mut t, None, 3, 1e-6);
        assert_eq!(
            lnl.to_bits(),
            reference_lnl.to_bits(),
            "{}: optimized lnl differs from portable",
            backend.name()
        );
        for v in t.edges() {
            assert_eq!(
                t.branch_length(v).to_bits(),
                reference_tree.branch_length(v).to_bits(),
                "{}: branch {v} differs from portable",
                backend.name()
            );
        }
    }
}

#[test]
fn optimized_likelihood_agrees_with_scalar_driver() {
    let model = SubstModel::homogeneous(ModelKind::Jc69);
    let (tree, data) = workload(8, 250, &model, 41);
    let mut scalar_tree = tree.clone();
    let scalar_lnl = TreeLikelihood::with_backend(&model, &data, LikBackend::Scalar)
        .optimize_edges(&mut scalar_tree, None, 3, 1e-6);
    for backend in simd_backends() {
        let mut t = tree.clone();
        let lnl = TreeLikelihood::with_backend(&model, &data, backend)
            .optimize_edges(&mut t, None, 3, 1e-6);
        // The SIMD driver uses the spectral-coefficient Brent objective,
        // so branch lengths may differ in the last ulps; the optimum
        // itself must agree tightly.
        assert!(
            (lnl - scalar_lnl).abs() < 1e-6 * scalar_lnl.abs(),
            "{}: {lnl} vs scalar {scalar_lnl}",
            backend.name()
        );
    }
}

/// Many taxa, random (unrelated) sequences, short branches: partials
/// shrink fast enough to cross the 1e-80 rescale threshold, so this
/// pins the hoisted lane-wide scaling check against the scalar
/// per-pattern one.
#[test]
fn scaling_threshold_parity_on_deep_trees() {
    let model = SubstModel::homogeneous(ModelKind::Jc69);
    let n = 40;
    use biodist::util::rng::Rng;
    let mut rng = biodist::util::rng::SplitMix64::new(77);
    let seqs: Vec<biodist::bioseq::Sequence> = (0..n)
        .map(|i| {
            let codes: Vec<u8> = (0..120).map(|_| rng.next_below(4) as u8).collect();
            biodist::bioseq::Sequence::from_codes(
                &format!("t{i}"),
                biodist::bioseq::Alphabet::Dna,
                codes,
            )
        })
        .collect();
    let data = PatternAlignment::from_sequences(&seqs);
    let mut tree = Tree::initial_triple([0, 1, 2], 0.4);
    for t in 3..n {
        let edges = tree.edges();
        tree.insert_leaf(edges[(t * 5) % edges.len()], t, 0.4);
    }
    let scalar =
        TreeLikelihood::with_backend(&model, &data, LikBackend::Scalar).log_likelihood(&tree);
    assert!(scalar.is_finite(), "scaling must prevent underflow");
    let portable =
        TreeLikelihood::with_backend(&model, &data, LikBackend::Portable).log_likelihood(&tree);
    assert!((portable - scalar).abs() < 1e-8 * scalar.abs());
    for backend in simd_backends() {
        let lnl = TreeLikelihood::with_backend(&model, &data, backend).log_likelihood(&tree);
        assert_eq!(lnl.to_bits(), portable.to_bits(), "{}", backend.name());
    }
}

/// Branch lengths pinned to the optimiser's search bounds: the shortest
/// representable branch and the longest. Transition matrices are
/// near-identity / near-stationary there, the regimes most sensitive
/// to the eigen reconstruction.
#[test]
fn branch_length_bounds_parity() {
    let model = SubstModel::homogeneous(ModelKind::Hky85 {
        kappa: 4.0,
        freqs: [0.25; 4],
    });
    let (base, data) = workload(9, 200, &model, 53);
    for bound in [MIN_BRANCH, MAX_BRANCH] {
        let mut tree = base.clone();
        for v in tree.edges() {
            if v != tree.root() {
                tree.set_branch_length(v, bound);
            }
        }
        let scalar =
            TreeLikelihood::with_backend(&model, &data, LikBackend::Scalar).log_likelihood(&tree);
        assert!(scalar.is_finite(), "bound {bound}");
        let portable =
            TreeLikelihood::with_backend(&model, &data, LikBackend::Portable).log_likelihood(&tree);
        assert!(
            (portable - scalar).abs() < 1e-9 * scalar.abs(),
            "bound {bound}: {portable} vs {scalar}"
        );
        for backend in simd_backends() {
            let lnl = TreeLikelihood::with_backend(&model, &data, backend).log_likelihood(&tree);
            assert_eq!(
                lnl.to_bits(),
                portable.to_bits(),
                "bound {bound} backend {}",
                backend.name()
            );
        }
    }
}

/// `BIODIST_LIK_BACKEND` values map to backends exactly; unknown
/// strings are rejected (the engine then falls back to detection).
#[test]
fn backend_env_override_parses() {
    assert_eq!(LikBackend::parse("scalar"), Some(LikBackend::Scalar));
    assert_eq!(LikBackend::parse("portable"), Some(LikBackend::Portable));
    assert_eq!(LikBackend::parse("sse2"), Some(LikBackend::Sse2));
    assert_eq!(LikBackend::parse("avx2"), Some(LikBackend::Avx2));
    assert_eq!(LikBackend::parse("AVX2"), Some(LikBackend::Avx2));
    assert_eq!(LikBackend::parse("neon"), None);
    // `select()` honours the env var for the whole process — under
    // CI's forced-portable run every engine must report portable.
    if std::env::var("BIODIST_LIK_BACKEND").as_deref() == Ok("portable") {
        assert_eq!(LikBackend::select(), LikBackend::Portable);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let (_, data) = workload(5, 60, &model, 3);
        assert_eq!(
            TreeLikelihood::new(&model, &data).backend(),
            LikBackend::Portable
        );
    }
}
