//! Fault-tolerance integration: donor churn must never change results,
//! only cost time — the property that makes cycle-scavenging viable on
//! machines whose owners can reclaim or reboot them at any moment.

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::Alphabet;
use biodist::core::{SchedulerConfig, Server, SimRunner};
use biodist::dprml::{build_problem as dprml_problem, DprmlConfig, PhyloOutput};
use biodist::dsearch::{build_problem, search_sequential, DsearchConfig, SearchOutput};
use biodist::gridsim::deployments::homogeneous_lab;
use biodist::gridsim::machine::Machine;
use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist::phylo::patterns::PatternAlignment;
use std::sync::Arc;

fn workload() -> (Vec<biodist::bioseq::Sequence>, Vec<biodist::bioseq::Sequence>, DsearchConfig) {
    let queries = vec![random_sequence(Alphabet::Protein, "q", 120, 3)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(80, 120), 4);
    let mut cfg = DsearchConfig::protein_default();
    // Large enough that the run spans every scheduled departure/arrival.
    cfg.cost_scale = 60_000.0;
    (db.sequences, queries, cfg)
}

fn churny_pool(n: usize, departures: usize, seed: u64) -> Vec<Machine> {
    let mut machines = homogeneous_lab(n, seed);
    for (k, m) in machines.iter_mut().take(departures).enumerate() {
        // Stagger departures through the early run.
        m.departure = Some(40.0 + 25.0 * k as f64);
    }
    machines
}

#[test]
fn departures_mid_run_do_not_change_dsearch_results() {
    let (db, queries, cfg) = workload();
    let expected = search_sequential(&db, &queries, &cfg);
    let mut server = Server::new(SchedulerConfig {
        lease_min_secs: 60.0,
        ..Default::default()
    });
    let pid = server.submit(build_problem(db, queries, &cfg));
    let (report, mut server) =
        SimRunner::with_defaults(server, churny_pool(10, 4, 9)).run();
    let out = server.take_output(pid).unwrap().into_inner::<SearchOutput>();
    assert_eq!(out.hits, expected, "results identical despite 4 departures");
    assert!(report.makespan.is_finite());
}

#[test]
fn churn_costs_time_but_reissues_recover_everything() {
    let (db, queries, cfg) = workload();
    let run = |departures: usize| {
        let (db, queries) = (db.clone(), queries.clone());
        let mut server = Server::new(SchedulerConfig::default());
        let pid = server.submit(build_problem(db, queries, &cfg));
        let (report, server) = SimRunner::with_defaults(server, churny_pool(12, departures, 9)).run();
        (report.makespan, server.stats(pid).reissued_units)
    };
    let (clean_time, clean_reissued) = run(0);
    let (churn_time, churn_reissued) = run(6);
    assert_eq!(clean_reissued, 0, "no churn, no reissue");
    assert!(churn_reissued > 0, "departures must orphan some leases");
    assert!(
        churn_time > clean_time,
        "losing half the pool must cost time ({churn_time} vs {clean_time})"
    );
}

#[test]
fn dprml_survives_churn_with_identical_tree() {
    let truth = random_yule_tree(6, 0.12, 61);
    let config = DprmlConfig::default();
    let model = config.build_model();
    let seqs = simulate_alignment(&truth, &model, 100, None, 62);
    let data = Arc::new(PatternAlignment::from_sequences(&seqs));
    let run = |departures: usize| {
        let mut server = Server::new(SchedulerConfig::default());
        let pid = server.submit(dprml_problem(data.clone(), &config, None, "d"));
        let (_, mut server) =
            SimRunner::with_defaults(server, churny_pool(8, departures, 63)).run();
        server.take_output(pid).unwrap().into_inner::<PhyloOutput>()
    };
    let clean = run(0);
    let churned = run(3);
    assert_eq!(clean.tree.rf_distance(&churned.tree), 0);
    assert!((clean.ln_likelihood - churned.ln_likelihood).abs() < 1e-9);
}

#[test]
fn late_arrivals_join_and_accelerate_the_tail() {
    let (db, queries, cfg) = workload();
    let base = {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(build_problem(db.clone(), queries.clone(), &cfg));
        let (report, _) = SimRunner::with_defaults(server, homogeneous_lab(2, 9)).run();
        report.makespan
    };
    let reinforced = {
        let mut machines = homogeneous_lab(6, 9);
        for m in machines.iter_mut().skip(2) {
            m.arrival = base * 0.25; // four extra machines join at 25%
        }
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(build_problem(db, queries, &cfg));
        let (report, _) = SimRunner::with_defaults(server, machines).run();
        report.makespan
    };
    assert!(
        reinforced < base * 0.75,
        "late reinforcements must shorten the run ({reinforced} vs {base})"
    );
}
