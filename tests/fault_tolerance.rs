//! Fault-tolerance integration: donor churn must never change results,
//! only cost time — the property that makes cycle-scavenging viable on
//! machines whose owners can reclaim or reboot them at any moment.
//!
//! All churn here is expressed as [`FaultPlan`] data rather than by
//! mutating machine descriptors, so the *same* scenario runs unchanged
//! on the simulator's virtual clock and on real threads against a
//! scaled wall clock.

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::Alphabet;
use biodist::core::{
    run_threaded_faulty, FaultKind, FaultPlan, SchedulerConfig, Server, SimRunner,
};
use biodist::dprml::{build_problem as dprml_problem, DprmlConfig, PhyloOutput};
use biodist::dsearch::{build_problem, search_sequential, DsearchConfig, SearchOutput};
use biodist::gridsim::deployments::homogeneous_lab;
use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist::phylo::patterns::PatternAlignment;
use std::sync::Arc;

fn workload() -> (
    Vec<biodist::bioseq::Sequence>,
    Vec<biodist::bioseq::Sequence>,
    DsearchConfig,
) {
    let queries = vec![random_sequence(Alphabet::Protein, "q", 120, 3)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(80, 120), 4);
    let mut cfg = DsearchConfig::protein_default();
    // Large enough that the run spans every scheduled departure/arrival.
    cfg.cost_scale = 60_000.0;
    (db.sequences, queries, cfg)
}

/// `departures` clients leave permanently, staggered from `t0` every
/// `dt` seconds (virtual seconds on the sim, scaled seconds on threads).
fn churn_plan(departures: usize, t0: f64, dt: f64) -> FaultPlan {
    let mut plan = FaultPlan::new(0);
    for k in 0..departures {
        plan.push(t0 + dt * k as f64, k, FaultKind::Depart);
    }
    plan
}

/// Thread-backend scheduler tuning: times are in scaled seconds and the
/// throughput prior sits near real debug-build speed so the first
/// leases are not enormous.
fn thread_cfg() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 0.03,
        prior_ops_per_sec: 2e10,
        lease_min_secs: 0.5,
        ..Default::default()
    }
}

/// Scaled seconds per wall second for thread-backend runs.
const TIME_SCALE: f64 = 50.0;

#[test]
fn departures_mid_run_do_not_change_dsearch_results() {
    let (db, queries, cfg) = workload();
    let expected = search_sequential(&db, &queries, &cfg);
    let mut server = Server::new(SchedulerConfig {
        lease_min_secs: 60.0,
        ..Default::default()
    });
    let pid = server.submit(build_problem(db, queries, &cfg));
    let (report, mut server) = SimRunner::with_defaults(server, homogeneous_lab(10, 9))
        .with_faults(churn_plan(4, 40.0, 25.0))
        .run();
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(out.hits, expected, "results identical despite 4 departures");
    assert!(report.makespan.is_finite());
}

#[test]
fn departures_on_real_threads_do_not_change_dsearch_results() {
    let (db, queries, cfg) = workload();
    let expected = search_sequential(&db, &queries, &cfg);
    let mut server = Server::new(thread_cfg());
    let pid = server.submit(build_problem(db, queries, &cfg));
    // Two of six workers quit early in the run (times in scaled secs).
    let (mut server, _) = run_threaded_faulty(server, 6, &churn_plan(2, 0.1, 0.1), TIME_SCALE);
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(out.hits, expected, "results identical despite departures");
}

#[test]
fn churn_costs_time_but_reissues_recover_everything() {
    let (db, queries, cfg) = workload();
    let run = |plan: FaultPlan| {
        let (db, queries) = (db.clone(), queries.clone());
        let mut server = Server::new(SchedulerConfig::default());
        let pid = server.submit(build_problem(db, queries, &cfg));
        let (report, server) = SimRunner::with_defaults(server, homogeneous_lab(12, 9))
            .with_faults(plan)
            .run();
        (report.makespan, server.stats(pid).reissued_units)
    };
    let (clean_time, clean_reissued) = run(FaultPlan::none());
    let (churn_time, churn_reissued) = run(churn_plan(6, 40.0, 25.0));
    assert_eq!(clean_reissued, 0, "no churn, no reissue");
    assert!(churn_reissued > 0, "departures must orphan some leases");
    assert!(
        churn_time > clean_time,
        "losing half the pool must cost time ({churn_time} vs {clean_time})"
    );
}

#[test]
fn dprml_survives_churn_with_identical_tree() {
    let truth = random_yule_tree(6, 0.12, 61);
    let config = DprmlConfig::default();
    let model = config.build_model();
    let seqs = simulate_alignment(&truth, &model, 100, None, 62);
    let data = Arc::new(PatternAlignment::from_sequences(&seqs));
    let sim_run = |plan: FaultPlan| {
        let mut server = Server::new(SchedulerConfig::default());
        let pid = server.submit(dprml_problem(data.clone(), &config, None, "d"));
        let (_, mut server) = SimRunner::with_defaults(server, homogeneous_lab(8, 63))
            .with_faults(plan)
            .run();
        server.take_output(pid).unwrap().into_inner::<PhyloOutput>()
    };
    let clean = sim_run(FaultPlan::none());
    let churned = sim_run(churn_plan(3, 40.0, 25.0));
    assert_eq!(clean.tree.rf_distance(&churned.tree), 0);
    assert!((clean.ln_likelihood - churned.ln_likelihood).abs() < 1e-9);

    // The same instance under churn on real threads grows the same tree.
    let mut server = Server::new(thread_cfg());
    let pid = server.submit(dprml_problem(data.clone(), &config, None, "t"));
    let (mut server, _) = run_threaded_faulty(server, 6, &churn_plan(2, 0.1, 0.1), TIME_SCALE);
    let threaded = server.take_output(pid).unwrap().into_inner::<PhyloOutput>();
    assert_eq!(clean.tree.rf_distance(&threaded.tree), 0);
    assert!((clean.ln_likelihood - threaded.ln_likelihood).abs() < 1e-9);
}

#[test]
fn late_arrivals_join_and_accelerate_the_tail() {
    let (db, queries, cfg) = workload();
    let base = {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(build_problem(db.clone(), queries.clone(), &cfg));
        let (report, _) = SimRunner::with_defaults(server, homogeneous_lab(2, 9)).run();
        report.makespan
    };
    let reinforced = {
        // Four extra machines join at 25% of the two-machine makespan,
        // expressed as LateJoin fault events rather than arrival times.
        let mut plan = FaultPlan::new(0);
        for m in 2..6 {
            plan.push(base * 0.25, m, FaultKind::LateJoin);
        }
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(build_problem(db, queries, &cfg));
        let (report, _) = SimRunner::with_defaults(server, homogeneous_lab(6, 9))
            .with_faults(plan)
            .run();
        report.makespan
    };
    assert!(
        reinforced < base * 0.75,
        "late reinforcements must shorten the run ({reinforced} vs {base})"
    );
}

#[test]
fn late_arrivals_on_real_threads_still_produce_identical_results() {
    let (db, queries, cfg) = workload();
    let expected = search_sequential(&db, &queries, &cfg);
    let plan =
        FaultPlan::new(0)
            .with(0.2, 2, FaultKind::LateJoin)
            .with(0.3, 3, FaultKind::LateJoin);
    let mut server = Server::new(thread_cfg());
    let pid = server.submit(build_problem(db, queries, &cfg));
    let (mut server, _) = run_threaded_faulty(server, 4, &plan, TIME_SCALE);
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(out.hits, expected, "late joiners must not change results");
}
