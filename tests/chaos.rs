//! Chaos property suite: seeded random fault plans swept over small
//! DSEARCH and DPRml workloads on both backends.
//!
//! Every run is audited by the invariant harness (`biodist::core::audit`)
//! and its output compared bit-for-bit against the fault-free
//! sequential reference (`dsearch::search_sequential`,
//! `phylo::search::stepwise_ml`). Any failure panics with the offending
//! `(seed, plan)` — the plan is pure data and the interpreter is
//! deterministic, so that pair alone reproduces the run:
//!
//! ```text
//! BIODIST_CHAOS_SEED=<seed> cargo test --test chaos
//! ```
//!
//! restricts every sweep to that single seed.

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::{Alphabet, Sequence};
use biodist::core::{
    audited, run_tcp_faulty, run_threaded_faulty, ChaosOptions, FaultKind, FaultPlan,
    SchedulerConfig, Server, SimConfig, SimRunner, Telemetry,
};
use biodist::dprml::{build_problem as dprml_problem, DprmlConfig, PhyloOutput};
use biodist::dsearch::{
    build_problem as dsearch_problem, search_sequential, DsearchConfig, SearchOutput,
};
use biodist::gridsim::deployments::homogeneous_lab;
use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist::phylo::patterns::PatternAlignment;
use biodist::phylo::search::stepwise_ml;
use std::sync::Arc;

// ----------------------------------------------------------- sweep sizes

/// Seeds per application on the simulated backend.
const SIM_SEEDS: u64 = 100;
/// Seeds per application on the real-thread backend.
const THREAD_SEEDS: u64 = 12;
/// Fixed subset the CI chaos smoke runs (`cargo test --test chaos smoke`).
const SMOKE_SEEDS: [u64; 10] = [3, 7, 11, 19, 23, 31, 42, 57, 73, 91];
/// Fixed seeds for the real-TCP backend sweep (loopback sockets are
/// slower per run than threads, so the sweep is narrower but every plan
/// exercises the full wire: framing, heartbeats, reconnect, proxy
/// faults). `BIODIST_CHAOS_SEED` narrows this sweep too.
const TCP_SEEDS: [u64; 8] = [3, 7, 11, 19, 23, 31, 42, 57];

/// Pool size for every chaos run.
const POOL: usize = 6;
/// Fault horizon for simulator plans, virtual seconds.
const SIM_HORIZON: f64 = 200.0;
/// Fault horizon for thread plans, scaled seconds.
const THREAD_HORIZON: f64 = 1.0;
/// Thread-backend clock scale: scaled seconds per wall second.
const TIME_SCALE: f64 = 50.0;

fn sweep_seeds(n: u64) -> Vec<u64> {
    match std::env::var("BIODIST_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("BIODIST_CHAOS_SEED must be a u64")],
        Err(_) => (0..n).collect(),
    }
}

fn tcp_seeds() -> Vec<u64> {
    match std::env::var("BIODIST_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("BIODIST_CHAOS_SEED must be a u64")],
        Err(_) => TCP_SEEDS.to_vec(),
    }
}

/// Formats a chaos failure so the run is reproducible from the message:
/// the replay command, the seed, the plan's content digest (to detect a
/// generator drift masquerading as "the same seed"), the scheduler's
/// quorum/reputation configuration (a replay with the wrong K or trust
/// threshold silently passes), and the plan data.
fn chaos_panic(
    app: &str,
    backend: &str,
    seed: u64,
    plan: &FaultPlan,
    cfg: &SchedulerConfig,
    why: String,
) -> ! {
    panic!(
        "chaos failure [{app}/{backend}] — replay with BIODIST_CHAOS_SEED={seed} \
         cargo test --test chaos\n  why: {why}\n  seed: {seed}\n  \
         quorum: k={} votes={} reputation_threshold={} speculative={} (max {})\n  \
         replicas: {} fault event(s) on the replica tier\n  \
         plan digest: {:#018x}\n  plan: {plan:?}",
        cfg.quorum_k,
        cfg.quorum_votes,
        cfg.reputation_threshold,
        cfg.enable_speculative_reissue,
        cfg.speculative_max_copies,
        plan.replica_events().len(),
        plan.digest()
    )
}

// ------------------------------------------------------------- workloads

struct DsearchWorkload {
    db: Vec<Sequence>,
    queries: Vec<Sequence>,
    cfg: DsearchConfig,
    reference: u64,
}

fn dsearch_workload() -> DsearchWorkload {
    let queries = vec![random_sequence(Alphabet::Protein, "q", 100, 3)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(24, 80), 4).sequences;
    let mut cfg = DsearchConfig::protein_default();
    // Stretch the virtual-time cost so a sim run spans the fault
    // horizon (≈200 virtual seconds on 6 lab machines).
    cfg.cost_scale = 60_000.0;
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();
    DsearchWorkload {
        db,
        queries,
        cfg,
        reference,
    }
}

struct DprmlWorkload {
    data: Arc<PatternAlignment>,
    cfg: DprmlConfig,
    reference: u64,
}

fn dprml_workload() -> DprmlWorkload {
    let truth = random_yule_tree(5, 0.12, 61);
    let cfg = DprmlConfig::default();
    let model = cfg.build_model();
    let seqs = simulate_alignment(&truth, &model, 60, None, 62);
    let data = Arc::new(PatternAlignment::from_sequences(&seqs));
    let (tree, lnl) = stepwise_ml(&data, &model, None, &cfg.search);
    let newick = biodist::phylo::newick::to_newick(&tree, &data.names);
    let reference = PhyloOutput {
        tree,
        ln_likelihood: lnl,
        newick,
    }
    .digest();
    DprmlWorkload {
        data,
        cfg,
        reference,
    }
}

// -------------------------------------------------------------- backends

/// Scheduler tuning for thread-backend chaos runs: times are in scaled
/// seconds (TIME_SCALE per wall second), and the throughput prior is
/// set near real debug-build throughput so initial leases are not huge.
fn thread_cfg() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 0.03,
        prior_ops_per_sec: 2e10,
        lease_min_secs: 0.5,
        ..Default::default()
    }
}

fn run_dsearch_sim(w: &DsearchWorkload, seed: u64) {
    let opts = ChaosOptions::for_pool(POOL, SIM_HORIZON);
    let plan = FaultPlan::random(seed, &opts);
    let cfg = SchedulerConfig::default();
    let mut server = Server::new(cfg.clone());
    let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);
    let (_, mut server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7))
        .with_faults(plan.clone())
        .run();
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    if out.digest() != w.reference {
        chaos_panic(
            "dsearch",
            "sim",
            seed,
            &plan,
            &cfg,
            "output differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        chaos_panic(
            "dsearch",
            "sim",
            seed,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
}

fn run_dsearch_thread(w: &DsearchWorkload, seed: u64) {
    let opts = ChaosOptions::for_pool(POOL, THREAD_HORIZON);
    let plan = FaultPlan::random(seed, &opts);
    let cfg = thread_cfg();
    let mut server = Server::new(cfg.clone());
    let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);
    let (mut server, _) = run_threaded_faulty(server, POOL, &plan, TIME_SCALE);
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    if out.digest() != w.reference {
        chaos_panic(
            "dsearch",
            "thread",
            seed,
            &plan,
            &cfg,
            "output differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        chaos_panic(
            "dsearch",
            "thread",
            seed,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
}

fn run_dprml_sim(w: &DprmlWorkload, seed: u64) {
    let opts = ChaosOptions::for_pool(POOL, SIM_HORIZON);
    let plan = FaultPlan::random(seed, &opts);
    let cfg = SchedulerConfig::default();
    let mut server = Server::new(cfg.clone());
    let (problem, audit) = audited(dprml_problem(w.data.clone(), &w.cfg, None, "chaos"));
    let pid = server.submit(problem);
    let (_, mut server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7))
        .with_faults(plan.clone())
        .run();
    let out = server.take_output(pid).unwrap().into_inner::<PhyloOutput>();
    if out.digest() != w.reference {
        chaos_panic(
            "dprml",
            "sim",
            seed,
            &plan,
            &cfg,
            "tree differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        chaos_panic(
            "dprml",
            "sim",
            seed,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
}

fn run_dprml_thread(w: &DprmlWorkload, seed: u64) {
    let opts = ChaosOptions::for_pool(POOL, THREAD_HORIZON);
    let plan = FaultPlan::random(seed, &opts);
    let cfg = thread_cfg();
    let mut server = Server::new(cfg.clone());
    let (problem, audit) = audited(dprml_problem(w.data.clone(), &w.cfg, None, "chaos"));
    let pid = server.submit(problem);
    let (mut server, _) = run_threaded_faulty(server, POOL, &plan, TIME_SCALE);
    let out = server.take_output(pid).unwrap().into_inner::<PhyloOutput>();
    if out.digest() != w.reference {
        chaos_panic(
            "dprml",
            "thread",
            seed,
            &plan,
            &cfg,
            "tree differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        chaos_panic(
            "dprml",
            "thread",
            seed,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
}

fn run_dsearch_tcp(w: &DsearchWorkload, seed: u64) {
    let opts = ChaosOptions::for_pool(POOL, THREAD_HORIZON);
    let plan = FaultPlan::random(seed, &opts);
    let cfg = thread_cfg();
    let mut server = Server::new(cfg.clone());
    let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);
    let (mut server, _) = run_tcp_faulty(server, POOL, &plan, TIME_SCALE);
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    if out.digest() != w.reference {
        chaos_panic(
            "dsearch",
            "tcp",
            seed,
            &plan,
            &cfg,
            "output differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        chaos_panic(
            "dsearch",
            "tcp",
            seed,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
}

fn run_dprml_tcp(w: &DprmlWorkload, seed: u64) {
    let opts = ChaosOptions::for_pool(POOL, THREAD_HORIZON);
    let plan = FaultPlan::random(seed, &opts);
    let cfg = thread_cfg();
    let mut server = Server::new(cfg.clone());
    let (problem, audit) = audited(dprml_problem(w.data.clone(), &w.cfg, None, "chaos"));
    let pid = server.submit(problem);
    let (mut server, _) = run_tcp_faulty(server, POOL, &plan, TIME_SCALE);
    let out = server.take_output(pid).unwrap().into_inner::<PhyloOutput>();
    if out.digest() != w.reference {
        chaos_panic(
            "dprml",
            "tcp",
            seed,
            &plan,
            &cfg,
            "tree differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        chaos_panic(
            "dprml",
            "tcp",
            seed,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
}

// ----------------------------------------------------------- full sweeps

#[test]
fn chaos_dsearch_sim_sweep() {
    let w = dsearch_workload();
    for seed in sweep_seeds(SIM_SEEDS) {
        run_dsearch_sim(&w, seed);
    }
}

#[test]
fn chaos_dprml_sim_sweep() {
    let w = dprml_workload();
    for seed in sweep_seeds(SIM_SEEDS) {
        run_dprml_sim(&w, seed);
    }
}

#[test]
fn chaos_dsearch_thread_sweep() {
    let w = dsearch_workload();
    for seed in sweep_seeds(THREAD_SEEDS) {
        run_dsearch_thread(&w, seed);
    }
}

#[test]
fn chaos_dprml_thread_sweep() {
    let w = dprml_workload();
    for seed in sweep_seeds(THREAD_SEEDS) {
        run_dprml_thread(&w, seed);
    }
}

// --------------------------------------------------- real-TCP backend sweep

/// Random fault plans against the real-socket backend: every run goes
/// through loopback TCP, the framed wire protocol, the fault proxy and
/// the heartbeat/reconnect machinery, and must still reproduce the
/// sequential digest under audit.
#[test]
fn chaos_dsearch_tcp_sweep() {
    let w = dsearch_workload();
    for seed in tcp_seeds() {
        run_dsearch_tcp(&w, seed);
    }
}

#[test]
fn chaos_dprml_tcp_sweep() {
    let w = dprml_workload();
    for seed in tcp_seeds() {
        run_dprml_tcp(&w, seed);
    }
}

/// A hand-built plan that guarantees on-the-wire frame corruption: the
/// proxy flips a checksum byte of each armed client's next result
/// frame, the server's CRC layer must catch every one, route it to the
/// reissue path, and the run must still finish bit-identically.
#[test]
fn chaos_tcp_forced_frame_corruption() {
    let w = dsearch_workload();
    let mut plan = FaultPlan::new(0);
    for c in 0..POOL {
        plan.push(0.0, c, FaultKind::CorruptResult);
    }
    let mut server = Server::new(thread_cfg());
    let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);
    let (mut server, _) = run_tcp_faulty(server, POOL, &plan, TIME_SCALE);
    let stats = server.stats(pid);
    assert!(
        stats.corrupted_results >= 1,
        "at least one corrupted frame must be detected: {stats:?}"
    );
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(
        out.digest(),
        w.reference,
        "corruption must not leak into results"
    );
    audit.verify_run(&server).expect("audit clean");
}

/// Backend parity across the *transport* seam: the same plan on the
/// simulator and over real sockets must converge to the identical
/// digest (scheduling orders differ; the fold must not care).
#[test]
fn backend_parity_tcp_same_plan() {
    let w = dsearch_workload();
    let opts = ChaosOptions::for_pool(POOL, THREAD_HORIZON);
    for seed in [5u64, 17] {
        let plan = FaultPlan::random(seed, &opts);

        let mut server = Server::new(SchedulerConfig::default());
        let pid = server.submit(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let (_, mut server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7))
            .with_faults(plan.clone())
            .run();
        let sim_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>()
            .digest();

        let mut server = Server::new(thread_cfg());
        let pid = server.submit(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let (mut server, _) = run_tcp_faulty(server, POOL, &plan, TIME_SCALE);
        let tcp_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>()
            .digest();

        assert_eq!(
            sim_digest, tcp_digest,
            "seed {seed}: sim and tcp backends disagree\nplan: {plan:?}"
        );
        assert_eq!(
            tcp_digest, w.reference,
            "seed {seed}: both differ from reference"
        );
    }
}

/// Backend parity with K-way quorum armed against active liars: the
/// same Byzantine plan (lies scheduled on each chosen donor's first
/// computes — the near-zero horizon pins them there on every clock)
/// runs on the simulator, the thread backend, and real TCP. Each
/// backend must absorb the lies through majority vote and land on the
/// sequential reference digest; the sim run additionally proves the
/// quorum actually engaged (`quorum.disputed` > 0), so the parity
/// claim is not vacuous.
#[test]
fn backend_parity_quorum_byzantine_same_plan() {
    let w = dsearch_workload();
    let opts = ChaosOptions::for_pool(POOL, 1e-4);
    for seed in [0u64, 8] {
        let plan = FaultPlan::byzantine(seed, &opts, 0.3, 3);

        let sim_cfg = SchedulerConfig {
            quorum_k: 3,
            reputation_threshold: 4,
            enable_speculative_reissue: true,
            ..Default::default()
        };
        let telemetry = Telemetry::enabled();
        let mut server = Server::new(sim_cfg.clone());
        server.set_telemetry(telemetry.clone());
        let pid = server.submit(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let (_, mut server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7))
            .with_faults(plan.clone())
            .run();
        let sim_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>()
            .digest();
        if telemetry.metrics_snapshot().counter("quorum.disputed") == 0 {
            chaos_panic(
                "dsearch",
                "sim quorum",
                seed,
                &plan,
                &sim_cfg,
                "no quorum.disputed — the Byzantine lies never met a cross-check".into(),
            );
        }
        if sim_digest != w.reference {
            chaos_panic(
                "dsearch",
                "sim quorum",
                seed,
                &plan,
                &sim_cfg,
                "sim digest differs from reference under quorum".into(),
            );
        }

        let real_cfg = SchedulerConfig {
            quorum_k: 3,
            reputation_threshold: 4,
            enable_speculative_reissue: true,
            ..thread_cfg()
        };
        let mut server = Server::new(real_cfg.clone());
        let pid = server.submit(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let (mut server, _) = run_threaded_faulty(server, POOL, &plan, TIME_SCALE);
        let thread_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>()
            .digest();
        if thread_digest != w.reference {
            chaos_panic(
                "dsearch",
                "thread quorum",
                seed,
                &plan,
                &real_cfg,
                "thread digest differs from reference under quorum".into(),
            );
        }

        let mut server = Server::new(real_cfg.clone());
        let pid = server.submit(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let (mut server, _) = run_tcp_faulty(server, POOL, &plan, TIME_SCALE);
        let tcp_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>()
            .digest();
        if tcp_digest != w.reference {
            chaos_panic(
                "dsearch",
                "tcp quorum",
                seed,
                &plan,
                &real_cfg,
                "tcp digest differs from reference under quorum".into(),
            );
        }
    }
}

/// Backend parity with the data-movement machinery turned all the way
/// up: affinity-aware scheduling (lookahead 3) and pipelined dispatch
/// (simulator `pipeline_depth` 2; the TCP donors prefetch with their
/// default queue depth of 2). Neither knob may change *what* is
/// computed — only when and where — so both backends must still land
/// on the sequential digest under the same fault plan.
#[test]
fn backend_parity_affinity_pipelined_same_plan() {
    let w = dsearch_workload();
    let opts = ChaosOptions::for_pool(POOL, THREAD_HORIZON);
    for seed in [5u64, 17] {
        let plan = FaultPlan::random(seed, &opts);

        let cfg = SchedulerConfig {
            affinity_lookahead: 3,
            ..Default::default()
        };
        let mut server = Server::new(cfg.clone());
        let pid = server.submit(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let sim_cfg = SimConfig {
            pipeline_depth: 2,
            ..Default::default()
        };
        let (_, mut server) = SimRunner::new(
            server,
            homogeneous_lab(POOL, 7),
            biodist::gridsim::network::SharedLink::hundred_mbit(),
            sim_cfg,
        )
        .with_faults(plan.clone())
        .run();
        let sim_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>()
            .digest();

        let mut server = Server::new(SchedulerConfig {
            affinity_lookahead: 3,
            ..thread_cfg()
        });
        let pid = server.submit(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let (mut server, _) = run_tcp_faulty(server, POOL, &plan, TIME_SCALE);
        let tcp_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>()
            .digest();

        if sim_digest != tcp_digest {
            chaos_panic(
                "dsearch",
                "sim+tcp affinity/pipelined",
                seed,
                &plan,
                &cfg,
                "backends disagree with affinity + pipelining enabled".into(),
            );
        }
        if tcp_digest != w.reference {
            chaos_panic(
                "dsearch",
                "sim+tcp affinity/pipelined",
                seed,
                &plan,
                &cfg,
                "both backends differ from the sequential reference".into(),
            );
        }
    }
}

/// Regression: a donor crashing in the middle of the chunk-transfer
/// phase (right after joining, when `ChunkData` frames are in flight)
/// must neither wedge the unit's lease nor leave a corrupted entry in
/// any cache. The crashed donor reboots with a cold cache, refetches,
/// and the run still reproduces the sequential digest under audit.
#[test]
fn tcp_crash_mid_chunk_transfer_recovers() {
    let w = dsearch_workload();
    let mut plan = FaultPlan::new(0);
    // Crashes land at the very start of the horizon — donors are still
    // pulling their first chunks — with staggered short reboots.
    for (i, c) in (0..3).enumerate() {
        plan.push(
            0.01 + 0.01 * i as f64,
            c,
            FaultKind::Crash {
                down_secs: 0.05 + 0.02 * i as f64,
            },
        );
    }
    // And one dropped result on a survivor, so lease recovery runs too.
    plan.push(0.05, 4, FaultKind::DropResult);
    let cfg = SchedulerConfig {
        affinity_lookahead: 3,
        ..thread_cfg()
    };
    let mut server = Server::new(cfg.clone());
    let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);
    let (mut server, _) = run_tcp_faulty(server, POOL, &plan, TIME_SCALE);
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    if out.digest() != w.reference {
        chaos_panic(
            "dsearch",
            "tcp crash-mid-chunk",
            0,
            &plan,
            &cfg,
            "output differs from reference after mid-transfer crashes".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        chaos_panic(
            "dsearch",
            "tcp crash-mid-chunk",
            0,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
}

/// A replica dying in the middle of a `ChunkData` body must look to the
/// donor like any other bad endpoint: fail over, refetch from the next
/// rung (the origin here), and audit the unit exactly once. The
/// "replica" is a listener that answers every chunk request with the
/// first half of a well-formed frame and then severs the connection —
/// the worst spot to die, after the header already parsed.
#[test]
fn tcp_replica_killed_mid_chunk_body_fails_over() {
    use biodist::core::net::wire::{encode_frame, Frame, FrameReader};
    use biodist::core::net::{
        spawn_clients, ClientKit, Clock, Directory, NetClientOptions, NetServer, NetServerOptions,
    };
    use std::io::Write as _;
    use std::sync::atomic::{AtomicBool, Ordering};

    let w = dsearch_workload();
    let cfg = SchedulerConfig {
        affinity_lookahead: 3,
        ..thread_cfg()
    };
    let mut server = Server::new(cfg.clone());
    let telemetry = Telemetry::enabled();
    server.set_telemetry(telemetry.clone());
    let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);

    let clock = Clock::new(TIME_SCALE);
    let kit = ClientKit::from_server(&server).expect("codecs");
    let net = NetServer::start(server, clock, NetServerOptions::default()).expect("bind server");

    let killer = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake replica");
    let killer_addr = killer.local_addr().unwrap();
    killer.set_nonblocking(true).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let killer_thread = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match killer.accept() {
                    Ok((mut s, _)) => {
                        let _ = s.set_read_timeout(Some(std::time::Duration::from_millis(5)));
                        let mut reader = FrameReader::new();
                        for _ in 0..400 {
                            match reader.poll(&mut s) {
                                Ok(Some(Frame::ChunkRequest { problem, chunk, .. })) => {
                                    let full = encode_frame(&Frame::ChunkData {
                                        problem,
                                        chunk,
                                        digest: 0,
                                        payload: vec![0u8; 64 * 1024],
                                    });
                                    let _ = s.write_all(&full[..full.len() / 2]);
                                    break;
                                }
                                Ok(_) => {}
                                Err(_) => break,
                            }
                        }
                        drop(s); // severed mid-body
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_micros(500)),
                }
            }
        })
    };

    let client_dir = Directory::with_origin(net.addr());
    client_dir.set_replicas(vec![killer_addr]);
    let run_over = Arc::new(AtomicBool::new(false));
    let plan = FaultPlan::new(0);
    let handles = spawn_clients(
        client_dir,
        clock,
        kit,
        POOL,
        &plan,
        run_over.clone(),
        NetClientOptions::default(),
    );
    let mut server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    stop.store(true, Ordering::SeqCst);
    let _ = killer_thread.join();
    telemetry.flush();

    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    if out.digest() != w.reference {
        chaos_panic(
            "dsearch",
            "tcp replica-killed-mid-body",
            0,
            &plan,
            &cfg,
            "output differs from reference after mid-body replica death".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        chaos_panic(
            "dsearch",
            "tcp replica-killed-mid-body",
            0,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
    let snap = telemetry.metrics_snapshot();
    assert!(
        snap.counter("replica.failovers") > 0,
        "every fetch hit the severing replica first; failovers must be counted"
    );
    assert_eq!(
        snap.counter("replica.bytes_replica"),
        0,
        "no truncated body may ever be accepted as chunk bytes"
    );
}

// --------------------------------------------------- CI smoke (fast path)

#[test]
fn chaos_smoke_dsearch() {
    let w = dsearch_workload();
    for &seed in &SMOKE_SEEDS {
        run_dsearch_sim(&w, seed);
    }
}

#[test]
fn chaos_smoke_dprml() {
    let w = dprml_workload();
    for &seed in &SMOKE_SEEDS {
        run_dprml_sim(&w, seed);
    }
}

// ------------------------------------------------ backend parity (satellite)

/// The same workload under the same fault plan must produce identical
/// merged hits on the simulated and the real-thread backend.
#[test]
fn backend_parity_dsearch_same_plan() {
    let w = dsearch_workload();
    let opts = ChaosOptions::for_pool(POOL, THREAD_HORIZON);
    for seed in [5u64, 17, 29] {
        let plan = FaultPlan::random(seed, &opts);

        let mut server = Server::new(SchedulerConfig::default());
        let pid = server.submit(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let (_, mut server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7))
            .with_faults(plan.clone())
            .run();
        let sim_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>()
            .digest();

        let mut server = Server::new(thread_cfg());
        let pid = server.submit(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let (mut server, _) = run_threaded_faulty(server, POOL, &plan, TIME_SCALE);
        let thread_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>()
            .digest();

        assert_eq!(
            sim_digest, thread_digest,
            "seed {seed}: backends disagree\nplan: {plan:?}"
        );
        assert_eq!(
            sim_digest, w.reference,
            "seed {seed}: both differ from reference"
        );
    }
}

/// The same DPRml instance under the same fault plan must produce the
/// identical ML tree on both backends.
#[test]
fn backend_parity_dprml_same_plan() {
    let w = dprml_workload();
    let opts = ChaosOptions::for_pool(POOL, THREAD_HORIZON);
    for seed in [5u64, 17] {
        let plan = FaultPlan::random(seed, &opts);

        let mut server = Server::new(SchedulerConfig::default());
        let pid = server.submit(dprml_problem(w.data.clone(), &w.cfg, None, "parity-sim"));
        let (_, mut server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7))
            .with_faults(plan.clone())
            .run();
        let sim_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<PhyloOutput>()
            .digest();

        let mut server = Server::new(thread_cfg());
        let pid = server.submit(dprml_problem(w.data.clone(), &w.cfg, None, "parity-thread"));
        let (mut server, _) = run_threaded_faulty(server, POOL, &plan, TIME_SCALE);
        let thread_digest = server
            .take_output(pid)
            .unwrap()
            .into_inner::<PhyloOutput>()
            .digest();

        assert_eq!(
            sim_digest, thread_digest,
            "seed {seed}: backends disagree\nplan: {plan:?}"
        );
        assert_eq!(
            sim_digest, w.reference,
            "seed {seed}: both differ from reference"
        );
    }
}

// ------------------------------------------------- sharded control plane

/// The sharded dispatch plane under donor loss: 8 donors over 4 shards,
/// and *both* of shard 0's donors (clients 0 and 4 — homed by
/// `client % shards`) depart permanently mid-run. Their leased units
/// reissue through the liveness path as always, and the units sitting
/// claimed in shard 0's queue must be drained by sibling shards' steals
/// — stranding even one would hang the run. Digest parity with the
/// sequential reference and the exactly-once audit both must hold.
#[test]
fn tcp_sharded_shard0_donors_all_depart_work_is_stolen_to_completion() {
    use biodist::core::{run_tcp_with, NetServerOptions};
    let w = dsearch_workload();
    let cfg = thread_cfg();
    let plan = FaultPlan::new(0)
        .with(0.4, 0, FaultKind::Depart)
        .with(0.4, 4, FaultKind::Depart);
    let mut server = Server::new(cfg.clone());
    let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);
    let (mut server, _) = run_tcp_with(
        server,
        8,
        0,
        &plan,
        TIME_SCALE,
        NetServerOptions {
            shards: 4,
            claim_batch: 6,
            ..Default::default()
        },
    );
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    if out.digest() != w.reference {
        chaos_panic(
            "dsearch",
            "tcp-sharded",
            0,
            &plan,
            &cfg,
            "output differs from reference".into(),
        );
    }
    if let Err(v) = audit.verify_run(&server) {
        chaos_panic(
            "dsearch",
            "tcp-sharded",
            0,
            &plan,
            &cfg,
            format!("invariants violated: {v:?}"),
        );
    }
}

/// Seeded backend parity with the dispatch plane sharded: the same
/// chaos plans the unsharded TCP sweep runs must produce the reference
/// digest with `shards = 4` — sharding changes who hands a unit over,
/// never what is computed.
#[test]
fn tcp_sharded_seeded_chaos_parity() {
    use biodist::core::{run_tcp_with, NetServerOptions};
    let w = dsearch_workload();
    for seed in [7u64, 42] {
        let opts = ChaosOptions::for_pool(POOL, THREAD_HORIZON);
        let plan = FaultPlan::random(seed, &opts);
        let cfg = thread_cfg();
        let mut server = Server::new(cfg.clone());
        let (problem, audit) = audited(dsearch_problem(w.db.clone(), w.queries.clone(), &w.cfg));
        let pid = server.submit(problem);
        let (mut server, _) = run_tcp_with(
            server,
            POOL,
            0,
            &plan,
            TIME_SCALE,
            NetServerOptions {
                shards: 4,
                ..Default::default()
            },
        );
        let out = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>();
        if out.digest() != w.reference {
            chaos_panic(
                "dsearch",
                "tcp-sharded",
                seed,
                &plan,
                &cfg,
                "output differs from reference".into(),
            );
        }
        if let Err(v) = audit.verify_run(&server) {
            chaos_panic(
                "dsearch",
                "tcp-sharded",
                seed,
                &plan,
                &cfg,
                format!("invariants violated: {v:?}"),
            );
        }
    }
}
