//! Integration coverage for the extension features: campus network
//! topology, weighted fair share, translated search, and the
//! phylogenetics analysis toolkit (NJ, fitting, bootstrap, AIC).

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::Alphabet;
use biodist::core::builtin::integration_problem;
use biodist::core::{run_threaded, SchedulerConfig, Server, SimConfig, SimRunner};
use biodist::dsearch::{
    annotate_hits, build_translated_problem, search_translated_sequential, DsearchConfig,
    SearchOutput,
};
use biodist::gridsim::deployments::{campus_deployment, campus_network};
use biodist::phylo::bootstrap::{bootstrap_support, nj_builder};
use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist::phylo::model::{ModelKind, SubstModel};
use biodist::phylo::model_select::{compare_models, standard_candidates};
use biodist::phylo::nj::{jc_distance_matrix, neighbor_joining};
use biodist::phylo::patterns::PatternAlignment;

#[test]
fn campus_topology_run_completes_with_correct_output() {
    let machines = campus_deployment(5);
    let network = campus_network(&machines);
    let mut server = Server::new(SchedulerConfig::default());
    let pid = server.submit(integration_problem(5_000_000));
    let (report, mut server) =
        SimRunner::with_network(server, machines, network, SimConfig::default()).run();
    let pi = server.take_output(pid).unwrap().into_inner::<f64>();
    assert!((pi - std::f64::consts::PI).abs() < 1e-8);
    assert!(report.makespan > 0.0);
    assert!(report.bytes_transferred > 0);
}

#[test]
fn campus_topology_is_deterministic() {
    let run = || {
        let machines = campus_deployment(6);
        let network = campus_network(&machines);
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(integration_problem(2_000_000));
        let (report, _) =
            SimRunner::with_network(server, machines, network, SimConfig::default()).run();
        report.makespan.to_bits()
    };
    assert_eq!(run(), run());
}

#[test]
fn weighted_problems_finish_in_weight_order_on_equal_work() {
    // Two identical problems, 4:1 weights: the heavy one must finish
    // first because it receives most of the assignment slots.
    let mut server = Server::new(SchedulerConfig::default());
    let heavy = server.submit_with_weight(integration_problem(8_000_000), 4);
    let light = server.submit_with_weight(integration_problem(8_000_000), 1);
    let machines = biodist::gridsim::deployments::homogeneous_lab(4, 3);
    let (_, server) = SimRunner::with_defaults(server, machines).run();
    let t_heavy = server.completion_time(heavy).unwrap();
    let t_light = server.completion_time(light).unwrap();
    assert!(
        t_heavy < t_light,
        "weight-4 problem must complete first ({t_heavy} vs {t_light})"
    );
}

#[test]
fn translated_search_distributed_equals_sequential_on_threads() {
    let query = random_sequence(Alphabet::Protein, "pq", 30, 77);
    let db = SyntheticDb::generate(&DbSpec::dna_demo(20, 120), 78).sequences;
    let mut cfg = DsearchConfig::protein_default();
    cfg.top_hits = 6;
    let expected = search_translated_sequential(&db, std::slice::from_ref(&query), &cfg);
    let mut server = Server::new(SchedulerConfig {
        target_unit_secs: 0.001,
        prior_ops_per_sec: 1e8,
        min_unit_ops: 1.0,
        ..Default::default()
    });
    let pid = server.submit(build_translated_problem(db, vec![query], &cfg));
    let (mut server, _) = run_threaded(server, 4);
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(out.hits, expected);
}

#[test]
fn significance_annotation_flags_planted_homologs_only() {
    use biodist::dsearch::search_sequential;
    let query = random_sequence(Alphabet::Protein, "q", 100, 91);
    let fam = biodist::bioseq::synth::FamilySpec {
        copies: 2,
        substitution_rate: 0.1,
        indel_rate: 0.01,
    };
    let db = SyntheticDb::generate_with_family(&DbSpec::protein_demo(300, 100), &query, &fam, 92);
    let mut cfg = DsearchConfig::protein_default();
    cfg.top_hits = 302;
    let hits = search_sequential(&db.sequences, &[query], &cfg);
    let all = &hits["q"];
    let background: Vec<i32> = all.iter().map(|h| h.score).collect();
    let annotated = annotate_hits(&all[..10], &background, db.sequences.len());
    for a in &annotated {
        if db.planted_ids.contains(&a.hit.db_id) {
            assert!(
                a.e_value < 1e-4,
                "{} must be significant ({})",
                a.hit.db_id,
                a.e_value
            );
        } else {
            assert!(a.e_value > 1e-4, "{} should look like chance", a.hit.db_id);
        }
    }
}

#[test]
fn analysis_toolkit_round_trip_on_one_dataset() {
    // One dataset through NJ → model selection → bootstrap; the pieces
    // must agree with each other.
    let truth = random_yule_tree(8, 0.15, 101);
    let gen = SubstModel::homogeneous(ModelKind::K80 { kappa: 6.0 });
    let seqs = simulate_alignment(&truth, &gen, 1200, None, 102);
    let data = PatternAlignment::from_sequences(&seqs);

    let nj = neighbor_joining(&jc_distance_matrix(&data));
    assert_eq!(
        nj.rf_distance(&truth),
        0,
        "NJ should recover 8 taxa from 1200 sites"
    );

    let freqs = biodist::phylo::fit::empirical_base_frequencies(&data);
    let candidates = standard_candidates(freqs);
    let scores = compare_models(&nj, &data, &candidates[..4], 2); // JC/K80 ± gamma
                                                                  // The winner must be a K80 variant (the generating class).
    assert!(
        scores[0].name.contains("K80"),
        "AIC winner {} should be K80-family",
        scores[0].name
    );

    let bs = bootstrap_support(&nj, &seqs, 30, 103, nj_builder);
    assert!(bs.min_support() > 0.5, "clean data must be well supported");
}
