//! Multi-donor TCP loopback soak (24 donors on CI-class hosts) with chaos, plus the data-movement
//! acceptance check: a second, identical DSEARCH query must be served
//! almost entirely from the donors' chunk caches.
//!
//! Phase 1 runs two *concurrent* problems over distinct databases with
//! a random fault plan active (crashes, departures, dropped/corrupted
//! results, link degradation). Phase 2 opens a gate on a third problem
//! that repeats phase 1's first query verbatim: its chunk digests are
//! identical, so donors hit their caches and the affinity-aware
//! scheduler routes units to the donors already holding the data. The
//! test asserts, from the shared metrics registry, that phase 2 moves
//! at most 10% of phase 1's chunk payload bytes (a ≥90% reduction).
//!
//! Failures print the replay command:
//!
//! ```text
//! BIODIST_CHAOS_SEED=<seed> cargo test --test stress
//! ```

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::{Alphabet, Sequence};
use biodist::core::net::{
    spawn_clients, ClientKit, Clock, Directory, FaultProxy, NetClientOptions, NetServer,
    NetServerOptions,
};
use biodist::core::problem::{DataManager, Payload, Problem, TaskResult, WorkUnit};
use biodist::core::{
    audited, ChaosOptions, FaultPlan, ProblemId, SchedulerConfig, Server, Telemetry,
};
use biodist::dsearch::{build_problem, search_sequential, DsearchConfig, SearchOutput};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Donor pool size for the soak: 24 on CI-class hosts, scaled down
/// with available parallelism on small machines. The acceptance check
/// below does wall-clock byte accounting; running 24 compute threads
/// on one core turns lease deadlines and ack timeouts into a lottery —
/// spurious expiries reissue units to donors that must fetch their
/// chunks cold, and that noise alone can eat the phase-2 byte budget.
fn donor_count() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (8 * cores).clamp(8, 24)
}
/// Scaled seconds per wall second (matches the chaos suite).
const TIME_SCALE: f64 = 50.0;
/// Fault horizon, scaled seconds: all faults land early in phase 1, so
/// phase 2 measures the steady-state cache behaviour, not fault noise.
const HORIZON: f64 = 0.4;
/// Fixed chaos seed for the CI stress-smoke job; `BIODIST_CHAOS_SEED`
/// overrides it for replay.
const DEFAULT_SEED: u64 = 42;

fn chaos_seed() -> u64 {
    match std::env::var("BIODIST_CHAOS_SEED") {
        Ok(s) => s.parse().expect("BIODIST_CHAOS_SEED must be a u64"),
        Err(_) => DEFAULT_SEED,
    }
}

/// Formats a stress failure so the run reproduces from the message:
/// replay command, seed, plan digest, and the scheduler's
/// quorum/reputation configuration — a replay with the wrong K or
/// trust threshold exercises a different dispatch pattern entirely.
fn stress_panic(seed: u64, plan: &FaultPlan, cfg: &SchedulerConfig, why: String) -> ! {
    panic!(
        "stress failure — replay with BIODIST_CHAOS_SEED={seed} cargo test --test stress\n  \
         why: {why}\n  seed: {seed}\n  \
         quorum: k={} votes={} reputation_threshold={} speculative={} (max {})\n  \
         replicas: {} fault event(s) on the replica tier\n  \
         plan digest: {:#018x}\n  plan: {plan:?}",
        cfg.quorum_k,
        cfg.quorum_votes,
        cfg.reputation_threshold,
        cfg.enable_speculative_reissue,
        cfg.speculative_max_copies,
        plan.replica_events().len(),
        plan.digest()
    )
}

// ---------------------------------------------------------------- gating

/// Holds a data manager's units back until the gate opens; everything
/// else passes straight through. The server sees an incomplete problem
/// with nothing to issue, which is exactly the `Wait` path.
struct GatedDm {
    inner: Box<dyn DataManager>,
    gate: Arc<AtomicBool>,
}

impl DataManager for GatedDm {
    fn next_unit(&mut self, hint_ops: f64) -> Option<WorkUnit> {
        if !self.gate.load(Ordering::SeqCst) {
            return None;
        }
        self.inner.next_unit(hint_ops)
    }
    fn accept_result(&mut self, result: TaskResult) {
        self.inner.accept_result(result);
    }
    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }
    fn final_output(&mut self) -> Payload {
        self.inner.final_output()
    }
    fn attach_telemetry(&mut self, telemetry: Telemetry, problem: ProblemId) {
        self.inner.attach_telemetry(telemetry, problem);
    }
}

/// Placeholder used only while swapping the real manager out.
struct NullDm;
impl DataManager for NullDm {
    fn next_unit(&mut self, _hint_ops: f64) -> Option<WorkUnit> {
        None
    }
    fn accept_result(&mut self, _result: TaskResult) {}
    fn is_complete(&self) -> bool {
        false
    }
    fn final_output(&mut self) -> Payload {
        Payload::new((), 0)
    }
}

fn gate_problem(mut p: Problem, gate: Arc<AtomicBool>) -> Problem {
    let inner = std::mem::replace(&mut p.data_manager, Box::new(NullDm));
    p.data_manager = Box::new(GatedDm { inner, gate });
    p
}

// -------------------------------------------------------------- workload

struct Workload {
    db: Vec<Sequence>,
    queries: Vec<Sequence>,
    cfg: DsearchConfig,
    reference: u64,
}

fn workload(db_seed: u64, query_seed: u64) -> Workload {
    // Big enough that computes outlast the donors' poll stagger —
    // otherwise the whole phase-2 pool is snapped up by whichever
    // donors happen to poll first, before affinity can route anything.
    let queries = vec![random_sequence(Alphabet::Protein, "q", 300, query_seed)];
    // 192 sequences → ~8 chunks cached per donor in phase 1. Phase-2
    // cold misses are bounded by the donor count, not the unit count,
    // so a bigger database widens the reduction margin linearly.
    let db = SyntheticDb::generate(&DbSpec::protein_demo(192, 300), db_seed).sequences;
    let mut cfg = DsearchConfig::protein_default();
    cfg.cost_scale = 60_000.0;
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();
    Workload {
        db,
        queries,
        cfg,
        reference,
    }
}

fn stress_sched() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 0.05,
        prior_ops_per_sec: 2e9,
        min_unit_ops: 1e4,
        max_unit_ops: 1e7,
        lease_min_secs: 1.0,
        // The whole point of phase 2 is affinity routing: keep a pool
        // wide enough to always offer each donor its cached units, and
        // no redundant end-game copies that would force cold fetches.
        // Must exceed the phase-2 unit count or routing silently
        // degrades to FIFO for units past the window.
        affinity_lookahead: 1024,
        enable_redundant_dispatch: false,
        ..Default::default()
    }
}

// ------------------------------------------------------------------ soak

#[test]
fn stress_soak_24_donors_second_pass_is_cached() {
    let donors = donor_count();
    let seed = chaos_seed();
    let plan = FaultPlan::random(
        seed,
        &ChaosOptions {
            n_clients: donors,
            horizon_secs: HORIZON,
            n_faults: 10,
            max_departures: 3,
        },
    );

    // Two concurrent phase-1 problems over *distinct* databases, plus a
    // gated phase-2 repeat of the first query (identical chunk digests).
    let w_a = workload(4, 3);
    let w_b = workload(5, 6);
    let gate = Arc::new(AtomicBool::new(false));

    let sched = stress_sched();
    let mut server = Server::new(sched.clone());
    let telemetry = Telemetry::enabled();
    server.set_telemetry(telemetry.clone());
    let (problem_a, audit_a) =
        audited(build_problem(w_a.db.clone(), w_a.queries.clone(), &w_a.cfg));
    let (problem_b, audit_b) =
        audited(build_problem(w_b.db.clone(), w_b.queries.clone(), &w_b.cfg));
    let (problem_c, audit_c) = audited(gate_problem(
        build_problem(w_a.db.clone(), w_a.queries.clone(), &w_a.cfg),
        gate.clone(),
    ));
    let pid_a = server.submit(problem_a);
    let pid_b = server.submit(problem_b);
    let pid_c = server.submit(problem_c);

    // Manual run_tcp_faulty wiring — the server must stay up across
    // both phases so the byte counter can be sampled at the gate.
    let kit = ClientKit::from_server(&server).expect("codecs");
    let clock = Clock::new(TIME_SCALE);
    // A full donor pool against one unoptimised loopback server: give liveness
    // and acks real headroom, or the soak measures reconnect storms
    // (mass client-gone reissues, double computes) instead of caching.
    let server_opts = NetServerOptions {
        liveness_timeout: 20.0,
        ..Default::default()
    };
    let net = NetServer::start(server, clock, server_opts).expect("bind listener");
    let upstream = Directory::with_origin(net.addr());
    let proxy = FaultProxy::start_traced(upstream, &plan, donors, clock, telemetry.clone())
        .expect("bind proxy");
    let client_dir = Directory::with_origin(proxy.addr());
    let run_over = Arc::new(AtomicBool::new(false));
    // queue_depth 1: prefetching is exercised by the chaos parity
    // suite; here it would let each donor grab a second, arbitrary
    // unit ahead of slower donors' first polls, which measures
    // request-race noise instead of cache routing.
    let client_opts = NetClientOptions {
        queue_depth: 1,
        ack_timeout: 10.0,
        ..Default::default()
    };
    let handles = spawn_clients(
        client_dir,
        clock,
        kit,
        donors,
        &plan,
        run_over.clone(),
        client_opts,
    );

    // Phase 1: both concurrent problems complete under chaos.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let done = net
            .with_server(|s| s.is_complete(pid_a) && s.is_complete(pid_b))
            .unwrap_or(true);
        if done {
            break;
        }
        if Instant::now() > deadline {
            stress_panic(
                seed,
                &plan,
                &sched,
                "phase 1 did not complete in 120s".into(),
            );
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let phase1_bytes = telemetry.metrics_snapshot().counter("net.chunk_bytes_out");

    // Phase 2: open the gate on the repeated query.
    gate.store(true, Ordering::SeqCst);
    let mut server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    proxy.stop();
    telemetry.flush();
    let phase2_bytes = telemetry.metrics_snapshot().counter("net.chunk_bytes_out") - phase1_bytes;

    // Completion with correct outputs.
    for (pid, reference, tag) in [
        (pid_a, w_a.reference, "phase-1 query A"),
        (pid_b, w_b.reference, "phase-1 query B"),
        (pid_c, w_a.reference, "phase-2 repeat of A"),
    ] {
        let out = server
            .take_output(pid)
            .unwrap_or_else(|| stress_panic(seed, &plan, &sched, format!("{tag}: no output")))
            .into_inner::<SearchOutput>();
        if out.digest() != reference {
            stress_panic(
                seed,
                &plan,
                &sched,
                format!("{tag}: output differs from reference"),
            );
        }
    }

    // Exactly-once audit on every problem.
    for (audit, tag) in [(audit_a, "A"), (audit_b, "B"), (audit_c, "C")] {
        if let Err(v) = audit.verify_run(&server) {
            stress_panic(seed, &plan, &sched, format!("problem {tag} audit: {v:?}"));
        }
    }

    if std::env::var("BIODIST_STRESS_DEBUG").is_ok() {
        let snap = telemetry.metrics_snapshot();
        eprintln!("counters: {:#?}", snap.counters);
        eprintln!("phase1_bytes: {phase1_bytes}, phase2_bytes: {phase2_bytes}");
        for pid in [pid_a, pid_b, pid_c] {
            eprintln!("stats[{pid}]: {:?}", server.stats(pid));
        }
    }

    // The acceptance check: the repeated query rides the caches.
    if phase1_bytes == 0 {
        stress_panic(seed, &plan, &sched, "phase 1 moved no chunk bytes".into());
    }
    if phase2_bytes * 10 > phase1_bytes {
        stress_panic(
            seed,
            &plan,
            &sched,
            format!(
                "second pass transferred {phase2_bytes} chunk bytes vs {phase1_bytes} in \
                 phase 1 — less than a 90% reduction"
            ),
        );
    }
}
