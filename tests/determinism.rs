//! Determinism integration: identical seeds must reproduce identical
//! simulations, workloads, and results — the property every figure in
//! EXPERIMENTS.md depends on.

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::Alphabet;
use biodist::core::builtin::integration_problem;
use biodist::core::{SchedulerConfig, Server, SimRunner};
use biodist::dsearch::{build_problem, DsearchConfig, SearchOutput};
use biodist::gridsim::deployments::{campus_deployment, heterogeneous_lab};

fn dsearch_run(seed: u64) -> (f64, u64, SearchOutput) {
    let queries = vec![random_sequence(Alphabet::Protein, "q", 80, 5)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(40, 80), 6);
    let mut cfg = DsearchConfig::protein_default();
    // Long enough in virtual time that availability traces matter.
    cfg.cost_scale = 2000.0;
    let mut server = Server::new(SchedulerConfig::default());
    let pid = server.submit(build_problem(db.sequences, queries, &cfg));
    let machines = heterogeneous_lab(9, seed);
    let (report, mut server) = SimRunner::with_defaults(server, machines).run();
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    (report.makespan, report.bytes_transferred, out)
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let (m1, b1, o1) = dsearch_run(77);
    let (m2, b2, o2) = dsearch_run(77);
    assert_eq!(m1.to_bits(), m2.to_bits(), "makespan must be bit-identical");
    assert_eq!(b1, b2);
    assert_eq!(o1.hits, o2.hits);
}

#[test]
fn different_machine_seeds_change_timing_but_not_results() {
    let (m1, _, o1) = dsearch_run(77);
    let (m2, _, o2) = dsearch_run(78);
    assert_ne!(
        m1.to_bits(),
        m2.to_bits(),
        "different traces, different timing"
    );
    assert_eq!(o1.hits, o2.hits, "results never depend on scheduling");
}

#[test]
fn campus_deployment_is_reproducible() {
    let run = || {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(integration_problem(3_000_000));
        let (report, _) = SimRunner::with_defaults(server, campus_deployment(11)).run();
        (
            report.makespan.to_bits(),
            report.total_units,
            report.bytes_transferred,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn synthetic_workloads_are_seed_stable() {
    use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
    use biodist::phylo::model::{ModelKind, SubstModel};
    let t1 = random_yule_tree(15, 0.1, 123);
    let t2 = random_yule_tree(15, 0.1, 123);
    assert_eq!(t1, t2);
    let model = SubstModel::homogeneous(ModelKind::Jc69);
    let a1 = simulate_alignment(&t1, &model, 50, None, 9);
    let a2 = simulate_alignment(&t2, &model, 50, None, 9);
    assert_eq!(a1, a2);
}
