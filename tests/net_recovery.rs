//! Crash-recovery over real sockets: kill the TCP server mid-run,
//! recover it from its checkpoint log, restart it on a fresh port, and
//! let the *same* donor clients reconnect and finish the job.
//!
//! This is the tentpole robustness story end-to-end: the server's
//! append-only journal (unit issues + folded results + scheduler
//! snapshots) is the only thing that survives the kill, and the
//! recovered run must complete without recombining any already-folded
//! unit — checked by the exactly-once audit — and still reproduce the
//! fault-free sequential digest.

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::Alphabet;
use biodist::core::net::{
    directory, spawn_clients, ClientKit, Clock, NetClientOptions, NetServer, NetServerOptions,
};
use biodist::core::{
    audited, recover, CheckpointWriter, FaultPlan, SchedulerConfig, Server, Telemetry,
};
use biodist::dsearch::{build_problem, search_sequential, DsearchConfig, SearchOutput};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const POOL: usize = 4;
const TIME_SCALE: f64 = 50.0;

fn temp_log(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "biodist-netrec-{tag}-{}-{n}.log",
        std::process::id()
    ))
}

/// One database sequence per unit → ~200 units, so the kill reliably
/// lands mid-run and the recovered server has real work left.
fn tiny_unit_cfg() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 1e-9,
        min_unit_ops: 1.0,
        lease_min_secs: 0.5,
        prior_ops_per_sec: 2e10,
        ..Default::default()
    }
}

#[test]
fn kill_tcp_server_mid_run_recover_and_finish() {
    // Workload + fault-free sequential reference.
    let queries = vec![random_sequence(Alphabet::Protein, "q", 100, 3)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(200, 80), 4).sequences;
    let cfg = DsearchConfig::protein_default();
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();

    let log = temp_log("kill-restart");
    let clock = Clock::new(TIME_SCALE);

    // ---- first life: journal everything, then die mid-run ----------
    let mut server = Server::new(tiny_unit_cfg());
    let pid = server.submit(build_problem(db.clone(), queries.clone(), &cfg));
    let writer = CheckpointWriter::create(&log).expect("create checkpoint log");
    server.set_journal(Box::new(writer.clone()));
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            ..Default::default()
        },
    )
    .expect("bind first server");

    // Clients find the server through the directory; after the restart
    // the same entry points at the new port and they reconnect.
    let dir = directory();
    dir.set_origin(Some(net.addr()));
    let run_over = Arc::new(AtomicBool::new(false));
    let kit = net
        .with_server(|s| ClientKit::from_server(s).expect("codecs registered"))
        .expect("server alive");
    let handles = spawn_clients(
        dir.clone(),
        clock,
        kit,
        POOL,
        &FaultPlan::none(),
        run_over.clone(),
        NetClientOptions::default(),
    );

    // Let real progress accumulate, then pull the plug mid-run.
    let deadline = Instant::now() + Duration::from_secs(30);
    let progress_at_kill = loop {
        let completed = net
            .with_server(|s| s.stats(pid).completed_units)
            .expect("server alive");
        if completed >= 20 {
            break completed;
        }
        assert!(Instant::now() < deadline, "no progress before kill");
        std::thread::sleep(Duration::from_micros(200));
    };
    let was_complete = net.with_server(|s| s.all_complete()).unwrap();
    dir.set_origin(None); // server gone from the directory
    net.kill(); // in-memory state dies; only the log survives
    assert!(!was_complete, "kill must land mid-run");

    // ---- second life: recover from the log, serve on a new port ----
    let (problem, audit) = audited(build_problem(db, queries, &cfg));
    let (mut server, report) =
        recover(tiny_unit_cfg(), vec![problem], &log).expect("recover from checkpoint log");
    assert!(
        report.replayed_results >= progress_at_kill,
        "every completion seen before the kill must replay from the log \
         ({} replayed, {progress_at_kill} seen)",
        report.replayed_results
    );
    assert!(
        !server.all_complete(),
        "recovered server must still have work"
    );
    let completed_at_recovery = server.stats(pid).completed_units;

    let writer = CheckpointWriter::append(&log).expect("reopen checkpoint log");
    server.set_journal(Box::new(writer.clone()));
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            ..Default::default()
        },
    )
    .expect("bind second server");
    dir.set_origin(Some(net.addr())); // clients reconnect here

    let mut server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("client thread");
    }

    // ---- verdict ----------------------------------------------------
    let stats = server.stats(pid);
    assert!(
        stats.completed_units > completed_at_recovery,
        "clients must have finished live work after the restart: {stats:?}"
    );
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(
        out.digest(),
        reference,
        "recovered run must reproduce the sequential reference exactly"
    );
    audit
        .verify_run(&server)
        .expect("exactly-once invariants hold across the crash");

    let _ = std::fs::remove_file(&log);
}

/// Kill the TCP server while every unit is *mid-quorum*: life 1 runs a
/// single donor under `quorum_k = 3`, so each unit collects exactly one
/// recorded vote and can never fold (majority needs two distinct
/// voters). The journal at the kill therefore holds unit issues and
/// in-flight `Vote` records but zero `Result`s. Recovery must restore
/// those ballots (`restored_votes`), refuse to fold any unit from
/// restored votes alone, and the full pool in life 2 must finish the
/// job exactly once — each half-voted unit completes with one more
/// *live* matching vote, never by double-combining.
#[test]
fn kill_tcp_server_mid_quorum_no_double_combine() {
    let queries = vec![random_sequence(Alphabet::Protein, "q", 100, 3)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(120, 80), 4).sequences;
    let cfg = DsearchConfig::protein_default();
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();

    // Quorum always-on: the trust threshold is unreachable, so every
    // unit keeps taking the 3-way vote path for the whole run.
    let quorum_cfg = || SchedulerConfig {
        quorum_k: 3,
        reputation_threshold: 1_000,
        ..tiny_unit_cfg()
    };

    let log = temp_log("mid-quorum");
    let clock = Clock::new(TIME_SCALE);
    let dir = directory();
    let run_over = Arc::new(AtomicBool::new(false));

    // ---- life 1: one donor votes everywhere, nothing can fold -------
    let telemetry = Telemetry::enabled();
    let mut server = Server::new(quorum_cfg());
    server.set_telemetry(telemetry.clone());
    let pid = server.submit(build_problem(db.clone(), queries.clone(), &cfg));
    let writer = CheckpointWriter::create(&log).expect("create checkpoint log");
    server.set_journal(Box::new(writer.clone()));
    let kit = ClientKit::from_server(&server).expect("codecs registered");
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            ..Default::default()
        },
    )
    .expect("bind first server");
    dir.set_origin(Some(net.addr()));
    let mut handles = spawn_clients(
        dir.clone(),
        clock,
        kit.clone(),
        1,
        &FaultPlan::none(),
        run_over.clone(),
        NetClientOptions::default(),
    );

    // Wait until a comfortable pile of first votes is journaled.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if telemetry.metrics_snapshot().counter("quorum.votes") >= 12 {
            break;
        }
        assert!(Instant::now() < deadline, "sole donor cast no votes");
        std::thread::sleep(Duration::from_micros(200));
    }
    let folded_at_kill = net
        .with_server(|s| s.stats(pid).completed_units)
        .expect("server alive");
    assert_eq!(
        folded_at_kill, 0,
        "one voter must never satisfy a 3-way quorum"
    );
    dir.set_origin(None);
    net.kill();

    // ---- recovery: ballots come back, but nothing folds from them ---
    let (problem, audit) = audited(build_problem(db, queries, &cfg));
    let (mut server, report) =
        recover(quorum_cfg(), vec![problem], &log).expect("recover from checkpoint log");
    assert_eq!(
        report.replayed_results, 0,
        "no unit may have folded before the kill"
    );
    assert!(
        report.restored_votes >= 8,
        "the in-flight ballots must survive the crash (restored {})",
        report.restored_votes
    );
    assert_eq!(
        server.stats(pid).completed_units,
        0,
        "restored votes alone must never combine a unit"
    );

    // ---- life 2: full pool finishes every half-voted unit -----------
    let writer = CheckpointWriter::append(&log).expect("reopen checkpoint log");
    server.set_journal(Box::new(writer.clone()));
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            ..Default::default()
        },
    )
    .expect("bind second server");
    dir.set_origin(Some(net.addr()));
    handles.extend(spawn_clients(
        dir.clone(),
        clock,
        kit,
        POOL - 1,
        &FaultPlan::none(),
        run_over.clone(),
        NetClientOptions::default(),
    ));

    let mut server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("client thread");
    }

    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(
        out.digest(),
        reference,
        "quorum-recovered run must reproduce the sequential reference"
    );
    audit
        .verify_run(&server)
        .expect("exactly-once invariants hold across a mid-quorum crash");

    let _ = std::fs::remove_file(&log);
}

/// The recovered server keeps journaling: kill it a second time and
/// recover again — checkpointing must compose across generations.
#[test]
fn recovery_survives_a_second_crash() {
    let queries = vec![random_sequence(Alphabet::Protein, "q", 90, 5)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(160, 80), 6).sequences;
    let cfg = DsearchConfig::protein_default();
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();

    let log = temp_log("double-crash");
    let clock = Clock::new(TIME_SCALE);
    let dir = directory();
    let run_over = Arc::new(AtomicBool::new(false));

    // Life 1.
    let mut server = Server::new(tiny_unit_cfg());
    let pid = server.submit(build_problem(db.clone(), queries.clone(), &cfg));
    let writer = CheckpointWriter::create(&log).unwrap();
    server.set_journal(Box::new(writer.clone()));
    let kit = ClientKit::from_server(&server).unwrap();
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            ..Default::default()
        },
    )
    .unwrap();
    dir.set_origin(Some(net.addr()));
    let handles = spawn_clients(
        dir.clone(),
        clock,
        kit,
        POOL,
        &FaultPlan::none(),
        run_over.clone(),
        NetClientOptions::default(),
    );

    let kill_after = |net: NetServer, threshold: u64| {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let completed = net.with_server(|s| s.stats(pid).completed_units).unwrap();
            if completed >= threshold {
                break;
            }
            assert!(Instant::now() < deadline, "no progress before kill");
            std::thread::sleep(Duration::from_micros(200));
        }
        dir.set_origin(None);
        net.kill();
    };
    kill_after(net, 10);

    // Life 2: recover, run a bit more, die again.
    let (problem, _audit) = audited(build_problem(db.clone(), queries.clone(), &cfg));
    let (mut server, report1) = recover(tiny_unit_cfg(), vec![problem], &log).unwrap();
    assert!(report1.replayed_results >= 10);
    let resumed_from = server.stats(pid).completed_units;
    let writer = CheckpointWriter::append(&log).unwrap();
    server.set_journal(Box::new(writer.clone()));
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            ..Default::default()
        },
    )
    .unwrap();
    dir.set_origin(Some(net.addr()));
    kill_after(net, resumed_from + 10);

    // Life 3: recover once more and finish.
    let (problem, audit) = audited(build_problem(db, queries, &cfg));
    let (mut server, report2) = recover(tiny_unit_cfg(), vec![problem], &log).unwrap();
    assert!(
        report2.replayed_results > report1.replayed_results,
        "second-generation journal entries must replay too"
    );
    let writer = CheckpointWriter::append(&log).unwrap();
    server.set_journal(Box::new(writer));
    let net = NetServer::start(server, clock, NetServerOptions::default()).unwrap();
    dir.set_origin(Some(net.addr()));

    let mut server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("client thread");
    }

    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(out.digest(), reference);
    audit
        .verify_run(&server)
        .expect("audit clean after two crashes");

    let _ = std::fs::remove_file(&log);
}

/// Kill-and-recover with the control plane sharded: donors are routed
/// to their home shard (`client % 2`) in the first life, the server
/// dies mid-run, and the restarted (recovered) server — also sharded —
/// re-routes every reconnecting donor to its home shard again while the
/// checkpoint replay keeps the run exactly-once. Routing is asserted
/// from the metrics registry in *both* lives: the per-shard donor
/// gauges split 2/2 and `shard.misrouted` stays zero.
#[test]
fn kill_sharded_tcp_server_recover_and_reroute() {
    use biodist::core::NetServerOptions as Opts;
    let queries = vec![random_sequence(Alphabet::Protein, "q", 100, 5)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(200, 80), 6).sequences;
    let cfg = DsearchConfig::protein_default();
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();

    let log = temp_log("kill-sharded");
    let clock = Clock::new(TIME_SCALE);

    // ---- first life: 2 shards, journal everything, die mid-run ------
    let mut server = Server::new(tiny_unit_cfg());
    server.set_telemetry(Telemetry::enabled());
    let tel1 = server.telemetry();
    let pid = server.submit(build_problem(db.clone(), queries.clone(), &cfg));
    let writer = CheckpointWriter::create(&log).expect("create checkpoint log");
    server.set_journal(Box::new(writer.clone()));
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            shards: 2,
            ..Default::default()
        },
    )
    .expect("bind first server");

    let dir = directory();
    dir.set_origin(Some(net.addr()));
    let run_over = Arc::new(AtomicBool::new(false));
    let kit = net
        .with_server(|s| ClientKit::from_server(s).expect("codecs registered"))
        .expect("server alive");
    let handles = spawn_clients(
        dir.clone(),
        clock,
        kit,
        POOL,
        &FaultPlan::none(),
        run_over.clone(),
        NetClientOptions::default(),
    );

    // Progress plus full routing: all four donors must have spoken (and
    // thus been homed) before the plug is pulled.
    let deadline = Instant::now() + Duration::from_secs(30);
    let progress_at_kill = loop {
        let completed = net
            .with_server(|s| s.stats(pid).completed_units)
            .expect("server alive");
        let snap = tel1.metrics_snapshot();
        let routed = snap.gauge("shard.s0.clients").unwrap_or(0.0)
            + snap.gauge("shard.s1.clients").unwrap_or(0.0);
        if completed >= 20 && routed as usize == POOL {
            break completed;
        }
        assert!(Instant::now() < deadline, "no progress before kill");
        std::thread::sleep(Duration::from_micros(200));
    };
    {
        // Every donor is on its home shard: clients {0,2} on shard 0,
        // {1,3} on shard 1, and nothing was ever served off-home.
        let snap = tel1.metrics_snapshot();
        assert_eq!(snap.gauge("shard.s0.clients"), Some(2.0));
        assert_eq!(snap.gauge("shard.s1.clients"), Some(2.0));
        assert_eq!(snap.counter("shard.misrouted"), 0);
        assert_eq!(snap.gauge("evloop.threads"), Some(4.0), "2 shards + 2");
    }
    dir.set_origin(None);
    net.kill();

    // ---- second life: recover, restart sharded, donors re-route -----
    let (problem, audit) = audited(build_problem(db, queries, &cfg));
    let (mut server, report) =
        recover(tiny_unit_cfg(), vec![problem], &log).expect("recover from checkpoint log");
    assert!(
        report.replayed_results >= progress_at_kill,
        "checkpoint replay lost completions"
    );
    assert!(!server.all_complete(), "recovered server must have work");
    server.set_telemetry(Telemetry::enabled());
    let tel2 = server.telemetry();
    let writer = CheckpointWriter::append(&log).expect("reopen checkpoint log");
    server.set_journal(Box::new(writer.clone()));
    let net = NetServer::start(
        server,
        clock,
        Opts {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            shards: 2,
            ..Default::default()
        },
    )
    .expect("bind second server");
    dir.set_origin(Some(net.addr()));

    // The same donor threads reconnect to the new port; each must land
    // back on its home shard (poll until routing completes or the short
    // remainder of the run finishes first).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = tel2.metrics_snapshot();
        let s0 = snap.gauge("shard.s0.clients").unwrap_or(0.0);
        let s1 = snap.gauge("shard.s1.clients").unwrap_or(0.0);
        let complete = net.with_server(|s| s.all_complete()).unwrap_or(true);
        if (s0 == 2.0 && s1 == 2.0) || complete {
            break;
        }
        assert!(Instant::now() < deadline, "donors never re-routed");
        std::thread::sleep(Duration::from_micros(500));
    }

    let mut server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("client thread");
    }

    let snap = tel2.metrics_snapshot();
    assert_eq!(
        snap.counter("shard.misrouted"),
        0,
        "re-routing stayed exact"
    );
    assert!(
        snap.gauge("shard.s0.clients").unwrap_or(0.0)
            + snap.gauge("shard.s1.clients").unwrap_or(0.0)
            >= 1.0,
        "at least one donor re-routed and finished the run"
    );
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(
        out.digest(),
        reference,
        "sharded recovery reproduces the reference"
    );
    audit
        .verify_run(&server)
        .expect("exactly-once invariants hold across the sharded crash");

    let _ = std::fs::remove_file(&log);
}
