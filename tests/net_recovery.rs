//! Crash-recovery over real sockets: kill the TCP server mid-run,
//! recover it from its checkpoint log, restart it on a fresh port, and
//! let the *same* donor clients reconnect and finish the job.
//!
//! This is the tentpole robustness story end-to-end: the server's
//! append-only journal (unit issues + folded results + scheduler
//! snapshots) is the only thing that survives the kill, and the
//! recovered run must complete without recombining any already-folded
//! unit — checked by the exactly-once audit — and still reproduce the
//! fault-free sequential digest.

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::Alphabet;
use biodist::core::net::{
    directory, spawn_clients, ClientKit, Clock, NetClientOptions, NetServer, NetServerOptions,
};
use biodist::core::{audited, recover, CheckpointWriter, FaultPlan, SchedulerConfig, Server};
use biodist::dsearch::{build_problem, search_sequential, DsearchConfig, SearchOutput};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const POOL: usize = 4;
const TIME_SCALE: f64 = 50.0;

fn temp_log(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "biodist-netrec-{tag}-{}-{n}.log",
        std::process::id()
    ))
}

/// One database sequence per unit → ~200 units, so the kill reliably
/// lands mid-run and the recovered server has real work left.
fn tiny_unit_cfg() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 1e-9,
        min_unit_ops: 1.0,
        lease_min_secs: 0.5,
        prior_ops_per_sec: 2e10,
        ..Default::default()
    }
}

#[test]
fn kill_tcp_server_mid_run_recover_and_finish() {
    // Workload + fault-free sequential reference.
    let queries = vec![random_sequence(Alphabet::Protein, "q", 100, 3)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(200, 80), 4).sequences;
    let cfg = DsearchConfig::protein_default();
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();

    let log = temp_log("kill-restart");
    let clock = Clock::new(TIME_SCALE);

    // ---- first life: journal everything, then die mid-run ----------
    let mut server = Server::new(tiny_unit_cfg());
    let pid = server.submit(build_problem(db.clone(), queries.clone(), &cfg));
    let writer = CheckpointWriter::create(&log).expect("create checkpoint log");
    server.set_journal(Box::new(writer.clone()));
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            ..Default::default()
        },
    )
    .expect("bind first server");

    // Clients find the server through the directory; after the restart
    // the same entry points at the new port and they reconnect.
    let dir = directory();
    *dir.lock().unwrap() = Some(net.addr());
    let run_over = Arc::new(AtomicBool::new(false));
    let kit = net
        .with_server(|s| ClientKit::from_server(s).expect("codecs registered"))
        .expect("server alive");
    let handles = spawn_clients(
        dir.clone(),
        clock,
        kit,
        POOL,
        &FaultPlan::none(),
        run_over.clone(),
        NetClientOptions::default(),
    );

    // Let real progress accumulate, then pull the plug mid-run.
    let deadline = Instant::now() + Duration::from_secs(30);
    let progress_at_kill = loop {
        let completed = net
            .with_server(|s| s.stats(pid).completed_units)
            .expect("server alive");
        if completed >= 20 {
            break completed;
        }
        assert!(Instant::now() < deadline, "no progress before kill");
        std::thread::sleep(Duration::from_micros(200));
    };
    let was_complete = net.with_server(|s| s.all_complete()).unwrap();
    *dir.lock().unwrap() = None; // server gone from the directory
    net.kill(); // in-memory state dies; only the log survives
    assert!(!was_complete, "kill must land mid-run");

    // ---- second life: recover from the log, serve on a new port ----
    let (problem, audit) = audited(build_problem(db, queries, &cfg));
    let (mut server, report) =
        recover(tiny_unit_cfg(), vec![problem], &log).expect("recover from checkpoint log");
    assert!(
        report.replayed_results >= progress_at_kill,
        "every completion seen before the kill must replay from the log \
         ({} replayed, {progress_at_kill} seen)",
        report.replayed_results
    );
    assert!(
        !server.all_complete(),
        "recovered server must still have work"
    );
    let completed_at_recovery = server.stats(pid).completed_units;

    let writer = CheckpointWriter::append(&log).expect("reopen checkpoint log");
    server.set_journal(Box::new(writer.clone()));
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            ..Default::default()
        },
    )
    .expect("bind second server");
    *dir.lock().unwrap() = Some(net.addr()); // clients reconnect here

    let mut server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("client thread");
    }

    // ---- verdict ----------------------------------------------------
    let stats = server.stats(pid);
    assert!(
        stats.completed_units > completed_at_recovery,
        "clients must have finished live work after the restart: {stats:?}"
    );
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(
        out.digest(),
        reference,
        "recovered run must reproduce the sequential reference exactly"
    );
    audit
        .verify_run(&server)
        .expect("exactly-once invariants hold across the crash");

    let _ = std::fs::remove_file(&log);
}

/// The recovered server keeps journaling: kill it a second time and
/// recover again — checkpointing must compose across generations.
#[test]
fn recovery_survives_a_second_crash() {
    let queries = vec![random_sequence(Alphabet::Protein, "q", 90, 5)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(160, 80), 6).sequences;
    let cfg = DsearchConfig::protein_default();
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();

    let log = temp_log("double-crash");
    let clock = Clock::new(TIME_SCALE);
    let dir = directory();
    let run_over = Arc::new(AtomicBool::new(false));

    // Life 1.
    let mut server = Server::new(tiny_unit_cfg());
    let pid = server.submit(build_problem(db.clone(), queries.clone(), &cfg));
    let writer = CheckpointWriter::create(&log).unwrap();
    server.set_journal(Box::new(writer.clone()));
    let kit = ClientKit::from_server(&server).unwrap();
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            ..Default::default()
        },
    )
    .unwrap();
    *dir.lock().unwrap() = Some(net.addr());
    let handles = spawn_clients(
        dir.clone(),
        clock,
        kit,
        POOL,
        &FaultPlan::none(),
        run_over.clone(),
        NetClientOptions::default(),
    );

    let kill_after = |net: NetServer, threshold: u64| {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let completed = net.with_server(|s| s.stats(pid).completed_units).unwrap();
            if completed >= threshold {
                break;
            }
            assert!(Instant::now() < deadline, "no progress before kill");
            std::thread::sleep(Duration::from_micros(200));
        }
        *dir.lock().unwrap() = None;
        net.kill();
    };
    kill_after(net, 10);

    // Life 2: recover, run a bit more, die again.
    let (problem, _audit) = audited(build_problem(db.clone(), queries.clone(), &cfg));
    let (mut server, report1) = recover(tiny_unit_cfg(), vec![problem], &log).unwrap();
    assert!(report1.replayed_results >= 10);
    let resumed_from = server.stats(pid).completed_units;
    let writer = CheckpointWriter::append(&log).unwrap();
    server.set_journal(Box::new(writer.clone()));
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            snapshot_every_ticks: 5,
            checkpoint: Some(writer),
            ..Default::default()
        },
    )
    .unwrap();
    *dir.lock().unwrap() = Some(net.addr());
    kill_after(net, resumed_from + 10);

    // Life 3: recover once more and finish.
    let (problem, audit) = audited(build_problem(db, queries, &cfg));
    let (mut server, report2) = recover(tiny_unit_cfg(), vec![problem], &log).unwrap();
    assert!(
        report2.replayed_results > report1.replayed_results,
        "second-generation journal entries must replay too"
    );
    let writer = CheckpointWriter::append(&log).unwrap();
    server.set_journal(Box::new(writer));
    let net = NetServer::start(server, clock, NetServerOptions::default()).unwrap();
    *dir.lock().unwrap() = Some(net.addr());

    let mut server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("client thread");
    }

    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(out.digest(), reference);
    audit
        .verify_run(&server)
        .expect("audit clean after two crashes");

    let _ = std::fs::remove_file(&log);
}
