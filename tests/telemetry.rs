//! Telemetry integration suite: trace determinism on the simulator,
//! span completeness under chaos on both in-process backends, and
//! sim/TCP parity of the canonical corrupted-result event.

use biodist::bioseq::synth::{DbSpec, SyntheticDb};
use biodist::bioseq::{synth::random_sequence, Alphabet, Sequence};
use biodist::core::{
    run_tcp_faulty, run_threaded_faulty, verify_spans, ChaosOptions, EventKind, FaultKind,
    FaultPlan, SchedulerConfig, Server, SimRunner, Telemetry, TraceEvent,
};
use biodist::dsearch::{build_problem, DsearchConfig};
use biodist::gridsim::deployments::homogeneous_lab;
use std::path::PathBuf;

const POOL: usize = 6;
const SIM_HORIZON: f64 = 200.0;
const THREAD_HORIZON: f64 = 1.0;
const TIME_SCALE: f64 = 50.0;

struct Workload {
    db: Vec<Sequence>,
    queries: Vec<Sequence>,
    cfg: DsearchConfig,
}

fn workload() -> Workload {
    let queries = vec![random_sequence(Alphabet::Protein, "q", 100, 3)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(24, 80), 4).sequences;
    let mut cfg = DsearchConfig::protein_default();
    cfg.cost_scale = 60_000.0;
    Workload { db, queries, cfg }
}

fn thread_cfg() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 0.03,
        prior_ops_per_sec: 2e10,
        lease_min_secs: 0.5,
        ..Default::default()
    }
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("biodist-telemetry-{}-{name}", std::process::id()))
}

/// Runs the workload on the simulator under `plan` with a JSONL sink,
/// returning the raw trace bytes and the final server.
fn sim_trace(plan: &FaultPlan, path: &PathBuf) -> (Vec<u8>, Server) {
    let telemetry = Telemetry::enabled();
    telemetry.attach_jsonl(path).expect("trace file");
    let w = workload();
    let mut server = Server::new(SchedulerConfig::default());
    server.set_telemetry(telemetry.clone());
    server.submit(build_problem(w.db, w.queries, &w.cfg));
    let (_, server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7))
        .with_faults(plan.clone())
        .run();
    telemetry.flush();
    let bytes = std::fs::read(path).expect("read trace");
    let _ = std::fs::remove_file(path);
    (bytes, server)
}

#[test]
fn sim_trace_is_byte_deterministic_under_chaos() {
    let opts = ChaosOptions::for_pool(POOL, SIM_HORIZON);
    let plan = FaultPlan::random(42, &opts);
    let (a, _) = sim_trace(&plan, &temp_path("det-a.jsonl"));
    let (b, _) = sim_trace(&plan, &temp_path("det-b.jsonl"));
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a, b, "same plan + seed must yield byte-identical traces");
}

fn parse(bytes: &[u8]) -> Vec<TraceEvent> {
    std::str::from_utf8(bytes)
        .expect("utf8 trace")
        .lines()
        .map(|l| TraceEvent::from_json_line(l).expect("parseable line"))
        .collect()
}

#[test]
fn span_completeness_holds_over_sim_chaos_sweep() {
    let opts = ChaosOptions::for_pool(POOL, SIM_HORIZON);
    for seed in [3u64, 7, 19, 42, 91] {
        let plan = FaultPlan::random(seed, &opts);
        let (bytes, _) = sim_trace(&plan, &temp_path(&format!("span-{seed}.jsonl")));
        let events = parse(&bytes);
        verify_spans(&events).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn span_completeness_holds_on_thread_backend() {
    let opts = ChaosOptions::for_pool(POOL, THREAD_HORIZON);
    let plan = FaultPlan::random(7, &opts);
    let telemetry = Telemetry::enabled();
    let ring = telemetry.attach_ring(1 << 20);
    let w = workload();
    let mut server = Server::new(thread_cfg());
    server.set_telemetry(telemetry.clone());
    server.submit(build_problem(w.db, w.queries, &w.cfg));
    let (_, _) = run_threaded_faulty(server, POOL, &plan, TIME_SCALE);
    let events = ring.events();
    assert!(!events.is_empty());
    verify_spans(&events).expect("thread-backend spans resolve");
}

/// Counts `result_corrupted` events in a trace.
fn corrupted_events(events: &[TraceEvent]) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ResultCorrupted { .. }))
        .count() as u64
}

/// The satellite's parity check: every corruption route (sim delivery
/// fault, TCP frame-CRC failure) funnels through the one canonical
/// `result_corrupted` emission in `Server::result_corrupted`, so on
/// *both* backends the trace count equals `ProblemStats::
/// corrupted_results`, and a plan arming each client once yields the
/// same total on the simulator and over real sockets.
#[test]
fn corrupted_result_counts_agree_across_sim_and_tcp() {
    let mut plan = FaultPlan::new(0);
    for c in 0..POOL {
        plan.push(0.0, c, FaultKind::CorruptResult);
    }

    let (bytes, mut sim_server) = sim_trace(&plan, &temp_path("corrupt-sim.jsonl"));
    let sim_trace_count = corrupted_events(&parse(&bytes));
    let sim_stats = sim_server.stats(0).corrupted_results;
    assert_eq!(sim_trace_count, sim_stats, "sim: trace vs stats");
    assert_eq!(sim_trace_count, POOL as u64, "one corruption per machine");
    assert!(sim_server.take_output(0).is_some());

    let telemetry = Telemetry::enabled();
    let ring = telemetry.attach_ring(1 << 20);
    let w = workload();
    let mut server = Server::new(thread_cfg());
    server.set_telemetry(telemetry.clone());
    server.submit(build_problem(w.db, w.queries, &w.cfg));
    let (mut tcp_server, _) = run_tcp_faulty(server, POOL, &plan, TIME_SCALE);
    let tcp_trace_count = corrupted_events(&ring.events());
    let tcp_stats = tcp_server.stats(0).corrupted_results;
    assert_eq!(tcp_trace_count, tcp_stats, "tcp: trace vs stats");
    assert_eq!(
        tcp_trace_count, sim_trace_count,
        "sim and tcp must count the same corruptions"
    );
    assert!(tcp_server.take_output(0).is_some());

    // The wire-level view: the proxy recorded one wire fault per armed
    // client, and every one of them surfaced as a canonical event.
    let wire_faults = telemetry.metrics_snapshot().counter("net.wire_faults");
    assert_eq!(wire_faults, tcp_trace_count, "every wire fault traced");
}

/// Metrics registry integration over a clean sim run: server counters
/// match `ProblemStats`, and the DSEARCH counters that replaced the
/// data manager's ad-hoc issued/received bookkeeping balance exactly.
#[test]
fn metrics_registry_agrees_with_problem_stats() {
    let telemetry = Telemetry::enabled();
    let w = workload();
    let mut server = Server::new(SchedulerConfig::default());
    server.set_telemetry(telemetry.clone());
    server.submit(build_problem(w.db, w.queries, &w.cfg));
    let (_, server) = SimRunner::with_defaults(server, homogeneous_lab(POOL, 7)).run();
    let snap = telemetry.metrics_snapshot();
    let stats = server.stats(0);
    assert_eq!(
        snap.counter("server.completed_units"),
        stats.completed_units
    );
    assert_eq!(
        snap.counter("server.corrupted_results"),
        stats.corrupted_results
    );
    assert_eq!(
        snap.counter("dsearch.units_issued"),
        snap.counter("dsearch.units_received"),
        "a clean run receives every chunk it issued"
    );
    assert!(snap.counter("dsearch.units_issued") > 0);
    let lat = snap.histogram("server.unit_latency").expect("latencies");
    assert_eq!(lat.count(), stats.completed_units);
}
