//! Replica-tier acceptance suite: federated chunk replicas under fire.
//!
//! The tentpole claim this suite pins down: donors can fetch their
//! chunks from a content-addressed replica tier instead of the origin,
//! the routing fails over through dead and stalled endpoints without
//! ever accepting unverified bytes, and the run's output stays
//! bit-identical to the sequential reference while it happens. The
//! origin-offload half of the acceptance criteria (chunk egress down
//! ≥ 60% at equal donor count) lives in the simulator's ablation test
//! (`sim_backend::tests::replica_tier_offloads_origin_chunk_egress`);
//! here the same topology runs over real loopback sockets.

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::{Alphabet, Sequence};
use biodist::core::{
    audited, run_tcp_replicated, FaultKind, FaultPlan, SchedulerConfig, Server, Telemetry,
};
use biodist::dsearch::{build_problem, search_sequential, DsearchConfig, SearchOutput};

/// Scaled seconds per wall second (matches the chaos suite).
const TIME_SCALE: f64 = 50.0;

struct Workload {
    db: Vec<Sequence>,
    queries: Vec<Sequence>,
    cfg: DsearchConfig,
    reference: u64,
}

fn workload(db_sequences: usize) -> Workload {
    let queries = vec![random_sequence(Alphabet::Protein, "q", 100, 3)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(db_sequences, 80), 4).sequences;
    let mut cfg = DsearchConfig::protein_default();
    cfg.cost_scale = 60_000.0;
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();
    Workload {
        db,
        queries,
        cfg,
        reference,
    }
}

fn sched() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 0.03,
        prior_ops_per_sec: 2e10,
        lease_min_secs: 0.5,
        ..Default::default()
    }
}

/// Runs `donors` donors against `replicas` replica endpoints under
/// `plan`, asserting the sequential digest and the exactly-once audit;
/// returns the shared telemetry for counter assertions.
fn replicated_run(
    w: &Workload,
    donors: usize,
    replicas: usize,
    plan: &FaultPlan,
    tag: &str,
) -> Telemetry {
    let mut server = Server::new(sched());
    let telemetry = Telemetry::enabled();
    server.set_telemetry(telemetry.clone());
    let (problem, audit) = audited(build_problem(w.db.clone(), w.queries.clone(), &w.cfg));
    let pid = server.submit(problem);
    let (mut server, _) = run_tcp_replicated(server, donors, replicas, plan, TIME_SCALE);
    let out = server
        .take_output(pid)
        .unwrap_or_else(|| panic!("{tag}: no output\nplan: {plan:?}"))
        .into_inner::<SearchOutput>();
    assert_eq!(
        out.digest(),
        w.reference,
        "{tag}: output differs from the sequential reference\nplan: {plan:?}"
    );
    if let Err(v) = audit.verify_run(&server) {
        panic!("{tag}: invariants violated: {v:?}\nplan: {plan:?}");
    }
    telemetry
}

/// The acceptance run: 16 donors, 3 replicas, one replica killed and
/// one stalled mid-run. The output matches the sequential reference,
/// the audit holds, and the donors demonstrably failed over.
#[test]
fn acceptance_16_donors_3_replicas_one_killed_one_stalled() {
    let w = workload(48);
    let plan = FaultPlan::new(0)
        .with(0.1, 0, FaultKind::ReplicaCrash { down_secs: 1e6 })
        .with(0.15, 1, FaultKind::ReplicaStall { duration_secs: 1e6 });
    let telemetry = replicated_run(&w, 16, 3, &plan, "acceptance 16x3");
    let snap = telemetry.metrics_snapshot();
    assert!(
        snap.counter("replica.fetches") > 0,
        "chunk fetches must route through the replica tier: {:?}",
        snap.counters
    );
    assert!(
        snap.counter("replica.failovers") > 0,
        "a killed and a stalled replica must force failovers: {:?}",
        snap.counters
    );
}

/// A healthy tier actually carries chunk traffic: with all replicas up,
/// donors fetch from them (pull-through syncs charge the origin once
/// per chunk per replica, not once per donor).
#[test]
fn healthy_replicas_serve_chunk_traffic() {
    let w = workload(24);
    let telemetry = replicated_run(&w, 8, 2, &FaultPlan::none(), "healthy 8x2");
    let snap = telemetry.metrics_snapshot();
    assert!(
        snap.counter("replica.chunks_served") > 0,
        "replicas must serve chunks: {:?}",
        snap.counters
    );
    assert!(
        snap.counter("replica.syncs") > 0,
        "replicas fill lazily from the origin: {:?}",
        snap.counters
    );
    assert!(
        snap.counter("replica.bytes_replica") > 0,
        "donor chunk bytes must come off the replica links: {:?}",
        snap.counters
    );
}

/// The CI smoke: a small run with 2 replicas, one killed mid-run, still
/// lands on the sequential digest. (`cargo test --test replica smoke`.)
#[test]
fn replica_smoke_one_of_two_killed_mid_run() {
    let w = workload(24);
    let plan = FaultPlan::new(0).with(0.05, 0, FaultKind::ReplicaCrash { down_secs: 1e6 });
    let telemetry = replicated_run(&w, 6, 2, &plan, "smoke 6x2");
    let snap = telemetry.metrics_snapshot();
    assert!(
        snap.counter("replica.chunks_served") > 0,
        "the surviving replica must keep serving: {:?}",
        snap.counters
    );
}

/// Zero replicas is the exact pre-tier behaviour: every chunk byte
/// comes from the origin and no replica counter ever moves.
#[test]
fn no_replicas_means_no_replica_traffic() {
    let w = workload(24);
    let telemetry = replicated_run(&w, 4, 0, &FaultPlan::none(), "baseline 4x0");
    let snap = telemetry.metrics_snapshot();
    for counter in [
        "replica.fetches",
        "replica.failovers",
        "replica.chunks_served",
        "replica.syncs",
        "replica.bytes_replica",
    ] {
        assert_eq!(snap.counter(counter), 0, "{counter} moved without a tier");
    }
    assert!(
        snap.counter("net.chunk_bytes_out") > 0,
        "the origin serves everything"
    );
}
