//! The scale tier: the nonblocking sharded control plane under donor
//! counts the thread-per-connection server could never hold.
//!
//! The paper's deployment topped out around a few hundred donors; the
//! event-loop rewrite is specified to hold thousands on a fixed thread
//! count (O(shards), not O(donors)). This tier proves it end-to-end on
//! loopback: a 1k-donor soak across 4 shards with two live problems,
//! checked against the sequential reference digest and the exactly-once
//! audit, with the server's thread count asserted *from the metrics
//! registry* — plus a deterministic work-stealing case where one
//! shard's donors go silent and a sibling's donor drains their claimed
//! units through a steal.

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::Alphabet;
use biodist::core::net::wire::{encode_frame, Frame, FrameReader};
use biodist::core::net::{
    directory, raise_nofile_limit, spawn_clients, ClientKit, Clock, NetClientOptions, NetServer,
    NetServerOptions,
};
use biodist::core::{audited, FaultPlan, SchedulerConfig, Server, Telemetry};
use biodist::dsearch::{build_problem, search_sequential, DsearchConfig, SearchOutput};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One database sequence per unit, so unit counts are predictable and
/// the dispatch plane (not compute) is what's under test.
fn tiny_unit_cfg() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 1e-9,
        min_unit_ops: 1.0,
        lease_min_secs: 0.5,
        prior_ops_per_sec: 2e10,
        ..Default::default()
    }
}

/// Runs `donors` loopback donors against `shards` event-loop shards on
/// two audited dsearch problems; asserts digest parity with the
/// sequential reference, the exactly-once audit, clean routing, and the
/// O(shards) thread count from the metrics registry.
fn soak(donors: usize, shards: usize, db_len: usize) {
    raise_nofile_limit(20_000);
    let cfg = DsearchConfig::protein_default();
    let queries_a = vec![random_sequence(Alphabet::Protein, "qa", 90, 11)];
    let queries_b = vec![random_sequence(Alphabet::Protein, "qb", 110, 13)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(db_len, 70), 9).sequences;
    let ref_a = SearchOutput {
        hits: search_sequential(&db, &queries_a, &cfg),
    }
    .digest();
    let ref_b = SearchOutput {
        hits: search_sequential(&db, &queries_b, &cfg),
    }
    .digest();

    let mut server = Server::new(tiny_unit_cfg());
    server.set_telemetry(Telemetry::enabled());
    let telemetry = server.telemetry();
    let (prob_a, audit_a) = audited(build_problem(db.clone(), queries_a, &cfg));
    let (prob_b, audit_b) = audited(build_problem(db, queries_b, &cfg));
    let pid_a = server.submit(prob_a);
    let pid_b = server.submit(prob_b);

    // Wall-speed clock: donor poll cadence lands at 50ms wall, so a
    // thousand donors probe at ~20k req/s aggregate — a dispatch-plane
    // load, not a compute one.
    let clock = Clock::new(1.0);
    let kit = ClientKit::from_server(&server).expect("codecs registered");
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            shards,
            claim_batch: 8,
            ..Default::default()
        },
    )
    .expect("bind loopback listener");
    // Deterministic directory-handshake check: every donor id speaks
    // once over a raw socket (heartbeat round trip) before the fleet
    // starts, so each is routed to its home shard regardless of how
    // fast the workload later drains. The fleet reuses the same ids.
    for c in 0..donors {
        let mut s = TcpStream::connect(net.addr()).expect("connect for handshake");
        s.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut r = FrameReader::new();
        s.write_all(&encode_frame(&Frame::Heartbeat { client: c as u64 }))
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match r.poll(&mut s) {
                Ok(Some(Frame::HeartbeatAck)) => break,
                Ok(Some(_)) | Ok(None) => {}
                Err(e) => panic!("heartbeat round trip for donor {c}: {e}"),
            }
            assert!(
                std::time::Instant::now() < deadline,
                "donor {c} never got a heartbeat ack"
            );
        }
    }

    // Donors straight at the server — no fault proxy: the soak measures
    // the control plane itself, and a proxy would double the fd count.
    let dir = directory();
    dir.set_origin(Some(net.addr()));
    let run_over = Arc::new(AtomicBool::new(false));
    let handles = spawn_clients(
        dir,
        clock,
        kit,
        donors,
        &FaultPlan::none(),
        run_over.clone(),
        NetClientOptions::default(),
    );
    let mut server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }

    // Digest parity against the fault-free sequential reference.
    let out_a = server
        .take_output(pid_a)
        .unwrap()
        .into_inner::<SearchOutput>();
    let out_b = server
        .take_output(pid_b)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(out_a.digest(), ref_a, "problem A diverged from reference");
    assert_eq!(out_b.digest(), ref_b, "problem B diverged from reference");
    // Exactly-once: every unit folded once, none lost, none doubled.
    audit_a.verify_run(&server).expect("audit A clean");
    audit_b.verify_run(&server).expect("audit B clean");

    let snap = telemetry.metrics_snapshot();
    assert_eq!(
        snap.gauge("evloop.threads"),
        Some((shards + 2) as f64),
        "server thread count must be O(shards): {shards} shards + acceptor + ticker"
    );
    assert_eq!(snap.counter("shard.misrouted"), 0, "routing is exact");
    // Every donor landed on its home shard, exactly once each.
    let routed: f64 = (0..shards)
        .map(|s| snap.gauge(&format!("shard.s{s}.clients")).unwrap_or(0.0))
        .sum();
    assert_eq!(
        routed as usize, donors,
        "every donor routed to a home shard"
    );
    assert!(
        snap.counter("net.frames_in") > 0,
        "the event loop actually served traffic"
    );
}

/// The headline soak: 1000 loopback donors, 4 shards, two problems.
#[test]
fn thousand_donor_soak_is_exactly_once_across_4_shards() {
    soak(1000, 4, 160);
}

/// CI-sized soak (the `scale-smoke` job filters on `smoke`).
#[test]
fn scale_smoke_64_donors_2_shards() {
    soak(64, 2, 120);
}

/// Deterministic work-stealing: donor 0 (home shard 0) takes one unit —
/// its request triggers a claim batch into shard 0's queue — then goes
/// silent. Donor 1 (home shard 1) must drain the stranded claims
/// through a steal and finish both its own and shard 0's work, with the
/// silent donor's lease reclaimed by the liveness sweep. Exactly-once
/// still holds.
#[test]
fn silent_shard_is_drained_by_work_stealing() {
    let cfg = DsearchConfig::protein_default();
    let queries = vec![random_sequence(Alphabet::Protein, "q", 80, 5)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(24, 60), 2).sequences;
    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();

    let mut server = Server::new(tiny_unit_cfg());
    server.set_telemetry(Telemetry::enabled());
    let telemetry = server.telemetry();
    let (problem, audit) = audited(build_problem(db, queries, &cfg));
    let pid = server.submit(problem);
    let algorithm = server.algorithm(pid);
    let codec = server.codec(pid).expect("dsearch has a codec");
    let clock = Clock::new(1000.0);
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            shards: 2,
            claim_batch: 8,
            liveness_timeout: 30.0, // 30ms wall: the silent donor is swept fast
            ..Default::default()
        },
    )
    .expect("bind loopback listener");

    let await_frame = |stream: &mut TcpStream, reader: &mut FrameReader| loop {
        match reader.poll(stream) {
            Ok(Some(f)) => return f,
            Ok(None) => {}
            Err(e) => panic!("read failed: {e}"),
        }
    };

    // Donor 0: request exactly one unit (filling shard 0's claim
    // queue as a side effect), then never speak again.
    let mut silent = TcpStream::connect(net.addr()).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut silent_reader = FrameReader::new();
    silent
        .write_all(&encode_frame(&Frame::Hello { client: 0 }))
        .unwrap();
    silent
        .write_all(&encode_frame(&Frame::RequestWork { client: 0 }))
        .unwrap();
    loop {
        match await_frame(&mut silent, &mut silent_reader) {
            Frame::AssignUnit { .. } => break,
            Frame::Wait => {
                silent
                    .write_all(&encode_frame(&Frame::RequestWork { client: 0 }))
                    .unwrap();
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    // Donor 1 (home shard 1) drives the run to completion alone.
    let mut stream = TcpStream::connect(net.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut reader = FrameReader::new();
    stream
        .write_all(&encode_frame(&Frame::Hello { client: 1 }))
        .unwrap();
    loop {
        stream
            .write_all(&encode_frame(&Frame::RequestWork { client: 1 }))
            .unwrap();
        match await_frame(&mut stream, &mut reader) {
            Frame::AssignUnit {
                problem,
                unit,
                cost_ops,
                payload,
            } => {
                let wu = biodist::core::problem::WorkUnit {
                    id: unit,
                    payload: codec.decode_unit(&payload).unwrap(),
                    cost_ops,
                };
                let result = algorithm.compute(&wu);
                let encoded = codec.encode_result(&result.payload).unwrap();
                stream
                    .write_all(&encode_frame(&Frame::SubmitResult {
                        client: 1,
                        problem,
                        unit,
                        payload: encoded,
                    }))
                    .unwrap();
                match await_frame(&mut stream, &mut reader) {
                    Frame::ResultAck { .. } => {}
                    other => panic!("expected an ack, got {other:?}"),
                }
            }
            Frame::Wait => std::thread::sleep(Duration::from_millis(1)),
            Frame::Finished => break,
            other => panic!("unexpected frame {other:?}"),
        }
    }

    let mut server = net.wait();
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    assert_eq!(out.digest(), reference, "stolen units fold correctly");
    audit
        .verify_run(&server)
        .expect("exactly-once holds across the steal");
    let snap = telemetry.metrics_snapshot();
    assert!(
        snap.counter("shard.steals") >= 1,
        "donor 1 must have stolen shard 0's stranded claims \
         (steals={}, stolen_units={})",
        snap.counter("shard.steals"),
        snap.counter("shard.stolen_units")
    );
    assert_eq!(snap.counter("shard.misrouted"), 0);
}
