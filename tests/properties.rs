//! Property-based tests (proptest) over the core invariants that the
//! distributed applications rely on.

use biodist::align::{
    nw_align, nw_banded_score, nw_score, sw_align, sw_score, sw_score_antidiagonal, Hit, TopK,
};
use biodist::bioseq::{Alphabet, GapPenalty, ScoringMatrix, ScoringScheme, Sequence};
use biodist::gridsim::event::EventQueue;
use biodist::phylo::evolve::random_yule_tree;
use biodist::phylo::model::{GammaRates, ModelKind, SubstModel};
use biodist::phylo::newick::{from_newick, to_newick};
use proptest::prelude::*;

fn dna_seq(codes: Vec<u8>) -> Sequence {
    Sequence::from_codes("s", Alphabet::Dna, codes)
}

fn dna_codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 0..max_len)
}

fn scheme() -> ScoringScheme {
    ScoringScheme {
        matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 2, -3),
        gap: GapPenalty::affine(5, 1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nw_score_is_symmetric(a in dna_codes(40), b in dna_codes(40)) {
        let (sa, sb) = (dna_seq(a), dna_seq(b));
        prop_assert_eq!(nw_score(&sa, &sb, &scheme()), nw_score(&sb, &sa, &scheme()));
    }

    #[test]
    fn nw_traceback_score_is_verified_and_equals_score_only(
        a in dna_codes(30),
        b in dna_codes(30),
    ) {
        let (sa, sb) = (dna_seq(a), dna_seq(b));
        let s = scheme();
        let aln = nw_align(&sa, &sb, &s);
        prop_assert!(aln.verify_score(&sa, &sb, &s));
        prop_assert_eq!(aln.score, nw_score(&sa, &sb, &s));
    }

    #[test]
    fn sw_variants_agree_and_are_nonnegative(a in dna_codes(30), b in dna_codes(30)) {
        let (sa, sb) = (dna_seq(a), dna_seq(b));
        let s = scheme();
        let full = sw_align(&sa, &sb, &s);
        let rolling = sw_score(&sa, &sb, &s);
        let anti = sw_score_antidiagonal(&sa, &sb, &s);
        prop_assert!(rolling >= 0);
        prop_assert_eq!(full.score, rolling);
        prop_assert_eq!(rolling, anti);
        prop_assert!(full.verify_score(&sa, &sb, &s));
    }

    #[test]
    fn sw_at_least_nw(a in dna_codes(30), b in dna_codes(30)) {
        let (sa, sb) = (dna_seq(a), dna_seq(b));
        let s = scheme();
        // A local alignment can always do at least as well as global
        // (it may drop costly flanks; empty alignment scores 0).
        prop_assert!(sw_score(&sa, &sb, &s) >= nw_score(&sa, &sb, &s).max(0));
    }

    #[test]
    fn banded_never_exceeds_full_and_matches_when_wide(
        a in dna_codes(25),
        b in dna_codes(25),
        band in 0usize..30,
    ) {
        let (sa, sb) = (dna_seq(a), dna_seq(b));
        let s = scheme();
        let full = nw_score(&sa, &sb, &s);
        if let Some(banded) = nw_banded_score(&sa, &sb, &s, band) {
            prop_assert!(banded <= full);
        }
        let wide = nw_banded_score(&sa, &sb, &s, sa.len().max(sb.len()).max(1));
        prop_assert_eq!(wide, Some(full));
    }

    #[test]
    fn sw_finds_planted_exact_substring(
        prefix in dna_codes(15),
        core in prop::collection::vec(0u8..4, 5..15),
        suffix in dna_codes(15),
    ) {
        // b = core planted inside a; local score must be at least
        // match_score * |core|.
        let mut a = prefix.clone();
        a.extend(&core);
        a.extend(&suffix);
        let (sa, sb) = (dna_seq(a), dna_seq(core.clone()));
        let s = scheme();
        prop_assert!(sw_score(&sa, &sb, &s) >= 2 * core.len() as i32);
    }

    #[test]
    fn topk_merge_is_associative_and_order_free(
        scores in prop::collection::vec(-50i32..50, 1..60),
        k in 1usize..10,
    ) {
        let hits: Vec<Hit> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| Hit { query_id: "q".into(), db_id: format!("d{i:03}"), score: s })
            .collect();
        let mut all = TopK::new(k);
        for h in &hits {
            all.offer(h.clone());
        }
        let expected = all.into_sorted();
        // Split three ways, merge in a different order.
        let mut parts: Vec<TopK> = (0..3).map(|_| TopK::new(k)).collect();
        for (i, h) in hits.iter().enumerate() {
            parts[i % 3].offer(h.clone());
        }
        let (c, b, a) = (parts.pop().unwrap(), parts.pop().unwrap(), parts.pop().unwrap());
        let mut merged = c;
        merged.merge(a);
        merged.merge(b);
        prop_assert_eq!(merged.into_sorted(), expected);
    }

    #[test]
    fn transition_matrices_are_stochastic_for_random_gtr(
        r1 in 0.1f64..5.0, r2 in 0.1f64..5.0, r3 in 0.1f64..5.0,
        r4 in 0.1f64..5.0, r5 in 0.1f64..5.0, r6 in 0.1f64..5.0,
        f1 in 0.1f64..1.0, f2 in 0.1f64..1.0, f3 in 0.1f64..1.0, f4 in 0.1f64..1.0,
        t in 0.0f64..5.0,
    ) {
        let total = f1 + f2 + f3 + f4;
        let freqs = [f1 / total, f2 / total, f3 / total, f4 / total];
        let model = SubstModel::homogeneous(ModelKind::Gtr {
            rates: [r1, r2, r3, r4, r5, r6],
            freqs,
        });
        let p = model.transition_matrix(t, 1.0);
        for i in 0..4 {
            let row_sum: f64 = p[i].iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-8, "row {} sums to {}", i, row_sum);
            for j in 0..4 {
                prop_assert!((0.0..=1.0).contains(&p[i][j]));
                // Detailed balance (time reversibility).
                prop_assert!((freqs[i] * p[i][j] - freqs[j] * p[j][i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn gamma_rates_mean_one_for_any_shape(alpha in 0.05f64..50.0, ncat in 1usize..9) {
        let g = GammaRates::gamma(alpha, ncat);
        prop_assert!((g.mean_rate() - 1.0).abs() < 1e-6);
        prop_assert!(g.rates.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn newick_round_trip_preserves_topology(n in 4usize..20, seed in 0u64..500) {
        let tree = random_yule_tree(n, 0.1, seed);
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let text = to_newick(&tree, &names);
        let (parsed, parsed_names) = from_newick(&text).unwrap();
        prop_assert_eq!(parsed.leaf_count(), n);
        // Taxon ids are renumbered by first appearance; map back through
        // names before comparing splits.
        let relabel: Vec<usize> = parsed_names
            .iter()
            .map(|nm| names.iter().position(|x| x == nm).unwrap())
            .collect();
        let mut remapped = parsed.clone();
        let _ = &mut remapped; // splits() uses taxon indices; rebuild via newick
        // Compare by re-rendering with the inverse mapping.
        let inverse_names: Vec<String> =
            parsed_names.iter().map(|nm| nm.clone()).collect();
        let text2 = to_newick(&parsed, &inverse_names);
        let (parsed2, _) = from_newick(&text2).unwrap();
        prop_assert_eq!(parsed.rf_distance(&parsed2), 0);
        prop_assert_eq!(relabel.len(), n);
        // Branch lengths survive to 1e-6 (the rendering precision).
        let total_in: f64 = tree.total_branch_length();
        let total_out: f64 = parsed.total_branch_length();
        prop_assert!((total_in - total_out).abs() < 1e-3);
    }

    #[test]
    fn event_queue_pops_sorted_with_stable_ties(
        times in prop::collection::vec(0u32..100, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t as f64, (t, i));
        }
        let mut last: Option<(u32, usize)> = None;
        while let Some((_, (t, i))) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
        }
    }

    #[test]
    fn semiglobal_finds_planted_query_anywhere(
        prefix in dna_codes(20),
        query in prop::collection::vec(0u8..4, 4..12),
        suffix in dna_codes(20),
    ) {
        use biodist::align::sg_score;
        let mut subject = prefix.clone();
        subject.extend(&query);
        subject.extend(&suffix);
        let (q, s) = (dna_seq(query.clone()), dna_seq(subject));
        // Exact embedding: semi-global score equals the full-match score
        // (free subject flanks, nothing better than all matches).
        prop_assert_eq!(sg_score(&q, &s, &scheme()), 2 * query.len() as i32);
    }

    #[test]
    fn reverse_complement_is_involutive_and_composition_swaps(codes in dna_codes(50)) {
        use biodist::bioseq::reverse_complement;
        let s = dna_seq(codes.clone());
        let rc = reverse_complement(&s);
        prop_assert_eq!(rc.len(), s.len());
        let back = reverse_complement(&rc);
        prop_assert_eq!(back.codes(), s.codes());
        // A-count of s equals T-count of rc, etc.
        let count = |seq: &Sequence, c: u8| seq.codes().iter().filter(|&&x| x == c).count();
        prop_assert_eq!(count(&s, 0), count(&rc, 3));
        prop_assert_eq!(count(&s, 1), count(&rc, 2));
    }

    #[test]
    fn nj_reconstructs_additive_metrics(n in 4usize..10, seed in 0u64..200) {
        use biodist::phylo::nj::{neighbor_joining, patristic_distance_matrix};
        let truth = random_yule_tree(n, 0.3, seed);
        let d = patristic_distance_matrix(&truth);
        let nj = neighbor_joining(&d);
        prop_assert_eq!(nj.rf_distance(&truth), 0);
        // The rebuilt metric matches the input (additivity).
        let rebuilt = patristic_distance_matrix(&nj);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((rebuilt[i][j] - d[i][j]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn spr_moves_all_preserve_invariants(n in 5usize..9, seed in 0u64..50) {
        let tree = random_yule_tree(n, 0.1, seed);
        for (sub, dest) in tree.spr_moves().into_iter().take(40) {
            let mut t = tree.clone();
            prop_assert!(t.spr(sub, dest).is_ok());
            prop_assert!(t.validate().is_ok());
            let mut taxa = t.taxa();
            taxa.sort_unstable();
            prop_assert_eq!(taxa, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tree_splits_are_invariant_under_nni_involution(n in 4usize..12, seed in 0u64..100) {
        let tree = random_yule_tree(n, 0.1, seed);
        for (c, a, b) in tree.nni_moves() {
            let mut t = tree.clone();
            t.nni_swap(c, a, b);
            t.validate().unwrap();
            t.nni_swap(c, b, a);
            prop_assert_eq!(t.rf_distance(&tree), 0);
        }
    }
}
