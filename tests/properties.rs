//! Randomised property tests over the core invariants that the
//! distributed applications rely on.
//!
//! Each property draws its cases from the workspace's own deterministic
//! [`Xoshiro256StarStar`] generator (no external property-testing
//! dependency — the build must work fully offline), with a fixed seed
//! per property so failures reproduce exactly.

use std::collections::HashSet;
use std::sync::Arc;

use biodist::align::{
    nw_align, nw_banded_score, nw_score, sw_align, sw_score, sw_score_antidiagonal, Hit, TopK,
};
use biodist::bioseq::{Alphabet, GapPenalty, ScoringMatrix, ScoringScheme, Sequence};
use biodist::core::sched::Scheduler;
use biodist::core::{
    chunk_digest, ChunkCache, Payload, QuorumTally, SchedulerConfig, TaskResult, VoteOutcome,
};
use biodist::gridsim::event::EventQueue;
use biodist::phylo::evolve::random_yule_tree;
use biodist::phylo::model::{GammaRates, ModelKind, SubstModel};
use biodist::phylo::newick::{from_newick, to_newick};
use biodist::util::rng::{Rng, Xoshiro256StarStar};

const CASES: usize = 64;

fn dna_seq(codes: Vec<u8>) -> Sequence {
    Sequence::from_codes("s", Alphabet::Dna, codes)
}

/// A DNA code vector of length `0..max_len` (inclusive lower bound,
/// exclusive upper — matching the old `dna_codes(max_len)` strategy).
fn dna_codes(rng: &mut dyn Rng, max_len: usize) -> Vec<u8> {
    let n = rng.next_below(max_len as u64) as usize;
    (0..n).map(|_| rng.next_below(4) as u8).collect()
}

fn dna_codes_range(rng: &mut dyn Rng, lo: usize, hi: usize) -> Vec<u8> {
    let n = rng.next_range(lo as u64, hi as u64) as usize;
    (0..n).map(|_| rng.next_below(4) as u8).collect()
}

fn scheme() -> ScoringScheme {
    ScoringScheme {
        matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 2, -3),
        gap: GapPenalty::affine(5, 1),
    }
}

#[test]
fn nw_score_is_symmetric() {
    let mut rng = Xoshiro256StarStar::new(0x01);
    for _ in 0..CASES {
        let (sa, sb) = (
            dna_seq(dna_codes(&mut rng, 40)),
            dna_seq(dna_codes(&mut rng, 40)),
        );
        assert_eq!(nw_score(&sa, &sb, &scheme()), nw_score(&sb, &sa, &scheme()));
    }
}

#[test]
fn nw_traceback_score_is_verified_and_equals_score_only() {
    let mut rng = Xoshiro256StarStar::new(0x02);
    for _ in 0..CASES {
        let (sa, sb) = (
            dna_seq(dna_codes(&mut rng, 30)),
            dna_seq(dna_codes(&mut rng, 30)),
        );
        let s = scheme();
        let aln = nw_align(&sa, &sb, &s);
        assert!(aln.verify_score(&sa, &sb, &s));
        assert_eq!(aln.score, nw_score(&sa, &sb, &s));
    }
}

#[test]
fn sw_variants_agree_and_are_nonnegative() {
    let mut rng = Xoshiro256StarStar::new(0x03);
    for _ in 0..CASES {
        let (sa, sb) = (
            dna_seq(dna_codes(&mut rng, 30)),
            dna_seq(dna_codes(&mut rng, 30)),
        );
        let s = scheme();
        let full = sw_align(&sa, &sb, &s);
        let rolling = sw_score(&sa, &sb, &s);
        let anti = sw_score_antidiagonal(&sa, &sb, &s);
        let striped = biodist::align::sw_score_striped(&sa, &sb, &s);
        assert!(rolling >= 0);
        assert_eq!(full.score, rolling);
        assert_eq!(rolling, anti);
        assert_eq!(rolling, striped);
        assert!(full.verify_score(&sa, &sb, &s));
    }
}

#[test]
fn sw_at_least_nw() {
    let mut rng = Xoshiro256StarStar::new(0x04);
    for _ in 0..CASES {
        let (sa, sb) = (
            dna_seq(dna_codes(&mut rng, 30)),
            dna_seq(dna_codes(&mut rng, 30)),
        );
        let s = scheme();
        // A local alignment can always do at least as well as global
        // (it may drop costly flanks; empty alignment scores 0).
        assert!(sw_score(&sa, &sb, &s) >= nw_score(&sa, &sb, &s).max(0));
    }
}

#[test]
fn banded_never_exceeds_full_and_matches_when_wide() {
    let mut rng = Xoshiro256StarStar::new(0x05);
    for _ in 0..CASES {
        let (sa, sb) = (
            dna_seq(dna_codes(&mut rng, 25)),
            dna_seq(dna_codes(&mut rng, 25)),
        );
        let band = rng.next_below(30) as usize;
        let s = scheme();
        let full = nw_score(&sa, &sb, &s);
        if let Some(banded) = nw_banded_score(&sa, &sb, &s, band) {
            assert!(banded <= full);
        }
        let wide = nw_banded_score(&sa, &sb, &s, sa.len().max(sb.len()).max(1));
        assert_eq!(wide, Some(full));
    }
}

#[test]
fn sw_finds_planted_exact_substring() {
    let mut rng = Xoshiro256StarStar::new(0x06);
    for _ in 0..CASES {
        let prefix = dna_codes(&mut rng, 15);
        let core = dna_codes_range(&mut rng, 5, 15);
        let suffix = dna_codes(&mut rng, 15);
        // b = core planted inside a; local score must be at least
        // match_score * |core|.
        let mut a = prefix.clone();
        a.extend(&core);
        a.extend(&suffix);
        let (sa, sb) = (dna_seq(a), dna_seq(core.clone()));
        assert!(sw_score(&sa, &sb, &scheme()) >= 2 * core.len() as i32);
    }
}

#[test]
fn topk_merge_is_associative_and_order_free() {
    let mut rng = Xoshiro256StarStar::new(0x07);
    for _ in 0..CASES {
        let n = rng.next_range(1, 60) as usize;
        let scores: Vec<i32> = (0..n).map(|_| rng.next_range(0, 100) as i32 - 50).collect();
        let k = rng.next_range(1, 10) as usize;
        let hits: Vec<Hit> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| Hit {
                query_id: "q".into(),
                db_id: format!("d{i:03}"),
                score: s,
            })
            .collect();
        let mut all = TopK::new(k);
        for h in &hits {
            all.offer(h.clone());
        }
        let expected = all.into_sorted();
        // Split three ways, merge in a different order.
        let mut parts: Vec<TopK> = (0..3).map(|_| TopK::new(k)).collect();
        for (i, h) in hits.iter().enumerate() {
            parts[i % 3].offer(h.clone());
        }
        let (c, b, a) = (
            parts.pop().unwrap(),
            parts.pop().unwrap(),
            parts.pop().unwrap(),
        );
        let mut merged = c;
        merged.merge(a);
        merged.merge(b);
        assert_eq!(merged.into_sorted(), expected);
    }
}

#[test]
fn transition_matrices_are_stochastic_for_random_gtr() {
    let mut rng = Xoshiro256StarStar::new(0x08);
    for _ in 0..CASES {
        let rates: [f64; 6] = std::array::from_fn(|_| rng.next_f64_range(0.1, 5.0));
        let raw: [f64; 4] = std::array::from_fn(|_| rng.next_f64_range(0.1, 1.0));
        let t = rng.next_f64_range(0.0, 5.0);
        let total: f64 = raw.iter().sum();
        let freqs = raw.map(|f| f / total);
        let model = SubstModel::homogeneous(ModelKind::Gtr { rates, freqs });
        let p = model.transition_matrix(t, 1.0);
        for i in 0..4 {
            let row_sum: f64 = p[i].iter().sum();
            assert!(
                (row_sum - 1.0).abs() < 1e-8,
                "row {} sums to {}",
                i,
                row_sum
            );
            for j in 0..4 {
                assert!((0.0..=1.0).contains(&p[i][j]));
                // Detailed balance (time reversibility).
                assert!((freqs[i] * p[i][j] - freqs[j] * p[j][i]).abs() < 1e-8);
            }
        }
    }
}

#[test]
fn gamma_rates_mean_one_for_any_shape() {
    let mut rng = Xoshiro256StarStar::new(0x09);
    for _ in 0..CASES {
        let alpha = rng.next_f64_range(0.05, 50.0);
        let ncat = rng.next_range(1, 9) as usize;
        let g = GammaRates::gamma(alpha, ncat);
        assert!((g.mean_rate() - 1.0).abs() < 1e-6);
        assert!(g.rates.iter().all(|&r| r >= 0.0));
    }
}

#[test]
fn newick_round_trip_preserves_topology() {
    let mut rng = Xoshiro256StarStar::new(0x0A);
    for _ in 0..CASES {
        let n = rng.next_range(4, 20) as usize;
        let seed = rng.next_below(500);
        let tree = random_yule_tree(n, 0.1, seed);
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let text = to_newick(&tree, &names);
        let (parsed, parsed_names) = from_newick(&text).unwrap();
        assert_eq!(parsed.leaf_count(), n);
        // Taxon ids are renumbered by first appearance; map back through
        // names before comparing splits.
        let relabel: Vec<usize> = parsed_names
            .iter()
            .map(|nm| names.iter().position(|x| x == nm).unwrap())
            .collect();
        // Compare by re-rendering with the inverse mapping.
        let text2 = to_newick(&parsed, &parsed_names);
        let (parsed2, _) = from_newick(&text2).unwrap();
        assert_eq!(parsed.rf_distance(&parsed2), 0);
        assert_eq!(relabel.len(), n);
        // Branch lengths survive to 1e-6 (the rendering precision).
        let total_in: f64 = tree.total_branch_length();
        let total_out: f64 = parsed.total_branch_length();
        assert!((total_in - total_out).abs() < 1e-3);
    }
}

#[test]
fn event_queue_pops_sorted_with_stable_ties() {
    let mut rng = Xoshiro256StarStar::new(0x0B);
    for _ in 0..CASES {
        let n = rng.next_range(1, 200) as usize;
        let times: Vec<u32> = (0..n).map(|_| rng.next_below(100) as u32).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t as f64, (t, i));
        }
        let mut last: Option<(u32, usize)> = None;
        while let Some((_, (t, i))) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
        }
    }
}

#[test]
fn semiglobal_finds_planted_query_anywhere() {
    let mut rng = Xoshiro256StarStar::new(0x0C);
    for _ in 0..CASES {
        use biodist::align::sg_score;
        let prefix = dna_codes(&mut rng, 20);
        let query = dna_codes_range(&mut rng, 4, 12);
        let suffix = dna_codes(&mut rng, 20);
        let mut subject = prefix.clone();
        subject.extend(&query);
        subject.extend(&suffix);
        let (q, s) = (dna_seq(query.clone()), dna_seq(subject));
        // Exact embedding: semi-global score equals the full-match score
        // (free subject flanks, nothing better than all matches).
        assert_eq!(sg_score(&q, &s, &scheme()), 2 * query.len() as i32);
    }
}

#[test]
fn reverse_complement_is_involutive_and_composition_swaps() {
    let mut rng = Xoshiro256StarStar::new(0x0D);
    for _ in 0..CASES {
        use biodist::bioseq::reverse_complement;
        let codes = dna_codes(&mut rng, 50);
        let s = dna_seq(codes.clone());
        let rc = reverse_complement(&s);
        assert_eq!(rc.len(), s.len());
        let back = reverse_complement(&rc);
        assert_eq!(back.codes(), s.codes());
        // A-count of s equals T-count of rc, etc.
        let count = |seq: &Sequence, c: u8| seq.codes().iter().filter(|&&x| x == c).count();
        assert_eq!(count(&s, 0), count(&rc, 3));
        assert_eq!(count(&s, 1), count(&rc, 2));
    }
}

#[test]
fn nj_reconstructs_additive_metrics() {
    let mut rng = Xoshiro256StarStar::new(0x0E);
    for _ in 0..CASES {
        use biodist::phylo::nj::{neighbor_joining, patristic_distance_matrix};
        let n = rng.next_range(4, 10) as usize;
        let seed = rng.next_below(200);
        let truth = random_yule_tree(n, 0.3, seed);
        let d = patristic_distance_matrix(&truth);
        let nj = neighbor_joining(&d);
        assert_eq!(nj.rf_distance(&truth), 0);
        // The rebuilt metric matches the input (additivity).
        let rebuilt = patristic_distance_matrix(&nj);
        for i in 0..n {
            for j in 0..n {
                assert!((rebuilt[i][j] - d[i][j]).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn spr_moves_all_preserve_invariants() {
    let mut rng = Xoshiro256StarStar::new(0x0F);
    for _ in 0..32 {
        let n = rng.next_range(5, 9) as usize;
        let seed = rng.next_below(50);
        let tree = random_yule_tree(n, 0.1, seed);
        for (sub, dest) in tree.spr_moves().into_iter().take(40) {
            let mut t = tree.clone();
            assert!(t.spr(sub, dest).is_ok());
            assert!(t.validate().is_ok());
            let mut taxa = t.taxa();
            taxa.sort_unstable();
            assert_eq!(taxa, (0..n).collect::<Vec<_>>());
        }
    }
}

/// A `(digest, bytes)` chunk whose key really is its content digest, so
/// [`ChunkCache::get_verified`] treats it as intact.
fn honest_chunk(rng: &mut dyn Rng, max_len: usize) -> (u64, Arc<Vec<u8>>) {
    let n = rng.next_range(1, max_len as u64) as usize;
    let bytes: Vec<u8> = (0..n).map(|_| rng.next_below(256) as u8).collect();
    (chunk_digest(&bytes), Arc::new(bytes))
}

/// Every LRU property derives one RNG per case from a printed seed, so
/// a failure replays (and effectively shrinks) by re-running just that
/// `case_seed` — no dependence on earlier cases' draws.
#[test]
fn chunk_cache_capacity_is_never_exceeded() {
    for case in 0..CASES as u64 {
        let case_seed = 0x11_0000 + case;
        let mut rng = Xoshiro256StarStar::new(case_seed);
        let cap = rng.next_range(1, 200);
        let mut cache = ChunkCache::new(cap);
        for _ in 0..100 {
            // Oversized chunks (up to 2× capacity) must be refused, not
            // squeezed in.
            let (d, bytes) = honest_chunk(&mut rng, (2 * cap) as usize);
            let fits = bytes.len() as u64 <= cap;
            if rng.next_below(4) == 0 {
                cache.get_verified(d);
            } else {
                assert_eq!(
                    cache.insert(d, bytes),
                    fits,
                    "insert refusal wrong (case_seed={case_seed:#x})"
                );
            }
            assert!(
                cache.used_bytes() <= cache.capacity_bytes(),
                "capacity exceeded: {} > {} (case_seed={case_seed:#x})",
                cache.used_bytes(),
                cache.capacity_bytes()
            );
        }
    }
}

#[test]
fn chunk_cache_hit_never_retransfers() {
    for case in 0..CASES as u64 {
        let case_seed = 0x12_0000 + case;
        let mut rng = Xoshiro256StarStar::new(case_seed);
        let n = rng.next_range(1, 8) as usize;
        let chunks: Vec<(u64, Arc<Vec<u8>>)> = (0..n).map(|_| honest_chunk(&mut rng, 64)).collect();
        // The whole working set fits, so after its first transfer a
        // chunk must be served from cache forever.
        let total: u64 = chunks.iter().map(|(_, b)| b.len() as u64).sum();
        let mut cache = ChunkCache::new(total);
        let mut transferred: u64 = 0;
        let accesses = rng.next_range(20, 60);
        for _ in 0..accesses {
            let (d, bytes) = &chunks[rng.next_below(n as u64) as usize];
            match cache.get_verified(*d) {
                Some(got) => assert_eq!(
                    got.as_slice(),
                    bytes.as_slice(),
                    "hit returned wrong bytes (case_seed={case_seed:#x})"
                ),
                None => {
                    // Miss: the client pays the transfer and caches it.
                    transferred += bytes.len() as u64;
                    cache.insert(*d, bytes.clone());
                }
            }
        }
        let distinct: HashSet<u64> = chunks.iter().map(|(d, _)| *d).collect();
        let distinct_bytes: u64 = distinct
            .iter()
            .map(|d| chunks.iter().find(|(cd, _)| cd == d).unwrap().1.len() as u64)
            .sum();
        assert_eq!(
            transferred, distinct_bytes,
            "each chunk must transfer exactly once (case_seed={case_seed:#x})"
        );
        assert_eq!(
            cache.stats().misses,
            distinct.len() as u64,
            "only first accesses may miss (case_seed={case_seed:#x})"
        );
    }
}

#[test]
fn chunk_cache_eviction_order_matches_access_order() {
    for case in 0..CASES as u64 {
        let case_seed = 0x13_0000 + case;
        let mut rng = Xoshiro256StarStar::new(case_seed);
        let cap = rng.next_range(20, 120);
        let mut cache = ChunkCache::new(cap);
        // Reference model: `(digest, size)` from least- to most-recent.
        let mut model: Vec<(u64, u64)> = Vec::new();
        let pool: Vec<(u64, Arc<Vec<u8>>)> = (0..6).map(|_| honest_chunk(&mut rng, 50)).collect();
        for _ in 0..120 {
            let (d, bytes) = &pool[rng.next_below(pool.len() as u64) as usize];
            let size = bytes.len() as u64;
            if rng.next_below(2) == 0 {
                let hit = cache.get_verified(*d).is_some();
                let modeled = model.iter().position(|&(md, _)| md == *d);
                assert_eq!(
                    hit,
                    modeled.is_some(),
                    "hit/miss diverged from model (case_seed={case_seed:#x})"
                );
                if let Some(pos) = modeled {
                    let e = model.remove(pos);
                    model.push(e); // a hit refreshes recency
                }
            } else if size <= cap {
                cache.insert(*d, bytes.clone());
                if let Some(pos) = model.iter().position(|&(md, _)| md == *d) {
                    model.remove(pos);
                }
                let used = |m: &Vec<(u64, u64)>| m.iter().map(|&(_, s)| s).sum::<u64>();
                while used(&model) + size > cap {
                    model.remove(0); // least-recent goes first
                }
                model.push((*d, size));
            }
            assert_eq!(
                cache.lru_order(),
                model.iter().map(|&(md, _)| md).collect::<Vec<_>>(),
                "LRU order diverged from access-order model (case_seed={case_seed:#x})"
            );
        }
    }
}

#[test]
fn chunk_cache_digest_mismatch_forces_refetch() {
    for case in 0..CASES as u64 {
        let case_seed = 0x14_0000 + case;
        let mut rng = Xoshiro256StarStar::new(case_seed);
        let (d, bytes) = honest_chunk(&mut rng, 64);
        let mut corrupted = bytes.as_ref().clone();
        let k = rng.next_below(corrupted.len() as u64) as usize;
        corrupted[k] ^= 0xFF;
        let mut cache = ChunkCache::new(1024);
        // A corrupted entry sneaks in under the honest digest (insert
        // trusts its caller); verification must catch it on read.
        assert!(cache.insert(d, Arc::new(corrupted)));
        let evictions_before = cache.stats().evictions;
        assert!(
            cache.get_verified(d).is_none(),
            "corrupted entry served as a hit (case_seed={case_seed:#x})"
        );
        assert!(
            !cache.contains(d),
            "corrupted entry must be evicted (case_seed={case_seed:#x})"
        );
        assert_eq!(
            cache.stats().evictions,
            evictions_before + 1,
            "eviction not counted (case_seed={case_seed:#x})"
        );
        // The forced refetch then lands intact bytes and hits.
        assert!(cache.insert(d, bytes.clone()));
        assert_eq!(
            cache.get_verified(d).as_deref(),
            Some(bytes.as_ref()),
            "refetched chunk must hit (case_seed={case_seed:#x})"
        );
    }
}

/// A live vote for the quorum machinery: the byte pattern doubles as
/// the payload so winner identity is checkable from either side.
fn live_vote(pattern: &[u8]) -> TaskResult {
    TaskResult {
        unit_id: 0,
        payload: Payload::new(pattern.to_vec(), pattern.len() as u64),
    }
}

/// Model-checks the quorum vote counter against a reference tally:
/// one vote per donor, no resolution before some byte pattern reaches
/// the quorum, resolution exactly when it does (with the right winner,
/// agreed set, and sorted dissenters), and memory bounded by the
/// number of distinct patterns actually voted.
#[test]
fn quorum_tally_matches_reference_vote_counter() {
    for case in 0..CASES as u64 {
        let case_seed = 0x15_0000 + case;
        let mut rng = Xoshiro256StarStar::new(case_seed);
        let needed = rng.next_range(1, 5) as u32;
        let mut tally = QuorumTally::new(needed);
        // Reference model: voters per pattern, in vote order.
        let mut by_pattern: Vec<(Vec<u8>, Vec<usize>)> = Vec::new();
        let mut voted: HashSet<usize> = HashSet::new();
        for _ in 0..30 {
            let client = rng.next_below(8) as usize;
            // A tiny pattern space, so agreements and collisions happen.
            let pattern = vec![rng.next_below(3) as u8];
            match tally.vote(client, pattern.clone(), live_vote(&pattern)) {
                VoteOutcome::AlreadyVoted => {
                    assert!(
                        voted.contains(&client),
                        "AlreadyVoted for a fresh voter (case_seed={case_seed:#x})"
                    );
                }
                VoteOutcome::Pending => {
                    assert!(
                        voted.insert(client),
                        "duplicate voter accepted (case_seed={case_seed:#x})"
                    );
                    match by_pattern.iter_mut().find(|(p, _)| *p == pattern) {
                        Some((_, v)) => v.push(client),
                        None => by_pattern.push((pattern.clone(), vec![client])),
                    }
                    assert!(
                        by_pattern.iter().all(|(_, v)| (v.len() as u32) < needed),
                        "no combine before quorum violated (case_seed={case_seed:#x})"
                    );
                    assert_eq!(tally.votes() as usize, voted.len());
                }
                VoteOutcome::Quorum {
                    bytes,
                    agreed,
                    dissenters,
                    result,
                } => {
                    assert!(
                        voted.insert(client),
                        "duplicate voter completed a quorum (case_seed={case_seed:#x})"
                    );
                    match by_pattern.iter_mut().find(|(p, _)| *p == pattern) {
                        Some((_, v)) => v.push(client),
                        None => by_pattern.push((pattern.clone(), vec![client])),
                    }
                    let (_, winners) = by_pattern
                        .iter()
                        .find(|(p, _)| *p == pattern)
                        .expect("winning pattern is in the model");
                    assert_eq!(
                        winners.len() as u32,
                        needed,
                        "quorum fired at the wrong count (case_seed={case_seed:#x})"
                    );
                    assert_eq!(bytes, pattern);
                    assert_eq!(&agreed, winners, "agreed set (case_seed={case_seed:#x})");
                    let mut expect_dissent: Vec<usize> = by_pattern
                        .iter()
                        .filter(|(p, _)| *p != pattern)
                        .flat_map(|(_, v)| v.iter().copied())
                        .collect();
                    expect_dissent.sort_unstable();
                    assert_eq!(
                        dissenters, expect_dissent,
                        "dissenter set (case_seed={case_seed:#x})"
                    );
                    // The folded result is the quorum-completing live one.
                    assert_eq!(
                        result.payload.downcast_ref::<Vec<u8>>(),
                        Some(&pattern),
                        "folded result is not the winner's (case_seed={case_seed:#x})"
                    );
                    break;
                }
            }
            // Bounded memory: one candidate per distinct pattern, at
            // most one recorded vote per distinct donor.
            assert!(tally.candidate_patterns() <= by_pattern.len());
            assert!(tally.votes() as usize <= voted.len());
        }
    }
}

/// Votes restored from a checkpoint can never resolve a quorum on
/// their own — however many the log replays, the tally caps them below
/// `needed`, and only live votes can complete the election.
#[test]
fn quorum_restored_votes_never_fold_without_live_results() {
    for case in 0..CASES as u64 {
        let case_seed = 0x16_0000 + case;
        let mut rng = Xoshiro256StarStar::new(case_seed);
        let needed = rng.next_range(2, 6) as u32;
        let mut tally = QuorumTally::new(needed);
        for client in 0..20usize {
            let pattern = vec![rng.next_below(2) as u8];
            tally.restore_vote(client, pattern);
            assert!(
                tally.votes() < needed,
                "restored votes reached the quorum alone (case_seed={case_seed:#x})"
            );
        }
        // Fresh live donors voting one agreed pattern must resolve
        // within `needed` votes (restored agreement counts toward it).
        let pattern = vec![0u8];
        let mut resolved = false;
        for (i, client) in (100..100 + needed as usize).enumerate() {
            match tally.vote(client, pattern.clone(), live_vote(&pattern)) {
                VoteOutcome::Quorum { result, .. } => {
                    assert_eq!(
                        result.payload.downcast_ref::<Vec<u8>>(),
                        Some(&pattern),
                        "quorum must fold the live result (case_seed={case_seed:#x})"
                    );
                    resolved = true;
                    break;
                }
                VoteOutcome::Pending => assert!(
                    (i as u32) < needed - 1,
                    "live agreement failed to resolve (case_seed={case_seed:#x})"
                ),
                VoteOutcome::AlreadyVoted => {
                    panic!("fresh client rejected (case_seed={case_seed:#x})")
                }
            }
        }
        assert!(
            resolved,
            "election never resolved (case_seed={case_seed:#x})"
        );
    }
}

/// Model-checks the donor-reputation state machine: trust is earned
/// exactly at the configured agreement streak, is monotone under
/// further agreement, resets (with demotion reported) on any dispute,
/// and `required_copies` tracks it — trusted donors single-issue,
/// everyone else cross-checks on `quorum_k` donors.
#[test]
fn reputation_state_machine_matches_model() {
    for case in 0..CASES as u64 {
        let case_seed = 0x17_0000 + case;
        let mut rng = Xoshiro256StarStar::new(case_seed);
        let threshold = rng.next_range(1, 8) as u32;
        let quorum_k = rng.next_range(2, 5) as u32;
        let mut sched = Scheduler::new(SchedulerConfig {
            quorum_k,
            reputation_threshold: threshold,
            ..Default::default()
        });
        // Model per client: (agreement streak, trusted).
        let mut model: std::collections::HashMap<usize, (u64, bool)> =
            std::collections::HashMap::new();
        for _ in 0..200 {
            let client = rng.next_below(6) as usize;
            let e = model.entry(client).or_insert((0, false));
            if rng.next_below(4) == 0 {
                let demoted = sched.note_dispute(client);
                assert_eq!(
                    demoted, e.1,
                    "demotion reported iff previously trusted (case_seed={case_seed:#x})"
                );
                *e = (0, false);
            } else {
                let promoted = sched.note_quorum_agreement(client);
                e.0 += 1;
                let crossed = !e.1 && e.0 >= u64::from(threshold);
                assert_eq!(
                    promoted, crossed,
                    "promotion fires exactly on crossing the threshold (case_seed={case_seed:#x})"
                );
                e.1 = e.1 || crossed;
            }
            assert_eq!(sched.is_trusted(client), e.1);
            assert_eq!(
                sched.required_copies(client),
                if e.1 { 1 } else { quorum_k },
                "required_copies must track trust (case_seed={case_seed:#x})"
            );
        }
        // Departed donors lose their standing entirely.
        for c in 0..6usize {
            sched.forget_client(c);
            assert!(!sched.is_trusted(c));
            assert_eq!(sched.reputation_counts(c), (0, 0));
        }
    }
}

#[test]
fn tree_splits_are_invariant_under_nni_involution() {
    let mut rng = Xoshiro256StarStar::new(0x10);
    for _ in 0..32 {
        let n = rng.next_range(4, 12) as usize;
        let seed = rng.next_below(100);
        let tree = random_yule_tree(n, 0.1, seed);
        for (c, a, b) in tree.nni_moves() {
            let mut t = tree.clone();
            t.nni_swap(c, a, b);
            t.validate().unwrap();
            t.nni_swap(c, b, a);
            assert_eq!(t.rf_distance(&tree), 0);
        }
    }
}

// ------------------------------------------------------ replica routing

/// Replica selection is a pure function of (digest, directory state,
/// seed): repeated queries return the identical candidate list, every
/// candidate is a registered replica, and an endpoint that just failed
/// is never handed out again while its exclusion window (0.5 scaled
/// seconds) is still open — so no donor picks a known-dead replica
/// twice in a row.
#[test]
fn replica_selection_is_deterministic_and_avoids_dead_endpoints() {
    use biodist::core::Directory;
    use std::net::SocketAddr;
    for case in 0..CASES as u64 {
        let case_seed = 0x18_0000 + case;
        let mut rng = Xoshiro256StarStar::new(case_seed);
        let n = 2 + rng.next_below(5) as usize; // 2..=6 replicas
        let endpoints: Vec<SocketAddr> = (0..n)
            .map(|i| format!("127.0.0.1:{}", 9000 + i).parse().unwrap())
            .collect();
        let dir = Directory::new();
        dir.set_replicas(endpoints.clone());
        let digest = rng.next_u64();
        let seed = rng.next_u64();

        let a = dir.candidates_for(digest, seed, 3, 0.0);
        let b = dir.candidates_for(digest, seed, 3, 0.0);
        assert_eq!(
            a, b,
            "selection must be deterministic (case_seed={case_seed:#x})"
        );
        assert_eq!(a.len(), 3.min(n), "(case_seed={case_seed:#x})");
        let uniq: HashSet<_> = a.iter().collect();
        assert_eq!(
            uniq.len(),
            a.len(),
            "no duplicates (case_seed={case_seed:#x})"
        );
        assert!(
            a.iter().all(|ep| endpoints.contains(ep)),
            "(case_seed={case_seed:#x})"
        );

        // Random walk of fetches: whenever the routed endpoint fails,
        // it must not come back inside the exclusion window.
        let mut now = 0.0;
        for _ in 0..16 {
            let picked = dir.candidates_for(digest, seed, 1, now);
            let Some(&first) = picked.first() else { break };
            if rng.next_below(2) == 0 {
                dir.mark_dead(first, now);
                let within = now + 0.45 * rng.next_f64();
                assert!(
                    !dir.candidates_for(digest, seed, n, within).contains(&first),
                    "dead endpoint returned twice in a row (case_seed={case_seed:#x})"
                );
            } else {
                dir.mark_alive(first);
            }
            now += 0.05 + 0.2 * rng.next_f64();
        }

        // Once the window passes, the endpoint gets probed again — a
        // rebooted replica needs no explicit revival protocol.
        let dead: SocketAddr = endpoints[0];
        dir.mark_dead(dead, now);
        assert!(
            dir.candidates_for(digest, seed, n, now + 0.6)
                .contains(&dead),
            "expired verdicts must not exclude forever (case_seed={case_seed:#x})"
        );
    }
}

// ----------------------------------------------------- health engine

use biodist::core::{HealthConfig, HealthEngine, HealthTransition};

/// A healthy donor's normalized service time: its speed estimate has
/// converged, so observed/predicted hovers around 1 with schedule and
/// wire jitter.
fn healthy_obs(rng: &mut dyn Rng) -> f64 {
    rng.next_f64_range(0.75, 1.35)
}

#[test]
fn health_engine_is_deterministic_under_seed() {
    for case in 0..CASES as u64 {
        let mut rng = Xoshiro256StarStar::new(0x9EA1 + case);
        // One shared observation stream, replayed into two engines.
        let stream: Vec<(usize, f64)> = (0..300)
            .map(|_| {
                let client = rng.next_below(8) as usize;
                let x = if rng.next_bool(0.1) {
                    rng.next_f64_range(4.0, 12.0) // occasional spike
                } else {
                    healthy_obs(&mut rng)
                };
                (client, x)
            })
            .collect();
        let mut a = HealthEngine::new(HealthConfig::default());
        let mut b = HealthEngine::new(HealthConfig::default());
        for &(client, x) in &stream {
            let ta = a.observe(client, x);
            let tb = b.observe(client, x);
            assert_eq!(ta, tb, "same stream, same transitions (case={case})");
        }
        assert_eq!(a.flagged_clients(), b.flagged_clients());
        assert_eq!(a.transition_counts(), b.transition_counts());
        for c in 0..8 {
            assert_eq!(a.ratio(c), b.ratio(c), "per-donor ratio (case={case})");
        }
        assert_eq!(a.pool_quantile(0.95), b.pool_quantile(0.95));
    }
}

#[test]
fn planted_10x_straggler_is_always_flagged_within_three_slow_results() {
    for case in 0..CASES as u64 {
        let mut rng = Xoshiro256StarStar::new(0xF1A6 + case);
        let mut engine = HealthEngine::new(HealthConfig::default());
        let straggler = rng.next_below(8) as usize;
        // Warmup: everyone healthy, long enough to pass the
        // min-observations gate.
        let warmup = rng.next_range(5, 20);
        for _ in 0..warmup {
            for c in 0..8 {
                assert!(engine.observe(c, healthy_obs(&mut rng)).is_none());
            }
        }
        // Onset: the straggler's results now take ~10× what its speed
        // predicts; the rest of the pool is unchanged.
        let mut flagged_after = None;
        for round in 1..=3u32 {
            for c in 0..8 {
                let x = if c == straggler {
                    10.0 * healthy_obs(&mut rng)
                } else {
                    healthy_obs(&mut rng)
                };
                match engine.observe(c, x) {
                    Some(HealthTransition::Flagged { ratio }) => {
                        assert_eq!(c, straggler, "only the straggler flags (case={case})");
                        assert!(ratio >= engine.config().straggler_ratio);
                        flagged_after.get_or_insert(round);
                    }
                    Some(HealthTransition::Cleared { .. }) => {
                        panic!("nothing to clear in this stream (case={case})")
                    }
                    None => {}
                }
            }
        }
        let after = flagged_after.unwrap_or_else(|| {
            panic!("10x straggler never flagged within 3 slow results (case={case})")
        });
        assert!(after <= 3);
        assert_eq!(engine.flagged_clients(), vec![straggler]);
    }
}

#[test]
fn honest_but_slow_machine_is_never_flagged() {
    // Normalization divides by the donor's *own* predicted service
    // time, so a machine that is uniformly 20× slower — but honest
    // about it — looks exactly like a fast one to the detector. Only
    // *departure from its own established pace* may flag.
    for case in 0..CASES as u64 {
        let mut rng = Xoshiro256StarStar::new(0x510C + case);
        let mut engine = HealthEngine::new(HealthConfig::default());
        // The speed scale cancels out of the normalized observation;
        // model it anyway to document what the property means.
        let _speed_scale = rng.next_f64_range(2.0, 50.0);
        for _ in 0..200 {
            if let Some(t) = engine.observe(0, healthy_obs(&mut rng)) {
                panic!("steady-paced donor transitioned: {t:?} (case={case})");
            }
        }
        assert!(!engine.is_flagged(0));
        assert!(engine.transition_counts() == (0, 0));
    }
}

// ---------------------------------------------------------------------
// Frame reassembly: the wire state machine behind the event-loop server
// ---------------------------------------------------------------------
//
// The nonblocking server feeds sockets' bytes into a `FrameAssembler`
// in whatever chunks the kernel hands over. The properties that make
// that safe: (1) the decoded frame sequence is invariant under *any*
// split of the byte stream — byte-by-byte, random chunks, or one big
// push all agree with the whole-stream decode; (2) a corrupt frame
// yields the same detected error and resyncs to the same next frame at
// every split; (3) no input, however mangled, panics the assembler.

mod frame_reassembly {
    use super::{Rng, Xoshiro256StarStar, CASES};
    use biodist::core::net::wire::{encode_frame, DecodeError, Frame, FrameAssembler};

    fn pat(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| (i.wrapping_mul(31).wrapping_add(7) & 0xFF) as u8)
            .collect()
    }

    /// One of every frame type, with payload sizes from empty to tens
    /// of KB so splits land inside headers, bodies and trailing CRCs.
    fn corpus() -> Vec<Frame> {
        vec![
            Frame::Hello { client: 3 },
            Frame::RequestWork { client: 3 },
            Frame::AssignUnit {
                problem: 1,
                unit: 42,
                cost_ops: 1.5e6,
                payload: pat(257),
            },
            Frame::Wait,
            Frame::SubmitResult {
                client: 3,
                problem: 1,
                unit: 42,
                payload: pat(4096),
            },
            Frame::ResultAck {
                problem: 1,
                unit: 42,
                accepted: true,
            },
            Frame::Heartbeat { client: 9 },
            Frame::HeartbeatAck,
            Frame::ChunkRequest {
                client: 3,
                problem: 0,
                chunk: 7,
            },
            Frame::ChunkData {
                problem: 0,
                chunk: 7,
                digest: 0xDEAD_BEEF,
                payload: pat(20_000),
            },
            Frame::ChunkMissing {
                problem: 0,
                chunk: 8,
            },
            Frame::MetricsReport {
                client: 3,
                snapshot: pat(33),
            },
            Frame::StatusRequest,
            Frame::StatusReport { snapshot: pat(128) },
            Frame::ReplicaAnnounce {
                endpoints: vec!["127.0.0.1:9000".parse().unwrap()],
            },
            Frame::Goodbye { client: 3 },
            Frame::Finished,
        ]
    }

    fn stream_of(frames: &[Frame]) -> Vec<u8> {
        frames.iter().flat_map(encode_frame).collect()
    }

    /// Drains every decodable frame, tagging outcomes. `false` means a
    /// fatal (non-resyncable) decode error was hit — a real server
    /// drops the connection there, so callers stop feeding bytes.
    fn drain(asm: &mut FrameAssembler, tags: &mut Vec<String>) -> bool {
        loop {
            match asm.next_frame() {
                Ok(Some(f)) => tags.push(format!("{f:?}")),
                Ok(None) => return true,
                Err(DecodeError::BodyCrc { frame_type, .. }) => {
                    tags.push(format!("crc:{frame_type}"))
                }
                Err(e) => {
                    tags.push(format!("fatal:{e:?}"));
                    return false;
                }
            }
        }
    }

    /// Decodes `bytes` delivered in chunks of the given sizes (the last
    /// chunk takes any remainder), returning the outcome tags.
    fn decode_chunked(bytes: &[u8], sizes: impl Iterator<Item = usize>) -> Vec<String> {
        let mut asm = FrameAssembler::new();
        let mut tags = Vec::new();
        let mut pos = 0;
        for size in sizes {
            if pos >= bytes.len() {
                break;
            }
            let end = (pos + size.max(1)).min(bytes.len());
            asm.push(&bytes[pos..end]);
            pos = end;
            if !drain(&mut asm, &mut tags) {
                return tags;
            }
        }
        if pos < bytes.len() {
            asm.push(&bytes[pos..]);
            drain(&mut asm, &mut tags);
        }
        tags
    }

    #[test]
    fn reassembly_is_invariant_under_any_split() {
        let frames = corpus();
        let bytes = stream_of(&frames);
        let whole = decode_chunked(&bytes, std::iter::once(bytes.len()));
        assert_eq!(whole.len(), frames.len(), "whole-stream decode is lossless");
        for (tag, frame) in whole.iter().zip(&frames) {
            assert_eq!(tag, &format!("{frame:?}"));
        }

        let byte_by_byte = decode_chunked(&bytes, std::iter::repeat(1));
        assert_eq!(byte_by_byte, whole, "byte-by-byte must match whole-stream");

        for case in 0..CASES as u64 {
            let mut rng = Xoshiro256StarStar::new(0xF4A6_0000 + case);
            let sizes: Vec<usize> = (0..bytes.len())
                .map(|_| 1 + (rng.next_u64() % 97) as usize)
                .collect();
            let got = decode_chunked(&bytes, sizes.into_iter());
            assert_eq!(got, whole, "random split case {case} diverged");
        }
    }

    #[test]
    fn corrupt_body_resyncs_identically_at_any_split() {
        let frames = corpus();
        for case in 0..CASES as u64 {
            let mut rng = Xoshiro256StarStar::new(0xC0DE_0000 + case);
            // Corrupt one byte of one frame's body region (past the
            // 14-byte header + 4-byte header CRC), then splice the
            // stream back together.
            let victim = (rng.next_u64() as usize) % frames.len();
            let mut encoded: Vec<Vec<u8>> = frames.iter().map(encode_frame).collect();
            let v = &mut encoded[victim];
            let body_start = 18.min(v.len() - 1);
            let idx = body_start + (rng.next_u64() as usize) % (v.len() - body_start);
            v[idx] ^= 0x01 << (rng.next_u64() % 8);
            let bytes: Vec<u8> = encoded.concat();

            let whole = decode_chunked(&bytes, std::iter::once(bytes.len()));
            let byte_by_byte = decode_chunked(&bytes, std::iter::repeat(1));
            assert_eq!(byte_by_byte, whole, "case {case}: split changed the story");
            let sizes: Vec<usize> = (0..bytes.len())
                .map(|_| 1 + (rng.next_u64() % 61) as usize)
                .collect();
            let random = decode_chunked(&bytes, sizes.into_iter());
            assert_eq!(random, whole, "case {case}: random split diverged");

            // Whatever the corruption hit, every *other* frame must
            // survive: at most one frame of the corpus may be lost
            // (flagged as a CRC failure or a fatal error), never two.
            let intact = whole
                .iter()
                .filter(|t| !t.starts_with("crc:") && !t.starts_with("fatal:"))
                .count();
            assert!(
                intact >= frames.len() - 1,
                "case {case}: corruption of one frame lost {} frames",
                frames.len() - intact
            );
        }
    }

    #[test]
    fn garbage_streams_never_panic_or_desync_the_feed() {
        for case in 0..CASES as u64 {
            let mut rng = Xoshiro256StarStar::new(0x6A4B_0000 + case);
            let n = 512 + (rng.next_u64() % 4096) as usize;
            let garbage: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            let sizes: Vec<usize> = (0..n).map(|_| 1 + (rng.next_u64() % 33) as usize).collect();
            // Must terminate without panicking; tags are unconstrained
            // (garbage may accidentally resemble a header prefix).
            let _ = decode_chunked(&garbage, sizes.into_iter());
        }
    }

    #[test]
    fn interleaved_garbage_between_frames_recovers_real_frames() {
        // After a fatal decode error a real connection dies, so the
        // recovery property is scoped to *body* corruption — but a
        // valid frame arriving after a resynced BodyCrc error must
        // decode cleanly at every split.
        let good = Frame::Heartbeat { client: 1 };
        let mut bytes = encode_frame(&Frame::AssignUnit {
            problem: 0,
            unit: 1,
            cost_ops: 1.0,
            payload: pat(512),
        });
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF; // body corruption, header CRC intact
        bytes.extend(encode_frame(&good));
        for chunk in [1usize, 3, 7, n] {
            let tags = decode_chunked(&bytes, std::iter::repeat(chunk));
            assert_eq!(
                tags.last().map(String::as_str),
                Some(format!("{good:?}").as_str()),
                "chunk size {chunk}: the post-corruption frame was lost"
            );
            assert!(tags.iter().any(|t| t.starts_with("crc:")));
        }
    }
}
