//! Cross-crate integration: the distributed system must produce exactly
//! the sequential answers, on both backends, under every scheduler
//! configuration, including when multiple heterogeneous applications
//! share one server.

use biodist::bioseq::synth::{random_sequence, DbSpec, FamilySpec, SyntheticDb};
use biodist::bioseq::{Alphabet, Sequence};
use biodist::core::{run_threaded, SchedulerConfig, Server, SimRunner};
use biodist::dprml::{build_problem as dprml_problem, DprmlConfig, PhyloOutput};
use biodist::dsearch::{
    build_problem as dsearch_problem, search_sequential, DsearchConfig, SearchOutput,
};
use biodist::gridsim::deployments::{heterogeneous_lab, homogeneous_lab};
use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist::phylo::patterns::PatternAlignment;
use biodist::phylo::search::stepwise_ml;
use std::sync::Arc;

fn dsearch_inputs(seed: u64) -> (Vec<Sequence>, Vec<Sequence>, DsearchConfig) {
    let query = random_sequence(Alphabet::Protein, "q0", 100, seed);
    let fam = FamilySpec {
        copies: 3,
        substitution_rate: 0.12,
        indel_rate: 0.02,
    };
    let db =
        SyntheticDb::generate_with_family(&DbSpec::protein_demo(50, 90), &query, &fam, seed + 1);
    let mut cfg = DsearchConfig::protein_default();
    cfg.top_hits = 8;
    (db.sequences, vec![query], cfg)
}

fn dprml_inputs(seed: u64) -> (Arc<PatternAlignment>, DprmlConfig) {
    let truth = random_yule_tree(6, 0.12, seed);
    let config = DprmlConfig::default();
    let model = config.build_model();
    let seqs = simulate_alignment(&truth, &model, 120, None, seed + 1);
    (Arc::new(PatternAlignment::from_sequences(&seqs)), config)
}

fn tiny_units() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 0.002,
        prior_ops_per_sec: 1e8,
        min_unit_ops: 1.0,
        ..Default::default()
    }
}

#[test]
fn dsearch_equals_sequential_under_every_scheduler_config() {
    let (db, queries, cfg) = dsearch_inputs(11);
    let expected = search_sequential(&db, &queries, &cfg);
    for sched in [
        tiny_units(),
        SchedulerConfig {
            ..SchedulerConfig::naive()
        },
    ] {
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 0.002,
            ..sched
        });
        let pid = server.submit(dsearch_problem(db.clone(), queries.clone(), &cfg));
        let (mut server, _) = run_threaded(server, 5);
        let out = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>();
        assert_eq!(out.hits, expected);
    }
}

#[test]
fn mixed_applications_share_one_server_correctly() {
    let (db, queries, ds_cfg) = dsearch_inputs(21);
    let (data, dp_cfg) = dprml_inputs(22);
    let expected_hits = search_sequential(&db, &queries, &ds_cfg);
    let model = dp_cfg.build_model();
    let (expected_tree, expected_lnl) = stepwise_ml(&data, &model, None, &dp_cfg.search);

    let mut server = Server::new(tiny_units());
    let ds = server.submit(dsearch_problem(db, queries, &ds_cfg));
    let dp = server.submit(dprml_problem(data, &dp_cfg, None, "dprml"));
    let (mut server, _) = run_threaded(server, 6);

    let hits = server.take_output(ds).unwrap().into_inner::<SearchOutput>();
    assert_eq!(hits.hits, expected_hits);
    let phylo = server.take_output(dp).unwrap().into_inner::<PhyloOutput>();
    assert_eq!(phylo.tree.rf_distance(&expected_tree), 0);
    assert!((phylo.ln_likelihood - expected_lnl).abs() < 1e-9);
}

#[test]
fn simulated_and_threaded_backends_agree() {
    let (db, queries, cfg) = dsearch_inputs(31);
    // Threaded.
    let mut s1 = Server::new(tiny_units());
    let p1 = s1.submit(dsearch_problem(db.clone(), queries.clone(), &cfg));
    let (mut s1, _) = run_threaded(s1, 4);
    let threaded = s1.take_output(p1).unwrap().into_inner::<SearchOutput>();
    // Simulated on a heterogeneous pool.
    let mut s2 = Server::new(SchedulerConfig::default());
    let p2 = s2.submit(dsearch_problem(db, queries, &cfg));
    let (_, mut s2) = SimRunner::with_defaults(s2, heterogeneous_lab(7, 5)).run();
    let simulated = s2.take_output(p2).unwrap().into_inner::<SearchOutput>();
    assert_eq!(threaded.hits, simulated.hits);
}

#[test]
fn dprml_insertion_order_changes_nothing_about_validity() {
    let (data, cfg) = dprml_inputs(41);
    let n = data.taxon_count();
    let reversed: Vec<usize> = (0..n).rev().collect();
    let mut server = Server::new(tiny_units());
    let pid = server.submit(dprml_problem(
        data.clone(),
        &cfg,
        Some(reversed.clone()),
        "rev",
    ));
    let (mut server, _) = run_threaded(server, 4);
    let out = server.take_output(pid).unwrap().into_inner::<PhyloOutput>();
    out.tree.validate().unwrap();
    // Must match the sequential reference run with the same order.
    let model = cfg.build_model();
    let (ref_tree, ref_lnl) = stepwise_ml(&data, &model, Some(&reversed), &cfg.search);
    assert_eq!(out.tree.rf_distance(&ref_tree), 0);
    assert!((out.ln_likelihood - ref_lnl).abs() < 1e-9);
}

#[test]
fn six_simultaneous_dprml_instances_agree_with_each_other() {
    let (data, cfg) = dprml_inputs(51);
    let mut server = Server::new(tiny_units());
    let pids: Vec<_> = (0..6)
        .map(|i| server.submit(dprml_problem(data.clone(), &cfg, None, &format!("i{i}"))))
        .collect();
    let machines = homogeneous_lab(12, 52);
    let (report, mut server) = SimRunner::with_defaults(server, machines).run();
    let outs: Vec<PhyloOutput> = pids
        .iter()
        .map(|&p| server.take_output(p).unwrap().into_inner::<PhyloOutput>())
        .collect();
    for pair in outs.windows(2) {
        assert_eq!(pair[0].tree.rf_distance(&pair[1].tree), 0);
        assert!((pair[0].ln_likelihood - pair[1].ln_likelihood).abs() < 1e-9);
    }
    assert_eq!(report.problem_completion.len(), 6);
}
