//! Ops-plane integration suite: wire-correlated spans, donor metrics
//! shipping, the streaming health engine and the live status view,
//! exercised end-to-end on the simulator and over real loopback TCP.
//!
//! The acceptance scenario (ISSUE 9): on a seeded chaos plan with two
//! planted 10× stragglers in a 16-donor pool, the health engine flags
//! exactly the planted pair, live-armed speculative re-issue beats the
//! detector-off makespan on the same plan, and every completed unit's
//! trace carries a four-phase breakdown that telescopes to its span.

use biodist::core::builtin::integration_problem;
use biodist::core::net::wire::{encode_frame, Frame, FrameReader, ReadError};
use biodist::core::net::{spawn_clients, ClientKit, Clock};
use biodist::core::{
    phase_breakdowns, run_tcp_faulty, verify_spans, Directory, EventKind, FaultKind, FaultPlan,
    NetClientOptions, NetServer, NetServerOptions, SchedulerConfig, Server, SimRunner,
    StatusSnapshot, Telemetry, TraceEvent,
};
use biodist::gridsim::machine::{AvailabilityModel, Machine};
use std::collections::BTreeSet;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fully dedicated homogeneous pool (no owner-activity noise), so
/// health observations isolate the *planted* faults.
fn dedicated_pool(n: usize) -> Vec<Machine> {
    (0..n)
        .map(|id| Machine::new(id, "PIII-1000", 1.0e7, AvailabilityModel::dedicated(), 7))
        .collect()
}

fn tcp_cfg() -> SchedulerConfig {
    SchedulerConfig {
        target_unit_secs: 0.05,
        prior_ops_per_sec: 2e9,
        min_unit_ops: 1e4,
        max_unit_ops: 1e7,
        lease_min_secs: 1.0,
        ..Default::default()
    }
}

/// Validates the span invariant, checks every chain's phases are sane
/// (non-negative, positive compute, finite) and that the four phases
/// telescope from issue to combine. Returns (chains, incomplete).
fn check_phases(events: &[TraceEvent]) -> (usize, u64) {
    verify_spans(events).unwrap_or_else(|e| panic!("span invariant violated: {e}"));
    let (phases, incomplete) = phase_breakdowns(events);
    // Find each chain's combine time independently, to confirm the
    // telescoping identity against the raw trace rather than trusting
    // `span()`'s arithmetic.
    for p in &phases {
        assert!(
            p.transfer >= 0.0 && p.queue_wait >= 0.0 && p.compute > 0.0 && p.combine >= 0.0,
            "phases must be non-negative with positive compute: {p:?}"
        );
        let combined_at = events
            .iter()
            .find(|e| {
                matches!(
                    &e.kind,
                    EventKind::UnitCombined { problem, unit, .. }
                        if *problem == p.problem && *unit == p.unit
                )
            })
            .map(|e| e.t)
            .expect("every chain ends in a combine");
        assert!(
            (p.issued_at + p.span() - combined_at).abs() < 1e-6,
            "four phases must telescope to the issue→combine span: {p:?} vs {combined_at}"
        );
    }
    (phases.len(), incomplete)
}

fn combined_count(events: &[TraceEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::UnitCombined { .. }))
        .count()
}

// ------------------------------------------------- structural parity

#[test]
fn phase_breakdowns_agree_structurally_across_backends() {
    // Simulator: virtual donors, virtual wire.
    let mut server = Server::new(SchedulerConfig::default());
    server.submit(integration_problem(20_000_000));
    let telemetry = Telemetry::enabled();
    let ring = telemetry.attach_ring(1 << 20);
    server.set_telemetry(telemetry);
    SimRunner::with_defaults(server, dedicated_pool(4)).run();
    let sim_events = ring.events();
    let (sim_chains, sim_incomplete) = check_phases(&sim_events);

    // TCP: real sockets, real compute, scaled clock.
    let mut server = Server::new(tcp_cfg());
    server.submit(integration_problem(400_000));
    let telemetry = Telemetry::enabled();
    let ring = telemetry.attach_ring(1 << 20);
    server.set_telemetry(telemetry);
    run_tcp_faulty(server, 4, &FaultPlan::none(), 20.0);
    let tcp_events = ring.events();
    let (tcp_chains, tcp_incomplete) = check_phases(&tcp_events);

    // Structural parity: both backends produce a complete four-phase
    // chain for every combined unit, with nothing unaccounted for.
    assert!(sim_chains > 0 && tcp_chains > 0);
    assert_eq!(sim_incomplete, 0, "fault-free sim leaves no broken chains");
    assert_eq!(tcp_incomplete, 0, "fault-free TCP leaves no broken chains");
    assert_eq!(sim_chains, combined_count(&sim_events));
    assert_eq!(tcp_chains, combined_count(&tcp_events));
}

// ------------------------------------------------------- chaos: spans

#[test]
fn spans_stay_complete_when_a_donor_crashes_mid_compute_sim() {
    let mut server = Server::new(SchedulerConfig::default());
    server.submit(integration_problem(40_000_000));
    let telemetry = Telemetry::enabled();
    let ring = telemetry.attach_ring(1 << 20);
    server.set_telemetry(telemetry);
    // Crash donor 1 early (mid-first-unit) and donor 2 later; both
    // rejoin after a reboot window.
    let plan = FaultPlan::new(0)
        .with(20.0, 1, FaultKind::Crash { down_secs: 90.0 })
        .with(130.0, 2, FaultKind::Crash { down_secs: 60.0 });
    SimRunner::with_defaults(server, dedicated_pool(4))
        .with_faults(plan)
        .run();
    let events = ring.events();
    let crashes = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::MachineCrashed { .. }))
        .count();
    assert!(
        crashes >= 2,
        "both planted crashes must appear in the trace"
    );
    // The invariant under test: every compute sub-span the crash
    // orphaned is closed (client-wide) and the surviving chains still
    // telescope.
    let (chains, _incomplete) = check_phases(&events);
    assert!(chains > 0);
}

#[test]
fn spans_stay_complete_when_a_donor_crashes_mid_compute_tcp() {
    let mut server = Server::new(tcp_cfg());
    server.submit(integration_problem(400_000));
    let telemetry = Telemetry::enabled();
    let ring = telemetry.attach_ring(1 << 20);
    server.set_telemetry(telemetry);
    let plan = FaultPlan::new(0).with(0.3, 0, FaultKind::Crash { down_secs: 0.4 });
    run_tcp_faulty(server, 3, &plan, 50.0);
    let (chains, _incomplete) = check_phases(&ring.events());
    assert!(chains > 0);
}

// ------------------------------------- acceptance: live stragglers

const STRAGGLERS: [usize; 2] = [3, 11];

fn straggler_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(0);
    for &c in &STRAGGLERS {
        plan.push(
            5.0,
            c,
            FaultKind::Slowdown {
                factor: 10.0,
                duration_secs: 1.0e6,
            },
        );
    }
    plan
}

/// One 16-donor simulator run against the straggler plan; returns the
/// makespan and the set of donors the detector flagged.
fn straggler_sim_run(detector: bool) -> (f64, BTreeSet<usize>) {
    let mut server = Server::new(SchedulerConfig {
        enable_health_detector: detector,
        // Units of ~20 virtual seconds with a lease generous enough
        // that a 10×-slow result is still *accepted* (and therefore
        // observed by the health engine) rather than expiring: the
        // detector targets the within-lease straggler regime; gross
        // overruns are already the lease machinery's job.
        target_unit_secs: 20.0,
        lease_min_secs: 400.0,
        // The tail heuristics from earlier PRs stay off in both arms,
        // so the makespan delta isolates *live* detection: with the
        // detector off nothing rescues a straggler-held unit before
        // its (long) lease runs out.
        enable_redundant_dispatch: false,
        enable_speculative_reissue: false,
        ..Default::default()
    });
    server.submit(integration_problem(400_000_000));
    let telemetry = Telemetry::enabled();
    let ring = telemetry.attach_ring(1 << 20);
    server.set_telemetry(telemetry);
    let (run, _server) = SimRunner::with_defaults(server, dedicated_pool(16))
        .with_faults(straggler_plan())
        .run();
    let flagged: BTreeSet<usize> = ring
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::DonorFlagged { client, .. } => Some(client),
            _ => None,
        })
        .collect();
    (run.makespan, flagged)
}

#[test]
fn live_detector_flags_exactly_the_planted_stragglers_and_cuts_makespan_sim() {
    let (with_detector, flagged) = straggler_sim_run(true);
    assert_eq!(
        flagged,
        STRAGGLERS.iter().copied().collect::<BTreeSet<_>>(),
        "the detector must flag the planted pair and nobody else"
    );
    let (without, flagged_off) = straggler_sim_run(false);
    assert!(
        flagged_off.is_empty(),
        "detector off emits no flags: {flagged_off:?}"
    );
    assert!(
        with_detector < without,
        "live speculative rescue must beat the detector-off makespan \
         ({with_detector:.1}s vs {without:.1}s)"
    );
}

#[test]
fn live_detector_flags_exactly_the_planted_stragglers_tcp() {
    let mut server = Server::new(SchedulerConfig {
        enable_health_detector: true,
        // Real compute on a shared host: fixed, *compute-dominated*
        // units. The slowdown signal is a sleep of (factor−1)× the
        // unit's measured compute time, so compute must dwarf the
        // socket/queue overhead or the stretch disappears into the
        // noise (and the adaptive speed EWMA absorbs what is left).
        // 4.5e8-op units run hundreds of wall milliseconds even on a
        // contended core.
        target_unit_secs: 15.0,
        prior_ops_per_sec: 3e7,
        min_unit_ops: 1e4,
        max_unit_ops: 1e9,
        // A 20×-slowed unit runs ~300 scaled seconds (and may wait behind
        // one more in the donor-side prefetch queue); the lease must outlive
        // it or the slow result expires and the health engine (which only
        // sees accepted results) goes blind.
        lease_min_secs: 700.0,
        enable_dynamic_granularity: false,
        enable_redundant_dispatch: false,
        enable_speculative_reissue: false,
        ..Default::default()
    });
    server.submit(integration_problem(480_000_000));
    let telemetry = Telemetry::enabled();
    let ring = telemetry.attach_ring(1 << 20);
    server.set_telemetry(telemetry.clone());
    let mut plan = FaultPlan::new(0);
    for &c in &STRAGGLERS {
        // Socket/queue overhead dilutes the wall-clock stretch (only
        // the *compute* share of a unit's latency is slowed), so the
        // planted factor is 20× for the observed latency ratio to clear
        // the detector's 3× threshold on the first slow results —
        // before the adaptive speed estimate absorbs the change. Onset
        // is late enough that every donor has warmed up (≥3 healthy
        // observations) first.
        plan.push(
            70.0,
            c,
            FaultKind::Slowdown {
                factor: 20.0,
                duration_secs: 1.0e6,
            },
        );
    }
    // `run_tcp_faulty` would use the stock 5-second liveness window,
    // which declares a donor dead mid-slow-unit (it is silent for the
    // whole stretched compute) and wipes its health history. A real
    // deployment sizes liveness to the worst-case unit, so this harness
    // does too.
    let kit = ClientKit::from_server(&server).expect("integration carries a codec");
    let clock = Clock::new(50.0);
    let net = NetServer::start(
        server,
        clock,
        NetServerOptions {
            liveness_timeout: 900.0,
            ..Default::default()
        },
    )
    .expect("bind loopback listener");
    let run_over = Arc::new(AtomicBool::new(false));
    let handles = spawn_clients(
        Directory::with_origin(net.addr()),
        clock,
        kit,
        16,
        &plan,
        run_over.clone(),
        NetClientOptions::default(),
    );
    let server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    telemetry.flush();
    // The final board must agree with the event stream: both planted
    // stragglers still present (the widened liveness window kept them
    // in the pool) with their slow results accepted.
    let snap = server.status_snapshot(clock.now());
    for &c in &STRAGGLERS {
        let d = snap
            .donors
            .iter()
            .find(|d| d.client == c)
            .expect("straggler stays in the pool");
        assert!(d.units_completed > 0);
    }
    let flagged: BTreeSet<usize> = ring
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::DonorFlagged { client, .. } => Some(client),
            _ => None,
        })
        .collect();
    assert_eq!(
        flagged,
        STRAGGLERS.iter().copied().collect::<BTreeSet<_>>(),
        "the detector must flag the planted pair and nobody else over TCP"
    );
}

// ------------------------------------------- metrics shipping over TCP

/// One status round-trip against a live server (the same frames
/// `biodist_top connect` uses).
fn poll_status(addr: SocketAddr) -> Option<StatusSnapshot> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    stream
        .write_all(&encode_frame(&Frame::StatusRequest))
        .ok()?;
    let mut reader = FrameReader::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while std::time::Instant::now() < deadline {
        match reader.poll(&mut stream) {
            Ok(Some(Frame::StatusReport { snapshot })) => {
                return StatusSnapshot::from_wire_bytes(&snapshot).ok();
            }
            Ok(Some(_)) | Ok(None) => {}
            Err(ReadError::Decode(_)) => {}
            Err(ReadError::Io(_)) => return None,
        }
    }
    None
}

#[test]
fn tcp_donors_ship_metrics_and_the_status_view_sees_the_cluster() {
    let mut server = Server::new(tcp_cfg());
    // Sized to keep the cluster busy for a second or two of wall time,
    // so the mid-run polls below reliably land while work is in flight.
    server.submit(integration_problem(20_000_000));
    let telemetry = Telemetry::enabled();
    server.set_telemetry(telemetry.clone());
    let kit = ClientKit::from_server(&server).expect("integration problem has a codec");
    let clock = Clock::new(20.0);
    let net = NetServer::start(server, clock, NetServerOptions::default())
        .expect("bind loopback listener");
    let addr = net.addr();
    let run_over = Arc::new(AtomicBool::new(false));
    let handles = spawn_clients(
        Directory::with_origin(addr),
        clock,
        kit,
        3,
        &FaultPlan::none(),
        run_over.clone(),
        NetClientOptions {
            metrics_report_interval: 0.5, // scaled seconds: ~25ms wall
            ..Default::default()
        },
    );
    // Poll the live status view (wire frames, like `biodist_top`)
    // while the run progresses: at some point the snapshot must show
    // donors with completed units.
    let mut saw_live_donors = false;
    for _ in 0..500 {
        std::thread::sleep(Duration::from_millis(10));
        let Some(snap) = poll_status(addr) else { break };
        // "Live" = progress and in-flight work visible in one board:
        // some donor has completed units while the pool still holds
        // active leases.
        if snap.donors.iter().any(|d| d.units_completed > 0)
            && snap.donors.iter().any(|d| d.leases > 0)
        {
            saw_live_donors = true;
            break;
        }
        if snap.problems.iter().all(|p| p.done) {
            break;
        }
    }
    let server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    assert!(server.all_complete());
    assert!(
        saw_live_donors,
        "the status view must catch the cluster mid-run"
    );
    // Shipped deltas: donor-prefixed counters merged into the server's
    // registry, with the shipping bookkeeping clean.
    let snap = telemetry.metrics_snapshot();
    let reports = snap
        .counters
        .iter()
        .find(|(k, _)| k.as_str() == "telemetry.reports_received")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(reports > 0, "at least one metrics delta must arrive");
    let donor_units: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("donor.c") && k.ends_with(".units_computed"))
        .map(|(_, v)| *v)
        .sum();
    assert!(
        donor_units > 0,
        "donor-side units_computed must land under donor.c<id>. prefixes"
    );
    assert!(
        !snap.counters.iter().any(|(k, _)| {
            k.as_str() == "telemetry.merge_errors" || k.as_str() == "telemetry.report_decode_errors"
        }),
        "no merge or decode errors during shipping"
    );
}
