//! # biodist — umbrella crate
//!
//! Rust reproduction of *Bioinformatics on a Heterogeneous Java
//! Distributed System* (Page, Keane & Naughton, IPDPS 2005): a
//! programmable, heterogeneous, cycle-scavenging task farm plus the two
//! bioinformatics applications the paper evaluates, DSEARCH (sensitive
//! distributed database search) and DPRml (distributed phylogeny
//! reconstruction by maximum likelihood).
//!
//! This crate re-exports the public API of every workspace member so a
//! downstream user can depend on `biodist` alone:
//!
//! * [`util`] — PRNGs, optimisers, config parsing, experiment tables.
//! * [`bioseq`] — sequences, FASTA I/O, scoring schemes, synthetic data.
//! * [`align`] — rigorous alignment kernels (Needleman–Wunsch,
//!   Smith–Waterman, banded, score-only).
//! * [`phylo`] — trees, substitution models, maximum likelihood.
//! * [`gridsim`] — the deterministic discrete-event grid simulator that
//!   stands in for the paper's 200-PC campus deployment.
//! * [`core`] — the distributed framework itself (`DataManager`,
//!   `Algorithm`, server, adaptive scheduler, threaded + simulated
//!   backends).
//! * [`dsearch`] / [`dprml`] — the two applications.

pub use biodist_align as align;
pub use biodist_bioseq as bioseq;
pub use biodist_core as core;
pub use biodist_dprml as dprml;
pub use biodist_dsearch as dsearch;
pub use biodist_gridsim as gridsim;
pub use biodist_phylo as phylo;
pub use biodist_util as util;
