//! DSEARCH demo: sensitive database search, end to end.
//!
//! Builds a synthetic protein database with a planted homologous family
//! (mutated copies of the query), writes/parses it through the FASTA
//! layer, configures DSEARCH from the paper's "straightforward
//! configuration file" format, runs the distributed search on the
//! threaded backend, and prints the hit report with alignments of the
//! top hits. Asserts the distributed hit list equals the sequential
//! reference.
//!
//! Run with: `cargo run --release --example dsearch_demo`

use biodist::align::sw_align;
use biodist::bioseq::synth::{random_sequence, DbSpec, FamilySpec, SyntheticDb};
use biodist::bioseq::{parse_fasta, write_fasta, Alphabet};
use biodist::core::{run_threaded, SchedulerConfig, Server};
use biodist::dsearch::{build_problem, search_sequential, DsearchConfig, SearchOutput};

fn main() {
    // --- inputs ---------------------------------------------------
    let query = random_sequence(Alphabet::Protein, "query1", 180, 42);
    let family = FamilySpec {
        copies: 4,
        substitution_rate: 0.15,
        indel_rate: 0.02,
    };
    let db =
        SyntheticDb::generate_with_family(&DbSpec::protein_demo(300, 200), &query, &family, 43);
    println!(
        "database: {} sequences, {} residues ({} planted homologs of {})",
        db.sequences.len(),
        db.total_residues(),
        db.planted_ids.len(),
        query.id
    );

    // Round-trip the database through FASTA, as the real tool would.
    let fasta_text = write_fasta(&db.sequences, 70);
    let database = parse_fasta(&fasta_text, Alphabet::Protein).expect("valid FASTA");
    assert_eq!(database, db.sequences);

    // --- configuration file (paper §3.1) ---------------------------
    let config = DsearchConfig::parse(
        "algorithm  = smith-waterman\n\
         alphabet   = protein\n\
         matrix     = blosum62\n\
         gap_open   = 11\n\
         gap_extend = 1\n\
         top_hits   = 10\n",
    )
    .expect("valid configuration");

    // --- distributed search ----------------------------------------
    let expected = search_sequential(&database, std::slice::from_ref(&query), &config);
    let mut server = Server::new(SchedulerConfig {
        target_unit_secs: 0.002,
        prior_ops_per_sec: 1e8,
        ..Default::default()
    });
    let pid = server.submit(build_problem(
        database.clone(),
        vec![query.clone()],
        &config,
    ));
    let (mut server, elapsed) = run_threaded(server, 6);
    let out = server
        .take_output(pid)
        .expect("complete")
        .into_inner::<SearchOutput>();
    assert_eq!(out.hits, expected, "distributed == sequential");
    println!(
        "search done in {elapsed:.2} s wall clock over {} units\n",
        server.stats(pid).completed_units
    );

    // --- report -----------------------------------------------------
    println!("top hits for {}:", query.id);
    let hits = &out.hits[&query.id];
    for (rank, hit) in hits.iter().enumerate() {
        let planted = if db.planted_ids.contains(&hit.db_id) {
            "  <- planted homolog"
        } else {
            ""
        };
        println!(
            "  {:>2}. {:<10} score {:>5}{planted}",
            rank + 1,
            hit.db_id,
            hit.score
        );
    }

    // Show the alignment of the best hit.
    let best = &hits[0];
    let subject = database
        .iter()
        .find(|s| s.id == best.db_id)
        .expect("hit subject");
    let aln = sw_align(&query, subject, &config.scheme);
    println!(
        "\nbest alignment ({} vs {}, score {}, identity {:.0}%):",
        query.id,
        subject.id,
        aln.score,
        aln.identity(&query, subject) * 100.0
    );
    for line in aln.render(&query, subject).lines() {
        println!("  {line}");
    }

    // All planted homologs must rank above every background sequence.
    let top: Vec<&str> = hits[..db.planted_ids.len()]
        .iter()
        .map(|h| h.db_id.as_str())
        .collect();
    for id in &db.planted_ids {
        assert!(
            top.contains(&id.as_str()),
            "sensitivity: {id} must be a top hit"
        );
    }
    println!(
        "\nall {} planted homologs recovered as top hits ✓",
        db.planted_ids.len()
    );
}
