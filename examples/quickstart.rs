//! Quickstart: define a problem, run it on real threads.
//!
//! The paper's §2.1 programming model in one file: a `DataManager`
//! (server side: partition + combine) and an `Algorithm` (client side:
//! compute one unit) make a `Problem`; the framework does the rest.
//! This example estimates π by Monte Carlo sampling, partitioned into
//! dynamically sized batches of samples, and runs it on the threaded
//! backend with 8 workers.
//!
//! Run with: `cargo run --release --example quickstart`

use biodist::core::{
    run_threaded, Algorithm, DataManager, Payload, Problem, SchedulerConfig, Server, TaskResult,
    UnitId, WorkUnit,
};
use biodist::util::rng::{Rng, SplitMix64};
use std::sync::Arc;

/// Abstract cost of drawing one sample (for scheduling/simulation).
const OPS_PER_SAMPLE: f64 = 50.0;

/// Server side: how the problem splits into units and folds together.
struct MonteCarloPi {
    total_samples: u64,
    issued_samples: u64,
    issued_units: u64,
    received_units: u64,
    inside: u64,
    sampled: u64,
    next_id: UnitId,
}

impl DataManager for MonteCarloPi {
    fn next_unit(&mut self, hint_ops: f64) -> Option<WorkUnit> {
        if self.issued_samples >= self.total_samples {
            return None;
        }
        // Dynamic granularity: the scheduler's hint sizes this batch.
        let batch = ((hint_ops / OPS_PER_SAMPLE) as u64)
            .clamp(1_000, self.total_samples - self.issued_samples);
        self.issued_samples += batch;
        self.issued_units += 1;
        let id = self.next_id;
        self.next_id += 1;
        // Payload: (seed, sample count). 16 bytes on a real wire.
        Some(WorkUnit {
            id,
            payload: Payload::new((id, batch), 16),
            cost_ops: batch as f64 * OPS_PER_SAMPLE,
        })
    }

    fn accept_result(&mut self, result: TaskResult) {
        let (inside, sampled) = result.payload.into_inner::<(u64, u64)>();
        self.inside += inside;
        self.sampled += sampled;
        self.received_units += 1;
    }

    fn is_complete(&self) -> bool {
        self.issued_samples >= self.total_samples && self.received_units == self.issued_units
    }

    fn final_output(&mut self) -> Payload {
        Payload::new(4.0 * self.inside as f64 / self.sampled as f64, 8)
    }
}

/// Client side: the per-unit computation (pure, so the framework may
/// run it redundantly).
struct SampleBatch;

impl Algorithm for SampleBatch {
    fn compute(&self, unit: &WorkUnit) -> TaskResult {
        let &(seed, batch) = unit
            .payload
            .downcast_ref::<(u64, u64)>()
            .expect("batch spec");
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut inside = 0u64;
        for _ in 0..batch {
            let x = rng.next_f64();
            let y = rng.next_f64();
            if x * x + y * y <= 1.0 {
                inside += 1;
            }
        }
        TaskResult {
            unit_id: unit.id,
            payload: Payload::new((inside, batch), 16),
        }
    }
}

fn main() {
    let total_samples = 40_000_000;
    let problem = Problem::new(
        "monte-carlo-pi",
        Box::new(MonteCarloPi {
            total_samples,
            issued_samples: 0,
            issued_units: 0,
            received_units: 0,
            inside: 0,
            sampled: 0,
            next_id: 0,
        }),
        Arc::new(SampleBatch),
    );

    let mut server = Server::new(SchedulerConfig {
        // Wall-clock time source: size units to ~5 ms of real compute.
        target_unit_secs: 0.005,
        prior_ops_per_sec: 2e9,
        ..Default::default()
    });
    let pid = server.submit(problem);

    let workers = 8;
    println!("running {total_samples} samples on {workers} worker threads...");
    let (mut server, elapsed) = run_threaded(server, workers);

    let pi = server
        .take_output(pid)
        .expect("problem completed")
        .into_inner::<f64>();
    let stats = server.stats(pid);
    println!("π ≈ {pi:.6}  (error {:+.6})", pi - std::f64::consts::PI);
    println!(
        "{} units in {elapsed:.2} s wall clock ({} redundant, {} reissued)",
        stats.completed_units, stats.redundant_dispatches, stats.reissued_units
    );
    assert!((pi - std::f64::consts::PI).abs() < 1e-2);
}
