//! Real-socket demo: the task farm over loopback TCP, with faults.
//!
//! Runs a DSEARCH problem on the TCP backend — real donor clients
//! connecting to a real server over the framed wire protocol — first
//! fault-free, then through the fault-injecting socket proxy with a
//! seeded chaos plan (dropped results, corrupted frames, client churn).
//! Both runs are checked bit-for-bit against the sequential reference.
//!
//! Set `BIODIST_CHAOS_SEED=<n>` to pick the fault plan; the same seed
//! always produces the same plan, so any interesting run is replayable.
//! Pass `--trace-out <path>` to write both runs' telemetry as JSONL
//! (feed it to `abl_report report --trace <path>`); a metrics-registry
//! snapshot is printed after the chaos run either way.
//!
//! Run with: `cargo run --release --example tcp_demo`

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::Alphabet;
use biodist::core::{
    run_tcp, run_tcp_faulty, ChaosOptions, FaultPlan, SchedulerConfig, Server, Telemetry,
};
use biodist::dsearch::{build_problem, search_sequential, DsearchConfig, SearchOutput};

const POOL: usize = 6;
const TIME_SCALE: f64 = 50.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| args.get(i + 1).expect("--trace-out needs a path").clone());
    let telemetry = Telemetry::enabled();
    if let Some(path) = &trace_out {
        telemetry
            .attach_jsonl(std::path::Path::new(path))
            .expect("create trace file");
    }
    // A small protein search: one query against a synthetic database.
    let queries = vec![random_sequence(Alphabet::Protein, "q0", 150, 7)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(400, 120), 8).sequences;
    let mut cfg = DsearchConfig::protein_default();
    cfg.cost_scale = 50.0;

    let reference = SearchOutput {
        hits: search_sequential(&db, &queries, &cfg),
    }
    .digest();

    let sched = SchedulerConfig {
        target_unit_secs: 0.001,
        prior_ops_per_sec: 2e10,
        lease_min_secs: 0.5,
        ..Default::default()
    };

    // ---- run 1: fault-free over real sockets -----------------------
    let mut server = Server::new(sched.clone());
    server.set_telemetry(telemetry.clone());
    let pid = server.submit(build_problem(db.clone(), queries.clone(), &cfg));
    let (mut server, elapsed) = run_tcp(server, POOL);
    let stats = server.stats(pid);
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    println!("fault-free TCP run: {POOL} clients, {elapsed:.2} scaled s");
    println!(
        "  units={} assignments={} reissued={} corrupted={}",
        stats.completed_units, stats.assignments, stats.reissued_units, stats.corrupted_results
    );
    assert_eq!(out.digest(), reference);
    println!("  digest matches sequential reference");

    // ---- run 2: same job through the fault-injecting proxy ---------
    let seed = std::env::var("BIODIST_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let plan = FaultPlan::random(seed, &ChaosOptions::for_pool(POOL, 1.0));
    println!(
        "\nchaos TCP run: seed {seed}, {} fault events",
        plan.events.len()
    );
    for ev in &plan.events {
        match ev.client {
            Some(c) => println!("  t={:.2}: client {c} {:?}", ev.at, ev.kind),
            None => println!("  t={:.2}: all clients {:?}", ev.at, ev.kind),
        }
    }

    let mut server = Server::new(sched);
    server.set_telemetry(telemetry.clone());
    let pid = server.submit(build_problem(db, queries, &cfg));
    let (mut server, elapsed) = run_tcp_faulty(server, POOL, &plan, TIME_SCALE);
    let stats = server.stats(pid);
    let out = server
        .take_output(pid)
        .unwrap()
        .into_inner::<SearchOutput>();
    println!("completed in {elapsed:.2} scaled s");
    println!(
        "  units={} assignments={} reissued={} wasted_results={} corrupted={}",
        stats.completed_units,
        stats.assignments,
        stats.reissued_units,
        stats.wasted_results,
        stats.corrupted_results
    );
    assert_eq!(out.digest(), reference);
    println!("  digest still matches sequential reference");

    telemetry.flush();
    println!("\nmetrics snapshot (both runs):");
    println!("{}", telemetry.metrics_snapshot().to_json());
    if let Some(path) = trace_out {
        println!("trace written to {path}");
    }
}
