//! A complete phylogenetics pipeline on the distributed system.
//!
//! The workflow a biologist would actually run with these tools:
//!
//! 1. neighbor-joining guide tree from JC distances (instant),
//! 2. substitution-model parameters (κ, Γ shape α) fitted by maximum
//!    likelihood on the guide tree,
//! 3. distributed DPRml search under the fitted model, with a
//!    distance-diverse (maximin) taxon addition order,
//! 4. bootstrap support values for the final tree.
//!
//! Run with: `cargo run --release --example phylo_pipeline`

use biodist::core::{run_threaded, SchedulerConfig, Server};
use biodist::dprml::{build_problem, DprmlConfig, PhyloOutput};
use biodist::phylo::bootstrap::{bootstrap_support, nj_builder};
use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist::phylo::fit::{empirical_base_frequencies, fit_gamma_alpha, fit_hky_kappa};
use biodist::phylo::lik::log_likelihood;
use biodist::phylo::model::{GammaRates, ModelKind, SubstModel};
use biodist::phylo::nj::{jc_distance_matrix, maximin_order, neighbor_joining};
use biodist::phylo::patterns::PatternAlignment;
use std::sync::Arc;

fn main() {
    // --- data: simulated under HKY85(kappa 5) + Γ(0.6), 10 taxa -------
    let truth = random_yule_tree(10, 0.14, 404);
    let true_model = SubstModel::new(
        ModelKind::Hky85 {
            kappa: 5.0,
            freqs: [0.3, 0.2, 0.2, 0.3],
        },
        GammaRates::gamma(0.6, 4),
    );
    let names: Vec<String> = (0..10).map(|i| format!("sp{i:02}")).collect();
    let seqs = simulate_alignment(&truth, &true_model, 1200, Some(&names), 405);
    let data = Arc::new(PatternAlignment::from_sequences(&seqs));
    println!(
        "dataset: {} taxa x {} sites ({} patterns), truth: HKY85(5.0)+G(0.6)",
        data.taxon_count(),
        data.site_count(),
        data.pattern_count()
    );

    // --- step 1: NJ guide tree -----------------------------------------
    let distances = jc_distance_matrix(&data);
    let guide = neighbor_joining(&distances);
    println!(
        "\n[1] NJ guide tree: RF distance to truth = {}",
        guide.rf_distance(&truth)
    );

    // --- step 2: model fitting on the guide tree -----------------------
    let freqs = empirical_base_frequencies(&data);
    println!(
        "[2] empirical frequencies: A={:.3} C={:.3} G={:.3} T={:.3}",
        freqs[0], freqs[1], freqs[2], freqs[3]
    );
    let kappa_fit = fit_hky_kappa(&guide, &data, freqs, &GammaRates::uniform(), 2);
    println!(
        "    fitted kappa = {:.2} (true 5.0), lnL {:.2}, {} evaluations",
        kappa_fit.value, kappa_fit.ln_likelihood, kappa_fit.evaluations
    );
    let kind = ModelKind::Hky85 {
        kappa: kappa_fit.value,
        freqs,
    };
    let alpha_fit = fit_gamma_alpha(&guide, &data, &kind, 4, 1);
    println!("    fitted gamma alpha = {:.2} (true 0.6)", alpha_fit.value);

    // --- step 3: distributed ML search under the fitted model ----------
    let config = DprmlConfig {
        model: kind,
        gamma_alpha: Some(alpha_fit.value),
        gamma_categories: 4,
        ..Default::default()
    };
    let order = maximin_order(&distances);
    let mut server = Server::new(SchedulerConfig {
        target_unit_secs: 0.02,
        prior_ops_per_sec: 2e8,
        min_unit_ops: 1.0,
        ..Default::default()
    });
    let pid = server.submit(build_problem(
        data.clone(),
        &config,
        Some(order),
        "pipeline",
    ));
    let (mut server, elapsed) = run_threaded(server, 8);
    let out = server
        .take_output(pid)
        .expect("complete")
        .into_inner::<PhyloOutput>();
    println!(
        "\n[3] distributed DPRml: lnL {:.2} in {elapsed:.1} s wall clock, RF to truth = {}",
        out.ln_likelihood,
        out.tree.rf_distance(&truth)
    );
    // ML under the fitted model should beat the NJ guide under the same model.
    let fitted_model = config.build_model();
    let guide_lnl = log_likelihood(&guide, &data, &fitted_model);
    println!("    (NJ guide tree scores {guide_lnl:.2} under the same model)");
    assert!(
        out.ln_likelihood >= guide_lnl - 1e-6,
        "ML must not lose to its guide"
    );

    // --- step 4: bootstrap ----------------------------------------------
    let bs = bootstrap_support(&out.tree, &seqs, 100, 406, nj_builder);
    println!("\n[4] bootstrap (100 NJ replicates):");
    for (split, support) in bs.splits.iter().zip(&bs.support) {
        let members: Vec<&str> = split.iter().map(|&t| names[t].as_str()).collect();
        println!("    {:>5.0}%  {{{}}}", support * 100.0, members.join(","));
    }
    println!("    weakest split: {:.0}%", bs.min_support() * 100.0);

    assert!(
        out.tree.rf_distance(&truth) <= 2,
        "1200 sites should ~recover 10 taxa"
    );
    println!("\nfinal tree:\n{}", out.newick);
}
