//! DPRml demo: distributed maximum-likelihood phylogeny, end to end.
//!
//! Simulates a DNA alignment down a known 12-taxon tree, configures
//! DPRml from its configuration-file format (HKY85 + Γ rates), runs the
//! distributed stepwise-insertion search on the threaded backend, and
//! compares the recovered topology against both the sequential
//! reference and the generating tree.
//!
//! Run with: `cargo run --release --example dprml_demo`

use biodist::core::{run_threaded, SchedulerConfig, Server};
use biodist::dprml::{build_problem, DprmlConfig, PhyloOutput};
use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist::phylo::newick::to_newick;
use biodist::phylo::patterns::PatternAlignment;
use biodist::phylo::search::stepwise_ml;
use std::sync::Arc;

fn main() {
    // --- synthetic dataset from a known tree ------------------------
    let n_taxa = 12;
    let truth = random_yule_tree(n_taxa, 0.12, 2005);
    let config = DprmlConfig::parse(
        "model            = hky85:4.0\n\
         gamma_alpha      = 0.8\n\
         gamma_categories = 4\n\
         candidate_rounds = 2\n\
         refine_rounds    = 3\n\
         nni              = true\n",
    )
    .expect("valid configuration");
    let model = config.build_model();
    let names: Vec<String> = (0..n_taxa).map(|i| format!("taxon{i:02}")).collect();
    let seqs = simulate_alignment(&truth, &model, 600, Some(&names), 2006);
    let data = Arc::new(PatternAlignment::from_sequences(&seqs));
    println!(
        "alignment: {} taxa x {} sites ({} distinct patterns), model HKY85+G4",
        data.taxon_count(),
        data.site_count(),
        data.pattern_count()
    );

    // --- sequential reference ---------------------------------------
    let (ref_tree, ref_lnl) = stepwise_ml(&data, &model, None, &config.search);
    println!("sequential reference lnL: {ref_lnl:.3}");

    // --- distributed run ---------------------------------------------
    let mut server = Server::new(SchedulerConfig {
        target_unit_secs: 0.01,
        prior_ops_per_sec: 1e8,
        min_unit_ops: 1.0,
        ..Default::default()
    });
    let pid = server.submit(build_problem(data.clone(), &config, None, "dprml-demo"));
    let (mut server, elapsed) = run_threaded(server, 8);
    let out = server
        .take_output(pid)
        .expect("complete")
        .into_inner::<PhyloOutput>();
    let stats = server.stats(pid);
    println!(
        "distributed run: lnL {:.3} in {elapsed:.2} s wall clock, {} work units",
        out.ln_likelihood, stats.completed_units
    );

    // --- checks --------------------------------------------------------
    assert_eq!(
        out.tree.rf_distance(&ref_tree),
        0,
        "distributed topology must equal the sequential reference"
    );
    assert!((out.ln_likelihood - ref_lnl).abs() < 1e-6);
    let rf_to_truth = out.tree.rf_distance(&truth);
    println!("Robinson-Foulds distance to the generating tree: {rf_to_truth}");
    println!("\nrecovered tree:\n  {}", out.newick);
    println!("\ngenerating tree:\n  {}", to_newick(&truth, &names));
    assert!(
        rf_to_truth <= 4,
        "600 sites should nearly recover a 12-taxon topology (rf = {rf_to_truth})"
    );
}
