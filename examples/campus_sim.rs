//! Campus deployment simulation (paper §3, experiment A4).
//!
//! Reproduces the deployment the paper describes: ~200 desktop PCs of
//! mixed Pentium classes across three locations, running the client "as
//! a low priority background service", plus every CPU of a 32-node
//! dual-PIII 1 GHz cluster — all funnelled through a single 100 Mbit/s
//! server link. A DSEARCH problem and two simultaneous DPRml instances
//! share the pool, as the real system mixed applications. Prints the
//! per-problem completion times, pool utilisation, and network
//! statistics.
//!
//! Run with: `cargo run --release --example campus_sim`

use biodist::bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
use biodist::bioseq::Alphabet;
use biodist::core::{SchedulerConfig, Server, SimConfig, SimRunner};
use biodist::dprml::{build_problem as dprml_problem, DprmlConfig, PhyloOutput};
use biodist::dsearch::{build_problem as dsearch_problem, DsearchConfig, SearchOutput};
use biodist::gridsim::deployments::{campus_deployment, campus_network};
use biodist::phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist::phylo::patterns::PatternAlignment;
use std::sync::Arc;

fn main() {
    let machines = campus_deployment(77);
    let desktops = machines
        .iter()
        .filter(|m| !m.class_name.starts_with("cluster"))
        .count();
    let cluster = machines.len() - desktops;
    println!(
        "campus pool: {desktops} semi-idle desktops (3 locations) + {cluster} dedicated cluster CPUs"
    );

    // DSEARCH workload.
    let queries = vec![random_sequence(Alphabet::Protein, "q0", 250, 7)];
    let db = SyntheticDb::generate(&DbSpec::protein_demo(800, 250), 8);
    let mut ds_config = DsearchConfig::protein_default();
    ds_config.cost_scale = 400.0;

    // Two simultaneous DPRml instances on a 30-taxon alignment.
    let truth = random_yule_tree(30, 0.1, 9);
    let mut dp_config = DprmlConfig::default();
    dp_config.search.candidate_rounds = 1;
    dp_config.search.refine_rounds = 1;
    dp_config.search.nni = false;
    dp_config.cost_scale = 20.0;
    let model = dp_config.build_model();
    let seqs = simulate_alignment(&truth, &model, 200, None, 10);
    let data = Arc::new(PatternAlignment::from_sequences(&seqs));

    let mut server = Server::new(SchedulerConfig::default());
    let ds = server.submit(dsearch_problem(db.sequences, queries, &ds_config));
    let dp0 = server.submit(dprml_problem(data.clone(), &dp_config, None, "dprml-a"));
    let dp1 = server.submit(dprml_problem(data.clone(), &dp_config, None, "dprml-b"));

    println!("running DSEARCH + 2x DPRml on the shared pool...");
    let network = campus_network(&machines);
    let (report, mut server) =
        SimRunner::with_network(server, machines, network, SimConfig::default()).run();

    println!("\nper-problem completion (virtual time):");
    for (name, t) in &report.problem_completion {
        println!("  {name:<10} {:>10.1} s  ({:.2} h)", t, t / 3600.0);
    }
    println!("\npool statistics:");
    println!("  makespan          {:>12.1} s", report.makespan);
    println!("  work units        {:>12}", report.total_units);
    println!("  redundant copies  {:>12}", report.redundant_dispatches);
    println!("  reissued units    {:>12}", report.reissued_units);
    println!("  mean utilisation  {:>12.2}", report.mean_utilization);
    println!(
        "  network           {:>12.1} MB moved, {:.3} s mean queue wait",
        report.bytes_transferred as f64 / 1e6,
        report.mean_link_queue_wait
    );

    // Outputs are real: check them.
    let hits = server.take_output(ds).unwrap().into_inner::<SearchOutput>();
    assert_eq!(hits.hits["q0"].len(), 25);
    let ta = server.take_output(dp0).unwrap().into_inner::<PhyloOutput>();
    let tb = server.take_output(dp1).unwrap().into_inner::<PhyloOutput>();
    assert_eq!(
        ta.tree.rf_distance(&tb.tree),
        0,
        "identical instances agree"
    );
    println!(
        "\nDPRml lnL {:.2}; identical across instances ✓",
        ta.ln_likelihood
    );
}
