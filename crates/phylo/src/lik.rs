//! Felsenstein-pruning log-likelihood and branch-length optimisation.
//!
//! The engine keeps, for every node `v`, *downward* conditional
//! likelihoods `D[v]` (data below `v` given the state at `v`) computed
//! in one postorder pass, and — when optimising — *edge-outside*
//! partials `E[v]` (data outside the subtree of `v`, given the state at
//! `v`'s parent, excluding `v`'s own branch) computed in one preorder
//! pass. The likelihood of the whole tree can then be written for any
//! edge `v→u` as
//!
//! ```text
//! L = Σ_pattern w · Σ_cat prob · Σ_s π_s · E[v][s] · (P_v(t)·D[v])[s]
//! ```
//!
//! which depends on the branch length `t` of that edge only through
//! `P_v(t)` — so Brent's method can optimise each branch at the cost of
//! a 4×4 matrix–vector product per evaluation instead of a full
//! traversal. Per-pattern scaling keeps partials in range for large
//! trees; reversibility lets the stationary prior sit at either end of
//! an edge.

use crate::model::SubstModel;
use crate::patterns::PatternAlignment;
use crate::tree::{Tree, MIN_BRANCH};
use biodist_util::optim::brent_minimize;

/// Largest branch length the optimiser will propose.
pub const MAX_BRANCH: f64 = 10.0;

/// A likelihood engine bound to one model and one alignment.
#[derive(Debug, Clone)]
pub struct TreeLikelihood<'a> {
    model: &'a SubstModel,
    data: &'a PatternAlignment,
}

// Per-node partials: flat [pattern][category][state] array plus a
// per-pattern log-scale accumulator.
struct Partials {
    values: Vec<f64>,
    scale: Vec<f64>,
}

impl<'a> TreeLikelihood<'a> {
    /// Binds a model to an alignment.
    pub fn new(model: &'a SubstModel, data: &'a PatternAlignment) -> Self {
        Self { model, data }
    }

    /// The alignment in use.
    pub fn data(&self) -> &PatternAlignment {
        self.data
    }

    /// The model in use.
    pub fn model(&self) -> &SubstModel {
        self.model
    }

    #[inline]
    fn ncat(&self) -> usize {
        self.model.rate_categories().ncat()
    }

    #[inline]
    fn stride(&self) -> usize {
        self.ncat() * 4
    }

    /// Abstract cost of one full pruning traversal, in "node updates"
    /// (pattern × category × 4×4 products). Used by the scheduler and
    /// the simulator as the work-unit cost model.
    pub fn traversal_cost(&self, tree: &Tree) -> u64 {
        (tree.node_count() as u64) * (self.data.pattern_count() as u64) * (self.ncat() as u64)
    }

    // Downward pass: partials for every node, postorder.
    fn compute_down(&self, tree: &Tree) -> Vec<Partials> {
        let np = self.data.pattern_count();
        let ncat = self.ncat();
        let stride = self.stride();
        let mut parts: Vec<Option<Partials>> = (0..tree.node_count()).map(|_| None).collect();

        for v in tree.postorder() {
            let node = tree.node(v);
            let mut p = Partials {
                values: vec![1.0; np * stride],
                scale: vec![0.0; np],
            };
            if node.is_leaf() {
                let taxon = node.taxon.expect("leaf has taxon");
                for pat in 0..np {
                    let code = self.data.code(pat, taxon);
                    if code < 4 {
                        for cat in 0..ncat {
                            let base = pat * stride + cat * 4;
                            for s in 0..4 {
                                p.values[base + s] = if s == code as usize { 1.0 } else { 0.0 };
                            }
                        }
                    }
                    // Ambiguity (code 4): all-ones = missing data.
                }
            } else {
                for &c in &node.children {
                    let child = parts[c].as_ref().expect("postorder: child computed");
                    let pmats = self.model.transition_matrices(tree.branch_length(c));
                    for pat in 0..np {
                        p.scale[pat] += child.scale[pat];
                        for (cat, pm) in pmats.iter().enumerate() {
                            let base = pat * stride + cat * 4;
                            let cv = &child.values[base..base + 4];
                            for s in 0..4 {
                                let dot = pm[s][0] * cv[0]
                                    + pm[s][1] * cv[1]
                                    + pm[s][2] * cv[2]
                                    + pm[s][3] * cv[3];
                                p.values[base + s] *= dot;
                            }
                        }
                    }
                }
                // Per-pattern rescale.
                for pat in 0..np {
                    let base = pat * stride;
                    let mx = p.values[base..base + stride]
                        .iter()
                        .fold(0.0f64, |a, &b| a.max(b));
                    if mx > 0.0 && mx != 1.0 {
                        let inv = 1.0 / mx;
                        for x in &mut p.values[base..base + stride] {
                            *x *= inv;
                        }
                        p.scale[pat] += mx.ln();
                    }
                }
            }
            parts[v] = Some(p);
        }
        parts
            .into_iter()
            .map(|p| p.expect("all nodes visited"))
            .collect()
    }

    /// Log-likelihood of the tree.
    pub fn log_likelihood(&self, tree: &Tree) -> f64 {
        debug_assert!(tree.validate().is_ok());
        let down = self.compute_down(tree);
        self.root_log_likelihood(tree, &down)
    }

    fn root_log_likelihood(&self, tree: &Tree, down: &[Partials]) -> f64 {
        let np = self.data.pattern_count();
        let ncat = self.ncat();
        let stride = self.stride();
        let freqs = self.model.freqs();
        let probs = &self.model.rate_categories().probs;
        let root = &down[tree.root()];
        let mut lnl = 0.0;
        for pat in 0..np {
            let mut site = 0.0;
            for (cat, &prob) in probs.iter().enumerate().take(ncat) {
                let base = pat * stride + cat * 4;
                let v = &root.values[base..base + 4];
                site +=
                    prob * (freqs[0] * v[0] + freqs[1] * v[1] + freqs[2] * v[2] + freqs[3] * v[3]);
            }
            lnl += self.data.weights()[pat] * (site.ln() + root.scale[pat]);
        }
        lnl
    }

    // Edge-outside partials E[v] for every non-root node, preorder.
    // E[v] lives at v's *parent* and excludes v's own branch. The
    // batch variant is kept as the reference implementation that the
    // O(depth) single-edge variant is tested against.
    #[cfg_attr(not(test), allow(dead_code))]
    fn compute_edge_outside(&self, tree: &Tree, down: &[Partials]) -> Vec<Option<Partials>> {
        let np = self.data.pattern_count();
        let ncat = self.ncat();
        let stride = self.stride();
        let n = tree.node_count();
        let mut outside: Vec<Option<Partials>> = (0..n).map(|_| None).collect();

        // Preorder: parents before children.
        let mut order = tree.postorder();
        order.reverse();

        for u in order {
            let node = tree.node(u);
            if node.is_leaf() {
                continue;
            }
            // O[u]: outside partial at u itself (includes u's branch and
            // the stationary prior, which lives at the root of the
            // outside recursion — placing it anywhere else is only valid
            // for symmetric P matrices).
            let (o_values, o_scale): (Vec<f64>, Vec<f64>) = if u == tree.root() {
                let freqs = self.model.freqs();
                let mut vals = vec![0.0; np * stride];
                for pat in 0..np {
                    for cat in 0..ncat {
                        let base = pat * stride + cat * 4;
                        vals[base..base + 4].copy_from_slice(&freqs);
                    }
                }
                (vals, vec![0.0; np])
            } else {
                let e = outside[u].as_ref().expect("preorder: E[u] computed");
                let pmats = self.model.transition_matrices(tree.branch_length(u));
                let mut vals = vec![0.0; np * stride];
                for pat in 0..np {
                    for (cat, pm) in pmats.iter().enumerate() {
                        let base = pat * stride + cat * 4;
                        let ev = &e.values[base..base + 4];
                        for s in 0..4 {
                            // O[u][s] = Σ_s' E[u][s'] P[s'][s]
                            vals[base + s] = ev[0] * pm[0][s]
                                + ev[1] * pm[1][s]
                                + ev[2] * pm[2][s]
                                + ev[3] * pm[3][s];
                        }
                    }
                }
                (vals, e.scale.clone())
            };

            // Precompute (P_c · D[c]) for every child of u.
            let children = node.children.clone();
            let mut child_msgs: Vec<Vec<f64>> = Vec::with_capacity(children.len());
            for &c in &children {
                let pmats = self.model.transition_matrices(tree.branch_length(c));
                let d = &down[c];
                let mut msg = vec![0.0; np * stride];
                for pat in 0..np {
                    for (cat, pm) in pmats.iter().enumerate() {
                        let base = pat * stride + cat * 4;
                        let dv = &d.values[base..base + 4];
                        for s in 0..4 {
                            msg[base + s] = pm[s][0] * dv[0]
                                + pm[s][1] * dv[1]
                                + pm[s][2] * dv[2]
                                + pm[s][3] * dv[3];
                        }
                    }
                }
                child_msgs.push(msg);
            }

            for (ci, &c) in children.iter().enumerate() {
                // E[c] = O[u] ⊙ Π_{siblings} msg.
                let mut e = Partials {
                    values: o_values.clone(),
                    scale: o_scale.clone(),
                };
                for (si, &sib) in children.iter().enumerate() {
                    if si == ci {
                        continue;
                    }
                    let msg = &child_msgs[si];
                    for (x, &m) in e.values.iter_mut().zip(msg.iter()) {
                        *x *= m;
                    }
                    for (sc, &ds) in e.scale.iter_mut().zip(down[sib].scale.iter()) {
                        *sc += ds;
                    }
                }
                // Rescale.
                for pat in 0..np {
                    let base = pat * stride;
                    let mx = e.values[base..base + stride]
                        .iter()
                        .fold(0.0f64, |a, &b| a.max(b));
                    if mx > 0.0 && mx != 1.0 {
                        let inv = 1.0 / mx;
                        for x in &mut e.values[base..base + stride] {
                            *x *= inv;
                        }
                        e.scale[pat] += mx.ln();
                    }
                }
                outside[c] = Some(e);
            }
        }
        outside
    }

    // Edge-outside partial for a single edge, computed only along the
    // root → v path (O(depth) node updates instead of O(n)).
    fn compute_edge_outside_one(&self, tree: &Tree, down: &[Partials], v: usize) -> Partials {
        let np = self.data.pattern_count();
        let ncat = self.ncat();
        let stride = self.stride();

        // Path of (parent, child) pairs from the root down to v.
        let mut path = Vec::new();
        let mut cur = v;
        while let Some(p) = tree.node(cur).parent {
            path.push((p, cur));
            cur = p;
        }
        path.reverse();

        // O at the root carries the stationary prior.
        let freqs = self.model.freqs();
        let mut o = Partials {
            values: vec![0.0; np * stride],
            scale: vec![0.0; np],
        };
        for pat in 0..np {
            for cat in 0..ncat {
                let base = pat * stride + cat * 4;
                o.values[base..base + 4].copy_from_slice(&freqs);
            }
        }

        for &(u, next) in &path {
            // E[next] = O[u] ⊙ Π_{w child of u, w ≠ next} (P_w · D[w]).
            let mut e = o;
            for &w in &tree.node(u).children {
                if w == next {
                    continue;
                }
                let pmats = self.model.transition_matrices(tree.branch_length(w));
                let d = &down[w];
                for pat in 0..np {
                    e.scale[pat] += d.scale[pat];
                    for (cat, pm) in pmats.iter().enumerate() {
                        let base = pat * stride + cat * 4;
                        let dv = &d.values[base..base + 4];
                        for s in 0..4 {
                            let msg = pm[s][0] * dv[0]
                                + pm[s][1] * dv[1]
                                + pm[s][2] * dv[2]
                                + pm[s][3] * dv[3];
                            e.values[base + s] *= msg;
                        }
                    }
                }
            }
            for pat in 0..np {
                let base = pat * stride;
                let mx = e.values[base..base + stride]
                    .iter()
                    .fold(0.0f64, |a, &b| a.max(b));
                if mx > 0.0 && mx != 1.0 {
                    let inv = 1.0 / mx;
                    for x in &mut e.values[base..base + stride] {
                        *x *= inv;
                    }
                    e.scale[pat] += mx.ln();
                }
            }
            if next == v {
                return e;
            }
            // Descend: O[next][s] = Σ_s' E[next][s'] · P_next[s'][s].
            let pmats = self.model.transition_matrices(tree.branch_length(next));
            let mut no = Partials {
                values: vec![0.0; np * stride],
                scale: e.scale.clone(),
            };
            for pat in 0..np {
                for (cat, pm) in pmats.iter().enumerate() {
                    let base = pat * stride + cat * 4;
                    let ev = &e.values[base..base + 4];
                    for s in 0..4 {
                        no.values[base + s] = ev[0] * pm[0][s]
                            + ev[1] * pm[1][s]
                            + ev[2] * pm[2][s]
                            + ev[3] * pm[3][s];
                    }
                }
            }
            o = no;
        }
        unreachable!("v must appear on its own root path");
    }

    // Log-likelihood seen across edge v, as a function of its branch
    // length t, given fixed D[v] and E[v].
    fn edge_log_likelihood(&self, down_v: &Partials, edge_v: &Partials, t: f64) -> f64 {
        let np = self.data.pattern_count();
        let stride = self.stride();
        let probs = &self.model.rate_categories().probs;
        let pmats = self.model.transition_matrices(t);
        let mut lnl = 0.0;
        for pat in 0..np {
            let mut site = 0.0;
            for (cat, pm) in pmats.iter().enumerate() {
                let base = pat * stride + cat * 4;
                let dv = &down_v.values[base..base + 4];
                let ev = &edge_v.values[base..base + 4];
                let mut cat_sum = 0.0;
                for s in 0..4 {
                    // E already carries the stationary prior from the
                    // root of the outside recursion.
                    let pd =
                        pm[s][0] * dv[0] + pm[s][1] * dv[1] + pm[s][2] * dv[2] + pm[s][3] * dv[3];
                    cat_sum += ev[s] * pd;
                }
                site += probs[cat] * cat_sum;
            }
            lnl += self.data.weights()[pat] * (site.ln() + down_v.scale[pat] + edge_v.scale[pat]);
        }
        lnl
    }

    /// Optimises the branch lengths of `edges` (or all edges when
    /// `None`) by Gauss–Seidel coordinate ascent with Brent's method;
    /// returns the final log-likelihood.
    ///
    /// Each edge is optimised exactly against *current* partials (which
    /// are recomputed after every accepted update), so the likelihood is
    /// monotonically non-decreasing. Sweeps repeat until the gain drops
    /// below `tol` or `max_rounds` is hit.
    pub fn optimize_edges(
        &self,
        tree: &mut Tree,
        edges: Option<&[usize]>,
        max_rounds: u32,
        tol: f64,
    ) -> f64 {
        let all_edges;
        let edges: &[usize] = match edges {
            Some(e) => e,
            None => {
                all_edges = tree.edges();
                &all_edges
            }
        };
        let mut best_lnl = self.log_likelihood(tree);
        for _ in 0..max_rounds {
            let round_start = best_lnl;
            for &v in edges {
                if v == tree.root() {
                    continue;
                }
                let down = self.compute_down(tree);
                let e = self.compute_edge_outside_one(tree, &down, v);
                let d = &down[v];
                let current = tree.branch_length(v);
                let f_current = self.edge_log_likelihood(d, &e, current);
                let r = brent_minimize(
                    |t| -self.edge_log_likelihood(d, &e, t),
                    MIN_BRANCH,
                    MAX_BRANCH,
                    1e-7,
                    64,
                );
                // Coordinate ascent: only accept genuine improvements;
                // the running total is re-anchored exactly below.
                if -r.fmin > f_current {
                    tree.set_branch_length(v, r.xmin.clamp(MIN_BRANCH, MAX_BRANCH));
                }
            }
            // Re-anchor on an exact evaluation (scale bookkeeping above
            // accumulates tiny drift over many edges).
            best_lnl = self.log_likelihood(tree);
            if best_lnl - round_start < tol {
                break;
            }
        }
        best_lnl
    }
}

/// Convenience wrapper: log-likelihood of `tree` under `model`.
pub fn log_likelihood(tree: &Tree, data: &PatternAlignment, model: &SubstModel) -> f64 {
    TreeLikelihood::new(model, data).log_likelihood(tree)
}

/// Convenience wrapper: optimises all branch lengths in place and
/// returns the final log-likelihood.
pub fn optimize_branch_lengths(
    tree: &mut Tree,
    data: &PatternAlignment,
    model: &SubstModel,
    max_rounds: u32,
) -> f64 {
    TreeLikelihood::new(model, data).optimize_edges(tree, None, max_rounds, 1e-4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GammaRates, ModelKind};
    use biodist_bioseq::{Alphabet, Sequence};

    fn seq(id: &str, text: &str) -> Sequence {
        Sequence::from_text(id, "", Alphabet::Dna, text).unwrap()
    }

    fn triple_tree(blen: f64) -> Tree {
        Tree::initial_triple([0, 1, 2], blen)
    }

    /// Brute-force likelihood by summing over all internal-node state
    /// assignments — exponential, but exact for tiny trees.
    fn brute_force_lnl(tree: &Tree, data: &PatternAlignment, model: &SubstModel) -> f64 {
        let freqs = model.freqs();
        let cats = model.rate_categories();
        let internal: Vec<usize> = (0..tree.node_count())
            .filter(|&i| !tree.node(i).is_leaf())
            .collect();
        let mut lnl = 0.0;
        for pat in 0..data.pattern_count() {
            let mut site = 0.0;
            for (ci, &rate) in cats.rates.iter().enumerate() {
                let mut cat_total = 0.0;
                let combos = 4usize.pow(internal.len() as u32);
                for combo in 0..combos {
                    let mut assign = std::collections::HashMap::new();
                    let mut rem = combo;
                    for &n in &internal {
                        assign.insert(n, rem % 4);
                        rem /= 4;
                    }
                    let mut prob = freqs[assign[&tree.root()]];
                    for v in tree.edges() {
                        let parent = tree.node(v).parent.unwrap();
                        let ps = assign[&parent];
                        let p = model.transition_matrix(tree.branch_length(v), rate);
                        let node = tree.node(v);
                        if let Some(taxon) = node.taxon {
                            let code = data.code(pat, taxon);
                            if code < 4 {
                                prob *= p[ps][code as usize];
                            } // missing data: sum over all states = row sum = 1
                        } else {
                            prob *= p[ps][assign[&v]];
                        }
                    }
                    cat_total += prob;
                }
                site += cats.probs[ci] * cat_total;
            }
            lnl += data.weights()[pat] * site.ln();
        }
        lnl
    }

    #[test]
    fn two_leaf_pair_matches_closed_form_jc69() {
        // For two taxa joined through the root with total distance d under
        // JC69: P(same site) = 1/4(1/4 + 3/4 e^{-4d/3}) etc. Use the
        // 3-taxon tree but make the third taxon all-missing so it is inert.
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTAC"),
            seq("b", "ACGTAT"),
            seq("c", "NNNNNN"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let tree = triple_tree(0.1);
        let lnl = log_likelihood(&tree, &data, &model);

        // Closed form: distance between a and b through the root is 0.2.
        let d: f64 = 0.2;
        let e = (-4.0 * d / 3.0).exp();
        let p_same = 0.25 * (0.25 + 0.75 * e);
        let p_diff = 0.25 * (0.25 - 0.25 * e);
        let expected = 5.0 * p_same.ln() + p_diff.ln();
        assert!(
            (lnl - expected).abs() < 1e-9,
            "pruning {lnl} vs closed form {expected}"
        );
    }

    #[test]
    fn pruning_matches_brute_force_three_taxa() {
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACGTAA"),
            seq("b", "ACGTACGTAC"),
            seq("c", "ACGAACGTTA"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Hky85 {
            kappa: 3.0,
            freqs: [0.3, 0.2, 0.3, 0.2],
        });
        let mut tree = triple_tree(0.15);
        tree.set_branch_length(2, 0.05);
        tree.set_branch_length(3, 0.4);
        let fast = log_likelihood(&tree, &data, &model);
        let slow = brute_force_lnl(&tree, &data, &model);
        assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    #[test]
    fn pruning_matches_brute_force_four_taxa_with_gamma() {
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACGT"),
            seq("b", "ACGTACGA"),
            seq("c", "ACGAACTT"),
            seq("d", "CCGAACTT"),
        ]);
        let model = SubstModel::new(ModelKind::K80 { kappa: 2.5 }, GammaRates::gamma(0.7, 3));
        let mut tree = triple_tree(0.1);
        tree.insert_leaf(1, 3, 0.2);
        let fast = log_likelihood(&tree, &data, &model);
        let slow = brute_force_lnl(&tree, &data, &model);
        assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    #[test]
    fn likelihood_invariant_under_pattern_compression() {
        // Likelihood must depend only on the site multiset.
        let seqs1 = [seq("a", "AAACGT"), seq("b", "AAACGA"), seq("c", "AATCGT")];
        let seqs2 = [seq("a", "ACGTAA"), seq("b", "ACGAAA"), seq("c", "TCGTAA")];
        let d1 = PatternAlignment::from_sequences(&seqs1);
        let d2 = PatternAlignment::from_sequences(&seqs2);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let tree = triple_tree(0.2);
        let l1 = log_likelihood(&tree, &d1, &model);
        let l2 = log_likelihood(&tree, &d2, &model);
        assert!((l1 - l2).abs() < 1e-10);
    }

    #[test]
    fn missing_data_row_does_not_change_likelihood_shape() {
        // A taxon of all Ns contributes a factor of 1 per site.
        let with_n = PatternAlignment::from_sequences(&[
            seq("a", "ACGT"),
            seq("b", "ACGA"),
            seq("c", "NNNN"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let tree = triple_tree(0.1);
        let lnl = log_likelihood(&tree, &with_n, &model);
        assert!(lnl.is_finite());
        assert!(lnl < 0.0);
    }

    #[test]
    fn longer_wrong_branches_lower_likelihood_of_identical_data() {
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACGTACGT"),
            seq("b", "ACGTACGTACGT"),
            seq("c", "ACGTACGTACGT"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let short = log_likelihood(&triple_tree(0.01), &data, &model);
        let long = log_likelihood(&triple_tree(1.0), &data, &model);
        assert!(short > long, "identical sequences favour short branches");
    }

    #[test]
    fn branch_optimisation_improves_likelihood_and_converges() {
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACGTACGTACGTTTAA"),
            seq("b", "ACGTACGAACGTACGTTTAC"),
            seq("c", "AAGTACGAACGAACGTTTCC"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let mut tree = triple_tree(0.9); // far from optimal
        let before = log_likelihood(&tree, &data, &model);
        let after = optimize_branch_lengths(&mut tree, &data, &model, 20);
        assert!(after > before, "{after} should beat {before}");
        // Re-optimising from the optimum should gain (almost) nothing.
        let again = optimize_branch_lengths(&mut tree, &data, &model, 20);
        assert!((again - after).abs() < 1e-3);
    }

    #[test]
    fn optimized_pair_distance_matches_jc_formula() {
        // With two informative taxa (third all-N), the ML distance between
        // them under JC69 has the closed form −3/4 ln(1 − 4p̂/3).
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACGTACGTACGTACGT"),
            seq("b", "ACGTACGAACGTACTTACGA"), // 3 differences out of 20
            seq("c", "NNNNNNNNNNNNNNNNNNNN"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let mut tree = triple_tree(0.3);
        optimize_branch_lengths(&mut tree, &data, &model, 30);
        let d_hat = tree.branch_length(1) + tree.branch_length(2);
        let p: f64 = 3.0 / 20.0;
        let expected = -0.75 * (1.0 - 4.0 * p / 3.0).ln();
        assert!(
            (d_hat - expected).abs() < 5e-3,
            "ML distance {d_hat} vs JC formula {expected}"
        );
    }

    #[test]
    fn edge_likelihood_agrees_with_full_likelihood() {
        // The edge decomposition evaluated at the current branch length
        // must equal the root-based likelihood, for every edge.
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACTA"),
            seq("b", "ACGAACTT"),
            seq("c", "TCGAACTT"),
            seq("d", "TCGAACGT"),
        ]);
        let model = SubstModel::new(
            ModelKind::Hky85 {
                kappa: 2.0,
                freqs: [0.3, 0.2, 0.2, 0.3],
            },
            GammaRates::gamma(0.5, 4),
        );
        let mut tree = triple_tree(0.1);
        tree.insert_leaf(2, 3, 0.3);
        let engine = TreeLikelihood::new(&model, &data);
        let full = engine.log_likelihood(&tree);
        let down = engine.compute_down(&tree);
        let outside = engine.compute_edge_outside(&tree, &down);
        for v in tree.edges() {
            let e = outside[v].as_ref().expect("edge partial exists");
            let via_edge = engine.edge_log_likelihood(&down[v], e, tree.branch_length(v));
            assert!(
                (via_edge - full).abs() < 1e-8,
                "edge {v}: {via_edge} vs {full}"
            );
        }
    }

    #[test]
    fn scaling_keeps_large_trees_finite() {
        // 40 taxa, long branches: unscaled partials would underflow.
        let n = 40;
        let mut rng = biodist_util::rng::Xoshiro256StarStar::new(3);
        use biodist_util::rng::Rng;
        let seqs: Vec<Sequence> = (0..n)
            .map(|i| {
                let codes: Vec<u8> = (0..60).map(|_| rng.next_below(4) as u8).collect();
                Sequence::from_codes(&format!("t{i}"), Alphabet::Dna, codes)
            })
            .collect();
        let data = PatternAlignment::from_sequences(&seqs);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let mut tree = Tree::initial_triple([0, 1, 2], 0.5);
        for t in 3..n {
            let edges = tree.edges();
            let e = edges[t % edges.len()];
            tree.insert_leaf(e, t, 0.5);
        }
        let lnl = log_likelihood(&tree, &data, &model);
        assert!(lnl.is_finite(), "lnL must not underflow: {lnl}");
        assert!(lnl < 0.0);
    }
}
