//! Felsenstein-pruning log-likelihood and branch-length optimisation.
//!
//! The engine keeps, for every node `v`, *downward* conditional
//! likelihoods `D[v]` (data below `v` given the state at `v`) computed
//! in one postorder pass, and — when optimising — *edge-outside*
//! partials `E[v]` (data outside the subtree of `v`, given the state at
//! `v`'s parent, excluding `v`'s own branch) computed in one preorder
//! pass. The likelihood of the whole tree can then be written for any
//! edge `v→u` as
//!
//! ```text
//! L = Σ_pattern w · Σ_cat prob · Σ_s π_s · E[v][s] · (P_v(t)·D[v])[s]
//! ```
//!
//! which depends on the branch length `t` of that edge only through
//! `P_v(t)` — so Brent's method can optimise each branch at the cost of
//! a 4×4 matrix–vector product per evaluation instead of a full
//! traversal. Per-pattern scaling keeps partials in range for large
//! trees; reversibility lets the stationary prior sit at either end of
//! an edge.
//!
//! # Backends
//!
//! Two implementations live behind one API, selected per engine by
//! [`LikBackend`]:
//!
//! * **Scalar** — the original engine: array-of-structs partials
//!   (`[pattern][category][state]`), per-node rescaling, fresh
//!   allocations per traversal. Kept as the parity oracle and the
//!   baseline that `BENCH_likelihood.json` measures speedups against.
//! * **Portable / SSE2 / AVX2** — SoA partials
//!   (`[category][state][pattern]`, pattern axis padded to SIMD width)
//!   processed in `f64` lanes by the kernels in [`crate::lik_simd`],
//!   with four structural optimisations on top of the vectorisation:
//!   leaf tips become 5-entry lookup tables instead of materialised
//!   partials, rescaling happens only when a hoisted lane-wide max
//!   check finds a pattern outside `[1e-80, 1e80]` (instead of a `ln()`
//!   per pattern per node), transition matrices are cached per
//!   (branch-length bits) and shared across every candidate evaluation
//!   in a DPRml stage, and partials buffers are pooled so Brent
//!   iterations and stage candidates reallocate nothing.
//!
//! The three SIMD backends are bit-identical to each other (pinned by
//! the parity suite); they differ from Scalar only through the scaling
//! policy, at ~1e-12 relative error on the log-likelihood.

use crate::lik_simd::{self, LikBackend, Mat4};
use crate::model::SubstModel;
use crate::patterns::PatternAlignment;
use crate::tree::{Tree, MIN_BRANCH};
use biodist_util::optim::brent_minimize;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Largest branch length the optimiser will propose.
pub const MAX_BRANCH: f64 = 10.0;

/// SIMD-path rescale thresholds: a pattern is renormalised only when
/// its magnitude leaves this range. Partials enter edge products as
/// `D·E`, so the low bound must keep squares well clear of the
/// denormal floor (1e-160 ≫ 5e-324).
const SCALE_LOW: f64 = 1e-80;
const SCALE_HIGH: f64 = 1e80;

/// Transition-matrix cache bound; reached only by pathological
/// branch-length churn, in which case the cache is dropped and rebuilt.
const PMAT_CACHE_CAP: usize = 4096;

// The pmat cache is keyed by branch-length bits, which are already
// well-mixed doubles — a multiplicative hash beats SipHash on the hot
// per-node lookup path.
#[derive(Debug, Clone, Default)]
struct BitsHashBuilder;

#[derive(Default)]
struct BitsHasher(u64);

impl std::hash::Hasher for BitsHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl std::hash::BuildHasher for BitsHashBuilder {
    type Hasher = BitsHasher;

    fn build_hasher(&self) -> BitsHasher {
        BitsHasher(0)
    }
}

/// A likelihood engine bound to one model and one alignment.
#[derive(Debug, Clone)]
pub struct TreeLikelihood<'a> {
    model: &'a SubstModel,
    data: &'a PatternAlignment,
    backend: LikBackend,
    /// Pattern count rounded up to the SoA lane padding.
    npad: usize,
    /// `codes_by_taxon[taxon][pattern]` — the transpose of the pattern
    /// matrix, so leaf lookups walk contiguous memory.
    codes_by_taxon: Vec<Vec<u8>>,
    /// Recycled partials buffers (SIMD path only).
    pool: RefCell<Vec<Partials>>,
    /// `P_v(t)` cache keyed by branch-length bits. Only branch lengths
    /// that live on a tree enter the cache; Brent's transient proposals
    /// are evaluated through `tmp_pmats` so they cannot pollute it.
    pmats: RefCell<HashMap<u64, Rc<EdgePmats>, BitsHashBuilder>>,
    pmat_hits: Cell<u64>,
    pmat_misses: Cell<u64>,
    /// Reused matrices for cache-miss edge evaluations.
    tmp_pmats: RefCell<EdgePmats>,
    /// Spectral weights for the coefficient branch-length objective,
    /// replicated per rate category so `product_into` applies them as
    /// node-update matrices: `coef_wa[cat][k][s] = π_s·U[s][k]`,
    /// `coef_wb[cat][k][j] = U⁻¹[k][j]`.
    coef_wa: Vec<Mat4>,
    coef_wb: Vec<Mat4>,
    /// Leaf form of `coef_wb`: `U⁻¹[k][code]`, row sum for code 4.
    coef_lutb: [[f64; 5]; 4],
    scratch: RefCell<Scratch>,
}

// Per-node partials. Scalar layout: flat [pattern][category][state]
// plus a per-pattern log-scale accumulator. SIMD layout:
// [category][state][pattern], pattern axis padded to `npad`.
#[derive(Debug, Clone, Default)]
struct Partials {
    values: Vec<f64>,
    scale: Vec<f64>,
}

/// Everything derived from one `(edge, branch length)`: per-category
/// transition matrices, their transposes (for descending the outside
/// recursion), and per-category leaf lookup tables
/// `lut[cat][s][code]` = `P[s][code]` for real codes, row sum for the
/// ambiguity code 4.
#[derive(Debug, Clone, Default)]
struct EdgePmats {
    mats: Vec<Mat4>,
    mats_t: Vec<Mat4>,
    lut: Vec<[[f64; 5]; 4]>,
}

#[derive(Debug, Clone)]
struct Scratch {
    /// Per-pattern site likelihoods (root / edge reductions).
    site: Vec<f64>,
    /// Per-pattern maxima for the hoisted rescale check.
    mx: Vec<f64>,
    /// `ev[cat][k] = prob·e^{λ_k·r·t}` for the coefficient objective.
    ev: Vec<[f64; 4]>,
}

// Leaf tip × transition matrix, fused: the child message of a leaf is
// a lookup `lut[cat][s][code]`, never a materialised partial. Exact
// (the skipped terms of the dot product are multiplications by 0/1),
// so this stays bit-compatible with the generic kernel contract.
fn leaf_product_into(
    dst: &mut [f64],
    codes: &[u8],
    lut: &[[[f64; 5]; 4]],
    npad: usize,
    assign: bool,
) {
    for (cat, lc) in lut.iter().enumerate() {
        for (s, tbl) in lc.iter().enumerate() {
            let row = &mut dst[(cat * 4 + s) * npad..][..npad];
            if assign {
                for (x, &c) in row.iter_mut().zip(codes.iter()) {
                    *x = tbl[c as usize];
                }
                row[codes.len()..].fill(0.0);
            } else {
                for (x, &c) in row.iter_mut().zip(codes.iter()) {
                    *x *= tbl[c as usize];
                }
            }
        }
    }
}

// Edge reduction when the lower endpoint is a leaf:
// `site[pat] = Σ_cat prob · Σ_s E[cat][s][pat] · lut[cat][s][code]`.
fn leaf_edge_site_sums(
    site: &mut [f64],
    codes: &[u8],
    edge: &[f64],
    lut: &[[[f64; 5]; 4]],
    probs: &[f64],
    npad: usize,
) {
    for (pat, &code) in codes.iter().enumerate() {
        let c = code as usize;
        let mut total = 0.0;
        for (cat, lc) in lut.iter().enumerate() {
            let base = cat * 4 * npad;
            let mut cat_sum = 0.0;
            for s in 0..4 {
                cat_sum += edge[base + s * npad + pat] * lc[s][c];
            }
            total += probs[cat] * cat_sum;
        }
        site[pat] = total;
    }
}

impl<'a> TreeLikelihood<'a> {
    /// Binds a model to an alignment, selecting the widest supported
    /// SIMD backend (`BIODIST_LIK_BACKEND` overrides detection).
    pub fn new(model: &'a SubstModel, data: &'a PatternAlignment) -> Self {
        Self::with_backend(model, data, LikBackend::select())
    }

    /// Binds a model to an alignment with an explicit backend (benches
    /// and parity tests; `backend` must be supported by the CPU).
    pub fn with_backend(
        model: &'a SubstModel,
        data: &'a PatternAlignment,
        backend: LikBackend,
    ) -> Self {
        assert!(
            backend.is_supported(),
            "likelihood backend {} is not supported on this CPU",
            backend.name()
        );
        let np = data.pattern_count();
        let npad = lik_simd::padded(np);
        let codes_by_taxon = (0..data.taxon_count())
            .map(|t| (0..np).map(|p| data.code(p, t)).collect())
            .collect();
        let ncat = model.rate_categories().ncat();
        let (_, u, u_inv) = model.eigen_system();
        let freqs = model.freqs();
        let wa: Mat4 = std::array::from_fn(|k| std::array::from_fn(|s| freqs[s] * u[s][k]));
        let lutb: [[f64; 5]; 4] = std::array::from_fn(|k| {
            let r = &u_inv[k];
            [r[0], r[1], r[2], r[3], ((r[0] + r[1]) + r[2]) + r[3]]
        });
        Self {
            model,
            data,
            backend,
            npad,
            codes_by_taxon,
            pool: RefCell::new(Vec::new()),
            pmats: RefCell::new(HashMap::with_hasher(BitsHashBuilder)),
            pmat_hits: Cell::new(0),
            pmat_misses: Cell::new(0),
            tmp_pmats: RefCell::new(EdgePmats::default()),
            coef_wa: vec![wa; ncat],
            coef_wb: vec![*u_inv; ncat],
            coef_lutb: lutb,
            scratch: RefCell::new(Scratch {
                site: vec![0.0; npad],
                mx: vec![0.0; npad],
                ev: vec![[0.0; 4]; ncat],
            }),
        }
    }

    /// The alignment in use.
    pub fn data(&self) -> &PatternAlignment {
        self.data
    }

    /// The model in use.
    pub fn model(&self) -> &SubstModel {
        self.model
    }

    /// The kernel implementation this engine dispatches to.
    pub fn backend(&self) -> LikBackend {
        self.backend
    }

    /// Transition-matrix cache `(hits, misses)` since construction —
    /// surfaces as the `lik.pmat_cache_hits`/`lik.pmat_cache_misses`
    /// metrics.
    pub fn pmat_cache_stats(&self) -> (u64, u64) {
        (self.pmat_hits.get(), self.pmat_misses.get())
    }

    #[inline]
    fn ncat(&self) -> usize {
        self.model.rate_categories().ncat()
    }

    #[inline]
    fn stride(&self) -> usize {
        self.ncat() * 4
    }

    /// Abstract cost of one full pruning traversal, in "node updates"
    /// (pattern × category × 4×4 products). Used by the scheduler and
    /// the simulator as the work-unit cost model.
    pub fn traversal_cost(&self, tree: &Tree) -> u64 {
        (tree.node_count() as u64) * (self.data.pattern_count() as u64) * (self.ncat() as u64)
    }

    // ---------------------------------------------------- buffer pool

    // A partials buffer sized for the SoA layout, recycled from the
    // pool when possible. `values` is NOT zeroed: every consumer's
    // first write is an assignment (`leaf_product_into`/`product_into`
    // with `assign`, or an explicit row fill).
    fn acquire(&self) -> Partials {
        let np = self.data.pattern_count();
        let len = self.stride() * self.npad;
        let mut p = self.pool.borrow_mut().pop().unwrap_or_default();
        p.values.resize(len, 0.0);
        p.scale.clear();
        p.scale.resize(np, 0.0);
        p
    }

    fn recycle(&self, p: Partials) {
        // The scalar baseline keeps its historical allocate-per-
        // traversal behaviour; pooling is part of what the bench
        // measures against it.
        if self.backend != LikBackend::Scalar && !p.values.is_empty() {
            self.pool.borrow_mut().push(p);
        }
    }

    fn recycle_vec(&self, parts: Vec<Partials>) {
        for p in parts {
            self.recycle(p);
        }
    }

    // --------------------------------------------- pmat cache (SIMD)

    fn fill_edge_pmats(&self, t: f64, out: &mut EdgePmats) {
        let cats = self.model.rate_categories();
        let ncat = cats.ncat();
        out.mats.clear();
        out.mats_t.resize(ncat, [[0.0; 4]; 4]);
        out.lut.resize(ncat, [[0.0; 5]; 4]);
        for (cat, &rate) in cats.rates.iter().enumerate() {
            let pm = self.model.transition_matrix(t, rate);
            for s in 0..4 {
                for j in 0..4 {
                    out.mats_t[cat][s][j] = pm[j][s];
                    out.lut[cat][s][j] = pm[s][j];
                }
                // Ambiguity column: row sum, associated exactly like
                // the generic dot product against an all-ones child.
                out.lut[cat][s][4] = ((pm[s][0] + pm[s][1]) + pm[s][2]) + pm[s][3];
            }
            out.mats.push(pm);
        }
    }

    // Cached matrices for a branch length that lives on a tree.
    fn edge_pmats(&self, t: f64) -> Rc<EdgePmats> {
        let key = t.to_bits();
        if let Some(p) = self.pmats.borrow().get(&key) {
            self.pmat_hits.set(self.pmat_hits.get() + 1);
            return Rc::clone(p);
        }
        self.pmat_misses.set(self.pmat_misses.get() + 1);
        let mut e = EdgePmats::default();
        self.fill_edge_pmats(t, &mut e);
        let entry = Rc::new(e);
        let mut cache = self.pmats.borrow_mut();
        if cache.len() >= PMAT_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Rc::clone(&entry));
        entry
    }

    // Rescales only the patterns whose magnitude left
    // [SCALE_LOW, SCALE_HIGH]. The common case — nothing to do — costs
    // one SIMD max-reduction plus a scalar scan, instead of the
    // scalar path's ln() per pattern per node.
    fn rescale_if_needed(&self, p: &mut Partials) {
        let np = self.data.pattern_count();
        let nrows = self.stride();
        let mut scratch = self.scratch.borrow_mut();
        lik_simd::row_max(self.backend, &p.values, nrows, self.npad, &mut scratch.mx);
        let out_of_range = |m: f64| m > 0.0 && !(SCALE_LOW..=SCALE_HIGH).contains(&m);
        if !scratch.mx[..np].iter().any(|&m| out_of_range(m)) {
            return;
        }
        for pat in 0..np {
            let mx = scratch.mx[pat];
            if out_of_range(mx) {
                let inv = 1.0 / mx;
                for r in 0..nrows {
                    p.values[r * self.npad + pat] *= inv;
                }
                p.scale[pat] += mx.ln();
            }
        }
    }

    // ------------------------------------------------ downward passes

    // Downward pass, dispatched by backend. On the SIMD path only
    // internal nodes carry partials — leaf entries stay empty, their
    // contribution is folded in through lookup tables.
    fn compute_down(&self, tree: &Tree) -> Vec<Partials> {
        if self.backend == LikBackend::Scalar {
            self.compute_down_scalar(tree)
        } else {
            self.compute_down_simd(tree)
        }
    }

    // Recomputes the down partial of one internal node from its
    // children's current partials (leaf children via lookup tables).
    fn update_internal_node(&self, tree: &Tree, down: &[Partials], u: usize) -> Partials {
        let npad = self.npad;
        let mut p = self.acquire();
        let mut first = true;
        for &c in &tree.node(u).children {
            let pm = self.edge_pmats(tree.branch_length(c));
            if let Some(taxon) = tree.node(c).taxon {
                leaf_product_into(
                    &mut p.values,
                    &self.codes_by_taxon[taxon],
                    &pm.lut,
                    npad,
                    first,
                );
            } else {
                let child = &down[c];
                lik_simd::product_into(
                    self.backend,
                    &mut p.values,
                    &child.values,
                    &pm.mats,
                    npad,
                    first,
                );
                for (sc, &cs) in p.scale.iter_mut().zip(child.scale.iter()) {
                    *sc += cs;
                }
            }
            first = false;
        }
        self.rescale_if_needed(&mut p);
        p
    }

    fn compute_down_simd(&self, tree: &Tree) -> Vec<Partials> {
        let mut parts: Vec<Partials> = (0..tree.node_count())
            .map(|_| Partials::default())
            .collect();
        for v in tree.postorder() {
            if tree.node(v).is_leaf() {
                continue;
            }
            parts[v] = self.update_internal_node(tree, &parts, v);
        }
        parts
    }

    // After edge v's branch length changed, only v's ancestors see
    // different data below them: recompute just the root path,
    // bottom-up. The result is bit-identical to a fresh postorder pass.
    fn refresh_down_path(&self, tree: &Tree, down: &mut [Partials], v: usize) {
        let mut cur = tree.node(v).parent;
        while let Some(u) = cur {
            let p = self.update_internal_node(tree, down, u);
            let old = std::mem::replace(&mut down[u], p);
            self.recycle(old);
            cur = tree.node(u).parent;
        }
    }

    // The original engine, kept verbatim as the Scalar backend.
    fn compute_down_scalar(&self, tree: &Tree) -> Vec<Partials> {
        let np = self.data.pattern_count();
        let ncat = self.ncat();
        let stride = self.stride();
        let mut parts: Vec<Option<Partials>> = (0..tree.node_count()).map(|_| None).collect();

        for v in tree.postorder() {
            let node = tree.node(v);
            let mut p = Partials {
                values: vec![1.0; np * stride],
                scale: vec![0.0; np],
            };
            if node.is_leaf() {
                let taxon = node.taxon.expect("leaf has taxon");
                for pat in 0..np {
                    let code = self.data.code(pat, taxon);
                    if code < 4 {
                        for cat in 0..ncat {
                            let base = pat * stride + cat * 4;
                            for s in 0..4 {
                                p.values[base + s] = if s == code as usize { 1.0 } else { 0.0 };
                            }
                        }
                    }
                    // Ambiguity (code 4): all-ones = missing data.
                }
            } else {
                for &c in &node.children {
                    let child = parts[c].as_ref().expect("postorder: child computed");
                    let pmats = self.model.transition_matrices(tree.branch_length(c));
                    for pat in 0..np {
                        p.scale[pat] += child.scale[pat];
                        for (cat, pm) in pmats.iter().enumerate() {
                            let base = pat * stride + cat * 4;
                            let cv = &child.values[base..base + 4];
                            for s in 0..4 {
                                let dot = pm[s][0] * cv[0]
                                    + pm[s][1] * cv[1]
                                    + pm[s][2] * cv[2]
                                    + pm[s][3] * cv[3];
                                p.values[base + s] *= dot;
                            }
                        }
                    }
                }
                // Per-pattern rescale.
                for pat in 0..np {
                    let base = pat * stride;
                    let mx = p.values[base..base + stride]
                        .iter()
                        .fold(0.0f64, |a, &b| a.max(b));
                    if mx > 0.0 && mx != 1.0 {
                        let inv = 1.0 / mx;
                        for x in &mut p.values[base..base + stride] {
                            *x *= inv;
                        }
                        p.scale[pat] += mx.ln();
                    }
                }
            }
            parts[v] = Some(p);
        }
        parts
            .into_iter()
            .map(|p| p.expect("all nodes visited"))
            .collect()
    }

    /// Log-likelihood of the tree.
    pub fn log_likelihood(&self, tree: &Tree) -> f64 {
        debug_assert!(tree.validate().is_ok());
        let down = self.compute_down(tree);
        let lnl = self.root_log_likelihood(tree, &down);
        self.recycle_vec(down);
        lnl
    }

    fn root_log_likelihood(&self, tree: &Tree, down: &[Partials]) -> f64 {
        if self.backend == LikBackend::Scalar {
            return self.root_log_likelihood_scalar(tree, down);
        }
        let np = self.data.pattern_count();
        let freqs = self.model.freqs();
        let probs = &self.model.rate_categories().probs;
        let root = &down[tree.root()];
        let mut scratch = self.scratch.borrow_mut();
        lik_simd::root_site_sums(
            self.backend,
            &root.values,
            &freqs,
            probs,
            &mut scratch.site,
            self.npad,
        );
        // Padding slots hold 0 after the sums; park them at 1 (ln = 0)
        // so the vectorised ln pass never sees them.
        scratch.site[np..].fill(1.0);
        lik_simd::ln_into(self.backend, &mut scratch.site);
        let weights = self.data.weights();
        let mut lnl = 0.0;
        for pat in 0..np {
            lnl += weights[pat] * (scratch.site[pat] + root.scale[pat]);
        }
        lnl
    }

    fn root_log_likelihood_scalar(&self, tree: &Tree, down: &[Partials]) -> f64 {
        let np = self.data.pattern_count();
        let ncat = self.ncat();
        let stride = self.stride();
        let freqs = self.model.freqs();
        let probs = &self.model.rate_categories().probs;
        let root = &down[tree.root()];
        let mut lnl = 0.0;
        for pat in 0..np {
            let mut site = 0.0;
            for (cat, &prob) in probs.iter().enumerate().take(ncat) {
                let base = pat * stride + cat * 4;
                let v = &root.values[base..base + 4];
                site +=
                    prob * (freqs[0] * v[0] + freqs[1] * v[1] + freqs[2] * v[2] + freqs[3] * v[3]);
            }
            lnl += self.data.weights()[pat] * (site.ln() + root.scale[pat]);
        }
        lnl
    }

    // ------------------------------------------------- outside passes

    // Edge-outside partials E[v] for every non-root node, preorder
    // (scalar layout only). The batch variant is kept as the reference
    // implementation that the O(depth) single-edge variant is tested
    // against.
    #[cfg_attr(not(test), allow(dead_code))]
    fn compute_edge_outside(&self, tree: &Tree, down: &[Partials]) -> Vec<Option<Partials>> {
        debug_assert_eq!(self.backend, LikBackend::Scalar);
        let np = self.data.pattern_count();
        let ncat = self.ncat();
        let stride = self.stride();
        let n = tree.node_count();
        let mut outside: Vec<Option<Partials>> = (0..n).map(|_| None).collect();

        // Preorder: parents before children.
        let mut order = tree.postorder();
        order.reverse();

        for u in order {
            let node = tree.node(u);
            if node.is_leaf() {
                continue;
            }
            // O[u]: outside partial at u itself (includes u's branch and
            // the stationary prior, which lives at the root of the
            // outside recursion — placing it anywhere else is only valid
            // for symmetric P matrices).
            let (o_values, o_scale): (Vec<f64>, Vec<f64>) = if u == tree.root() {
                let freqs = self.model.freqs();
                let mut vals = vec![0.0; np * stride];
                for pat in 0..np {
                    for cat in 0..ncat {
                        let base = pat * stride + cat * 4;
                        vals[base..base + 4].copy_from_slice(&freqs);
                    }
                }
                (vals, vec![0.0; np])
            } else {
                let e = outside[u].as_ref().expect("preorder: E[u] computed");
                let pmats = self.model.transition_matrices(tree.branch_length(u));
                let mut vals = vec![0.0; np * stride];
                for pat in 0..np {
                    for (cat, pm) in pmats.iter().enumerate() {
                        let base = pat * stride + cat * 4;
                        let ev = &e.values[base..base + 4];
                        for s in 0..4 {
                            // O[u][s] = Σ_s' E[u][s'] P[s'][s]
                            vals[base + s] = ev[0] * pm[0][s]
                                + ev[1] * pm[1][s]
                                + ev[2] * pm[2][s]
                                + ev[3] * pm[3][s];
                        }
                    }
                }
                (vals, e.scale.clone())
            };

            // Precompute (P_c · D[c]) for every child of u.
            let children = node.children.clone();
            let mut child_msgs: Vec<Vec<f64>> = Vec::with_capacity(children.len());
            for &c in &children {
                let pmats = self.model.transition_matrices(tree.branch_length(c));
                let d = &down[c];
                let mut msg = vec![0.0; np * stride];
                for pat in 0..np {
                    for (cat, pm) in pmats.iter().enumerate() {
                        let base = pat * stride + cat * 4;
                        let dv = &d.values[base..base + 4];
                        for s in 0..4 {
                            msg[base + s] = pm[s][0] * dv[0]
                                + pm[s][1] * dv[1]
                                + pm[s][2] * dv[2]
                                + pm[s][3] * dv[3];
                        }
                    }
                }
                child_msgs.push(msg);
            }

            for (ci, &c) in children.iter().enumerate() {
                // E[c] = O[u] ⊙ Π_{siblings} msg.
                let mut e = Partials {
                    values: o_values.clone(),
                    scale: o_scale.clone(),
                };
                for (si, &sib) in children.iter().enumerate() {
                    if si == ci {
                        continue;
                    }
                    let msg = &child_msgs[si];
                    for (x, &m) in e.values.iter_mut().zip(msg.iter()) {
                        *x *= m;
                    }
                    for (sc, &ds) in e.scale.iter_mut().zip(down[sib].scale.iter()) {
                        *sc += ds;
                    }
                }
                // Rescale.
                for pat in 0..np {
                    let base = pat * stride;
                    let mx = e.values[base..base + stride]
                        .iter()
                        .fold(0.0f64, |a, &b| a.max(b));
                    if mx > 0.0 && mx != 1.0 {
                        let inv = 1.0 / mx;
                        for x in &mut e.values[base..base + stride] {
                            *x *= inv;
                        }
                        e.scale[pat] += mx.ln();
                    }
                }
                outside[c] = Some(e);
            }
        }
        outside
    }

    // Edge-outside partial for a single edge, computed only along the
    // root → v path (O(depth) node updates instead of O(n)).
    fn compute_edge_outside_one(&self, tree: &Tree, down: &[Partials], v: usize) -> Partials {
        if self.backend == LikBackend::Scalar {
            self.compute_edge_outside_one_scalar(tree, down, v)
        } else {
            self.compute_edge_outside_one_simd(tree, down, v)
        }
    }

    fn compute_edge_outside_one_simd(&self, tree: &Tree, down: &[Partials], v: usize) -> Partials {
        let np = self.data.pattern_count();
        let npad = self.npad;

        // Path of (parent, child) pairs from the root down to v.
        let mut path = Vec::new();
        let mut cur = v;
        while let Some(p) = tree.node(cur).parent {
            path.push((p, cur));
            cur = p;
        }
        path.reverse();

        // O at the root carries the stationary prior.
        let freqs = self.model.freqs();
        let mut o = self.acquire();
        for cat in 0..self.ncat() {
            for s in 0..4 {
                let row = &mut o.values[(cat * 4 + s) * npad..][..npad];
                row[..np].fill(freqs[s]);
                row[np..].fill(0.0);
            }
        }

        for &(u, next) in &path {
            // E[next] = O[u] ⊙ Π_{w child of u, w ≠ next} (P_w · D[w]).
            let mut e = o;
            for &w in &tree.node(u).children {
                if w == next {
                    continue;
                }
                let pm = self.edge_pmats(tree.branch_length(w));
                if let Some(taxon) = tree.node(w).taxon {
                    leaf_product_into(
                        &mut e.values,
                        &self.codes_by_taxon[taxon],
                        &pm.lut,
                        npad,
                        false,
                    );
                } else {
                    let d = &down[w];
                    lik_simd::product_into(
                        self.backend,
                        &mut e.values,
                        &d.values,
                        &pm.mats,
                        npad,
                        false,
                    );
                    for (sc, &ds) in e.scale.iter_mut().zip(d.scale.iter()) {
                        *sc += ds;
                    }
                }
            }
            self.rescale_if_needed(&mut e);
            if next == v {
                return e;
            }
            // Descend: O[next][s] = Σ_s' E[next][s'] · P_next[s'][s],
            // i.e. a product against the transposed matrices.
            let pm = self.edge_pmats(tree.branch_length(next));
            let mut no = self.acquire();
            lik_simd::product_into(
                self.backend,
                &mut no.values,
                &e.values,
                &pm.mats_t,
                npad,
                true,
            );
            no.scale.copy_from_slice(&e.scale);
            self.recycle(e);
            o = no;
        }
        unreachable!("v must appear on its own root path");
    }

    fn compute_edge_outside_one_scalar(
        &self,
        tree: &Tree,
        down: &[Partials],
        v: usize,
    ) -> Partials {
        let np = self.data.pattern_count();
        let ncat = self.ncat();
        let stride = self.stride();

        // Path of (parent, child) pairs from the root down to v.
        let mut path = Vec::new();
        let mut cur = v;
        while let Some(p) = tree.node(cur).parent {
            path.push((p, cur));
            cur = p;
        }
        path.reverse();

        // O at the root carries the stationary prior.
        let freqs = self.model.freqs();
        let mut o = Partials {
            values: vec![0.0; np * stride],
            scale: vec![0.0; np],
        };
        for pat in 0..np {
            for cat in 0..ncat {
                let base = pat * stride + cat * 4;
                o.values[base..base + 4].copy_from_slice(&freqs);
            }
        }

        for &(u, next) in &path {
            // E[next] = O[u] ⊙ Π_{w child of u, w ≠ next} (P_w · D[w]).
            let mut e = o;
            for &w in &tree.node(u).children {
                if w == next {
                    continue;
                }
                let pmats = self.model.transition_matrices(tree.branch_length(w));
                let d = &down[w];
                for pat in 0..np {
                    e.scale[pat] += d.scale[pat];
                    for (cat, pm) in pmats.iter().enumerate() {
                        let base = pat * stride + cat * 4;
                        let dv = &d.values[base..base + 4];
                        for s in 0..4 {
                            let msg = pm[s][0] * dv[0]
                                + pm[s][1] * dv[1]
                                + pm[s][2] * dv[2]
                                + pm[s][3] * dv[3];
                            e.values[base + s] *= msg;
                        }
                    }
                }
            }
            for pat in 0..np {
                let base = pat * stride;
                let mx = e.values[base..base + stride]
                    .iter()
                    .fold(0.0f64, |a, &b| a.max(b));
                if mx > 0.0 && mx != 1.0 {
                    let inv = 1.0 / mx;
                    for x in &mut e.values[base..base + stride] {
                        *x *= inv;
                    }
                    e.scale[pat] += mx.ln();
                }
            }
            if next == v {
                return e;
            }
            // Descend: O[next][s] = Σ_s' E[next][s'] · P_next[s'][s].
            let pmats = self.model.transition_matrices(tree.branch_length(next));
            let mut no = Partials {
                values: vec![0.0; np * stride],
                scale: e.scale.clone(),
            };
            for pat in 0..np {
                for (cat, pm) in pmats.iter().enumerate() {
                    let base = pat * stride + cat * 4;
                    let ev = &e.values[base..base + 4];
                    for s in 0..4 {
                        no.values[base + s] = ev[0] * pm[0][s]
                            + ev[1] * pm[1][s]
                            + ev[2] * pm[2][s]
                            + ev[3] * pm[3][s];
                    }
                }
            }
            o = no;
        }
        unreachable!("v must appear on its own root path");
    }

    // ------------------------------------------------ edge likelihood

    // Log-likelihood seen across edge v, as a function of its branch
    // length t, given fixed D[v] (taken from `down`) and E[v].
    fn edge_log_likelihood(
        &self,
        tree: &Tree,
        down: &[Partials],
        edge_v: &Partials,
        v: usize,
        t: f64,
    ) -> f64 {
        if self.backend == LikBackend::Scalar {
            return self.edge_log_likelihood_scalar(&down[v], edge_v, t);
        }
        let np = self.data.pattern_count();
        let probs = &self.model.rate_categories().probs;
        // Brent proposes a fresh t almost every call: look the matrices
        // up in the cache (hit for the anchor evaluation at the current
        // branch length), but compute misses into the reusable scratch
        // entry instead of inserting — proposals are never seen again
        // and would only pollute the cache. Transient computations are
        // deliberately not counted as misses; the miss counter tracks
        // reusable entries built by `edge_pmats`, so hits/misses reads
        // as the cache's reuse ratio.
        let key = t.to_bits();
        let cached = self.pmats.borrow().get(&key).cloned();
        let tmp_guard;
        let pm: &EdgePmats = if let Some(rc) = &cached {
            self.pmat_hits.set(self.pmat_hits.get() + 1);
            rc
        } else {
            let mut tmp = self.tmp_pmats.borrow_mut();
            self.fill_edge_pmats(t, &mut tmp);
            tmp_guard = tmp;
            &tmp_guard
        };
        let mut scratch = self.scratch.borrow_mut();
        let weights = self.data.weights();
        let mut lnl = 0.0;
        if let Some(taxon) = tree.node(v).taxon {
            leaf_edge_site_sums(
                &mut scratch.site,
                &self.codes_by_taxon[taxon],
                &edge_v.values,
                &pm.lut,
                probs,
                self.npad,
            );
            scratch.site[np..].fill(1.0);
            lik_simd::ln_into(self.backend, &mut scratch.site);
            for pat in 0..np {
                lnl += weights[pat] * (scratch.site[pat] + edge_v.scale[pat]);
            }
        } else {
            let d = &down[v];
            lik_simd::edge_site_sums(
                self.backend,
                &d.values,
                &edge_v.values,
                &pm.mats,
                probs,
                &mut scratch.site,
                self.npad,
            );
            scratch.site[np..].fill(1.0);
            lik_simd::ln_into(self.backend, &mut scratch.site);
            for pat in 0..np {
                lnl += weights[pat] * (scratch.site[pat] + d.scale[pat] + edge_v.scale[pat]);
            }
        }
        lnl
    }

    fn edge_log_likelihood_scalar(&self, down_v: &Partials, edge_v: &Partials, t: f64) -> f64 {
        let np = self.data.pattern_count();
        let stride = self.stride();
        let probs = &self.model.rate_categories().probs;
        let pmats = self.model.transition_matrices(t);
        let mut lnl = 0.0;
        for pat in 0..np {
            let mut site = 0.0;
            for (cat, pm) in pmats.iter().enumerate() {
                let base = pat * stride + cat * 4;
                let dv = &down_v.values[base..base + 4];
                let ev = &edge_v.values[base..base + 4];
                let mut cat_sum = 0.0;
                for s in 0..4 {
                    // E already carries the stationary prior from the
                    // root of the outside recursion.
                    let pd =
                        pm[s][0] * dv[0] + pm[s][1] * dv[1] + pm[s][2] * dv[2] + pm[s][3] * dv[3];
                    cat_sum += ev[s] * pd;
                }
                site += probs[cat] * cat_sum;
            }
            lnl += self.data.weights()[pat] * (site.ln() + down_v.scale[pat] + edge_v.scale[pat]);
        }
        lnl
    }

    /// Optimises the branch lengths of `edges` (or all edges when
    /// `None`) by Gauss–Seidel coordinate ascent with Brent's method;
    /// returns the final log-likelihood.
    ///
    /// Each edge is optimised exactly against *current* partials (which
    /// are recomputed after every accepted update), so the likelihood is
    /// monotonically non-decreasing. Sweeps repeat until the gain drops
    /// below `tol` or `max_rounds` is hit.
    pub fn optimize_edges(
        &self,
        tree: &mut Tree,
        edges: Option<&[usize]>,
        max_rounds: u32,
        tol: f64,
    ) -> f64 {
        let all_edges;
        let edges: &[usize] = match edges {
            Some(e) => e,
            None => {
                all_edges = tree.edges();
                &all_edges
            }
        };
        if self.backend == LikBackend::Scalar {
            self.optimize_edges_scalar(tree, edges, max_rounds, tol)
        } else {
            self.optimize_edges_simd(tree, edges, max_rounds, tol)
        }
    }

    /// Folds the eigenbasis into per-pattern coefficients for the edge
    /// above `v`: with `P(rt) = U·diag(e^{λ_k·rt})·U⁻¹`, the edge site
    /// likelihood becomes `Σ_cat Σ_k prob·e^{λ_k·r·t}·C[cat][k][pat]`
    /// where `C = (Σ_s π_s·U[s][k]·E_s)·(Σ_j U⁻¹[k][j]·D_j)` depends on
    /// the partials but not on `t`. Brent then pays four exponentials
    /// per category per iteration instead of a matrix rebuild.
    fn build_edge_coefs(
        &self,
        tree: &Tree,
        down: &[Partials],
        edge_v: &Partials,
        v: usize,
    ) -> Partials {
        let mut c = self.acquire();
        lik_simd::product_into(
            self.backend,
            &mut c.values,
            &edge_v.values,
            &self.coef_wa,
            self.npad,
            true,
        );
        if let Some(taxon) = tree.node(v).taxon {
            let codes = &self.codes_by_taxon[taxon];
            for cat in 0..self.ncat() {
                for k in 0..4 {
                    let row = &mut c.values[(cat * 4 + k) * self.npad..][..self.npad];
                    let tbl = &self.coef_lutb[k];
                    for (x, &code) in row.iter_mut().zip(codes.iter()) {
                        *x *= tbl[code as usize];
                    }
                }
            }
        } else {
            let mut b = self.acquire();
            lik_simd::product_into(
                self.backend,
                &mut b.values,
                &down[v].values,
                &self.coef_wb,
                self.npad,
                true,
            );
            for (x, y) in c.values.iter_mut().zip(b.values.iter()) {
                *x *= y;
            }
            self.recycle(b);
        }
        c
    }

    /// The Brent objective over prebuilt spectral coefficients.
    /// Algebraically equal to `edge_log_likelihood` (the only deviation
    /// is the ±1e-16 eigen-noise clamp `transition_matrix` applies),
    /// and elementwise per pattern, so bit-identical across SIMD
    /// backends.
    fn edge_coef_log_likelihood(
        &self,
        coefs: &Partials,
        down_scale: Option<&[f64]>,
        edge_scale: &[f64],
        t: f64,
    ) -> f64 {
        let np = self.data.pattern_count();
        let cats = self.model.rate_categories();
        let (eigvals, _, _) = self.model.eigen_system();
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        for (cat, ev) in scratch.ev.iter_mut().enumerate() {
            let rt = cats.rates[cat] * t;
            let prob = cats.probs[cat];
            for k in 0..4 {
                ev[k] = prob * (eigvals[k] * rt).exp();
            }
        }
        lik_simd::coef_site_sums(
            self.backend,
            &coefs.values,
            &scratch.ev,
            &mut scratch.site,
            self.npad,
        );
        scratch.site[np..].fill(1.0);
        lik_simd::ln_into(self.backend, &mut scratch.site);
        let weights = self.data.weights();
        let mut lnl = 0.0;
        match down_scale {
            Some(ds) => {
                for pat in 0..np {
                    lnl += weights[pat] * (scratch.site[pat] + ds[pat] + edge_scale[pat]);
                }
            }
            None => {
                for pat in 0..np {
                    lnl += weights[pat] * (scratch.site[pat] + edge_scale[pat]);
                }
            }
        }
        lnl
    }

    // SIMD driver: the down partials are maintained incrementally —
    // after an accepted branch-length change only the edge's root path
    // is recomputed, instead of a full postorder traversal per edge —
    // and Brent runs over per-edge spectral coefficients instead of
    // rebuilding transition matrices per proposal.
    fn optimize_edges_simd(
        &self,
        tree: &mut Tree,
        edges: &[usize],
        max_rounds: u32,
        tol: f64,
    ) -> f64 {
        let mut down = self.compute_down(tree);
        let mut best_lnl = self.root_log_likelihood(tree, &down);
        for _ in 0..max_rounds {
            let round_start = best_lnl;
            for &v in edges {
                if v == tree.root() {
                    continue;
                }
                let e = self.compute_edge_outside_one(tree, &down, v);
                let coefs = self.build_edge_coefs(tree, &down, &e, v);
                let down_scale = if tree.node(v).taxon.is_some() {
                    None
                } else {
                    Some(down[v].scale.as_slice())
                };
                let current = tree.branch_length(v);
                let f_current =
                    self.edge_coef_log_likelihood(&coefs, down_scale, &e.scale, current);
                let r = brent_minimize(
                    |t| -self.edge_coef_log_likelihood(&coefs, down_scale, &e.scale, t),
                    MIN_BRANCH,
                    MAX_BRANCH,
                    1e-7,
                    64,
                );
                self.recycle(coefs);
                self.recycle(e);
                // Coordinate ascent: only accept genuine improvements;
                // the running total is re-anchored exactly below.
                if -r.fmin > f_current {
                    tree.set_branch_length(v, r.xmin.clamp(MIN_BRANCH, MAX_BRANCH));
                    self.refresh_down_path(tree, &mut down, v);
                }
            }
            // Re-anchor on an exact evaluation (scale bookkeeping above
            // accumulates tiny drift over many edges).
            best_lnl = self.root_log_likelihood(tree, &down);
            if best_lnl - round_start < tol {
                break;
            }
        }
        self.recycle_vec(down);
        best_lnl
    }

    fn optimize_edges_scalar(
        &self,
        tree: &mut Tree,
        edges: &[usize],
        max_rounds: u32,
        tol: f64,
    ) -> f64 {
        let mut best_lnl = self.log_likelihood(tree);
        for _ in 0..max_rounds {
            let round_start = best_lnl;
            for &v in edges {
                if v == tree.root() {
                    continue;
                }
                let down = self.compute_down(tree);
                let e = self.compute_edge_outside_one(tree, &down, v);
                let current = tree.branch_length(v);
                let f_current = self.edge_log_likelihood(tree, &down, &e, v, current);
                let r = brent_minimize(
                    |t| -self.edge_log_likelihood(tree, &down, &e, v, t),
                    MIN_BRANCH,
                    MAX_BRANCH,
                    1e-7,
                    64,
                );
                // Coordinate ascent: only accept genuine improvements;
                // the running total is re-anchored exactly below.
                if -r.fmin > f_current {
                    tree.set_branch_length(v, r.xmin.clamp(MIN_BRANCH, MAX_BRANCH));
                }
            }
            // Re-anchor on an exact evaluation (scale bookkeeping above
            // accumulates tiny drift over many edges).
            best_lnl = self.log_likelihood(tree);
            if best_lnl - round_start < tol {
                break;
            }
        }
        best_lnl
    }
}

/// Convenience wrapper: log-likelihood of `tree` under `model`.
pub fn log_likelihood(tree: &Tree, data: &PatternAlignment, model: &SubstModel) -> f64 {
    TreeLikelihood::new(model, data).log_likelihood(tree)
}

/// Convenience wrapper: optimises all branch lengths in place and
/// returns the final log-likelihood.
pub fn optimize_branch_lengths(
    tree: &mut Tree,
    data: &PatternAlignment,
    model: &SubstModel,
    max_rounds: u32,
) -> f64 {
    TreeLikelihood::new(model, data).optimize_edges(tree, None, max_rounds, 1e-4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GammaRates, ModelKind};
    use biodist_bioseq::{Alphabet, Sequence};

    fn seq(id: &str, text: &str) -> Sequence {
        Sequence::from_text(id, "", Alphabet::Dna, text).unwrap()
    }

    fn triple_tree(blen: f64) -> Tree {
        Tree::initial_triple([0, 1, 2], blen)
    }

    /// Brute-force likelihood by summing over all internal-node state
    /// assignments — exponential, but exact for tiny trees.
    fn brute_force_lnl(tree: &Tree, data: &PatternAlignment, model: &SubstModel) -> f64 {
        let freqs = model.freqs();
        let cats = model.rate_categories();
        let internal: Vec<usize> = (0..tree.node_count())
            .filter(|&i| !tree.node(i).is_leaf())
            .collect();
        let mut lnl = 0.0;
        for pat in 0..data.pattern_count() {
            let mut site = 0.0;
            for (ci, &rate) in cats.rates.iter().enumerate() {
                let mut cat_total = 0.0;
                let combos = 4usize.pow(internal.len() as u32);
                for combo in 0..combos {
                    let mut assign = std::collections::HashMap::new();
                    let mut rem = combo;
                    for &n in &internal {
                        assign.insert(n, rem % 4);
                        rem /= 4;
                    }
                    let mut prob = freqs[assign[&tree.root()]];
                    for v in tree.edges() {
                        let parent = tree.node(v).parent.unwrap();
                        let ps = assign[&parent];
                        let p = model.transition_matrix(tree.branch_length(v), rate);
                        let node = tree.node(v);
                        if let Some(taxon) = node.taxon {
                            let code = data.code(pat, taxon);
                            if code < 4 {
                                prob *= p[ps][code as usize];
                            } // missing data: sum over all states = row sum = 1
                        } else {
                            prob *= p[ps][assign[&v]];
                        }
                    }
                    cat_total += prob;
                }
                site += cats.probs[ci] * cat_total;
            }
            lnl += data.weights()[pat] * site.ln();
        }
        lnl
    }

    #[test]
    fn two_leaf_pair_matches_closed_form_jc69() {
        // For two taxa joined through the root with total distance d under
        // JC69: P(same site) = 1/4(1/4 + 3/4 e^{-4d/3}) etc. Use the
        // 3-taxon tree but make the third taxon all-missing so it is inert.
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTAC"),
            seq("b", "ACGTAT"),
            seq("c", "NNNNNN"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let tree = triple_tree(0.1);

        // Closed form: distance between a and b through the root is 0.2.
        let d: f64 = 0.2;
        let e = (-4.0 * d / 3.0).exp();
        let p_same = 0.25 * (0.25 + 0.75 * e);
        let p_diff = 0.25 * (0.25 - 0.25 * e);
        let expected = 5.0 * p_same.ln() + p_diff.ln();
        for backend in LikBackend::supported() {
            let lnl = TreeLikelihood::with_backend(&model, &data, backend).log_likelihood(&tree);
            assert!(
                (lnl - expected).abs() < 1e-9,
                "{backend:?}: pruning {lnl} vs closed form {expected}"
            );
        }
    }

    #[test]
    fn pruning_matches_brute_force_three_taxa() {
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACGTAA"),
            seq("b", "ACGTACGTAC"),
            seq("c", "ACGAACGTTA"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Hky85 {
            kappa: 3.0,
            freqs: [0.3, 0.2, 0.3, 0.2],
        });
        let mut tree = triple_tree(0.15);
        tree.set_branch_length(2, 0.05);
        tree.set_branch_length(3, 0.4);
        let slow = brute_force_lnl(&tree, &data, &model);
        for backend in LikBackend::supported() {
            let fast = TreeLikelihood::with_backend(&model, &data, backend).log_likelihood(&tree);
            assert!((fast - slow).abs() < 1e-9, "{backend:?}: {fast} vs {slow}");
        }
    }

    #[test]
    fn pruning_matches_brute_force_four_taxa_with_gamma() {
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACGT"),
            seq("b", "ACGTACGA"),
            seq("c", "ACGAACTT"),
            seq("d", "CCGAACTT"),
        ]);
        let model = SubstModel::new(ModelKind::K80 { kappa: 2.5 }, GammaRates::gamma(0.7, 3));
        let mut tree = triple_tree(0.1);
        tree.insert_leaf(1, 3, 0.2);
        let slow = brute_force_lnl(&tree, &data, &model);
        for backend in LikBackend::supported() {
            let fast = TreeLikelihood::with_backend(&model, &data, backend).log_likelihood(&tree);
            assert!((fast - slow).abs() < 1e-9, "{backend:?}: {fast} vs {slow}");
        }
    }

    #[test]
    fn likelihood_invariant_under_pattern_compression() {
        // Likelihood must depend only on the site multiset.
        let seqs1 = [seq("a", "AAACGT"), seq("b", "AAACGA"), seq("c", "AATCGT")];
        let seqs2 = [seq("a", "ACGTAA"), seq("b", "ACGAAA"), seq("c", "TCGTAA")];
        let d1 = PatternAlignment::from_sequences(&seqs1);
        let d2 = PatternAlignment::from_sequences(&seqs2);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let tree = triple_tree(0.2);
        let l1 = log_likelihood(&tree, &d1, &model);
        let l2 = log_likelihood(&tree, &d2, &model);
        assert!((l1 - l2).abs() < 1e-10);
    }

    #[test]
    fn missing_data_row_does_not_change_likelihood_shape() {
        // A taxon of all Ns contributes a factor of 1 per site.
        let with_n = PatternAlignment::from_sequences(&[
            seq("a", "ACGT"),
            seq("b", "ACGA"),
            seq("c", "NNNN"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let tree = triple_tree(0.1);
        let lnl = log_likelihood(&tree, &with_n, &model);
        assert!(lnl.is_finite());
        assert!(lnl < 0.0);
    }

    #[test]
    fn longer_wrong_branches_lower_likelihood_of_identical_data() {
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACGTACGT"),
            seq("b", "ACGTACGTACGT"),
            seq("c", "ACGTACGTACGT"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let short = log_likelihood(&triple_tree(0.01), &data, &model);
        let long = log_likelihood(&triple_tree(1.0), &data, &model);
        assert!(short > long, "identical sequences favour short branches");
    }

    #[test]
    fn branch_optimisation_improves_likelihood_and_converges() {
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACGTACGTACGTTTAA"),
            seq("b", "ACGTACGAACGTACGTTTAC"),
            seq("c", "AAGTACGAACGAACGTTTCC"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let mut tree = triple_tree(0.9); // far from optimal
        let before = log_likelihood(&tree, &data, &model);
        let after = optimize_branch_lengths(&mut tree, &data, &model, 20);
        assert!(after > before, "{after} should beat {before}");
        // Re-optimising from the optimum should gain (almost) nothing.
        let again = optimize_branch_lengths(&mut tree, &data, &model, 20);
        assert!((again - after).abs() < 1e-3);
    }

    #[test]
    fn optimized_pair_distance_matches_jc_formula() {
        // With two informative taxa (third all-N), the ML distance between
        // them under JC69 has the closed form −3/4 ln(1 − 4p̂/3).
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACGTACGTACGTACGT"),
            seq("b", "ACGTACGAACGTACTTACGA"), // 3 differences out of 20
            seq("c", "NNNNNNNNNNNNNNNNNNNN"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let mut tree = triple_tree(0.3);
        optimize_branch_lengths(&mut tree, &data, &model, 30);
        let d_hat = tree.branch_length(1) + tree.branch_length(2);
        let p: f64 = 3.0 / 20.0;
        let expected = -0.75 * (1.0 - 4.0 * p / 3.0).ln();
        assert!(
            (d_hat - expected).abs() < 5e-3,
            "ML distance {d_hat} vs JC formula {expected}"
        );
    }

    #[test]
    fn edge_likelihood_agrees_with_full_likelihood() {
        // The edge decomposition evaluated at the current branch length
        // must equal the root-based likelihood, for every edge — on the
        // scalar reference via the batch outside pass, and on every
        // SIMD backend via the O(depth) single-edge pass.
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACTA"),
            seq("b", "ACGAACTT"),
            seq("c", "TCGAACTT"),
            seq("d", "TCGAACGT"),
        ]);
        let model = SubstModel::new(
            ModelKind::Hky85 {
                kappa: 2.0,
                freqs: [0.3, 0.2, 0.2, 0.3],
            },
            GammaRates::gamma(0.5, 4),
        );
        let mut tree = triple_tree(0.1);
        tree.insert_leaf(2, 3, 0.3);

        let engine = TreeLikelihood::with_backend(&model, &data, LikBackend::Scalar);
        let full = engine.log_likelihood(&tree);
        let down = engine.compute_down(&tree);
        let outside = engine.compute_edge_outside(&tree, &down);
        for v in tree.edges() {
            let e = outside[v].as_ref().expect("edge partial exists");
            let via_edge = engine.edge_log_likelihood(&tree, &down, e, v, tree.branch_length(v));
            assert!(
                (via_edge - full).abs() < 1e-8,
                "edge {v}: {via_edge} vs {full}"
            );
        }

        for backend in LikBackend::supported() {
            if backend == LikBackend::Scalar {
                continue;
            }
            let engine = TreeLikelihood::with_backend(&model, &data, backend);
            let full = engine.log_likelihood(&tree);
            for v in tree.edges() {
                let down = engine.compute_down(&tree);
                let e = engine.compute_edge_outside_one(&tree, &down, v);
                let via_edge =
                    engine.edge_log_likelihood(&tree, &down, &e, v, tree.branch_length(v));
                assert!(
                    (via_edge - full).abs() < 1e-8,
                    "{backend:?} edge {v}: {via_edge} vs {full}"
                );
            }
        }
    }

    #[test]
    fn scaling_keeps_large_trees_finite() {
        // 40 taxa, long branches: unscaled partials would underflow.
        let n = 40;
        let mut rng = biodist_util::rng::Xoshiro256StarStar::new(3);
        use biodist_util::rng::Rng;
        let seqs: Vec<Sequence> = (0..n)
            .map(|i| {
                let codes: Vec<u8> = (0..60).map(|_| rng.next_below(4) as u8).collect();
                Sequence::from_codes(&format!("t{i}"), Alphabet::Dna, codes)
            })
            .collect();
        let data = PatternAlignment::from_sequences(&seqs);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let mut tree = Tree::initial_triple([0, 1, 2], 0.5);
        for t in 3..n {
            let edges = tree.edges();
            let e = edges[t % edges.len()];
            tree.insert_leaf(e, t, 0.5);
        }
        let scalar =
            TreeLikelihood::with_backend(&model, &data, LikBackend::Scalar).log_likelihood(&tree);
        assert!(scalar.is_finite(), "lnL must not underflow: {scalar}");
        assert!(scalar < 0.0);
        for backend in LikBackend::supported() {
            let lnl = TreeLikelihood::with_backend(&model, &data, backend).log_likelihood(&tree);
            assert!(lnl.is_finite(), "{backend:?} lnL must not underflow: {lnl}");
            assert!(
                (lnl - scalar).abs() < 1e-8 * scalar.abs(),
                "{backend:?}: {lnl} vs scalar {scalar}"
            );
        }
    }

    #[test]
    fn pmat_cache_hits_accumulate_on_simd_path() {
        let data = PatternAlignment::from_sequences(&[
            seq("a", "ACGTACTAGGCA"),
            seq("b", "ACGAACTTGGCA"),
            seq("c", "TCGAACTTGACA"),
            seq("d", "TCGAACGTGACT"),
        ]);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let mut tree = triple_tree(0.1);
        tree.insert_leaf(2, 3, 0.3);
        let engine = TreeLikelihood::new(&model, &data);
        if engine.backend() == LikBackend::Scalar {
            return; // cache only exists on the SIMD path
        }
        engine.optimize_edges(&mut tree.clone(), None, 2, 1e-4);
        let (hits, misses) = engine.pmat_cache_stats();
        assert!(misses > 0, "distinct branch lengths must miss once");
        assert!(
            hits > misses,
            "repeated traversals must reuse cached matrices ({hits} hits vs {misses} misses)"
        );
    }
}
