//! Special functions needed by the discrete-Γ rate model: `ln Γ`, the
//! regularized lower incomplete gamma function `P(a, x)`, and its
//! inverse. Implementations follow the classic series/continued-fraction
//! split (Numerical Recipes §6.2); accuracy ~1e-12 over the parameter
//! ranges phylogenetics uses (shape 0.01 … 100).

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma: requires x > 0, got {x}");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its happy range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
pub fn gammp(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gammp: shape must be positive");
    assert!(x >= 0.0, "gammp: x must be non-negative");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

// Series representation, converges quickly for x < a + 1.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

// Continued-fraction representation of Q(a, x), for x >= a + 1.
fn gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Inverse of [`gammp`] in `x`: returns the `x` with `P(a, x) = p`.
///
/// Uses bracketing bisection (robust for the extreme shapes phylo
/// models can request) refined to ~1e-12 relative accuracy.
pub fn inv_gammp(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "inv_gammp: shape must be positive");
    assert!((0.0..1.0).contains(&p), "inv_gammp: p must be in [0, 1)");
    if p == 0.0 {
        return 0.0;
    }
    // Bracket: expand hi until P(a, hi) > p.
    let mut hi = a.max(1.0);
    while gammp(a, hi) < p {
        hi *= 2.0;
        assert!(hi.is_finite(), "inv_gammp: failed to bracket");
    }
    let mut lo = 0.0;
    for _ in 0..400 {
        let mid = 0.5 * (lo + hi);
        if gammp(a, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        // Relative tolerance: tiny shapes put quantiles at ~1e-20, so an
        // absolute cutoff would stop far too early.
        if hi - lo < 1e-14 * hi {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma((n + 1) as f64);
            assert!((got - f.ln()).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half_is_sqrt_pi() {
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gammp_is_exponential_cdf_for_shape_one() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!((gammp(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn gammp_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let v = gammp(2.5, x);
            assert!((0.0..=1.0).contains(&v));
            assert!(v >= prev);
            prev = v;
        }
        assert!(gammp(2.5, 50.0) > 0.999999);
    }

    #[test]
    fn gammp_median_of_chi_square_two_dof() {
        // Chi-square with 2 dof = Gamma(shape 1, scale 2); median = 2 ln 2.
        // In regularized form: P(1, ln 2) = 0.5.
        assert!((gammp(1.0, std::f64::consts::LN_2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inv_gammp_round_trips() {
        for &a in &[0.1, 0.5, 1.0, 2.0, 7.3, 30.0] {
            for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
                let x = inv_gammp(a, p);
                assert!(
                    (gammp(a, x) - p).abs() < 1e-9,
                    "a={a} p={p} x={x} got {}",
                    gammp(a, x)
                );
            }
        }
    }

    #[test]
    fn inv_gammp_of_zero_is_zero() {
        assert_eq!(inv_gammp(3.0, 0.0), 0.0);
    }
}
