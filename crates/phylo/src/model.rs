//! Reversible DNA substitution models.
//!
//! Every supported model is a special case of the general
//! time-reversible (GTR) parameterisation: exchangeabilities `s_ij`
//! (symmetric) and stationary frequencies `π`, with rate matrix
//! `Q_ij = s_ij · π_j` (i ≠ j), diagonal set so rows sum to zero, and
//! the whole matrix normalised so the expected substitution rate at
//! stationarity is 1 (branch lengths are then expected substitutions
//! per site). The eigendecomposition of the symmetrised `Q` (see
//! [`crate::eigen`]) gives exact transition matrices `P(t)`.
//!
//! Rate heterogeneity across sites uses Yang's (1994) discrete-Γ
//! approximation with equal-probability categories, optionally combined
//! with a proportion of invariant sites.

use crate::eigen::jacobi_eigen;
use crate::special::{gammp, inv_gammp};

/// Base order: A=0, C=1, G=2, T=3 (matches `biodist_bioseq` DNA codes).
pub const N_BASES: usize = 4;

const A: usize = 0;
const C: usize = 1;
const G: usize = 2;
const T: usize = 3;

/// The named substitution models DPRml's configuration can select.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelKind {
    /// Jukes & Cantor 1969: equal frequencies, one rate.
    Jc69,
    /// Kimura 1980: equal frequencies, transition/transversion ratio κ.
    K80 {
        /// Transition/transversion rate ratio.
        kappa: f64,
    },
    /// Felsenstein 1981: free frequencies, one rate.
    F81 {
        /// Stationary base frequencies (A, C, G, T).
        freqs: [f64; 4],
    },
    /// Felsenstein 1984: free frequencies, κ-style transition bias.
    F84 {
        /// Transition bias parameter (0 = F81).
        kappa: f64,
        /// Stationary base frequencies.
        freqs: [f64; 4],
    },
    /// Hasegawa, Kishino & Yano 1985.
    Hky85 {
        /// Transition/transversion rate ratio.
        kappa: f64,
        /// Stationary base frequencies.
        freqs: [f64; 4],
    },
    /// Tamura & Nei 1993: separate purine/pyrimidine transition rates.
    Tn93 {
        /// A↔G transition rate (relative to transversions at 1).
        kappa_r: f64,
        /// C↔T transition rate.
        kappa_y: f64,
        /// Stationary base frequencies.
        freqs: [f64; 4],
    },
    /// General time-reversible.
    Gtr {
        /// Exchangeabilities in order (AC, AG, AT, CG, CT, GT).
        rates: [f64; 6],
        /// Stationary base frequencies.
        freqs: [f64; 4],
    },
}

impl ModelKind {
    /// Parses the configuration-file spelling, e.g. `jc69`, `k80:2.0`,
    /// `hky85:4.0`, `gtr`.
    ///
    /// Frequency-using models parsed this way take uniform frequencies;
    /// applications that estimate empirical frequencies should construct
    /// the variant directly.
    pub fn parse(text: &str) -> Result<Self, String> {
        let t = text.trim().to_ascii_lowercase();
        let (name, arg) = match t.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (t.as_str(), None),
        };
        let kappa = |default: f64| -> Result<f64, String> {
            match arg {
                None => Ok(default),
                Some(a) => a.parse().map_err(|_| format!("bad parameter `{a}`")),
            }
        };
        let uniform = [0.25; 4];
        match name {
            "jc69" | "jc" => Ok(Self::Jc69),
            "k80" | "k2p" => Ok(Self::K80 { kappa: kappa(2.0)? }),
            "f81" => Ok(Self::F81 { freqs: uniform }),
            "f84" => Ok(Self::F84 {
                kappa: kappa(1.0)?,
                freqs: uniform,
            }),
            "hky85" | "hky" => Ok(Self::Hky85 {
                kappa: kappa(2.0)?,
                freqs: uniform,
            }),
            "tn93" => Ok(Self::Tn93 {
                kappa_r: kappa(2.0)?,
                kappa_y: kappa(2.0)?,
                freqs: uniform,
            }),
            "gtr" => Ok(Self::Gtr {
                rates: [1.0; 6],
                freqs: uniform,
            }),
            _ => Err(format!("unknown substitution model `{text}`")),
        }
    }

    /// Stationary frequencies of the model.
    pub fn freqs(&self) -> [f64; 4] {
        match self {
            ModelKind::Jc69 | ModelKind::K80 { .. } => [0.25; 4],
            ModelKind::F81 { freqs }
            | ModelKind::F84 { freqs, .. }
            | ModelKind::Hky85 { freqs, .. }
            | ModelKind::Tn93 { freqs, .. }
            | ModelKind::Gtr { freqs, .. } => *freqs,
        }
    }

    /// Exchangeabilities `(AC, AG, AT, CG, CT, GT)` in GTR form.
    pub fn exchangeabilities(&self) -> [f64; 6] {
        match *self {
            ModelKind::Jc69 | ModelKind::F81 { .. } => [1.0; 6],
            ModelKind::K80 { kappa } | ModelKind::Hky85 { kappa, .. } => {
                [1.0, kappa, 1.0, 1.0, kappa, 1.0]
            }
            ModelKind::F84 { kappa, freqs } => {
                // Standard F84→GTR mapping: transitions get 1 + κ/π_R
                // (purines) or 1 + κ/π_Y (pyrimidines).
                let pr = freqs[A] + freqs[G];
                let py = freqs[C] + freqs[T];
                [1.0, 1.0 + kappa / pr, 1.0, 1.0, 1.0 + kappa / py, 1.0]
            }
            ModelKind::Tn93 {
                kappa_r, kappa_y, ..
            } => [1.0, kappa_r, 1.0, 1.0, kappa_y, 1.0],
            ModelKind::Gtr { rates, .. } => rates,
        }
    }
}

/// Discrete-Γ rate heterogeneity (Yang 1994), optionally with a
/// proportion of invariant sites.
///
/// ```
/// use biodist_phylo::model::GammaRates;
/// let g = GammaRates::gamma(0.5, 4);
/// assert_eq!(g.ncat(), 4);
/// assert!((g.mean_rate() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GammaRates {
    /// Per-category relative rates.
    pub rates: Vec<f64>,
    /// Per-category probabilities (sum to 1).
    pub probs: Vec<f64>,
}

impl GammaRates {
    /// A single rate category with rate 1 (rate homogeneity).
    pub fn uniform() -> Self {
        Self {
            rates: vec![1.0],
            probs: vec![1.0],
        }
    }

    /// `ncat` equal-probability categories from a Γ(α, α) distribution;
    /// each category's rate is its conditional mean, so the mean rate is
    /// exactly 1.
    pub fn gamma(alpha: f64, ncat: usize) -> Self {
        assert!(alpha > 0.0, "GammaRates: alpha must be positive");
        assert!(ncat >= 1, "GammaRates: need at least one category");
        if ncat == 1 {
            return Self::uniform();
        }
        let k = ncat as f64;
        // Category boundaries in x where X ~ Gamma(shape α, rate α):
        // P(α, α·b_i) = i/K  =>  α·b_i = inv_gammp(α, i/K).
        let bounds: Vec<f64> = (0..=ncat)
            .map(|i| {
                if i == 0 {
                    0.0
                } else if i == ncat {
                    f64::INFINITY
                } else {
                    inv_gammp(alpha, i as f64 / k)
                }
            })
            .collect();
        // Mean of category i: K · [P(α+1, αb_{i+1}) − P(α+1, αb_i)]
        // (the αb products are exactly the `bounds` values above).
        let cum = |x: f64| {
            if x.is_infinite() {
                1.0
            } else {
                gammp(alpha + 1.0, x)
            }
        };
        let rates: Vec<f64> = (0..ncat)
            .map(|i| k * (cum(bounds[i + 1]) - cum(bounds[i])))
            .collect();
        let probs = vec![1.0 / k; ncat];
        Self { rates, probs }
    }

    /// Γ categories plus a zero-rate invariant class of probability
    /// `p_inv`; variable-category rates are rescaled so the overall mean
    /// rate stays 1.
    pub fn gamma_invariant(alpha: f64, ncat: usize, p_inv: f64) -> Self {
        assert!((0.0..1.0).contains(&p_inv), "p_inv must be in [0, 1)");
        let base = Self::gamma(alpha, ncat);
        let scale = 1.0 / (1.0 - p_inv);
        let mut rates = vec![0.0];
        let mut probs = vec![p_inv];
        for (r, p) in base.rates.iter().zip(&base.probs) {
            rates.push(r * scale);
            probs.push(p * (1.0 - p_inv));
        }
        Self { rates, probs }
    }

    /// Number of categories.
    pub fn ncat(&self) -> usize {
        self.rates.len()
    }

    /// Mean rate (should always be 1 up to rounding).
    pub fn mean_rate(&self) -> f64 {
        self.rates.iter().zip(&self.probs).map(|(r, p)| r * p).sum()
    }
}

/// A fully instantiated substitution process: model + rate categories,
/// eigen-decomposed and ready to produce `P(t)` matrices.
#[derive(Debug, Clone)]
pub struct SubstModel {
    kind: ModelKind,
    rates: GammaRates,
    freqs: [f64; 4],
    /// Eigenvalues of Q.
    eigvals: [f64; 4],
    /// `U` with `P(t) = U · diag(e^{λt}) · U⁻¹` (row-major).
    u: [[f64; 4]; 4],
    /// `U⁻¹` (row-major).
    u_inv: [[f64; 4]; 4],
}

impl SubstModel {
    /// Builds the process from a model and rate-heterogeneity spec.
    ///
    /// # Panics
    /// Panics if frequencies are not a positive probability vector or
    /// exchangeabilities are not positive.
    pub fn new(kind: ModelKind, rates: GammaRates) -> Self {
        let freqs = kind.freqs();
        let total: f64 = freqs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9 && freqs.iter().all(|&f| f > 0.0),
            "frequencies must be positive and sum to 1, got {freqs:?}"
        );
        let s = kind.exchangeabilities();
        assert!(
            s.iter().all(|&x| x > 0.0),
            "exchangeabilities must be positive"
        );

        // Assemble Q.
        let pair_index = |i: usize, j: usize| -> usize {
            match (i.min(j), i.max(j)) {
                (A, C) => 0,
                (A, G) => 1,
                (A, T) => 2,
                (C, G) => 3,
                (C, T) => 4,
                (G, T) => 5,
                _ => unreachable!("diagonal has no exchangeability"),
            }
        };
        let mut q = [[0.0f64; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    q[i][j] = s[pair_index(i, j)] * freqs[j];
                }
            }
            q[i][i] = -(0..4).filter(|&j| j != i).map(|j| q[i][j]).sum::<f64>();
        }
        // Normalise: expected rate −Σ π_i Q_ii = 1.
        let mu: f64 = -(0..4).map(|i| freqs[i] * q[i][i]).sum::<f64>();
        for row in q.iter_mut() {
            for v in row.iter_mut() {
                *v /= mu;
            }
        }

        // Symmetrise and decompose.
        let sqrt_pi: Vec<f64> = freqs.iter().map(|f| f.sqrt()).collect();
        let mut sym = vec![vec![0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                sym[i][j] = q[i][j] * sqrt_pi[i] / sqrt_pi[j];
            }
        }
        // Guard against rounding asymmetry before handing to Jacobi.
        for i in 0..4 {
            for j in 0..i {
                let avg = 0.5 * (sym[i][j] + sym[j][i]);
                sym[i][j] = avg;
                sym[j][i] = avg;
            }
        }
        let eig = jacobi_eigen(&sym);

        let mut eigvals = [0.0f64; 4];
        let mut u = [[0.0f64; 4]; 4];
        let mut u_inv = [[0.0f64; 4]; 4];
        for k in 0..4 {
            eigvals[k] = eig.values[k];
            for i in 0..4 {
                u[i][k] = eig.vectors[k][i] / sqrt_pi[i];
                u_inv[k][i] = eig.vectors[k][i] * sqrt_pi[i];
            }
        }

        Self {
            kind,
            rates,
            freqs,
            eigvals,
            u,
            u_inv,
        }
    }

    /// Convenience: rate-homogeneous process.
    pub fn homogeneous(kind: ModelKind) -> Self {
        Self::new(kind, GammaRates::uniform())
    }

    /// The model this process was built from.
    pub fn kind(&self) -> &ModelKind {
        &self.kind
    }

    /// Rate categories in effect.
    pub fn rate_categories(&self) -> &GammaRates {
        &self.rates
    }

    /// Stationary frequencies.
    pub fn freqs(&self) -> [f64; 4] {
        self.freqs
    }

    /// The spectral decomposition `P(t) = U · diag(e^{λt}) · U⁻¹`
    /// behind [`Self::transition_matrix`], as `(λ, U, U⁻¹)`.
    ///
    /// The likelihood engine's branch-length objective folds `U`/`U⁻¹`
    /// into per-pattern coefficients so each Brent iteration costs four
    /// exponentials per rate category instead of a matrix rebuild.
    pub fn eigen_system(&self) -> (&[f64; 4], &[[f64; 4]; 4], &[[f64; 4]; 4]) {
        (&self.eigvals, &self.u, &self.u_inv)
    }

    /// Transition matrix `P(t·rate)` for branch length `t` (expected
    /// substitutions per site) under one rate category.
    ///
    /// Entries are clamped into `[0, 1]` to remove ~1e-16 eigen noise.
    pub fn transition_matrix(&self, t: f64, rate: f64) -> [[f64; 4]; 4] {
        assert!(
            t >= 0.0 && rate >= 0.0,
            "branch length and rate must be non-negative"
        );
        let scaled = t * rate;
        let exps: [f64; 4] = std::array::from_fn(|k| (self.eigvals[k] * scaled).exp());
        let mut p = [[0.0f64; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += self.u[i][k] * exps[k] * self.u_inv[k][j];
                }
                p[i][j] = acc.clamp(0.0, 1.0);
            }
        }
        p
    }

    /// Transition matrices for every rate category at branch length `t`.
    pub fn transition_matrices(&self, t: f64) -> Vec<[[f64; 4]; 4]> {
        self.rates
            .rates
            .iter()
            .map(|&r| self.transition_matrix(t, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_sums_are_one(p: &[[f64; 4]; 4]) {
        for (i, row) in p.iter().enumerate() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-10, "row {i} sums to {s}");
        }
    }

    #[test]
    fn jc69_matches_closed_form() {
        // JC69: P(same) = 1/4 + 3/4 e^{-4t/3}, P(diff) = 1/4 − 1/4 e^{-4t/3}.
        let m = SubstModel::homogeneous(ModelKind::Jc69);
        for &t in &[0.01, 0.1, 0.5, 1.0, 3.0] {
            let p = m.transition_matrix(t, 1.0);
            let e = (-4.0 * t / 3.0_f64).exp();
            let same = 0.25 + 0.75 * e;
            let diff = 0.25 - 0.25 * e;
            for i in 0..4 {
                for j in 0..4 {
                    let expected = if i == j { same } else { diff };
                    assert!(
                        (p[i][j] - expected).abs() < 1e-10,
                        "t={t} p[{i}][{j}]={} expected {expected}",
                        p[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn k80_transitions_exceed_transversions() {
        let m = SubstModel::homogeneous(ModelKind::K80 { kappa: 5.0 });
        let p = m.transition_matrix(0.2, 1.0);
        // A→G (transition) vs A→C (transversion).
        assert!(p[A][G] > p[A][C]);
        assert!(p[C][T] > p[C][A]);
        row_sums_are_one(&p);
    }

    #[test]
    fn zero_time_gives_identity() {
        let m = SubstModel::homogeneous(ModelKind::Hky85 {
            kappa: 3.0,
            freqs: [0.3, 0.2, 0.2, 0.3],
        });
        let p = m.transition_matrix(0.0, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((p[i][j] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn long_time_converges_to_stationary_frequencies() {
        let freqs = [0.4, 0.3, 0.2, 0.1];
        let m = SubstModel::homogeneous(ModelKind::Gtr {
            rates: [1.0, 3.0, 0.5, 0.7, 4.0, 1.2],
            freqs,
        });
        let p = m.transition_matrix(100.0, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (p[i][j] - freqs[j]).abs() < 1e-8,
                    "p[{i}][{j}]={} vs pi={}",
                    p[i][j],
                    freqs[j]
                );
            }
        }
    }

    #[test]
    fn chapman_kolmogorov_holds() {
        // P(s+t) = P(s)·P(t).
        let m = SubstModel::homogeneous(ModelKind::Tn93 {
            kappa_r: 3.0,
            kappa_y: 6.0,
            freqs: [0.35, 0.15, 0.25, 0.25],
        });
        let (s, t) = (0.13, 0.29);
        let ps = m.transition_matrix(s, 1.0);
        let pt = m.transition_matrix(t, 1.0);
        let pst = m.transition_matrix(s + t, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                let composed: f64 = (0..4).map(|k| ps[i][k] * pt[k][j]).sum();
                assert!(
                    (composed - pst[i][j]).abs() < 1e-10,
                    "({i},{j}): {composed} vs {}",
                    pst[i][j]
                );
            }
        }
    }

    #[test]
    fn detailed_balance_holds_for_gtr() {
        let freqs = [0.1, 0.2, 0.3, 0.4];
        let m = SubstModel::homogeneous(ModelKind::Gtr {
            rates: [1.0, 2.0, 3.0, 1.5, 2.5, 0.8],
            freqs,
        });
        let p = m.transition_matrix(0.7, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (freqs[i] * p[i][j] - freqs[j] * p[j][i]).abs() < 1e-10,
                    "detailed balance violated at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn all_row_sums_are_stochastic_across_models() {
        let models = [
            ModelKind::Jc69,
            ModelKind::K80 { kappa: 2.0 },
            ModelKind::F81 {
                freqs: [0.3, 0.3, 0.2, 0.2],
            },
            ModelKind::F84 {
                kappa: 1.5,
                freqs: [0.3, 0.3, 0.2, 0.2],
            },
            ModelKind::Hky85 {
                kappa: 4.0,
                freqs: [0.25, 0.35, 0.15, 0.25],
            },
            ModelKind::Tn93 {
                kappa_r: 2.0,
                kappa_y: 5.0,
                freqs: [0.3, 0.2, 0.3, 0.2],
            },
            ModelKind::Gtr {
                rates: [0.5, 2.0, 1.0, 0.9, 3.0, 1.1],
                freqs: [0.3, 0.3, 0.2, 0.2],
            },
        ];
        for kind in models {
            let m = SubstModel::homogeneous(kind.clone());
            for &t in &[0.05, 0.4, 2.0] {
                row_sums_are_one(&m.transition_matrix(t, 1.0));
            }
        }
    }

    #[test]
    fn branch_length_is_expected_substitutions() {
        // At stationarity, expected fraction substituted per unit branch
        // length derivative at t=0 is 1 after normalisation:
        // d/dt Σ_i π_i (1 - P_ii(t)) |_{t=0} = 1.
        let m = SubstModel::homogeneous(ModelKind::Hky85 {
            kappa: 3.0,
            freqs: [0.4, 0.1, 0.2, 0.3],
        });
        let eps = 1e-6;
        let p = m.transition_matrix(eps, 1.0);
        let freqs = m.freqs();
        let subst: f64 = (0..4).map(|i| freqs[i] * (1.0 - p[i][i])).sum();
        assert!((subst / eps - 1.0).abs() < 1e-4, "rate {}", subst / eps);
    }

    #[test]
    fn gamma_rates_have_unit_mean_and_monotone_categories() {
        for &alpha in &[0.2, 0.5, 1.0, 2.0, 10.0] {
            let g = GammaRates::gamma(alpha, 4);
            assert_eq!(g.ncat(), 4);
            assert!((g.mean_rate() - 1.0).abs() < 1e-9, "alpha={alpha}");
            for w in g.rates.windows(2) {
                assert!(w[0] < w[1], "rates must increase");
            }
        }
    }

    #[test]
    fn gamma_alpha_large_approaches_homogeneity() {
        let g = GammaRates::gamma(1000.0, 4);
        for r in &g.rates {
            assert!((r - 1.0).abs() < 0.1, "rate {r}");
        }
    }

    #[test]
    fn gamma_small_alpha_is_highly_skewed() {
        let g = GammaRates::gamma(0.2, 4);
        assert!(g.rates[0] < 0.05, "slowest category should be near zero");
        assert!(g.rates[3] > 2.0, "fastest category should be large");
    }

    #[test]
    fn invariant_class_preserves_unit_mean() {
        let g = GammaRates::gamma_invariant(0.5, 4, 0.3);
        assert_eq!(g.ncat(), 5);
        assert_eq!(g.rates[0], 0.0);
        assert!((g.probs[0] - 0.3).abs() < 1e-12);
        assert!((g.mean_rate() - 1.0).abs() < 1e-9);
        let total: f64 = g.probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parse_accepts_documented_spellings() {
        assert_eq!(ModelKind::parse("jc69").unwrap(), ModelKind::Jc69);
        assert_eq!(
            ModelKind::parse("K80:3.5").unwrap(),
            ModelKind::K80 { kappa: 3.5 }
        );
        assert!(matches!(
            ModelKind::parse("hky85:4").unwrap(),
            ModelKind::Hky85 { .. }
        ));
        assert!(matches!(
            ModelKind::parse("gtr").unwrap(),
            ModelKind::Gtr { .. }
        ));
        assert!(ModelKind::parse("jtt").is_err());
        assert!(ModelKind::parse("k80:abc").is_err());
    }

    #[test]
    #[should_panic(expected = "frequencies must be positive")]
    fn bad_frequencies_panic() {
        SubstModel::homogeneous(ModelKind::F81 {
            freqs: [0.5, 0.5, 0.5, 0.5],
        });
    }
}
