//! Substitution-model selection by information criteria.
//!
//! Offering "one of the most extensive ranges of DNA substitution
//! models" (paper §3.2) is only useful if users can pick among them:
//! "some of these earlier parallel programs only allowed the user to
//! choose from a very limited number of DNA substitution models, which
//! often leads to a poor model fit". This module scores candidate
//! models on a fixed tree by AIC/BIC (branch lengths re-optimised per
//! model, so likelihoods are comparable maxima).

use crate::lik::TreeLikelihood;
use crate::model::{GammaRates, ModelKind, SubstModel};
use crate::patterns::PatternAlignment;
use crate::tree::Tree;

impl ModelKind {
    /// Number of free parameters of the substitution model itself
    /// (exchangeabilities + free frequencies; branch lengths counted
    /// separately by the criteria).
    pub fn parameter_count(&self) -> u32 {
        match self {
            ModelKind::Jc69 => 0,
            ModelKind::K80 { .. } => 1,
            ModelKind::F81 { .. } => 3,
            ModelKind::F84 { .. } | ModelKind::Hky85 { .. } => 4,
            ModelKind::Tn93 { .. } => 5,
            ModelKind::Gtr { .. } => 8,
        }
    }
}

/// One row of a model-selection table.
#[derive(Debug, Clone)]
pub struct ModelScore {
    /// Display name (configuration-file spelling).
    pub name: String,
    /// The candidate model.
    pub kind: ModelKind,
    /// Whether a discrete-Γ shape parameter was included.
    pub gamma: bool,
    /// Maximised log-likelihood (branch lengths optimised).
    pub ln_likelihood: f64,
    /// Free parameters: model + Γ shape (if any) + branch lengths.
    pub n_parameters: u32,
    /// Akaike information criterion (lower is better).
    pub aic: f64,
    /// Bayesian information criterion (lower is better).
    pub bic: f64,
}

/// Scores each candidate `(name, kind, gamma_alpha)` on `tree`,
/// re-optimising branch lengths per model. Results are sorted by AIC
/// (best first).
pub fn compare_models(
    tree: &Tree,
    data: &PatternAlignment,
    candidates: &[(&str, ModelKind, Option<f64>)],
    blen_rounds: u32,
) -> Vec<ModelScore> {
    assert!(!candidates.is_empty(), "need at least one candidate model");
    let n_branches = tree.edges().len() as u32;
    let n_sites = data.site_count() as f64;
    let mut scores: Vec<ModelScore> = candidates
        .iter()
        .map(|(name, kind, gamma_alpha)| {
            let rates = match gamma_alpha {
                Some(a) => GammaRates::gamma(*a, 4),
                None => GammaRates::uniform(),
            };
            let model = SubstModel::new(kind.clone(), rates);
            let engine = TreeLikelihood::new(&model, data);
            let mut t = tree.clone();
            let lnl = engine.optimize_edges(&mut t, None, blen_rounds, 1e-3);
            let k = kind.parameter_count() + u32::from(gamma_alpha.is_some()) + n_branches;
            ModelScore {
                name: name.to_string(),
                kind: kind.clone(),
                gamma: gamma_alpha.is_some(),
                ln_likelihood: lnl,
                n_parameters: k,
                aic: 2.0 * k as f64 - 2.0 * lnl,
                bic: (k as f64) * n_sites.ln() - 2.0 * lnl,
            }
        })
        .collect();
    scores.sort_by(|a, b| a.aic.total_cmp(&b.aic));
    scores
}

/// The standard candidate ladder (JC69 → GTR, each ± Γ) with empirical
/// frequencies plugged into the frequency-using models.
pub fn standard_candidates(freqs: [f64; 4]) -> Vec<(&'static str, ModelKind, Option<f64>)> {
    let mut out: Vec<(&'static str, ModelKind, Option<f64>)> = Vec::new();
    let base: Vec<(&'static str, ModelKind)> = vec![
        ("JC69", ModelKind::Jc69),
        ("K80", ModelKind::K80 { kappa: 2.0 }),
        ("F81", ModelKind::F81 { freqs }),
        ("HKY85", ModelKind::Hky85 { kappa: 2.0, freqs }),
        (
            "TN93",
            ModelKind::Tn93 {
                kappa_r: 2.0,
                kappa_y: 2.0,
                freqs,
            },
        ),
        (
            "GTR",
            ModelKind::Gtr {
                rates: [1.0; 6],
                freqs,
            },
        ),
    ];
    for (name, kind) in base {
        out.push((name, kind.clone(), None));
        out.push((name, kind, Some(0.5)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolve::{random_yule_tree, simulate_alignment};

    #[test]
    fn parameter_counts_follow_the_nesting_ladder() {
        let f = [0.25; 4];
        let ladder = [
            ModelKind::Jc69,
            ModelKind::K80 { kappa: 2.0 },
            ModelKind::F81 { freqs: f },
            ModelKind::Hky85 {
                kappa: 2.0,
                freqs: f,
            },
            ModelKind::Tn93 {
                kappa_r: 2.0,
                kappa_y: 2.0,
                freqs: f,
            },
            ModelKind::Gtr {
                rates: [1.0; 6],
                freqs: f,
            },
        ];
        let counts: Vec<u32> = ladder.iter().map(|k| k.parameter_count()).collect();
        assert_eq!(counts, vec![0, 1, 3, 4, 5, 8]);
    }

    #[test]
    fn richer_nested_models_never_fit_worse() {
        let truth = random_yule_tree(6, 0.15, 51);
        let gen = SubstModel::homogeneous(ModelKind::K80 { kappa: 4.0 });
        let seqs = simulate_alignment(&truth, &gen, 600, None, 52);
        let data = PatternAlignment::from_sequences(&seqs);
        let scores = compare_models(
            &truth,
            &data,
            &[
                ("JC69", ModelKind::Jc69, None),
                ("K80", ModelKind::K80 { kappa: 4.0 }, None),
            ],
            4,
        );
        let jc = scores.iter().find(|s| s.name == "JC69").unwrap();
        let k80 = scores.iter().find(|s| s.name == "K80").unwrap();
        assert!(
            k80.ln_likelihood >= jc.ln_likelihood - 0.5,
            "K80 nests JC69: {} vs {}",
            k80.ln_likelihood,
            jc.ln_likelihood
        );
    }

    #[test]
    fn aic_picks_the_generating_model_class() {
        // Strong transition bias: K80 should beat JC69 on AIC despite
        // the extra parameter.
        let truth = random_yule_tree(7, 0.15, 61);
        let gen = SubstModel::homogeneous(ModelKind::K80 { kappa: 8.0 });
        let seqs = simulate_alignment(&truth, &gen, 800, None, 62);
        let data = PatternAlignment::from_sequences(&seqs);
        let scores = compare_models(
            &truth,
            &data,
            &[
                ("JC69", ModelKind::Jc69, None),
                ("K80", ModelKind::K80 { kappa: 8.0 }, None),
            ],
            4,
        );
        assert_eq!(
            scores[0].name, "K80",
            "AIC must favour the true model class"
        );
        assert!(scores[0].aic < scores[1].aic);
    }

    #[test]
    fn results_are_sorted_by_aic_and_criteria_are_consistent() {
        let truth = random_yule_tree(5, 0.15, 71);
        let gen = SubstModel::homogeneous(ModelKind::Jc69);
        let seqs = simulate_alignment(&truth, &gen, 300, None, 72);
        let data = PatternAlignment::from_sequences(&seqs);
        let freqs = crate::fit::empirical_base_frequencies(&data);
        let candidates = standard_candidates(freqs);
        assert_eq!(candidates.len(), 12, "6 models x (with/without gamma)");
        let scores = compare_models(&truth, &data, &candidates[..6], 2);
        for pair in scores.windows(2) {
            assert!(pair[0].aic <= pair[1].aic, "must be AIC-sorted");
        }
        for s in &scores {
            assert!((s.aic - (2.0 * s.n_parameters as f64 - 2.0 * s.ln_likelihood)).abs() < 1e-9);
            assert!(s.bic >= s.aic, "BIC penalises harder for n >= 8 sites");
        }
    }
}
