//! Small dense symmetric eigenproblems via cyclic Jacobi rotations.
//!
//! Reversible substitution models satisfy detailed balance, so the rate
//! matrix `Q` can be symmetrised as `S = Π^{1/2} Q Π^{-1/2}` with `Π =
//! diag(π)`. `S` is symmetric; its eigendecomposition gives
//! `P(t) = exp(Qt) = Π^{-1/2} · V e^{Λt} Vᵀ · Π^{1/2}` exactly. Jacobi
//! iteration is slow for large matrices but unbeatable for the 4×4
//! systems here: simple, branch-free to reason about, and accurate to
//! machine precision.

/// Eigendecomposition of a symmetric matrix: `a = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymEigen {
    /// Eigenvalues, in the order produced (not sorted).
    pub values: Vec<f64>,
    /// Eigenvectors stored column-major: `vectors[c]` is the eigenvector
    /// for `values[c]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Decomposes a symmetric `n×n` matrix given in row-major order.
///
/// # Panics
/// Panics if the matrix is not square or not symmetric to `1e-9`.
pub fn jacobi_eigen(matrix: &[Vec<f64>]) -> SymEigen {
    let n = matrix.len();
    assert!(n > 0, "jacobi_eigen: empty matrix");
    for row in matrix {
        assert_eq!(row.len(), n, "jacobi_eigen: matrix must be square");
    }
    for i in 0..n {
        for j in 0..i {
            assert!(
                (matrix[i][j] - matrix[j][i]).abs() < 1e-9,
                "jacobi_eigen: matrix must be symmetric (a[{i}][{j}] != a[{j}][{i}])"
            );
        }
    }

    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| a[i][j] * a[i][j])
            .sum();
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-18 {
                    continue;
                }
                // Standard Jacobi rotation annihilating a[p][q].
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for row in v.iter_mut() {
                    let vkp = row[p];
                    let vkq = row[q];
                    row[p] = c * vkp - s * vkq;
                    row[q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let values: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
    // Extract columns of v as eigenvectors.
    let vectors: Vec<Vec<f64>> = (0..n).map(|c| (0..n).map(|r| v[r][c]).collect()).collect();
    SymEigen { values, vectors }
}

/// Multiplies two square matrices (row-major `Vec<Vec<f64>>`).
pub fn mat_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let m = b[0].len();
    let k = b.len();
    let mut out = vec![vec![0.0; m]; n];
    for i in 0..n {
        for l in 0..k {
            let ail = a[i][l];
            if ail == 0.0 {
                continue;
            }
            for j in 0..m {
                out[i][j] += ail * b[l][j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymEigen) -> Vec<Vec<f64>> {
        let n = e.values.len();
        let mut out = vec![vec![0.0; n]; n];
        for (c, lambda) in e.values.iter().enumerate() {
            for i in 0..n {
                for j in 0..n {
                    out[i][j] += lambda * e.vectors[c][i] * e.vectors[c][j];
                }
            }
        }
        out
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let m = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 7.0],
        ];
        let e = jacobi_eigen(&m);
        let mut vals = e.values.clone();
        vals.sort_by(f64::total_cmp);
        assert!((vals[0] + 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
        assert!((vals[2] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let e = jacobi_eigen(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let mut vals = e.values.clone();
        vals.sort_by(f64::total_cmp);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        let m = vec![
            vec![4.0, 1.0, -2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.5],
            vec![-2.0, 0.0, 5.0, -1.0],
            vec![0.5, 1.5, -1.0, 2.0],
        ];
        let e = jacobi_eigen(&m);
        let r = reconstruct(&e);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (r[i][j] - m[i][j]).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    r[i][j],
                    m[i][j]
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = vec![
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ];
        let e = jacobi_eigen(&m);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = (0..3).map(|k| e.vectors[i][k] * e.vectors[j][k]).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-10, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let m = vec![
            vec![1.0, 0.3, 0.2],
            vec![0.3, 2.0, 0.1],
            vec![0.2, 0.1, 3.0],
        ];
        let e = jacobi_eigen(&m);
        let sum: f64 = e.values.iter().sum();
        assert!((sum - 6.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "must be symmetric")]
    fn asymmetric_input_panics() {
        jacobi_eigen(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
    }

    #[test]
    fn mat_mul_identity() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let id = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(mat_mul(&a, &id), a);
        assert_eq!(mat_mul(&id, &a), a);
    }
}
