//! Phylogenetic tree structure.
//!
//! Trees are stored as an arena of nodes with parent pointers. An
//! *unrooted* binary phylogeny over `n` taxa is represented in the
//! fastDNAml convention: a designated "root" node of degree 3 (the
//! basal trifurcation) whose placement does not affect the likelihood
//! of a reversible model, with every other internal node binary. Branch
//! lengths live on the child side of each edge, so an edge is
//! identified by its child node id.

/// One node of a [`Tree`].
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Parent node id (`None` for the root).
    pub parent: Option<usize>,
    /// Child node ids (empty for leaves, 2 for internals, 3 for the root).
    pub children: Vec<usize>,
    /// Length of the branch to the parent (unused on the root).
    pub blen: f64,
    /// Taxon index for leaves; `None` for internal nodes.
    pub taxon: Option<usize>,
}

impl Node {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An unrooted binary phylogeny with a basal trifurcation.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    nodes: Vec<Node>,
    root: usize,
}

impl Tree {
    /// The smallest unrooted tree: three taxa joined at the root, each
    /// pendant branch of length `blen`. This is the (unique) starting
    /// topology of stepwise insertion.
    pub fn initial_triple(taxa: [usize; 3], blen: f64) -> Self {
        assert!(blen >= 0.0, "branch length must be non-negative");
        let mut nodes = Vec::with_capacity(4);
        nodes.push(Node {
            parent: None,
            children: vec![1, 2, 3],
            blen: 0.0,
            taxon: None,
        });
        for &t in &taxa {
            nodes.push(Node {
                parent: Some(0),
                children: vec![],
                blen,
                taxon: Some(t),
            });
        }
        Self { nodes, root: 0 }
    }

    /// Builds a tree from raw parts, validating all invariants.
    pub fn from_parts(nodes: Vec<Node>, root: usize) -> Result<Self, String> {
        let tree = Self { nodes, root };
        tree.validate()?;
        Ok(tree)
    }

    /// Root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Read access to a node.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Ids of all leaf nodes.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_leaf())
            .collect()
    }

    /// Taxon indices present in the tree.
    pub fn taxa(&self) -> Vec<usize> {
        self.nodes.iter().filter_map(|n| n.taxon).collect()
    }

    /// All edges, identified by child node id (every node except the root).
    pub fn edges(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| i != self.root).collect()
    }

    /// Edges whose child endpoint is internal (candidates for NNI).
    pub fn internal_edges(&self) -> Vec<usize> {
        self.edges()
            .into_iter()
            .filter(|&c| !self.nodes[c].is_leaf())
            .collect()
    }

    /// Branch length of the edge above `child`.
    pub fn branch_length(&self, child: usize) -> f64 {
        assert_ne!(child, self.root, "root has no branch");
        self.nodes[child].blen
    }

    /// Sets the branch length of the edge above `child`.
    pub fn set_branch_length(&mut self, child: usize, blen: f64) {
        assert_ne!(child, self.root, "root has no branch");
        assert!(blen >= 0.0, "branch length must be non-negative");
        self.nodes[child].blen = blen;
    }

    /// Sum of all branch lengths.
    pub fn total_branch_length(&self) -> f64 {
        self.edges().iter().map(|&c| self.nodes[c].blen).sum()
    }

    /// Splits the edge above `edge_child` with a new internal node and
    /// hangs a new leaf for `taxon` off it.
    ///
    /// The existing branch length is divided evenly between the two
    /// halves of the split edge; the new pendant branch gets
    /// `leaf_blen`. Returns `(new_internal_id, new_leaf_id)`.
    pub fn insert_leaf(
        &mut self,
        edge_child: usize,
        taxon: usize,
        leaf_blen: f64,
    ) -> (usize, usize) {
        assert_ne!(edge_child, self.root, "cannot insert above the root");
        assert!(
            !self.taxa().contains(&taxon),
            "taxon {taxon} is already in the tree"
        );
        let parent = self.nodes[edge_child]
            .parent
            .expect("non-root has a parent");
        let old_len = self.nodes[edge_child].blen;
        let half = (old_len / 2.0).max(MIN_BRANCH);

        let mid = self.nodes.len();
        self.nodes.push(Node {
            parent: Some(parent),
            children: vec![edge_child],
            blen: half,
            taxon: None,
        });
        let leaf = self.nodes.len();
        self.nodes.push(Node {
            parent: Some(mid),
            children: vec![],
            blen: leaf_blen.max(MIN_BRANCH),
            taxon: Some(taxon),
        });
        self.nodes[mid].children.push(leaf);

        let slot = self.nodes[parent]
            .children
            .iter()
            .position(|&c| c == edge_child)
            .expect("edge_child is a child of its parent");
        self.nodes[parent].children[slot] = mid;
        self.nodes[edge_child].parent = Some(mid);
        self.nodes[edge_child].blen = half;
        (mid, leaf)
    }

    /// Performs a nearest-neighbour interchange across the edge above
    /// `edge_child`: detaches child `a` of `edge_child` and child `b` of
    /// its parent and swaps them. `a` must be a child of `edge_child`,
    /// `b` a child of the parent other than `edge_child`.
    ///
    /// Branch lengths travel with their subtrees. The operation is its
    /// own inverse (call again with the same ids to undo).
    pub fn nni_swap(&mut self, edge_child: usize, a: usize, b: usize) {
        let p = self.nodes[edge_child].parent.expect("edge has a parent");
        assert!(
            self.nodes[edge_child].children.contains(&a),
            "a must be a child of edge_child"
        );
        assert!(
            b != edge_child && self.nodes[p].children.contains(&b),
            "b must be a sibling"
        );
        let ia = self.nodes[edge_child]
            .children
            .iter()
            .position(|&c| c == a)
            .expect("checked above");
        let ib = self.nodes[p]
            .children
            .iter()
            .position(|&c| c == b)
            .expect("checked above");
        self.nodes[edge_child].children[ia] = b;
        self.nodes[p].children[ib] = a;
        self.nodes[a].parent = Some(p);
        self.nodes[b].parent = Some(edge_child);
    }

    /// Enumerates all NNI moves as `(edge_child, a, b)` triples.
    pub fn nni_moves(&self) -> Vec<(usize, usize, usize)> {
        let mut moves = Vec::new();
        for c in self.internal_edges() {
            let p = self.nodes[c].parent.expect("internal edge has a parent");
            for &a in &self.nodes[c].children {
                for &b in &self.nodes[p].children {
                    if b != c {
                        moves.push((c, a, b));
                    }
                }
            }
        }
        moves
    }

    /// Subtree prune-and-regraft: detaches the subtree rooted at `sub`
    /// and regrafts it onto the edge above `dest` — the stronger
    /// rearrangement class beyond NNI (every NNI is an SPR of distance
    /// one, but not vice versa).
    ///
    /// The junction node freed by the prune is reused as the new
    /// junction at the destination, so the arena stays dense. Branch
    /// lengths: the pruned sibling absorbs the old junction's branch,
    /// the destination edge is split evenly, `sub` keeps its pendant
    /// length.
    ///
    /// Returns `Err` (tree untouched) when the move is ill-formed:
    /// `sub` is the root or a child of the root (the basal trifurcation
    /// cannot lose a child), `dest` lies inside `sub`'s subtree, or the
    /// move is a no-op (`dest` is `sub` itself, its sibling, or its
    /// junction).
    pub fn spr(&mut self, sub: usize, dest: usize) -> Result<(), String> {
        if sub == self.root {
            return Err("cannot prune the root".into());
        }
        let p = self.nodes[sub].parent.expect("non-root has a parent");
        if p == self.root {
            return Err("cannot prune a child of the basal trifurcation".into());
        }
        if dest == self.root {
            return Err("cannot regraft above the root".into());
        }
        // dest must be outside the pruned subtree (and not the junction
        // or sibling, which would be a no-op or self-attachment).
        let mut in_subtree = Vec::new();
        self.collect_nodes(sub, &mut in_subtree);
        if in_subtree.contains(&dest) {
            return Err("destination lies inside the pruned subtree".into());
        }
        let sib = *self.nodes[p]
            .children
            .iter()
            .find(|&&c| c != sub)
            .expect("binary junction has a sibling");
        if dest == p || dest == sib {
            return Err("destination equals the pruned position (no-op)".into());
        }

        // Splice out the junction p: sibling takes its place under g.
        let g = self.nodes[p]
            .parent
            .expect("non-root junction has a parent");
        let slot = self.nodes[g]
            .children
            .iter()
            .position(|&c| c == p)
            .expect("p is a child of g");
        self.nodes[g].children[slot] = sib;
        self.nodes[sib].parent = Some(g);
        self.nodes[sib].blen += self.nodes[p].blen;

        // Reuse p as the new junction on the destination edge.
        let q = self.nodes[dest].parent.expect("dest is not the root");
        let dslot = self.nodes[q]
            .children
            .iter()
            .position(|&c| c == dest)
            .expect("dest is a child of q");
        let old_len = self.nodes[dest].blen;
        let half = (old_len / 2.0).max(MIN_BRANCH);
        self.nodes[q].children[dslot] = p;
        self.nodes[p].parent = Some(q);
        self.nodes[p].blen = half;
        self.nodes[p].children = vec![dest, sub];
        self.nodes[dest].parent = Some(p);
        self.nodes[dest].blen = half;
        self.nodes[sub].parent = Some(p);
        debug_assert!(self.validate().is_ok(), "SPR broke tree invariants");
        Ok(())
    }

    /// Enumerates all legal SPR moves as `(sub, dest)` pairs.
    ///
    /// Quadratic in tree size; callers wanting the fastDNAml-style
    /// bounded rearrangement should filter by topological distance.
    pub fn spr_moves(&self) -> Vec<(usize, usize)> {
        let mut moves = Vec::new();
        for sub in self.edges() {
            let p = self.nodes[sub].parent.expect("edge child has a parent");
            if p == self.root {
                continue;
            }
            let mut in_subtree = Vec::new();
            self.collect_nodes(sub, &mut in_subtree);
            let sib = *self.nodes[p]
                .children
                .iter()
                .find(|&&c| c != sub)
                .expect("binary junction");
            for dest in self.edges() {
                if in_subtree.contains(&dest) || dest == p || dest == sib {
                    continue;
                }
                moves.push((sub, dest));
            }
        }
        moves
    }

    fn collect_nodes(&self, id: usize, out: &mut Vec<usize>) {
        out.push(id);
        for &c in &self.nodes[id].children {
            self.collect_nodes(c, out);
        }
    }

    /// Nodes in postorder (children before parents), ending at the root.
    pub fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
            } else {
                stack.push((id, true));
                for &c in &self.nodes[id].children {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Checks structural invariants; returns a description of the first
    /// violation, if any. Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes[self.root].parent.is_some() {
            return Err("root has a parent".into());
        }
        if self.nodes[self.root].children.len() != 3 && self.leaf_count() > 2 {
            return Err(format!(
                "root must be trifurcating, has {} children",
                self.nodes[self.root].children.len()
            ));
        }
        let mut seen_taxa = std::collections::BTreeSet::new();
        for (id, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                if self.nodes[c].parent != Some(id) {
                    return Err(format!("child {c} of {id} has wrong parent pointer"));
                }
            }
            if node.is_leaf() {
                let Some(t) = node.taxon else {
                    return Err(format!("leaf {id} has no taxon"));
                };
                if !seen_taxa.insert(t) {
                    return Err(format!("taxon {t} appears twice"));
                }
            } else {
                if node.taxon.is_some() {
                    return Err(format!("internal node {id} has a taxon"));
                }
                let expected = if id == self.root { 3 } else { 2 };
                if node.children.len() != expected {
                    return Err(format!(
                        "node {id} has {} children, expected {expected}",
                        node.children.len()
                    ));
                }
            }
            if id != self.root && !node.blen.is_finite() {
                return Err(format!("node {id} has non-finite branch length"));
            }
        }
        // Reachability: postorder must visit every node exactly once.
        let order = self.postorder();
        if order.len() != self.nodes.len() {
            return Err(format!(
                "{} of {} nodes reachable from root",
                order.len(),
                self.nodes.len()
            ));
        }
        Ok(())
    }

    /// The canonical split set of the tree: for every internal edge, the
    /// lexicographically smaller side's taxon set, sorted. Two trees are
    /// topologically identical iff their split sets are equal (the
    /// Robinson–Foulds criterion).
    pub fn splits(&self) -> Vec<Vec<usize>> {
        let all: std::collections::BTreeSet<usize> = self.taxa().into_iter().collect();
        let mut splits = Vec::new();
        for c in self.edges() {
            let mut below = Vec::new();
            self.collect_taxa(c, &mut below);
            below.sort_unstable();
            if below.len() < 2 || below.len() > all.len() - 2 {
                continue; // trivial split (pendant edge)
            }
            let other: Vec<usize> = all.iter().copied().filter(|t| !below.contains(t)).collect();
            splits.push(if below < other { below } else { other });
        }
        splits.sort();
        splits
    }

    /// Robinson–Foulds distance to another tree over the same taxa.
    pub fn rf_distance(&self, other: &Tree) -> usize {
        let a = self.splits();
        let b = other.splits();
        let shared = a.iter().filter(|s| b.contains(s)).count();
        (a.len() - shared) + (b.len() - shared)
    }

    fn collect_taxa(&self, id: usize, out: &mut Vec<usize>) {
        if let Some(t) = self.nodes[id].taxon {
            out.push(t);
        }
        for &c in &self.nodes[id].children {
            self.collect_taxa(c, out);
        }
    }
}

/// Smallest branch length the library ever stores; avoids degenerate
/// zero-length branches that make likelihood surfaces flat.
pub const MIN_BRANCH: f64 = 1e-6;

#[cfg(test)]
mod tests {
    use super::*;

    fn four_taxon_tree() -> Tree {
        let mut t = Tree::initial_triple([0, 1, 2], 0.1);
        // Insert taxon 3 into the edge above leaf node 1 (taxon 0).
        t.insert_leaf(1, 3, 0.1);
        t
    }

    #[test]
    fn initial_triple_is_valid() {
        let t = Tree::initial_triple([5, 9, 2], 0.1);
        t.validate().unwrap();
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.edges().len(), 3);
        assert!(t.internal_edges().is_empty());
        let mut taxa = t.taxa();
        taxa.sort_unstable();
        assert_eq!(taxa, vec![2, 5, 9]);
    }

    #[test]
    fn insert_leaf_maintains_invariants_and_counts() {
        let t = four_taxon_tree();
        t.validate().unwrap();
        assert_eq!(t.leaf_count(), 4);
        // Unrooted 4-taxon tree: 2n-2 = 6 nodes, 2n-3 = 5 edges.
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.edges().len(), 5);
        assert_eq!(t.internal_edges().len(), 1);
    }

    #[test]
    fn insert_leaf_splits_branch_length() {
        let mut t = Tree::initial_triple([0, 1, 2], 0.4);
        let before = t.total_branch_length();
        let (mid, leaf) = t.insert_leaf(1, 3, 0.25);
        assert!((t.branch_length(mid) - 0.2).abs() < 1e-12);
        assert!((t.branch_length(1) - 0.2).abs() < 1e-12);
        assert!((t.branch_length(leaf) - 0.25).abs() < 1e-12);
        assert!((t.total_branch_length() - before - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stepwise_edge_count_matches_paper_formula() {
        // Inserting taxon i (1-based) chooses among 2i-5 edges of the
        // (i-1)-taxon tree (paper §3.2 context; 2(i-1)-3 edges).
        let mut t = Tree::initial_triple([0, 1, 2], 0.1);
        for i in 4..=10 {
            let edges = t.edges();
            assert_eq!(edges.len(), 2 * (i - 1) - 3);
            t.insert_leaf(edges[0], i - 1, 0.1);
            t.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "already in the tree")]
    fn duplicate_taxon_insertion_panics() {
        let mut t = Tree::initial_triple([0, 1, 2], 0.1);
        t.insert_leaf(1, 2, 0.1);
    }

    #[test]
    fn postorder_visits_children_first() {
        let t = four_taxon_tree();
        let order = t.postorder();
        assert_eq!(order.len(), t.node_count());
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (id, node) in (0..t.node_count()).map(|i| (i, t.node(i))) {
            for &c in &node.children {
                assert!(pos[&c] < pos[&id], "child {c} after parent {id}");
            }
        }
        assert_eq!(*order.last().unwrap(), t.root());
    }

    #[test]
    fn nni_swap_is_involutive_and_changes_topology() {
        let t = four_taxon_tree();
        let moves = t.nni_moves();
        // One internal edge; 2 children × 2 siblings = 4 moves.
        assert_eq!(moves.len(), 4);
        let (c, a, b) = moves[0];
        let mut t2 = t.clone();
        t2.nni_swap(c, a, b);
        t2.validate().unwrap();
        assert_ne!(t.splits(), t2.splits(), "NNI must change the topology");
        t2.nni_swap(c, b, a);
        assert_eq!(t.splits(), t2.splits(), "NNI is its own inverse");
    }

    #[test]
    fn rf_distance_zero_for_identical_and_positive_for_nni() {
        let t = four_taxon_tree();
        assert_eq!(t.rf_distance(&t), 0);
        let (c, a, b) = t.nni_moves()[0];
        let mut t2 = t.clone();
        t2.nni_swap(c, a, b);
        assert!(t.rf_distance(&t2) > 0);
    }

    #[test]
    fn splits_ignore_pendant_edges() {
        let t = Tree::initial_triple([0, 1, 2], 0.1);
        assert!(t.splits().is_empty(), "3-taxon tree has no internal splits");
        assert_eq!(four_taxon_tree().splits().len(), 1);
    }

    fn six_taxon_tree() -> Tree {
        let mut t = Tree::initial_triple([0, 1, 2], 0.1);
        t.insert_leaf(1, 3, 0.1);
        let e = t.edges()[0];
        t.insert_leaf(e, 4, 0.1);
        let e = *t.edges().last().unwrap();
        t.insert_leaf(e, 5, 0.1);
        t.validate().unwrap();
        t
    }

    #[test]
    fn spr_preserves_invariants_and_taxa() {
        let t = six_taxon_tree();
        let mut applied = 0;
        for (sub, dest) in t.spr_moves() {
            let mut t2 = t.clone();
            t2.spr(sub, dest).expect("enumerated moves are legal");
            t2.validate().unwrap();
            let mut taxa = t2.taxa();
            taxa.sort_unstable();
            assert_eq!(taxa, vec![0, 1, 2, 3, 4, 5]);
            assert_eq!(t2.node_count(), t.node_count(), "arena stays dense");
            applied += 1;
        }
        assert!(
            applied > 10,
            "a 6-taxon tree has many SPR moves ({applied})"
        );
    }

    #[test]
    fn spr_reaches_topologies_nni_cannot_in_one_step() {
        let t = six_taxon_tree();
        // Collect all topologies reachable by one NNI.
        let mut nni_reachable: Vec<Vec<Vec<usize>>> = Vec::new();
        for (c, a, b) in t.nni_moves() {
            let mut t2 = t.clone();
            t2.nni_swap(c, a, b);
            nni_reachable.push(t2.splits());
        }
        // Some SPR move must land outside that set.
        let found = t.spr_moves().iter().any(|&(sub, dest)| {
            let mut t2 = t.clone();
            t2.spr(sub, dest).unwrap();
            let s = t2.splits();
            s != t.splits() && !nni_reachable.contains(&s)
        });
        assert!(found, "SPR must be strictly stronger than one NNI step");
    }

    #[test]
    fn spr_rejects_illegal_moves() {
        let mut t = six_taxon_tree();
        let root = t.root();
        assert!(t.spr(root, 1).is_err(), "root cannot be pruned");
        // A child of the root cannot be pruned (trifurcation would break).
        let root_child = t.node(root).children[0];
        let far = t.edges().into_iter().find(|&e| e != root_child).unwrap();
        assert!(t.spr(root_child, far).is_err());
        // Destination inside the pruned subtree.
        let internal = t
            .internal_edges()
            .into_iter()
            .find(|&c| t.node(c).parent != Some(root))
            .expect("6 taxa have a deep internal edge");
        let inside = t.node(internal).children[0];
        assert!(t.spr(internal, inside).is_err());
        // No-op destinations.
        let p = t.node(internal).parent.unwrap();
        if p != root {
            assert!(t.spr(internal, p).is_err());
        }
        t.validate().unwrap();
    }

    #[test]
    fn spr_conserves_total_subtree_branch_length_roughly() {
        // The sibling absorbs the junction branch and the destination
        // edge is split, so total length changes only by the (re)split
        // rounding — it must stay finite and positive.
        let t = six_taxon_tree();
        for (sub, dest) in t.spr_moves().into_iter().take(20) {
            let mut t2 = t.clone();
            t2.spr(sub, dest).unwrap();
            let total = t2.total_branch_length();
            assert!(total.is_finite() && total > 0.0);
            assert!((total - t.total_branch_length()).abs() < 0.2);
        }
    }

    #[test]
    fn validate_catches_corruption() {
        let mut t = four_taxon_tree();
        // Corrupt a parent pointer.
        let leaf = t.leaves()[0];
        t.nodes[leaf].parent = Some(leaf);
        assert!(t.validate().is_err());
    }

    #[test]
    fn set_branch_length_round_trips() {
        let mut t = four_taxon_tree();
        let e = t.edges()[0];
        t.set_branch_length(e, 0.77);
        assert_eq!(t.branch_length(e), 0.77);
    }
}
