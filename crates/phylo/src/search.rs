//! Stepwise-insertion maximum-likelihood tree search.
//!
//! The fastDNAml strategy \[11, 16\] the paper's DPRml implements: taxa
//! are added one at a time; adding taxon `i` tries every branch of the
//! current `(i-1)`-taxon tree (there are `2i-5` of them), optimises
//! branch lengths for each candidate, keeps the best, then applies
//! local NNI rearrangements until no improvement. Evaluating one
//! insertion candidate ([`evaluate_insertion`]) is a pure function of
//! `(tree, taxon, edge)` — exactly the unit of work DPRml farms out to
//! donor machines.

use crate::lik::TreeLikelihood;
use crate::model::SubstModel;
use crate::patterns::PatternAlignment;
use crate::tree::Tree;

/// Tuning knobs for the stepwise search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOptions {
    /// Branch-length optimisation sweeps per candidate evaluation.
    pub candidate_rounds: u32,
    /// Branch-length optimisation sweeps after choosing the best
    /// candidate of a stage.
    pub refine_rounds: u32,
    /// Likelihood tolerance for optimisation convergence.
    pub tol: f64,
    /// Initial pendant branch length for newly inserted leaves.
    pub initial_blen: f64,
    /// Whether to run NNI local rearrangements after each insertion.
    pub nni: bool,
    /// Optimise only the three branches local to an insertion during
    /// candidate scoring (the fastDNAml trick); the winner still gets a
    /// full refinement pass.
    pub local_candidates: bool,
    /// Run the full branch-length refinement only after every k-th
    /// insertion (and always after the last). `1` refines after every
    /// insertion; larger values trade a little likelihood for much less
    /// serial work per stage — the knob the Fig. 2 workload uses.
    pub refine_every: u32,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            candidate_rounds: 2,
            refine_rounds: 4,
            tol: 1e-3,
            initial_blen: 0.1,
            nni: true,
            local_candidates: true,
            refine_every: 1,
        }
    }
}

/// Result of scoring one insertion point.
#[derive(Debug, Clone)]
pub struct InsertionCandidate {
    /// The edge (child-node id in the *base* tree) that was split.
    pub edge: usize,
    /// Log-likelihood of the optimised candidate tree.
    pub ln_likelihood: f64,
    /// The candidate tree itself (base tree + new taxon, optimised).
    pub tree: Tree,
}

/// Scores the insertion of `taxon` into `edge` of `base`.
///
/// Pure function: clones the base tree, splits the edge, optimises
/// branch lengths (only the three local branches when
/// `opts.local_candidates`), and returns the optimised tree with its
/// log-likelihood. This is the work-unit computation of DPRml.
pub fn evaluate_insertion(
    base: &Tree,
    taxon: usize,
    edge: usize,
    engine: &TreeLikelihood<'_>,
    opts: &SearchOptions,
) -> InsertionCandidate {
    let mut tree = base.clone();
    let (mid, leaf) = tree.insert_leaf(edge, taxon, opts.initial_blen);
    let lnl = if opts.local_candidates {
        let local = [mid, leaf, edge];
        engine.optimize_edges(&mut tree, Some(&local), opts.candidate_rounds, opts.tol)
    } else {
        engine.optimize_edges(&mut tree, None, opts.candidate_rounds, opts.tol)
    };
    InsertionCandidate {
        edge,
        ln_likelihood: lnl,
        tree,
    }
}

/// Picks the best candidate deterministically: highest likelihood, ties
/// broken by smallest edge id (so distributed and sequential runs agree
/// bit-for-bit).
pub fn best_candidate(candidates: Vec<InsertionCandidate>) -> InsertionCandidate {
    candidates
        .into_iter()
        .reduce(|best, c| {
            if c.ln_likelihood > best.ln_likelihood
                || (c.ln_likelihood == best.ln_likelihood && c.edge < best.edge)
            {
                c
            } else {
                best
            }
        })
        .expect("at least one candidate")
}

/// One round of NNI hill climbing: tries every NNI move, applies the
/// best if it improves on `current_lnl`. Returns the new likelihood if
/// a move was applied.
pub fn nni_improve(
    tree: &mut Tree,
    current_lnl: f64,
    engine: &TreeLikelihood<'_>,
    opts: &SearchOptions,
) -> Option<f64> {
    let moves = tree.nni_moves();
    let mut best: Option<(f64, Tree)> = None;
    for (c, a, b) in moves {
        let mut candidate = tree.clone();
        candidate.nni_swap(c, a, b);
        let lnl =
            engine.optimize_edges(&mut candidate, Some(&[c]), opts.candidate_rounds, opts.tol);
        if lnl > current_lnl + opts.tol && best.as_ref().map(|(bl, _)| lnl > *bl).unwrap_or(true) {
            best = Some((lnl, candidate));
        }
    }
    if let Some((lnl, t)) = best {
        *tree = t;
        Some(lnl)
    } else {
        None
    }
}

/// One round of SPR hill climbing (extension beyond the paper's NNI):
/// tries every subtree-prune-and-regraft move, re-optimising the three
/// branches around the regraft point per candidate, and applies the
/// best move that improves on `current_lnl`. Returns the new
/// likelihood if a move was applied.
///
/// SPR is strictly stronger than NNI (it escapes local optima NNI
/// cannot) at quadratic candidate count; use it as a finishing pass
/// after [`stepwise_ml`].
pub fn spr_improve(
    tree: &mut Tree,
    current_lnl: f64,
    engine: &TreeLikelihood<'_>,
    opts: &SearchOptions,
) -> Option<f64> {
    let moves = tree.spr_moves();
    let mut best: Option<(f64, Tree)> = None;
    for (sub, dest) in moves {
        let mut candidate = tree.clone();
        if candidate.spr(sub, dest).is_err() {
            continue;
        }
        // The regraft reused `sub`'s old junction as the new junction
        // above `dest`; optimise the branches it touches.
        let junction = candidate
            .node(sub)
            .parent
            .expect("regrafted under a junction");
        let lnl = engine.optimize_edges(
            &mut candidate,
            Some(&[sub, dest, junction]),
            opts.candidate_rounds,
            opts.tol,
        );
        if lnl > current_lnl + opts.tol && best.as_ref().map(|(bl, _)| lnl > *bl).unwrap_or(true) {
            best = Some((lnl, candidate));
        }
    }
    if let Some((lnl, t)) = best {
        *tree = t;
        Some(lnl)
    } else {
        None
    }
}

/// Full sequential stepwise-insertion ML search — the reference
/// implementation that the distributed DPRml must agree with.
///
/// `taxon_order` gives the insertion order (defaults to `0..n`).
/// Returns the final tree and its log-likelihood.
pub fn stepwise_ml(
    data: &PatternAlignment,
    model: &SubstModel,
    taxon_order: Option<&[usize]>,
    opts: &SearchOptions,
) -> (Tree, f64) {
    let n = data.taxon_count();
    assert!(n >= 3, "stepwise search needs at least 3 taxa");
    let default_order: Vec<usize> = (0..n).collect();
    let order: &[usize] = taxon_order.unwrap_or(&default_order);
    assert_eq!(order.len(), n, "taxon order must cover every taxon");

    let engine = TreeLikelihood::new(model, data);
    let mut tree = Tree::initial_triple([order[0], order[1], order[2]], opts.initial_blen);
    let mut lnl = engine.optimize_edges(&mut tree, None, opts.refine_rounds, opts.tol);

    let refine_every = opts.refine_every.max(1);
    for (k, &taxon) in order[3..].iter().enumerate() {
        let candidates: Vec<InsertionCandidate> = tree
            .edges()
            .into_iter()
            .map(|edge| evaluate_insertion(&tree, taxon, edge, &engine, opts))
            .collect();
        let chosen = best_candidate(candidates);
        tree = chosen.tree;
        let is_last = k == order.len() - 4;
        if (k as u32 + 1).is_multiple_of(refine_every) || is_last {
            lnl = engine.optimize_edges(&mut tree, None, opts.refine_rounds, opts.tol);
        } else {
            lnl = chosen.ln_likelihood;
        }

        if opts.nni {
            // Hill-climb NNI moves until none improves (bounded to keep
            // worst-case time predictable).
            for _ in 0..8 {
                match nni_improve(&mut tree, lnl, &engine, opts) {
                    Some(better) => {
                        lnl = engine.optimize_edges(&mut tree, None, opts.refine_rounds, opts.tol);
                        let _ = better;
                    }
                    None => break,
                }
            }
        }
    }
    debug_assert!(tree.validate().is_ok());
    (tree, lnl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolve::{random_yule_tree, simulate_alignment};
    use crate::lik::log_likelihood;
    use crate::model::ModelKind;

    fn test_data(n_taxa: usize, sites: usize, seed: u64) -> (Tree, PatternAlignment, SubstModel) {
        let truth = random_yule_tree(n_taxa, 0.12, seed);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let seqs = simulate_alignment(&truth, &model, sites, None, seed + 1);
        let data = PatternAlignment::from_sequences(&seqs);
        (truth, data, model)
    }

    #[test]
    fn evaluate_insertion_adds_exactly_one_taxon() {
        let (_, data, model) = test_data(5, 100, 3);
        let engine = TreeLikelihood::new(&model, &data);
        let base = Tree::initial_triple([0, 1, 2], 0.1);
        let opts = SearchOptions::default();
        let cand = evaluate_insertion(&base, 3, 1, &engine, &opts);
        cand.tree.validate().unwrap();
        assert_eq!(cand.tree.leaf_count(), 4);
        assert!(cand.ln_likelihood.is_finite());
        assert_eq!(cand.edge, 1);
        // Base tree untouched.
        assert_eq!(base.leaf_count(), 3);
    }

    #[test]
    fn best_candidate_breaks_ties_by_edge_id() {
        let t = Tree::initial_triple([0, 1, 2], 0.1);
        let mk = |edge: usize, lnl: f64| InsertionCandidate {
            edge,
            ln_likelihood: lnl,
            tree: t.clone(),
        };
        let best = best_candidate(vec![mk(3, -10.0), mk(1, -10.0), mk(2, -10.0)]);
        assert_eq!(best.edge, 1);
        let best = best_candidate(vec![mk(3, -5.0), mk(1, -10.0)]);
        assert_eq!(best.edge, 3);
    }

    #[test]
    fn stepwise_recovers_generating_topology_on_clean_data() {
        // Long alignment, few taxa, moderate branches: the true tree
        // should be recoverable exactly.
        let (truth, data, model) = test_data(6, 800, 17);
        let (found, lnl) = stepwise_ml(&data, &model, None, &SearchOptions::default());
        assert!(lnl.is_finite());
        assert_eq!(found.leaf_count(), 6);
        assert_eq!(
            found.rf_distance(&truth),
            0,
            "expected topology recovery; truth={:?} found={:?}",
            truth.splits(),
            found.splits()
        );
    }

    #[test]
    fn stepwise_beats_arbitrary_tree_likelihood() {
        let (_, data, model) = test_data(7, 300, 29);
        let (found, lnl) = stepwise_ml(&data, &model, None, &SearchOptions::default());
        let arbitrary = random_yule_tree(7, 0.12, 1234);
        let l_arb = log_likelihood(&arbitrary, &data, &model);
        assert!(lnl > l_arb, "search {lnl} must beat arbitrary {l_arb}");
        assert_eq!(found.leaf_count(), 7);
    }

    #[test]
    fn insertion_order_does_not_break_validity() {
        let (_, data, model) = test_data(6, 200, 31);
        let order = [5, 4, 3, 2, 1, 0];
        let (tree, lnl) = stepwise_ml(&data, &model, Some(&order), &SearchOptions::default());
        tree.validate().unwrap();
        assert_eq!(tree.leaf_count(), 6);
        assert!(lnl.is_finite());
    }

    #[test]
    fn local_and_global_candidate_scoring_agree_on_winner_often() {
        // Not a strict invariant, but on clean data the cheap local
        // scoring should pick the same insertion edge as full scoring.
        let (_, data, model) = test_data(5, 600, 41);
        let engine = TreeLikelihood::new(&model, &data);
        let mut base = Tree::initial_triple([0, 1, 2], 0.1);
        engine.optimize_edges(&mut base, None, 4, 1e-3);
        let local_opts = SearchOptions {
            local_candidates: true,
            ..Default::default()
        };
        let full_opts = SearchOptions {
            local_candidates: false,
            ..Default::default()
        };
        let edges = base.edges();
        let best_local = best_candidate(
            edges
                .iter()
                .map(|&e| evaluate_insertion(&base, 3, e, &engine, &local_opts))
                .collect(),
        );
        let best_full = best_candidate(
            edges
                .iter()
                .map(|&e| evaluate_insertion(&base, 3, e, &engine, &full_opts))
                .collect(),
        );
        assert_eq!(best_local.edge, best_full.edge);
    }

    #[test]
    fn nni_improve_returns_none_at_local_optimum() {
        let (_, data, model) = test_data(5, 800, 53);
        let opts = SearchOptions::default();
        let (mut tree, lnl) = stepwise_ml(&data, &model, None, &opts);
        let engine = TreeLikelihood::new(&model, &data);
        // The search already exhausted NNI moves; none should improve.
        assert!(nni_improve(&mut tree, lnl, &engine, &opts).is_none());
    }

    #[test]
    fn spr_improve_returns_none_at_a_strong_optimum() {
        let (_, data, model) = test_data(6, 800, 17);
        let opts = SearchOptions::default();
        let (mut tree, lnl) = stepwise_ml(&data, &model, None, &opts);
        let engine = TreeLikelihood::new(&model, &data);
        // On clean long data the stepwise+NNI tree is the true topology;
        // no SPR move should beat it.
        assert!(spr_improve(&mut tree, lnl, &engine, &opts).is_none());
    }

    #[test]
    fn spr_improve_rescues_a_scrambled_tree() {
        let (truth, data, model) = test_data(7, 900, 17);
        let engine = TreeLikelihood::new(&model, &data);
        let opts = SearchOptions::default();
        // Start from a deliberately wrong topology: a random tree over
        // the same taxa.
        let mut tree = crate::evolve::random_yule_tree(7, 0.12, 9999);
        let mut lnl = engine.optimize_edges(&mut tree, None, 4, 1e-3);
        if tree.rf_distance(&truth) == 0 {
            return; // unlucky: the random tree was already correct
        }
        let before_rf = tree.rf_distance(&truth);
        // Up to 10 SPR rounds of hill climbing.
        for _ in 0..10 {
            match spr_improve(&mut tree, lnl, &engine, &opts) {
                Some(better) => {
                    lnl = engine.optimize_edges(&mut tree, None, 4, 1e-3);
                    assert!(better <= lnl + 1e-6);
                }
                None => break,
            }
        }
        let after_rf = tree.rf_distance(&truth);
        assert!(
            after_rf < before_rf,
            "SPR should move toward the truth (rf {before_rf} -> {after_rf})"
        );
        tree.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least 3 taxa")]
    fn stepwise_rejects_two_taxa() {
        let seqs = [
            biodist_bioseq::Sequence::from_text("a", "", biodist_bioseq::Alphabet::Dna, "ACGT")
                .unwrap(),
            biodist_bioseq::Sequence::from_text("b", "", biodist_bioseq::Alphabet::Dna, "ACGT")
                .unwrap(),
        ];
        let data = PatternAlignment::from_sequences(&seqs);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        stepwise_ml(&data, &model, None, &SearchOptions::default());
    }
}
