//! Newick serialisation of [`Tree`]s.
//!
//! Writing takes a slice of taxon names indexed by taxon id; parsing
//! returns the tree plus the name list it discovered (taxon ids are
//! assigned in order of first appearance). The basal trifurcation maps
//! naturally onto the conventional unrooted Newick form
//! `(A:0.1,B:0.2,(C:0.3,D:0.4):0.05);`.

use crate::tree::{Node, Tree};

/// Renders a tree as a Newick string with branch lengths.
pub fn to_newick(tree: &Tree, names: &[String]) -> String {
    fn render(tree: &Tree, id: usize, names: &[String], out: &mut String) {
        let node = tree.node(id);
        if node.is_leaf() {
            let t = node.taxon.expect("leaf has a taxon");
            out.push_str(
                names
                    .get(t)
                    .map(|s| s.as_str())
                    .unwrap_or_else(|| panic!("no name for taxon {t}")),
            );
        } else {
            out.push('(');
            for (i, &c) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(tree, c, names, out);
                out.push_str(&format!(":{:.6}", tree.node(c).blen));
            }
            out.push(')');
        }
    }
    let mut out = String::new();
    render(tree, tree.root(), names, &mut out);
    out.push(';');
    out
}

/// Error from Newick parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewickError {
    /// Byte offset of the problem.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for NewickError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "newick parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for NewickError {}

/// Parses a Newick string into a tree and the taxon names encountered.
///
/// Requirements: the outermost group must have exactly 3 children when
/// the tree has more than 2 taxa (the unrooted convention this library
/// uses); internal groups must be binary. Missing branch lengths
/// default to 0.
pub fn from_newick(text: &str) -> Result<(Tree, Vec<String>), NewickError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let mut nodes: Vec<Node> = Vec::new();
    let mut names: Vec<String> = Vec::new();

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn parse_node(
        bytes: &[u8],
        pos: &mut usize,
        nodes: &mut Vec<Node>,
        names: &mut Vec<String>,
    ) -> Result<usize, NewickError> {
        skip_ws(bytes, pos);
        if *pos >= bytes.len() {
            return Err(NewickError {
                position: *pos,
                message: "unexpected end".into(),
            });
        }
        if bytes[*pos] == b'(' {
            *pos += 1;
            let id = nodes.len();
            nodes.push(Node {
                parent: None,
                children: vec![],
                blen: 0.0,
                taxon: None,
            });
            loop {
                let child = parse_node(bytes, pos, nodes, names)?;
                nodes[child].parent = Some(id);
                // Optional branch length.
                skip_ws(bytes, pos);
                if *pos < bytes.len() && bytes[*pos] == b':' {
                    *pos += 1;
                    let start = *pos;
                    while *pos < bytes.len()
                        && (bytes[*pos].is_ascii_digit()
                            || matches!(bytes[*pos], b'.' | b'-' | b'+' | b'e' | b'E'))
                    {
                        *pos += 1;
                    }
                    let s = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII");
                    let blen: f64 = s.parse().map_err(|_| NewickError {
                        position: start,
                        message: format!("bad branch length `{s}`"),
                    })?;
                    if blen < 0.0 {
                        return Err(NewickError {
                            position: start,
                            message: "negative branch length".into(),
                        });
                    }
                    nodes[child].blen = blen;
                }
                nodes[id].children.push(child);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => {
                        *pos += 1;
                    }
                    Some(b')') => {
                        *pos += 1;
                        break;
                    }
                    _ => {
                        return Err(NewickError {
                            position: *pos,
                            message: "expected `,` or `)`".into(),
                        })
                    }
                }
            }
            Ok(id)
        } else {
            // Leaf label.
            let start = *pos;
            while *pos < bytes.len()
                && !matches!(bytes[*pos], b',' | b')' | b'(' | b':' | b';')
                && !bytes[*pos].is_ascii_whitespace()
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(NewickError {
                    position: *pos,
                    message: "empty leaf label".into(),
                });
            }
            let label = std::str::from_utf8(&bytes[start..*pos])
                .expect("validated ASCII range")
                .to_string();
            if names.contains(&label) {
                return Err(NewickError {
                    position: start,
                    message: format!("duplicate taxon `{label}`"),
                });
            }
            let taxon = names.len();
            names.push(label);
            let id = nodes.len();
            nodes.push(Node {
                parent: None,
                children: vec![],
                blen: 0.0,
                taxon: Some(taxon),
            });
            Ok(id)
        }
    }

    let root = parse_node(bytes, &mut pos, &mut nodes, &mut names)?;
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) == Some(&b';') {
        pos += 1;
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(NewickError {
            position: pos,
            message: "trailing characters".into(),
        });
    }

    let tree = Tree::from_parts(nodes, root).map_err(|m| NewickError {
        position: 0,
        message: m,
    })?;
    Ok((tree, names))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn renders_initial_triple() {
        let t = Tree::initial_triple([0, 1, 2], 0.1);
        let s = to_newick(&t, &names(&["A", "B", "C"]));
        assert_eq!(s, "(A:0.100000,B:0.100000,C:0.100000);");
    }

    #[test]
    fn round_trips_a_four_taxon_tree() {
        let mut t = Tree::initial_triple([0, 1, 2], 0.1);
        t.insert_leaf(1, 3, 0.25);
        let labels = names(&["A", "B", "C", "D"]);
        let s = to_newick(&t, &labels);
        let (parsed, parsed_names) = from_newick(&s).unwrap();
        parsed.validate().unwrap();
        assert_eq!(parsed.leaf_count(), 4);
        // Re-render with the parsed name order: topology must survive.
        let s2 = to_newick(&parsed, &parsed_names);
        let (parsed2, _) = from_newick(&s2).unwrap();
        assert_eq!(parsed.rf_distance(&parsed2), 0);
    }

    #[test]
    fn parses_standard_unrooted_form() {
        let (t, n) = from_newick("(A:0.1,B:0.2,(C:0.3,D:0.4):0.05);").unwrap();
        t.validate().unwrap();
        assert_eq!(n, names(&["A", "B", "C", "D"]));
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.internal_edges().len(), 1);
        // Branch length of the internal edge.
        let internal = t.internal_edges()[0];
        assert!((t.branch_length(internal) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn missing_branch_lengths_default_to_zero() {
        let (t, _) = from_newick("(A,B,C);").unwrap();
        assert_eq!(t.total_branch_length(), 0.0);
    }

    #[test]
    fn rejects_duplicate_taxa() {
        let err = from_newick("(A:1,B:1,A:1);").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn rejects_negative_branch_length() {
        let err = from_newick("(A:1,B:-0.5,C:1);").unwrap_err();
        assert!(err.message.contains("negative"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = from_newick("(A:1,B:1,C:1); extra").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn rejects_malformed_structure() {
        assert!(from_newick("(A:1,B:1").is_err());
        assert!(from_newick("()").is_err());
        assert!(from_newick("").is_err());
    }

    #[test]
    fn rejects_non_trifurcating_root_for_big_trees() {
        // Rooted (binary-root) newick is not this library's convention.
        assert!(from_newick("((A:1,B:1):1,(C:1,D:1):1);").is_err());
    }

    #[test]
    fn scientific_notation_branch_lengths_parse() {
        let (t, _) = from_newick("(A:1e-3,B:2.5E-2,C:1.0);").unwrap();
        let total = t.total_branch_length();
        assert!((total - (0.001 + 0.025 + 1.0)).abs() < 1e-12);
    }
}
