//! Nonparametric bootstrap support values (Felsenstein 1985).
//!
//! "Large and accurate phylogenetic trees" (paper §3.2) are only
//! credible with support values: alignments are resampled column-wise
//! with replacement, a tree is built per replicate, and each internal
//! split of the reference tree is annotated with the fraction of
//! replicates containing it. Replicate tree building uses neighbor
//! joining on JC distances by default — the cheap, standard choice —
//! but any builder can be plugged in, including the full distributed
//! DPRml search (each replicate is simply one more `Problem`).

use crate::nj::{jc_distance_matrix, neighbor_joining};
use crate::patterns::PatternAlignment;
use crate::tree::Tree;
use biodist_bioseq::{Alphabet, Sequence};
use biodist_util::rng::{Rng, Xoshiro256StarStar};

/// Resamples alignment columns with replacement (one bootstrap
/// replicate). Weights are resampled at the *site* level, so a pattern
/// with multiplicity w contributes w independent draws.
pub fn resample_alignment(seqs: &[Sequence], rng: &mut dyn Rng) -> Vec<Sequence> {
    assert!(!seqs.is_empty(), "need sequences to resample");
    let len = seqs[0].len();
    assert!(len > 0, "empty alignment");
    let columns: Vec<usize> = (0..len)
        .map(|_| rng.next_below(len as u64) as usize)
        .collect();
    seqs.iter()
        .map(|s| {
            let codes: Vec<u8> = columns.iter().map(|&c| s.codes()[c]).collect();
            let mut out = Sequence::from_codes(&s.id, Alphabet::Dna, codes);
            out.description = s.description.clone();
            out
        })
        .collect()
}

/// Split support for a reference tree.
#[derive(Debug, Clone)]
pub struct BootstrapSupport {
    /// The reference tree's internal splits (as produced by
    /// [`Tree::splits`]).
    pub splits: Vec<Vec<usize>>,
    /// Support fraction (0–1) for each split, same order.
    pub support: Vec<f64>,
    /// Number of replicates run.
    pub replicates: u32,
}

impl BootstrapSupport {
    /// The lowest support of any split (the tree's weakest edge).
    pub fn min_support(&self) -> f64 {
        self.support.iter().copied().fold(1.0, f64::min)
    }
}

/// Runs `replicates` bootstrap replicates and scores the splits of
/// `reference`. `builder` maps a resampled alignment to a tree; use
/// [`nj_builder`] for the standard fast choice.
pub fn bootstrap_support(
    reference: &Tree,
    seqs: &[Sequence],
    replicates: u32,
    seed: u64,
    builder: impl Fn(&[Sequence]) -> Tree,
) -> BootstrapSupport {
    assert!(replicates > 0, "need at least one replicate");
    let splits = reference.splits();
    let mut counts = vec![0u32; splits.len()];
    let mut rng = Xoshiro256StarStar::new(seed).derive(0xB007);
    for _ in 0..replicates {
        let resampled = resample_alignment(seqs, &mut rng);
        let tree = builder(&resampled);
        let rep_splits = tree.splits();
        for (i, s) in splits.iter().enumerate() {
            if rep_splits.contains(s) {
                counts[i] += 1;
            }
        }
    }
    let support = counts
        .iter()
        .map(|&c| c as f64 / replicates as f64)
        .collect();
    BootstrapSupport {
        splits,
        support,
        replicates,
    }
}

/// The standard fast replicate builder: neighbor joining on JC
/// distances.
pub fn nj_builder(seqs: &[Sequence]) -> Tree {
    let data = PatternAlignment::from_sequences(seqs);
    neighbor_joining(&jc_distance_matrix(&data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolve::{random_yule_tree, simulate_alignment};
    use crate::model::{ModelKind, SubstModel};

    fn clean_dataset(sites: usize, seed: u64) -> (Tree, Vec<Sequence>) {
        let truth = random_yule_tree(7, 0.15, seed);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let seqs = simulate_alignment(&truth, &model, sites, None, seed + 1);
        (truth, seqs)
    }

    #[test]
    fn resampling_preserves_shape_and_alphabet() {
        let (_, seqs) = clean_dataset(80, 1);
        let mut rng = Xoshiro256StarStar::new(2);
        let r = resample_alignment(&seqs, &mut rng);
        assert_eq!(r.len(), seqs.len());
        for (a, b) in r.iter().zip(&seqs) {
            assert_eq!(a.len(), b.len());
            assert_eq!(a.id, b.id);
        }
        // Resampling must actually change the column multiset (w.h.p.).
        assert_ne!(r[0].codes(), seqs[0].codes());
    }

    #[test]
    fn resampling_is_column_consistent() {
        // Every output column must be a copy of one input column across
        // ALL taxa (not mixed per-taxon).
        let (_, seqs) = clean_dataset(50, 3);
        let mut rng = Xoshiro256StarStar::new(4);
        let r = resample_alignment(&seqs, &mut rng);
        let n = seqs.len();
        let len = seqs[0].len();
        for col in 0..len {
            let out_col: Vec<u8> = (0..n).map(|t| r[t].codes()[col]).collect();
            let found = (0..len).any(|src| (0..n).all(|t| seqs[t].codes()[src] == out_col[t]));
            assert!(
                found,
                "output column {col} is not a copy of any input column"
            );
        }
    }

    #[test]
    fn long_clean_alignments_get_high_support() {
        let (truth, seqs) = clean_dataset(2000, 11);
        let bs = bootstrap_support(&truth, &seqs, 50, 12, nj_builder);
        assert_eq!(bs.splits.len(), truth.splits().len());
        assert_eq!(bs.replicates, 50);
        // Short internal branches legitimately get moderate support even
        // on clean data; require strong support on average and non-trivial
        // support everywhere.
        let mean = bs.support.iter().sum::<f64>() / bs.support.len() as f64;
        assert!(mean > 0.85, "mean support {mean}: {:?}", bs.support);
        assert!(
            bs.min_support() > 0.5,
            "weakest split too weak: {:?}",
            bs.support
        );
    }

    #[test]
    fn short_noisy_alignments_get_lower_support() {
        let (truth, long_seqs) = clean_dataset(2000, 21);
        let short_seqs: Vec<Sequence> = long_seqs.iter().map(|s| s.slice(0..40)).collect();
        let long_bs = bootstrap_support(&truth, &long_seqs, 40, 22, nj_builder);
        let short_bs = bootstrap_support(&truth, &short_seqs, 40, 22, nj_builder);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&short_bs.support) < mean(&long_bs.support),
            "less data must mean less support ({:?} vs {:?})",
            short_bs.support,
            long_bs.support
        );
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let (truth, seqs) = clean_dataset(300, 31);
        let a = bootstrap_support(&truth, &seqs, 20, 7, nj_builder);
        let b = bootstrap_support(&truth, &seqs, 20, 7, nj_builder);
        assert_eq!(a.support, b.support);
    }
}
