//! Sequence evolution simulator.
//!
//! Generates random tree shapes and evolves alignments down them under
//! any [`SubstModel`] — the synthetic stand-in for the paper's 50-taxon
//! dataset (DESIGN.md, substitution table). Because data are simulated
//! from a known tree, tests can check that ML search recovers (or
//! approaches) the generating topology.

use crate::model::SubstModel;
use crate::tree::Tree;
use biodist_bioseq::{Alphabet, Sequence};
use biodist_util::rng::{Rng, Xoshiro256StarStar};

/// Generates a random unrooted tree over `n_taxa` taxa.
///
/// Topology: random sequential insertion (each new taxon attaches to a
/// uniformly chosen edge), which produces the same distribution as the
/// Yule process on unrooted shapes. Branch lengths are exponential with
/// the given mean.
pub fn random_yule_tree(n_taxa: usize, mean_blen: f64, seed: u64) -> Tree {
    assert!(n_taxa >= 3, "need at least 3 taxa for an unrooted tree");
    assert!(mean_blen > 0.0, "mean branch length must be positive");
    let mut rng = Xoshiro256StarStar::new(seed);
    fn blen(rng: &mut Xoshiro256StarStar, mean: f64) -> f64 {
        rng.next_exp(mean).max(1e-4)
    }
    let mut tree = Tree::initial_triple([0, 1, 2], 0.0);
    for e in tree.edges() {
        let b = blen(&mut rng, mean_blen);
        tree.set_branch_length(e, b);
    }
    for taxon in 3..n_taxa {
        let edges = tree.edges();
        let pick = rng.next_below(edges.len() as u64) as usize;
        let b = blen(&mut rng, mean_blen);
        tree.insert_leaf(edges[pick], taxon, b);
    }
    debug_assert!(tree.validate().is_ok());
    tree
}

/// Evolves an alignment of `n_sites` columns down `tree` under `model`.
///
/// Per site, a rate category is drawn from the model's category
/// probabilities and the root state from the stationary frequencies;
/// states then mutate down each branch according to `P(t·rate)`.
/// Returns one sequence per taxon, named `names[taxon]` (or `t<idx>` if
/// `names` is `None`), ordered by taxon index.
pub fn simulate_alignment(
    tree: &Tree,
    model: &SubstModel,
    n_sites: usize,
    names: Option<&[String]>,
    seed: u64,
) -> Vec<Sequence> {
    assert!(n_sites > 0, "need at least one site");
    let mut rng = Xoshiro256StarStar::new(seed).derive(0x5EED);
    let freqs = model.freqs();
    let cats = model.rate_categories();
    let n_nodes = tree.node_count();

    let mut taxa: Vec<usize> = tree.taxa();
    taxa.sort_unstable();
    let max_taxon = *taxa.last().expect("tree has taxa");
    let mut leaf_codes: Vec<Vec<u8>> = vec![Vec::with_capacity(n_sites); max_taxon + 1];

    // Preorder node visit order (parents before children).
    let mut order = tree.postorder();
    order.reverse();

    let mut states = vec![0u8; n_nodes];
    for _ in 0..n_sites {
        let cat = rng.next_weighted(&cats.probs);
        let rate = cats.rates[cat];
        for &v in &order {
            let node = tree.node(v);
            let state = match node.parent {
                None => rng.next_weighted(&freqs) as u8,
                Some(p) => {
                    let pm = model.transition_matrix(tree.branch_length(v), rate);
                    let row = &pm[states[p] as usize];
                    rng.next_weighted(row) as u8
                }
            };
            states[v] = state;
            if let Some(taxon) = node.taxon {
                leaf_codes[taxon].push(state);
            }
        }
    }

    taxa.into_iter()
        .map(|t| {
            let id = match names {
                Some(ns) => ns[t].clone(),
                None => format!("t{t}"),
            };
            Sequence::from_codes(&id, Alphabet::Dna, std::mem::take(&mut leaf_codes[t]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GammaRates, ModelKind};
    use crate::patterns::PatternAlignment;

    #[test]
    fn random_tree_is_valid_and_sized_correctly() {
        for n in [3, 5, 10, 50] {
            let t = random_yule_tree(n, 0.1, 7);
            t.validate().unwrap();
            assert_eq!(t.leaf_count(), n);
            assert_eq!(t.edges().len(), 2 * n - 3);
            assert!(t.total_branch_length() > 0.0);
        }
    }

    #[test]
    fn tree_generation_is_deterministic() {
        let a = random_yule_tree(20, 0.1, 42);
        let b = random_yule_tree(20, 0.1, 42);
        assert_eq!(a, b);
        let c = random_yule_tree(20, 0.1, 43);
        assert_ne!(a.splits(), c.splits());
    }

    #[test]
    fn simulated_alignment_has_right_shape() {
        let tree = random_yule_tree(8, 0.1, 1);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let seqs = simulate_alignment(&tree, &model, 120, None, 9);
        assert_eq!(seqs.len(), 8);
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(s.len(), 120);
            assert_eq!(s.id, format!("t{i}"));
        }
    }

    #[test]
    fn zero_length_branches_copy_states_exactly() {
        let mut tree = Tree::initial_triple([0, 1, 2], 0.0);
        for e in tree.edges() {
            tree.set_branch_length(e, 1e-9);
        }
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let seqs = simulate_alignment(&tree, &model, 50, None, 3);
        assert_eq!(seqs[0].codes(), seqs[1].codes());
        assert_eq!(seqs[1].codes(), seqs[2].codes());
    }

    #[test]
    fn long_branches_decorrelate_sequences() {
        let mut tree = Tree::initial_triple([0, 1, 2], 5.0);
        for e in tree.edges() {
            tree.set_branch_length(e, 5.0);
        }
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let seqs = simulate_alignment(&tree, &model, 2000, None, 5);
        let matches = seqs[0]
            .codes()
            .iter()
            .zip(seqs[1].codes())
            .filter(|(a, b)| a == b)
            .count();
        let frac = matches as f64 / 2000.0;
        assert!(
            (frac - 0.25).abs() < 0.04,
            "saturated identity {frac} should be ~0.25"
        );
    }

    #[test]
    fn base_composition_tracks_stationary_frequencies() {
        let freqs = [0.5, 0.2, 0.2, 0.1];
        let model = SubstModel::homogeneous(ModelKind::F81 { freqs });
        let tree = random_yule_tree(6, 0.2, 11);
        let seqs = simulate_alignment(&tree, &model, 4000, None, 13);
        let mut counts = [0usize; 4];
        let mut total = 0usize;
        for s in &seqs {
            for &c in s.codes() {
                counts[c as usize] += 1;
                total += 1;
            }
        }
        for (i, &f) in freqs.iter().enumerate() {
            let got = counts[i] as f64 / total as f64;
            assert!((got - f).abs() < 0.02, "base {i}: {got} vs {f}");
        }
    }

    #[test]
    fn simulated_data_prefers_generating_tree_over_random_tree() {
        let truth = random_yule_tree(8, 0.15, 21);
        let model = SubstModel::new(ModelKind::K80 { kappa: 3.0 }, GammaRates::gamma(1.0, 2));
        let seqs = simulate_alignment(&truth, &model, 400, None, 22);
        let data = PatternAlignment::from_sequences(&seqs);
        let other = random_yule_tree(8, 0.15, 99);
        let l_truth = crate::lik::log_likelihood(&truth, &data, &model);
        let l_other = crate::lik::log_likelihood(&other, &data, &model);
        assert!(
            l_truth > l_other,
            "generating tree {l_truth} should beat random tree {l_other}"
        );
    }

    #[test]
    fn custom_names_are_used() {
        let tree = Tree::initial_triple([0, 1, 2], 0.1);
        let model = SubstModel::homogeneous(ModelKind::Jc69);
        let names = vec![
            "human".to_string(),
            "mouse".to_string(),
            "yeast".to_string(),
        ];
        let seqs = simulate_alignment(&tree, &model, 10, Some(&names), 1);
        assert_eq!(seqs[0].id, "human");
        assert_eq!(seqs[2].id, "yeast");
    }
}
