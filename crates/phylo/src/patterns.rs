//! Site-pattern compression.
//!
//! Alignment columns with identical residue patterns contribute
//! identical per-site likelihoods, so the pruning engine evaluates each
//! distinct pattern once and weights it by its multiplicity — the
//! single most important constant-factor optimisation in likelihood
//! phylogenetics.

use biodist_bioseq::{Alphabet, Sequence};
use std::collections::HashMap;

/// A compressed multiple sequence alignment of DNA sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternAlignment {
    /// Taxon names, indexed by taxon id (row order of the input).
    pub names: Vec<String>,
    /// Distinct site patterns; `patterns[p][taxon]` is a DNA code
    /// (0–3, or 4 for ambiguity/missing).
    patterns: Vec<Vec<u8>>,
    /// Multiplicity of each pattern.
    weights: Vec<f64>,
    /// Uncompressed alignment length.
    site_count: usize,
}

impl PatternAlignment {
    /// Compresses an alignment. All sequences must be DNA, non-empty,
    /// and of equal length.
    ///
    /// # Panics
    /// Panics on ragged input, empty input, or non-DNA sequences.
    pub fn from_sequences(seqs: &[Sequence]) -> Self {
        assert!(seqs.len() >= 2, "an alignment needs at least two sequences");
        let len = seqs[0].len();
        assert!(len > 0, "alignment has zero columns");
        for s in seqs {
            assert_eq!(s.alphabet, Alphabet::Dna, "sequence `{}` is not DNA", s.id);
            assert_eq!(
                s.len(),
                len,
                "sequence `{}` has length {}, expected {len}",
                s.id,
                s.len()
            );
        }
        let names: Vec<String> = seqs.iter().map(|s| s.id.clone()).collect();

        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut patterns: Vec<Vec<u8>> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for col in 0..len {
            let pattern: Vec<u8> = seqs.iter().map(|s| s.codes()[col]).collect();
            match index.get(&pattern) {
                Some(&p) => weights[p] += 1.0,
                None => {
                    index.insert(pattern.clone(), patterns.len());
                    patterns.push(pattern);
                    weights.push(1.0);
                }
            }
        }
        Self {
            names,
            patterns,
            weights,
            site_count: len,
        }
    }

    /// Number of taxa (rows).
    pub fn taxon_count(&self) -> usize {
        self.names.len()
    }

    /// Number of distinct patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Uncompressed alignment length.
    pub fn site_count(&self) -> usize {
        self.site_count
    }

    /// The residue code of `taxon` in pattern `p`.
    #[inline(always)]
    pub fn code(&self, p: usize, taxon: usize) -> u8 {
        self.patterns[p][taxon]
    }

    /// Pattern multiplicities.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(id: &str, text: &str) -> Sequence {
        Sequence::from_text(id, "", Alphabet::Dna, text).unwrap()
    }

    #[test]
    fn identical_columns_collapse() {
        let seqs = [seq("a", "AAGGA"), seq("b", "CCTTC"), seq("c", "AAGGA")];
        let pa = PatternAlignment::from_sequences(&seqs);
        // Columns: ACA ACA GTG GTG ACA → two distinct patterns.
        assert_eq!(pa.pattern_count(), 2);
        assert_eq!(pa.site_count(), 5);
        let total: f64 = pa.weights().iter().sum();
        assert_eq!(total, 5.0);
        assert_eq!(pa.taxon_count(), 3);
    }

    #[test]
    fn weights_count_multiplicities() {
        let seqs = [seq("a", "AAAT"), seq("b", "AAAC")];
        let pa = PatternAlignment::from_sequences(&seqs);
        assert_eq!(pa.pattern_count(), 2);
        let mut ws = pa.weights().to_vec();
        ws.sort_by(f64::total_cmp);
        assert_eq!(ws, vec![1.0, 3.0]);
    }

    #[test]
    fn codes_are_recoverable() {
        let seqs = [seq("a", "ACGT"), seq("b", "TGCA")];
        let pa = PatternAlignment::from_sequences(&seqs);
        assert_eq!(pa.pattern_count(), 4);
        // Find the pattern for column 0 (A,T) = (0,3).
        let found = (0..4).any(|p| pa.code(p, 0) == 0 && pa.code(p, 1) == 3);
        assert!(found);
    }

    #[test]
    fn ambiguity_codes_are_preserved() {
        let seqs = [seq("a", "AN"), seq("b", "AA")];
        let pa = PatternAlignment::from_sequences(&seqs);
        assert_eq!(pa.pattern_count(), 2);
        let found = (0..2).any(|p| pa.code(p, 0) == 4);
        assert!(found, "ambiguity code must survive compression");
    }

    #[test]
    #[should_panic(expected = "length")]
    fn ragged_alignment_panics() {
        PatternAlignment::from_sequences(&[seq("a", "ACGT"), seq("b", "ACG")]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_sequence_panics() {
        PatternAlignment::from_sequences(&[seq("a", "ACGT")]);
    }
}
