//! Model-parameter estimation by maximum likelihood.
//!
//! DPRml advertises "one of the most extensive ranges of DNA
//! substitution models" (paper §3.2); real analyses also need the
//! model's free parameters estimated from the data. This module fits
//! the one-dimensional parameters with Brent's method — the transition/
//! transversion ratio κ (K80/HKY85/F84), the Γ shape α — and computes
//! empirical base frequencies, alternating parameter and branch-length
//! optimisation the way PAL/fastDNAml-era tools did.

use crate::lik::TreeLikelihood;
use crate::model::{GammaRates, ModelKind, SubstModel};
use crate::patterns::PatternAlignment;
use crate::tree::Tree;
use biodist_util::optim::brent_minimize;

/// Empirical base frequencies of an alignment (ambiguity codes are
/// ignored; a pseudo-count keeps every frequency positive).
pub fn empirical_base_frequencies(data: &PatternAlignment) -> [f64; 4] {
    let mut counts = [1.0f64; 4]; // Laplace pseudo-count
    for p in 0..data.pattern_count() {
        let w = data.weights()[p];
        for t in 0..data.taxon_count() {
            let c = data.code(p, t);
            if c < 4 {
                counts[c as usize] += w;
            }
        }
    }
    let total: f64 = counts.iter().sum();
    [
        counts[0] / total,
        counts[1] / total,
        counts[2] / total,
        counts[3] / total,
    ]
}

/// Result of a one-parameter fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// Fitted parameter value.
    pub value: f64,
    /// Log-likelihood at the fitted value.
    pub ln_likelihood: f64,
    /// Model evaluations performed.
    pub evaluations: u32,
}

/// Fits the HKY85 κ on a fixed tree (branch lengths are re-optimised
/// for every κ candidate with `blen_rounds` sweeps, so the profile
/// likelihood is maximised, not just sliced).
pub fn fit_hky_kappa(
    tree: &Tree,
    data: &PatternAlignment,
    freqs: [f64; 4],
    rates: &GammaRates,
    blen_rounds: u32,
) -> FitResult {
    let mut evaluations = 0;
    let objective = |kappa: f64| {
        let model = SubstModel::new(ModelKind::Hky85 { kappa, freqs }, rates.clone());
        let engine = TreeLikelihood::new(&model, data);
        let mut t = tree.clone();
        -engine.optimize_edges(&mut t, None, blen_rounds, 1e-3)
    };
    let r = brent_minimize(
        |k| {
            evaluations += 1;
            objective(k)
        },
        0.05,
        50.0,
        1e-3,
        40,
    );
    FitResult {
        value: r.xmin,
        ln_likelihood: -r.fmin,
        evaluations,
    }
}

/// Fits the discrete-Γ shape α on a fixed tree under the given model
/// kind (branch lengths re-optimised per candidate, as above).
pub fn fit_gamma_alpha(
    tree: &Tree,
    data: &PatternAlignment,
    kind: &ModelKind,
    ncat: usize,
    blen_rounds: u32,
) -> FitResult {
    let mut evaluations = 0;
    let objective = |alpha: f64| {
        let model = SubstModel::new(kind.clone(), GammaRates::gamma(alpha, ncat));
        let engine = TreeLikelihood::new(&model, data);
        let mut t = tree.clone();
        -engine.optimize_edges(&mut t, None, blen_rounds, 1e-3)
    };
    let r = brent_minimize(
        |a| {
            evaluations += 1;
            objective(a)
        },
        0.05,
        20.0,
        1e-3,
        40,
    );
    FitResult {
        value: r.xmin,
        ln_likelihood: -r.fmin,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolve::{random_yule_tree, simulate_alignment};

    #[test]
    fn empirical_frequencies_track_composition() {
        let freqs = [0.4, 0.3, 0.2, 0.1];
        let model = SubstModel::homogeneous(ModelKind::F81 { freqs });
        let tree = random_yule_tree(6, 0.2, 1);
        let seqs = simulate_alignment(&tree, &model, 3000, None, 2);
        let data = PatternAlignment::from_sequences(&seqs);
        let est = empirical_base_frequencies(&data);
        for i in 0..4 {
            assert!(
                (est[i] - freqs[i]).abs() < 0.02,
                "base {i}: {} vs {}",
                est[i],
                freqs[i]
            );
        }
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kappa_is_recovered_from_simulated_data() {
        let true_kappa = 6.0;
        let freqs = [0.25; 4];
        let model = SubstModel::homogeneous(ModelKind::Hky85 {
            kappa: true_kappa,
            freqs,
        });
        let truth = random_yule_tree(8, 0.15, 11);
        let seqs = simulate_alignment(&truth, &model, 1500, None, 12);
        let data = PatternAlignment::from_sequences(&seqs);
        let fit = fit_hky_kappa(&truth, &data, freqs, &GammaRates::uniform(), 2);
        assert!(
            (fit.value - true_kappa).abs() < 1.2,
            "fitted kappa {} vs true {true_kappa}",
            fit.value
        );
        assert!(fit.ln_likelihood.is_finite());
        assert!(fit.evaluations > 3);
    }

    #[test]
    fn kappa_fit_prefers_truth_over_wrong_values() {
        let freqs = [0.25; 4];
        let model = SubstModel::homogeneous(ModelKind::Hky85 { kappa: 5.0, freqs });
        let truth = random_yule_tree(6, 0.15, 21);
        let seqs = simulate_alignment(&truth, &model, 800, None, 22);
        let data = PatternAlignment::from_sequences(&seqs);
        let at = |kappa: f64| {
            let m = SubstModel::homogeneous(ModelKind::Hky85 { kappa, freqs });
            let engine = TreeLikelihood::new(&m, &data);
            let mut t = truth.clone();
            engine.optimize_edges(&mut t, None, 2, 1e-3)
        };
        let fit = fit_hky_kappa(&truth, &data, freqs, &GammaRates::uniform(), 2);
        assert!(fit.ln_likelihood >= at(1.0) - 1e-6);
        assert!(fit.ln_likelihood >= at(20.0) - 1e-6);
    }

    #[test]
    fn strong_rate_heterogeneity_is_detected() {
        // Data simulated with alpha = 0.3 (strong heterogeneity): the
        // fitted alpha must be far from the homogeneous regime (alpha
        // large), i.e. below 1.5.
        let kind = ModelKind::K80 { kappa: 2.0 };
        let model = SubstModel::new(kind.clone(), GammaRates::gamma(0.3, 4));
        let truth = random_yule_tree(8, 0.2, 31);
        let seqs = simulate_alignment(&truth, &model, 1500, None, 32);
        let data = PatternAlignment::from_sequences(&seqs);
        let fit = fit_gamma_alpha(&truth, &data, &kind, 4, 1);
        assert!(
            fit.value < 1.5,
            "alpha {} should reflect strong heterogeneity",
            fit.value
        );
    }

    #[test]
    fn homogeneous_data_fits_large_alpha() {
        let kind = ModelKind::Jc69;
        let model = SubstModel::homogeneous(kind.clone());
        let truth = random_yule_tree(6, 0.15, 41);
        let seqs = simulate_alignment(&truth, &model, 1000, None, 42);
        let data = PatternAlignment::from_sequences(&seqs);
        let fit = fit_gamma_alpha(&truth, &data, &kind, 4, 1);
        assert!(
            fit.value > 2.0,
            "alpha {} should be large for homogeneous data",
            fit.value
        );
    }
}
