//! SIMD lane engines for the pruning-likelihood kernels.
//!
//! The likelihood engine stores partials in a lane-friendly SoA layout
//! — `values[cat][state][pattern]`, with the pattern axis padded to
//! [`PAD`] — so the four inner kernels below can process site patterns
//! in `f64` SIMD lanes across all four states, the same
//! vectorise-the-DP-recurrence move [`crate::lik`] borrowed from the
//! striped Smith–Waterman kernel in `biodist_align`.
//!
//! # Bit-identical dispatch
//!
//! Every kernel is *elementwise over patterns*: the value computed for
//! one pattern is a fixed dag of IEEE-754 `f64` mul/add/max operations
//! that does not depend on the lane width. AVX2 (4 lanes), SSE2 (2
//! lanes) and the portable engine (4 compiler-vectorised lanes)
//! therefore produce **bit-identical** results — the parity suite pins
//! this with `to_bits` equality. FMA is deliberately not used: a fused
//! multiply-add rounds differently from mul-then-add and would break
//! the cross-backend contract.
//!
//! Backend selection is a runtime check (`is_x86_feature_detected!`)
//! on x86_64 and compile-time elsewhere; `BIODIST_LIK_BACKEND`
//! (`scalar | portable | sse2 | avx2`) overrides detection, clamped to
//! what the CPU actually supports.

/// Pattern-axis padding of the SoA layout: every row is a multiple of
/// `PAD` doubles long, so 2-lane and 4-lane engines can both walk it
/// without a scalar tail. Padding slots hold `0.0`, which is neutral
/// for every kernel (products stay zero, `max` ignores it against any
/// positive partial).
pub const PAD: usize = 4;

/// Pattern count rounded up to the SoA row length.
pub fn padded(np: usize) -> usize {
    np.div_ceil(PAD) * PAD
}

/// A 4×4 transition matrix for one rate category.
pub type Mat4 = [[f64; 4]; 4];

/// Which implementation the likelihood engine dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LikBackend {
    /// The PR-1-era reference engine (AoS partials, per-node rescale,
    /// per-traversal allocation). Kept as the parity oracle and the
    /// baseline that `BENCH_likelihood.json` speedups are measured
    /// against.
    Scalar,
    /// 4 scalar-emulated `f64` lanes; compiles on every target.
    Portable,
    /// 128-bit SSE2 vectors (x86_64 baseline): 2 × `f64` lanes.
    Sse2,
    /// 256-bit AVX2 vectors: 4 × `f64` lanes.
    Avx2,
}

impl LikBackend {
    /// Lane count of the `f64` kernels (1 for the scalar engine).
    pub fn lanes_f64(self) -> usize {
        match self {
            LikBackend::Scalar => 1,
            LikBackend::Sse2 => 2,
            LikBackend::Portable | LikBackend::Avx2 => 4,
        }
    }

    /// Stable name (used in metrics, benches and the env override).
    pub fn name(self) -> &'static str {
        match self {
            LikBackend::Scalar => "scalar",
            LikBackend::Portable => "portable",
            LikBackend::Sse2 => "sse2",
            LikBackend::Avx2 => "avx2",
        }
    }

    /// Small stable index for wire stats and the `lik.backend` gauge.
    pub fn index(self) -> u8 {
        match self {
            LikBackend::Scalar => 0,
            LikBackend::Portable => 1,
            LikBackend::Sse2 => 2,
            LikBackend::Avx2 => 3,
        }
    }

    /// Inverse of [`LikBackend::index`] (unknown values → `None`).
    pub fn from_index(i: u8) -> Option<Self> {
        match i {
            0 => Some(LikBackend::Scalar),
            1 => Some(LikBackend::Portable),
            2 => Some(LikBackend::Sse2),
            3 => Some(LikBackend::Avx2),
            _ => None,
        }
    }

    /// Parses the `BIODIST_LIK_BACKEND` spelling.
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(LikBackend::Scalar),
            "portable" => Some(LikBackend::Portable),
            "sse2" => Some(LikBackend::Sse2),
            "avx2" => Some(LikBackend::Avx2),
            _ => None,
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn is_supported(self) -> bool {
        match self {
            LikBackend::Scalar | LikBackend::Portable => true,
            #[cfg(target_arch = "x86_64")]
            LikBackend::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            LikBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The widest SIMD backend the running CPU supports.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                LikBackend::Avx2
            } else {
                LikBackend::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            LikBackend::Portable
        }
    }

    /// Detection plus the `BIODIST_LIK_BACKEND` override (requests the
    /// CPU cannot honour fall back to [`LikBackend::detect`]).
    pub fn select() -> Self {
        if let Ok(v) = std::env::var("BIODIST_LIK_BACKEND") {
            if let Some(b) = Self::parse(&v) {
                if b.is_supported() {
                    return b;
                }
            }
        }
        Self::detect()
    }

    /// Every backend the running CPU can execute (parity suites iterate
    /// this).
    pub fn supported() -> Vec<Self> {
        [
            LikBackend::Scalar,
            LikBackend::Portable,
            LikBackend::Sse2,
            LikBackend::Avx2,
        ]
        .into_iter()
        .filter(|b| b.is_supported())
        .collect()
    }
}

/// Fixed-width `f64` lane bundle. Plain (non-fused) IEEE arithmetic
/// only — see the module docs for why FMA is off the table.
trait LanesF64: Copy {
    const WIDTH: usize;
    fn splat(x: f64) -> Self;
    /// Loads `Self::WIDTH` lanes from the head of `src`.
    fn load(src: &[f64]) -> Self;
    /// Stores the lanes to the head of `dst`.
    fn store(self, dst: &mut [f64]);
    fn add(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    fn max(self, o: Self) -> Self;
}

// ------------------------------------------------------------- kernels

/// `dst[cat][s][·] (op)= Σ_j m[cat][s][j] · child[cat][j][·]` — the
/// Felsenstein node update: one child's conditional likelihoods pushed
/// through its transition matrix, multiplied into (or, for the first
/// child, assigned to) the parent's partials. The dot product is
/// associated left-to-right, matching the scalar engine.
#[inline(always)]
fn product_into_g<V: LanesF64>(
    dst: &mut [f64],
    child: &[f64],
    mats: &[Mat4],
    npad: usize,
    assign: bool,
) {
    for (cat, pm) in mats.iter().enumerate() {
        let base = cat * 4 * npad;
        // Hoist the 16 matrix broadcasts out of the pattern loop.
        let m: [[V; 4]; 4] = std::array::from_fn(|s| std::array::from_fn(|j| V::splat(pm[s][j])));
        let mut i = 0;
        while i < npad {
            let c0 = V::load(&child[base + i..]);
            let c1 = V::load(&child[base + npad + i..]);
            let c2 = V::load(&child[base + 2 * npad + i..]);
            let c3 = V::load(&child[base + 3 * npad + i..]);
            for s in 0..4 {
                let dot = m[s][0]
                    .mul(c0)
                    .add(m[s][1].mul(c1))
                    .add(m[s][2].mul(c2))
                    .add(m[s][3].mul(c3));
                let slot = &mut dst[base + s * npad + i..];
                let out = if assign { dot } else { V::load(slot).mul(dot) };
                out.store(slot);
            }
            i += V::WIDTH;
        }
    }
}

/// `mx[·] = max over all `nrows` SoA rows` — the per-pattern magnitude
/// used by the hoisted scaling check.
#[inline(always)]
fn row_max_g<V: LanesF64>(vals: &[f64], nrows: usize, npad: usize, mx: &mut [f64]) {
    let mut i = 0;
    while i < npad {
        let mut m = V::load(&vals[i..]);
        for r in 1..nrows {
            m = m.max(V::load(&vals[r * npad + i..]));
        }
        m.store(&mut mx[i..]);
        i += V::WIDTH;
    }
}

/// `site[·] = Σ_cat prob · Σ_s π_s · root[cat][s][·]` — the root
/// likelihood reduction, leaving one per-pattern site likelihood.
#[inline(always)]
fn root_site_sums_g<V: LanesF64>(
    vals: &[f64],
    freqs: &[f64; 4],
    probs: &[f64],
    site: &mut [f64],
    npad: usize,
) {
    let f: [V; 4] = std::array::from_fn(|s| V::splat(freqs[s]));
    let mut i = 0;
    while i < npad {
        let mut acc = V::splat(0.0);
        for (cat, &prob) in probs.iter().enumerate() {
            let base = cat * 4 * npad;
            let dot = f[0]
                .mul(V::load(&vals[base + i..]))
                .add(f[1].mul(V::load(&vals[base + npad + i..])))
                .add(f[2].mul(V::load(&vals[base + 2 * npad + i..])))
                .add(f[3].mul(V::load(&vals[base + 3 * npad + i..])));
            acc = acc.add(V::splat(prob).mul(dot));
        }
        acc.store(&mut site[i..]);
        i += V::WIDTH;
    }
}

/// `site[·] = Σ_cat prob · Σ_s E[cat][s][·] · (Σ_j m[s][j] D[cat][j][·])`
/// — the edge-decomposed likelihood evaluated at one branch length;
/// the function Brent's method calls per candidate `t`.
#[inline(always)]
fn edge_site_sums_g<V: LanesF64>(
    down: &[f64],
    edge: &[f64],
    mats: &[Mat4],
    probs: &[f64],
    site: &mut [f64],
    npad: usize,
) {
    let mut i = 0;
    while i < npad {
        let mut acc = V::splat(0.0);
        for (cat, pm) in mats.iter().enumerate() {
            let base = cat * 4 * npad;
            let d0 = V::load(&down[base + i..]);
            let d1 = V::load(&down[base + npad + i..]);
            let d2 = V::load(&down[base + 2 * npad + i..]);
            let d3 = V::load(&down[base + 3 * npad + i..]);
            let mut cat_sum = V::splat(0.0);
            for s in 0..4 {
                let pd = V::splat(pm[s][0])
                    .mul(d0)
                    .add(V::splat(pm[s][1]).mul(d1))
                    .add(V::splat(pm[s][2]).mul(d2))
                    .add(V::splat(pm[s][3]).mul(d3));
                let ev = V::load(&edge[base + s * npad + i..]);
                cat_sum = cat_sum.add(ev.mul(pd));
            }
            acc = acc.add(V::splat(probs[cat]).mul(cat_sum));
        }
        acc.store(&mut site[i..]);
        i += V::WIDTH;
    }
}

/// `site[·] = Σ_cat Σ_k ev[cat][k] · coef[cat][k][·]` — the
/// eigen-coefficient branch-length objective. `coef` holds per-pattern
/// spectral coefficients in the SoA layout (rows indexed `cat·4 + k`)
/// and `ev[cat][k] = prob_cat · e^{λ_k r_cat t}`, so evaluating a new
/// branch length is one weighted sweep instead of a matrix rebuild.
#[inline(always)]
fn coef_site_sums_g<V: LanesF64>(coef: &[f64], ev: &[[f64; 4]], site: &mut [f64], npad: usize) {
    let mut i = 0;
    while i < npad {
        let mut acc = V::splat(0.0);
        for (cat, e) in ev.iter().enumerate() {
            let base = cat * 4 * npad;
            let dot = V::splat(e[0])
                .mul(V::load(&coef[base + i..]))
                .add(V::splat(e[1]).mul(V::load(&coef[base + npad + i..])))
                .add(V::splat(e[2]).mul(V::load(&coef[base + 2 * npad + i..])))
                .add(V::splat(e[3]).mul(V::load(&coef[base + 3 * npad + i..])));
            acc = acc.add(dot);
        }
        acc.store(&mut site[i..]);
        i += V::WIDTH;
    }
}

/// Branch-free natural log for positive *normal* `f64` inputs (site
/// likelihoods after scaling always are). ~1e-15 relative accuracy via
/// the atanh series on a mantissa reduced into `[√½, √2)`.
///
/// Every backend applies this exact scalar dag elementwise, so `ln`
/// results are bit-identical across backends by construction; the win
/// over libm's `ln` is that the dag has no branches or table lookups,
/// so the compiler vectorises the [`ln_into`] loop.
#[inline(always)]
fn poly_ln(x: f64) -> f64 {
    const MANT_MASK: u64 = 0x000F_FFFF_FFFF_FFFF;
    const ONE_BITS: u64 = 0x3FF0_0000_0000_0000;
    let bits = x.to_bits();
    let mut e = ((bits >> 52) as i64 - 1023) as f64;
    let mut m = f64::from_bits((bits & MANT_MASK) | ONE_BITS);
    // Halve mantissas above √2 so s stays small: |s| ≤ √2−1 over √2+1.
    let big = (m > std::f64::consts::SQRT_2) as u64;
    m = f64::from_bits(m.to_bits() - (big << 52));
    e += big as f64;
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    // ln m = 2s·(1 + s²/3 + s⁴/5 + … + s¹⁸/19); truncation ≤ 3e-17.
    let mut t = 1.0 / 19.0;
    t = t * s2 + 1.0 / 17.0;
    t = t * s2 + 1.0 / 15.0;
    t = t * s2 + 1.0 / 13.0;
    t = t * s2 + 1.0 / 11.0;
    t = t * s2 + 1.0 / 9.0;
    t = t * s2 + 1.0 / 7.0;
    t = t * s2 + 1.0 / 5.0;
    t = t * s2 + 1.0 / 3.0;
    t = t * s2 + 1.0;
    2.0 * s * t + e * std::f64::consts::LN_2
}

#[inline(always)]
fn ln_into_plain(site: &mut [f64]) {
    for x in site.iter_mut() {
        *x = poly_ln(*x);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn ln_into_avx2(site: &mut [f64]) {
    ln_into_plain(site)
}

/// Replaces each site likelihood with its natural log ([`poly_ln`]
/// elementwise — bit-identical across backends).
pub fn ln_into(backend: LikBackend, site: &mut [f64]) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        LikBackend::Avx2 => unsafe {
            // Safety: only selected when AVX2 was detected.
            ln_into_avx2(site)
        },
        _ => ln_into_plain(site),
    }
}

// ------------------------------------------------------------ dispatch

macro_rules! dispatch {
    ($backend:expr, $generic:ident, $avx2:ident, ($($arg:expr),*)) => {
        match $backend {
            #[cfg(target_arch = "x86_64")]
            LikBackend::Avx2 => unsafe {
                // Safety: the engine only selects Avx2 when
                // `is_x86_feature_detected!("avx2")` held.
                $avx2($($arg),*)
            },
            #[cfg(target_arch = "x86_64")]
            LikBackend::Sse2 => $generic::<sse2::S2>($($arg),*),
            _ => $generic::<P4>($($arg),*),
        }
    };
}

/// [`product_into_g`] behind runtime backend dispatch.
pub fn product_into(
    backend: LikBackend,
    dst: &mut [f64],
    child: &[f64],
    mats: &[Mat4],
    npad: usize,
    assign: bool,
) {
    dispatch!(
        backend,
        product_into_g,
        product_into_avx2,
        (dst, child, mats, npad, assign)
    );
}

/// [`row_max_g`] behind runtime backend dispatch.
pub fn row_max(backend: LikBackend, vals: &[f64], nrows: usize, npad: usize, mx: &mut [f64]) {
    dispatch!(backend, row_max_g, row_max_avx2, (vals, nrows, npad, mx));
}

/// [`root_site_sums_g`] behind runtime backend dispatch.
pub fn root_site_sums(
    backend: LikBackend,
    vals: &[f64],
    freqs: &[f64; 4],
    probs: &[f64],
    site: &mut [f64],
    npad: usize,
) {
    dispatch!(
        backend,
        root_site_sums_g,
        root_site_sums_avx2,
        (vals, freqs, probs, site, npad)
    );
}

/// [`edge_site_sums_g`] behind runtime backend dispatch.
pub fn edge_site_sums(
    backend: LikBackend,
    down: &[f64],
    edge: &[f64],
    mats: &[Mat4],
    probs: &[f64],
    site: &mut [f64],
    npad: usize,
) {
    dispatch!(
        backend,
        edge_site_sums_g,
        edge_site_sums_avx2,
        (down, edge, mats, probs, site, npad)
    );
}

/// [`coef_site_sums_g`] behind runtime backend dispatch.
pub fn coef_site_sums(
    backend: LikBackend,
    coef: &[f64],
    ev: &[[f64; 4]],
    site: &mut [f64],
    npad: usize,
) {
    dispatch!(
        backend,
        coef_site_sums_g,
        coef_site_sums_avx2,
        (coef, ev, site, npad)
    );
}

// AVX2 instantiations. The `target_feature` attribute lets the inlined
// lane ops compile to real 256-bit code.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn product_into_avx2(
    dst: &mut [f64],
    child: &[f64],
    mats: &[Mat4],
    npad: usize,
    assign: bool,
) {
    product_into_g::<avx2::A4>(dst, child, mats, npad, assign)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn row_max_avx2(vals: &[f64], nrows: usize, npad: usize, mx: &mut [f64]) {
    row_max_g::<avx2::A4>(vals, nrows, npad, mx)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn root_site_sums_avx2(
    vals: &[f64],
    freqs: &[f64; 4],
    probs: &[f64],
    site: &mut [f64],
    npad: usize,
) {
    root_site_sums_g::<avx2::A4>(vals, freqs, probs, site, npad)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn edge_site_sums_avx2(
    down: &[f64],
    edge: &[f64],
    mats: &[Mat4],
    probs: &[f64],
    site: &mut [f64],
    npad: usize,
) {
    edge_site_sums_g::<avx2::A4>(down, edge, mats, probs, site, npad)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn coef_site_sums_avx2(coef: &[f64], ev: &[[f64; 4]], site: &mut [f64], npad: usize) {
    coef_site_sums_g::<avx2::A4>(coef, ev, site, npad)
}

// ------------------------------------------------------------- engines

/// Portable engine: 4 scalar-emulated `f64` lanes. Fixed-size array
/// loops autovectorise well and compile on every target.
#[derive(Clone, Copy)]
struct P4([f64; 4]);

impl LanesF64 for P4 {
    const WIDTH: usize = 4;

    #[inline(always)]
    fn splat(x: f64) -> Self {
        Self([x; 4])
    }

    #[inline(always)]
    fn load(src: &[f64]) -> Self {
        let mut v = [0.0; 4];
        v.copy_from_slice(&src[..4]);
        Self(v)
    }

    #[inline(always)]
    fn store(self, dst: &mut [f64]) {
        dst[..4].copy_from_slice(&self.0);
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Self(std::array::from_fn(|l| self.0[l] + o.0[l]))
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        Self(std::array::from_fn(|l| self.0[l] * o.0[l]))
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        Self(std::array::from_fn(|l| self.0[l].max(o.0[l])))
    }
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    //! 128-bit engine. SSE2 is part of the x86_64 baseline, so these
    //! intrinsics are statically available — no runtime gate needed.
    use super::LanesF64;
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub(super) struct S2(__m128d);

    impl LanesF64 for S2 {
        const WIDTH: usize = 2;

        #[inline(always)]
        fn splat(x: f64) -> Self {
            Self(unsafe { _mm_set1_pd(x) })
        }

        #[inline(always)]
        fn load(src: &[f64]) -> Self {
            debug_assert!(src.len() >= 2);
            Self(unsafe { _mm_loadu_pd(src.as_ptr()) })
        }

        #[inline(always)]
        fn store(self, dst: &mut [f64]) {
            debug_assert!(dst.len() >= 2);
            unsafe { _mm_storeu_pd(dst.as_mut_ptr(), self.0) }
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            Self(unsafe { _mm_add_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            Self(unsafe { _mm_mul_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn max(self, o: Self) -> Self {
            Self(unsafe { _mm_max_pd(self.0, o.0) })
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! 256-bit engine. Only reachable through the `target_feature`
    //! wrappers above, so every method assumes AVX2 is available.
    use super::LanesF64;
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub(super) struct A4(__m256d);

    impl LanesF64 for A4 {
        const WIDTH: usize = 4;

        #[inline(always)]
        fn splat(x: f64) -> Self {
            Self(unsafe { _mm256_set1_pd(x) })
        }

        #[inline(always)]
        fn load(src: &[f64]) -> Self {
            debug_assert!(src.len() >= 4);
            Self(unsafe { _mm256_loadu_pd(src.as_ptr()) })
        }

        #[inline(always)]
        fn store(self, dst: &mut [f64]) {
            debug_assert!(dst.len() >= 4);
            unsafe { _mm256_storeu_pd(dst.as_mut_ptr(), self.0) }
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            Self(unsafe { _mm256_add_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            Self(unsafe { _mm256_mul_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn max(self, o: Self) -> Self {
            Self(unsafe { _mm256_max_pd(self.0, o.0) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_mats() -> Vec<Mat4> {
        vec![
            [
                [0.7, 0.1, 0.1, 0.1],
                [0.1, 0.7, 0.1, 0.1],
                [0.1, 0.1, 0.7, 0.1],
                [0.1, 0.1, 0.1, 0.7],
            ],
            [
                [0.4, 0.2, 0.2, 0.2],
                [0.2, 0.4, 0.2, 0.2],
                [0.2, 0.2, 0.4, 0.2],
                [0.2, 0.2, 0.2, 0.4],
            ],
        ]
    }

    fn demo_child(npad: usize, ncat: usize) -> Vec<f64> {
        (0..ncat * 4 * npad)
            .map(|i| ((i * 37 + 11) % 97) as f64 / 97.0)
            .collect()
    }

    #[test]
    fn padding_rounds_up_to_pad() {
        assert_eq!(padded(1), 4);
        assert_eq!(padded(4), 4);
        assert_eq!(padded(5), 8);
    }

    #[test]
    fn backends_produce_bit_identical_products() {
        let npad = padded(9);
        let mats = demo_mats();
        let child = demo_child(npad, mats.len());
        let mut outs = Vec::new();
        for b in LikBackend::supported() {
            if b == LikBackend::Scalar {
                continue;
            }
            let mut dst = vec![0.5; child.len()];
            product_into(b, &mut dst, &child, &mats, npad, false);
            outs.push((b, dst));
        }
        for pair in outs.windows(2) {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&pair[0].1),
                bits(&pair[1].1),
                "{:?} vs {:?}",
                pair[0].0,
                pair[1].0
            );
        }
    }

    #[test]
    fn row_max_matches_scalar_reduction() {
        let npad = padded(6);
        let mats = demo_mats();
        let vals = demo_child(npad, mats.len());
        let nrows = mats.len() * 4;
        for b in LikBackend::supported() {
            if b == LikBackend::Scalar {
                continue;
            }
            let mut mx = vec![0.0; npad];
            row_max(b, &vals, nrows, npad, &mut mx);
            for pat in 0..npad {
                let expect = (0..nrows).map(|r| vals[r * npad + pat]).fold(0.0, f64::max);
                assert_eq!(mx[pat], expect, "{b:?} pattern {pat}");
            }
        }
    }

    #[test]
    fn poly_ln_matches_libm_and_backends_agree() {
        let vals: Vec<f64> = (1..400)
            .map(|i| {
                let x = i as f64 / 40.0;
                x * (10.0f64).powi((i % 7) - 3)
            })
            .chain([1e-160, 1e-80, 1.0, std::f64::consts::SQRT_2, 2.0, 1e80])
            .collect();
        let mut reference = vals.clone();
        ln_into_plain(&mut reference);
        for (x, r) in vals.iter().zip(reference.iter()) {
            let exact = x.ln();
            let tol = 1e-13 * exact.abs().max(1.0);
            assert!((r - exact).abs() < tol, "poly_ln({x}) = {r} vs {exact}");
        }
        for b in LikBackend::supported() {
            if b == LikBackend::Scalar {
                continue;
            }
            let mut out = vals.clone();
            ln_into(b, &mut out);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&reference), "{b:?} ln differs");
        }
    }

    #[test]
    fn env_spellings_parse() {
        assert_eq!(LikBackend::parse("AVX2"), Some(LikBackend::Avx2));
        assert_eq!(LikBackend::parse(" sse2 "), Some(LikBackend::Sse2));
        assert_eq!(LikBackend::parse("portable"), Some(LikBackend::Portable));
        assert_eq!(LikBackend::parse("scalar"), Some(LikBackend::Scalar));
        assert_eq!(LikBackend::parse("gpu"), None);
    }

    #[test]
    fn index_round_trips() {
        for b in [
            LikBackend::Scalar,
            LikBackend::Portable,
            LikBackend::Sse2,
            LikBackend::Avx2,
        ] {
            assert_eq!(LikBackend::from_index(b.index()), Some(b));
        }
        assert_eq!(LikBackend::from_index(9), None);
    }

    #[test]
    fn detection_is_always_supported() {
        assert!(LikBackend::detect().is_supported());
        assert!(LikBackend::select().is_supported());
        assert!(LikBackend::supported().contains(&LikBackend::Portable));
    }
}
