//! # biodist-phylo
//!
//! Phylogenetics substrate for DPRml (paper §3.2): everything the paper
//! obtained from the PAL v1.4 Java library, built from scratch.
//!
//! * [`tree`] / [`newick`] — unrooted binary phylogenies (represented
//!   with a trifurcating root, the fastDNAml convention) and Newick I/O.
//! * [`model`] — a wide range of reversible DNA substitution models
//!   (JC69, K80, F81, F84, HKY85, TN93, GTR), optional discrete-Γ rate
//!   heterogeneity and invariant sites ("one of the most extensive
//!   ranges of DNA substitution models", §3.2).
//! * [`eigen`] — Jacobi eigendecomposition of the symmetrised rate
//!   matrix, giving exact `P(t) = exp(Qt)`.
//! * [`patterns`] — site-pattern compression of alignments.
//! * [`lik`] — Felsenstein-pruning log-likelihood with per-pattern
//!   scaling and Brent branch-length optimisation, dispatched at
//!   runtime across the SIMD kernel backends in [`lik_simd`].
//! * [`search`] — stepwise-insertion maximum-likelihood tree building
//!   with NNI local rearrangements \[11, 16\]; candidate evaluation is
//!   a pure function so DPRml can farm candidates out as work units.
//! * [`evolve`] — simulates alignments down random trees (the synthetic
//!   stand-in for the paper's 50-taxon dataset).
// DP and linear-algebra kernels index several arrays with one
// loop variable; iterator chains obscure the recurrences there.
#![allow(clippy::needless_range_loop)]

pub mod bootstrap;
pub mod eigen;
pub mod evolve;
pub mod fit;
pub mod lik;
pub mod lik_simd;
pub mod model;
pub mod model_select;
pub mod newick;
pub mod nj;
pub mod patterns;
pub mod search;
pub mod special;
pub mod tree;

pub use bootstrap::{bootstrap_support, nj_builder, resample_alignment, BootstrapSupport};
pub use evolve::{random_yule_tree, simulate_alignment};
pub use fit::{empirical_base_frequencies, fit_gamma_alpha, fit_hky_kappa, FitResult};
pub use lik::{log_likelihood, optimize_branch_lengths, TreeLikelihood};
pub use lik_simd::LikBackend;
pub use model::{GammaRates, ModelKind, SubstModel};
pub use model_select::{compare_models, standard_candidates, ModelScore};
pub use nj::{jc_distance_matrix, maximin_order, neighbor_joining, patristic_distance_matrix};
pub use patterns::PatternAlignment;
pub use search::{evaluate_insertion, spr_improve, stepwise_ml, InsertionCandidate, SearchOptions};
pub use tree::Tree;
