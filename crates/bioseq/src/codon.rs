//! The standard genetic code: translation and reverse complement.
//!
//! Real database-search pipelines routinely search DNA queries against
//! protein databases (and vice versa) through six-frame translation;
//! this module supplies the substrate: codon translation under the
//! standard code, reverse complement, and frame enumeration. Stop
//! codons translate to the ambiguity symbol `X` with their positions
//! reported, since the protein alphabet deliberately has no gap/stop
//! letters.

use crate::alphabet::Alphabet;
use crate::seq::Sequence;

/// The standard genetic code in TCAG order: index = t₁·16 + t₂·4 + t₃
/// with T=0, C=1, A=2, G=3. `*` marks stops.
const STANDARD_CODE: &[u8; 64] =
    b"FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG";

// Our DNA codes are A=0, C=1, G=2, T=3; the classic table is indexed in
// T, C, A, G order.
#[inline]
fn tcag_index(code: u8) -> usize {
    match code {
        3 => 0, // T
        1 => 1, // C
        0 => 2, // A
        2 => 3, // G
        _ => unreachable!("ambiguity handled by caller"),
    }
}

/// Translates one codon of DNA codes. `None` for stop codons; the
/// ambiguity symbol's code for codons containing `N`.
pub fn translate_codon(c1: u8, c2: u8, c3: u8) -> Option<u8> {
    let any = Alphabet::Dna.any_code();
    if c1 >= any || c2 >= any || c3 >= any {
        return Some(Alphabet::Protein.any_code());
    }
    let idx = tcag_index(c1) * 16 + tcag_index(c2) * 4 + tcag_index(c3);
    let aa = STANDARD_CODE[idx];
    if aa == b'*' {
        None
    } else {
        Some(
            Alphabet::Protein
                .encode(aa)
                .expect("code table emits valid residues"),
        )
    }
}

/// Result of translating one reading frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translation {
    /// The protein sequence; stop codons appear as `X`.
    pub protein: Sequence,
    /// Codon indices (0-based, within the frame) that were stops.
    pub stop_positions: Vec<usize>,
}

/// Translates `dna` in reading frame `frame` (0, 1 or 2). Trailing
/// bases that do not fill a codon are dropped.
///
/// # Panics
/// Panics if `dna` is not DNA or `frame > 2`.
pub fn translate_frame(dna: &Sequence, frame: usize) -> Translation {
    assert_eq!(dna.alphabet, Alphabet::Dna, "translation needs DNA input");
    assert!(frame < 3, "frame must be 0, 1 or 2");
    let codes = dna.codes();
    let mut protein = Vec::with_capacity(codes.len() / 3);
    let mut stops = Vec::new();
    let mut chunk = codes[frame.min(codes.len())..].chunks_exact(3);
    for (i, codon) in chunk.by_ref().enumerate() {
        match translate_codon(codon[0], codon[1], codon[2]) {
            Some(aa) => protein.push(aa),
            None => {
                protein.push(Alphabet::Protein.any_code());
                stops.push(i);
            }
        }
    }
    let id = format!("{}_frame{}", dna.id, frame + 1);
    Translation {
        protein: Sequence::from_codes(&id, Alphabet::Protein, protein),
        stop_positions: stops,
    }
}

/// Reverse complement of a DNA sequence (`N` maps to `N`).
pub fn reverse_complement(dna: &Sequence) -> Sequence {
    assert_eq!(dna.alphabet, Alphabet::Dna, "reverse complement needs DNA");
    let any = Alphabet::Dna.any_code();
    let codes: Vec<u8> = dna
        .codes()
        .iter()
        .rev()
        .map(|&c| if c == any { any } else { 3 - c }) // A<->T (0<->3), C<->G (1<->2)
        .collect();
    let mut out = Sequence::from_codes(&format!("{}_rc", dna.id), Alphabet::Dna, codes);
    out.description = dna.description.clone();
    out
}

/// All six reading frames: three forward, three of the reverse
/// complement, in the order `+1 +2 +3 -1 -2 -3`.
pub fn six_frame_translations(dna: &Sequence) -> Vec<Translation> {
    let rc = reverse_complement(dna);
    let mut frames = Vec::with_capacity(6);
    for f in 0..3 {
        frames.push(translate_frame(dna, f));
    }
    for f in 0..3 {
        let mut t = translate_frame(&rc, f);
        t.protein.id = format!("{}_frame-{}", dna.id, f + 1);
        frames.push(t);
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(text: &str) -> Sequence {
        Sequence::from_text("d", "", Alphabet::Dna, text).unwrap()
    }

    #[test]
    fn canonical_codons_translate_correctly() {
        let cases = [
            ("ATG", "M"),
            ("TGG", "W"),
            ("TTT", "F"),
            ("AAA", "K"),
            ("GGG", "G"),
            ("GCT", "A"),
            ("CGA", "R"),
            ("CAT", "H"),
        ];
        for (codon, aa) in cases {
            let t = translate_frame(&dna(codon), 0);
            assert_eq!(t.protein.to_text(), aa, "codon {codon}");
            assert!(t.stop_positions.is_empty());
        }
    }

    #[test]
    fn stop_codons_are_marked() {
        for stop in ["TAA", "TAG", "TGA"] {
            let t = translate_frame(&dna(stop), 0);
            assert_eq!(t.protein.to_text(), "X", "stop {stop}");
            assert_eq!(t.stop_positions, vec![0]);
        }
    }

    #[test]
    fn a_real_orf_translates_end_to_end() {
        // ATG GCT CGA TAA -> M A R, then stop.
        let t = translate_frame(&dna("ATGGCTCGATAA"), 0);
        assert_eq!(t.protein.to_text(), "MARX");
        assert_eq!(t.stop_positions, vec![3]);
    }

    #[test]
    fn frames_shift_the_reading_window() {
        let s = dna("AATGGCT"); // frame 1: ATG GCT -> M A
        let t = translate_frame(&s, 1);
        assert_eq!(t.protein.to_text(), "MA");
        // Frame 0: AAT GGC -> N G (trailing T dropped).
        let t0 = translate_frame(&s, 0);
        assert_eq!(t0.protein.to_text(), "NG");
    }

    #[test]
    fn ambiguous_codons_become_x_without_stop_flag() {
        let t = translate_frame(&dna("ANT"), 0);
        assert_eq!(t.protein.to_text(), "X");
        assert!(
            t.stop_positions.is_empty(),
            "N codon is unknown, not a stop"
        );
    }

    #[test]
    fn reverse_complement_is_an_involution() {
        let s = dna("ACGTTGCAN");
        let rc = reverse_complement(&s);
        assert_eq!(rc.to_text(), "NTGCAACGT");
        let back = reverse_complement(&rc);
        assert_eq!(back.codes(), s.codes());
    }

    #[test]
    fn six_frames_have_expected_lengths_and_ids() {
        let s = dna("ATGGCTCGATAAGG"); // 14 bases
        let frames = six_frame_translations(&s);
        assert_eq!(frames.len(), 6);
        // Frame lengths: 14/3=4, 13/3=4, 12/3=4 for both strands.
        for t in &frames {
            assert_eq!(t.protein.len(), 4);
        }
        assert_eq!(frames[0].protein.id, "d_frame1");
        assert_eq!(frames[3].protein.id, "d_frame-1");
    }

    #[test]
    fn translation_finds_protein_on_reverse_strand() {
        // Protein MKW encoded, then reverse-complemented: only a reverse
        // frame contains it.
        let fwd = dna("ATGAAATGG"); // M K W
        let rc = reverse_complement(&fwd);
        let frames = six_frame_translations(&rc);
        let found = frames.iter().any(|t| t.protein.to_text().contains("MKW"));
        assert!(found, "MKW must appear in some frame of the reverse strand");
    }

    #[test]
    fn code_table_has_right_stop_count() {
        // Standard code: exactly 3 stops, 61 sense codons.
        let stops = STANDARD_CODE.iter().filter(|&&c| c == b'*').count();
        assert_eq!(stops, 3);
    }

    #[test]
    #[should_panic(expected = "frame must be")]
    fn bad_frame_panics() {
        translate_frame(&dna("ACGT"), 3);
    }
}
