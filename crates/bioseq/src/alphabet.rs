//! Residue alphabets and their byte encoding.
//!
//! Sequences are stored as compact residue *codes* (`u8`), not ASCII:
//! the alignment kernels index substitution matrices directly with
//! codes, and the likelihood engine maps DNA codes straight to state
//! indices. Each alphabet reserves one extra code, [`Alphabet::any_code`],
//! for the ambiguity symbol (`N` for DNA, `X` for protein); phylogenetic
//! code treats it as missing data, alignment code scores it neutrally.

/// The two residue alphabets used by the applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alphabet {
    /// Nucleotides `A C G T`, ambiguity symbol `N`.
    Dna,
    /// The 20 standard amino acids, ambiguity symbol `X`.
    Protein,
}

/// Canonical residue order for [`Alphabet::Dna`].
pub const DNA_SYMBOLS: &[u8; 4] = b"ACGT";
/// Canonical residue order for [`Alphabet::Protein`] (NCBI matrix order).
pub const PROTEIN_SYMBOLS: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

impl Alphabet {
    /// Number of unambiguous residues (4 or 20).
    pub fn size(self) -> usize {
        match self {
            Alphabet::Dna => 4,
            Alphabet::Protein => 20,
        }
    }

    /// Code assigned to the ambiguity symbol; always equal to
    /// [`Alphabet::size`], so valid codes are `0..=size`.
    pub fn any_code(self) -> u8 {
        self.size() as u8
    }

    /// The ambiguity character (`N` or `X`).
    pub fn any_symbol(self) -> u8 {
        match self {
            Alphabet::Dna => b'N',
            Alphabet::Protein => b'X',
        }
    }

    /// Unambiguous residue characters in canonical order.
    pub fn symbols(self) -> &'static [u8] {
        match self {
            Alphabet::Dna => DNA_SYMBOLS,
            Alphabet::Protein => PROTEIN_SYMBOLS,
        }
    }

    /// Encodes one character (case-insensitive).
    ///
    /// Unknown-but-plausible letters (IUPAC ambiguity codes, `B`/`Z`/`U`
    /// for protein) map to the ambiguity code; anything that is not an
    /// ASCII letter returns `None`.
    pub fn encode(self, ch: u8) -> Option<u8> {
        let upper = ch.to_ascii_uppercase();
        if !upper.is_ascii_uppercase() {
            return None;
        }
        match self.symbols().iter().position(|&s| s == upper) {
            Some(i) => Some(i as u8),
            None => Some(self.any_code()),
        }
    }

    /// Decodes a residue code back to its character.
    ///
    /// # Panics
    /// Panics if `code > size` (an invalid code).
    pub fn decode(self, code: u8) -> u8 {
        let n = self.size() as u8;
        if code == n {
            self.any_symbol()
        } else {
            assert!(code < n, "invalid residue code {code} for {self:?}");
            self.symbols()[code as usize]
        }
    }

    /// Encodes a whole string, rejecting non-letter characters.
    pub fn encode_str(self, text: &str) -> Result<Vec<u8>, EncodeError> {
        text.bytes()
            .enumerate()
            .map(|(i, b)| {
                self.encode(b).ok_or(EncodeError {
                    position: i,
                    byte: b,
                })
            })
            .collect()
    }

    /// Decodes a code slice to a `String`.
    pub fn decode_to_string(self, codes: &[u8]) -> String {
        codes.iter().map(|&c| self.decode(c) as char).collect()
    }
}

/// A character that cannot be encoded (not an ASCII letter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// The offending byte.
    pub byte: u8,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid residue byte 0x{:02X} at position {}",
            self.byte, self.position
        )
    }
}

impl std::error::Error for EncodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_round_trips_canonical_symbols() {
        for (i, &s) in DNA_SYMBOLS.iter().enumerate() {
            assert_eq!(Alphabet::Dna.encode(s), Some(i as u8));
            assert_eq!(Alphabet::Dna.decode(i as u8), s);
        }
    }

    #[test]
    fn protein_round_trips_canonical_symbols() {
        for (i, &s) in PROTEIN_SYMBOLS.iter().enumerate() {
            assert_eq!(Alphabet::Protein.encode(s), Some(i as u8));
            assert_eq!(Alphabet::Protein.decode(i as u8), s);
        }
    }

    #[test]
    fn encoding_is_case_insensitive() {
        assert_eq!(Alphabet::Dna.encode(b'a'), Alphabet::Dna.encode(b'A'));
        assert_eq!(
            Alphabet::Protein.encode(b'w'),
            Alphabet::Protein.encode(b'W')
        );
    }

    #[test]
    fn iupac_ambiguity_maps_to_any() {
        for &amb in b"RYSWKMBDHVN" {
            assert_eq!(Alphabet::Dna.encode(amb), Some(Alphabet::Dna.any_code()));
        }
        for &amb in b"BZUX" {
            assert_eq!(
                Alphabet::Protein.encode(amb),
                Some(Alphabet::Protein.any_code())
            );
        }
    }

    #[test]
    fn non_letters_are_rejected() {
        assert_eq!(Alphabet::Dna.encode(b'-'), None);
        assert_eq!(Alphabet::Dna.encode(b'3'), None);
        assert_eq!(Alphabet::Protein.encode(b' '), None);
    }

    #[test]
    fn encode_str_reports_position() {
        let err = Alphabet::Dna.encode_str("ACG T").unwrap_err();
        assert_eq!(err.position, 3);
        assert_eq!(err.byte, b' ');
    }

    #[test]
    fn decode_to_string_round_trips() {
        let codes = Alphabet::Protein.encode_str("MKVLAW").unwrap();
        assert_eq!(Alphabet::Protein.decode_to_string(&codes), "MKVLAW");
    }

    #[test]
    fn any_decodes_to_ambiguity_symbol() {
        assert_eq!(Alphabet::Dna.decode(4), b'N');
        assert_eq!(Alphabet::Protein.decode(20), b'X');
    }

    #[test]
    #[should_panic(expected = "invalid residue code")]
    fn decode_out_of_range_panics() {
        Alphabet::Dna.decode(5);
    }
}
