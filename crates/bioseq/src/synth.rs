//! Seeded synthetic sequence databases.
//!
//! The paper's DSEARCH experiments search real FASTA databases; we have
//! no GenBank snapshot, so experiments run on synthetic databases that
//! preserve what matters for search cost and sensitivity (DESIGN.md,
//! substitution table): sequence-length distribution, residue
//! composition, and — crucially for sensitivity tests — *planted
//! homologous families*: copies of a query mutated by substitutions and
//! indels, so a rigorous search has true positives to find at known
//! locations.

use crate::alphabet::Alphabet;
use crate::seq::Sequence;
use biodist_util::rng::{Rng, Xoshiro256StarStar};

/// Parameters for a synthetic database.
#[derive(Debug, Clone, PartialEq)]
pub struct DbSpec {
    /// Residue alphabet.
    pub alphabet: Alphabet,
    /// Number of background (non-homologous) sequences.
    pub num_sequences: usize,
    /// Mean sequence length (lengths are drawn uniformly within
    /// `mean ± spread`).
    pub mean_len: usize,
    /// Half-width of the uniform length distribution.
    pub len_spread: usize,
    /// Residue composition; uniform when `None`. Must have
    /// `alphabet.size()` entries when given.
    pub composition: Option<Vec<f64>>,
}

impl DbSpec {
    /// A small protein database suitable for tests and examples.
    pub fn protein_demo(num_sequences: usize, mean_len: usize) -> Self {
        Self {
            alphabet: Alphabet::Protein,
            num_sequences,
            mean_len,
            len_spread: mean_len / 3,
            composition: None,
        }
    }

    /// A small DNA database.
    pub fn dna_demo(num_sequences: usize, mean_len: usize) -> Self {
        Self {
            alphabet: Alphabet::Dna,
            num_sequences,
            mean_len,
            len_spread: mean_len / 3,
            composition: None,
        }
    }
}

/// Parameters for a planted homologous family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilySpec {
    /// Number of mutated copies of the parent planted in the database.
    pub copies: usize,
    /// Per-residue substitution probability for each copy.
    pub substitution_rate: f64,
    /// Per-residue indel probability (split evenly between insertion
    /// and deletion).
    pub indel_rate: f64,
}

/// A generated database plus the ids of planted homologs.
#[derive(Debug, Clone)]
pub struct SyntheticDb {
    /// All database sequences (background + planted, shuffled).
    pub sequences: Vec<Sequence>,
    /// Ids of the planted family members, if a family was requested.
    pub planted_ids: Vec<String>,
}

impl SyntheticDb {
    /// Generates a database from `spec`, deterministically from `seed`.
    pub fn generate(spec: &DbSpec, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::new(seed);
        let sequences = (0..spec.num_sequences)
            .map(|i| {
                let len = draw_length(spec, &mut rng);
                let codes = random_codes(spec, len, &mut rng);
                Sequence::from_codes(&format!("db{i:06}"), spec.alphabet, codes)
            })
            .collect();
        Self {
            sequences,
            planted_ids: Vec::new(),
        }
    }

    /// Generates a database and plants `family.copies` mutated copies of
    /// `parent` at random positions within it.
    pub fn generate_with_family(
        spec: &DbSpec,
        parent: &Sequence,
        family: &FamilySpec,
        seed: u64,
    ) -> Self {
        assert_eq!(parent.alphabet, spec.alphabet, "parent alphabet mismatch");
        let mut db = Self::generate(spec, seed);
        let mut rng = Xoshiro256StarStar::new(seed).derive(0x00FA_7117);
        for k in 0..family.copies {
            let codes = mutate(parent.codes(), spec.alphabet, family, &mut rng);
            let id = format!("fam{k:03}");
            let mut seq = Sequence::from_codes(&id, spec.alphabet, codes);
            seq.description = format!("planted homolog of {}", parent.id);
            db.planted_ids.push(id);
            // Insert at a random position so homologs are not clustered
            // in one database chunk.
            let pos = rng.next_below(db.sequences.len() as u64 + 1) as usize;
            db.sequences.insert(pos, seq);
        }
        db
    }

    /// Total residue count across all sequences.
    pub fn total_residues(&self) -> usize {
        self.sequences.iter().map(|s| s.len()).sum()
    }
}

/// Generates a single random sequence (convenience for tests/examples).
pub fn random_sequence(alphabet: Alphabet, id: &str, len: usize, seed: u64) -> Sequence {
    let mut rng = Xoshiro256StarStar::new(seed);
    let spec = DbSpec {
        alphabet,
        num_sequences: 0,
        mean_len: len,
        len_spread: 0,
        composition: None,
    };
    Sequence::from_codes(id, alphabet, random_codes(&spec, len, &mut rng))
}

fn draw_length(spec: &DbSpec, rng: &mut dyn Rng) -> usize {
    if spec.len_spread == 0 {
        return spec.mean_len.max(1);
    }
    let lo = spec.mean_len.saturating_sub(spec.len_spread).max(1);
    let hi = spec.mean_len + spec.len_spread;
    rng.next_range(lo as u64, hi as u64) as usize
}

fn random_codes(spec: &DbSpec, len: usize, rng: &mut dyn Rng) -> Vec<u8> {
    let n = spec.alphabet.size() as u64;
    match &spec.composition {
        None => (0..len).map(|_| rng.next_below(n) as u8).collect(),
        Some(weights) => {
            assert_eq!(
                weights.len(),
                spec.alphabet.size(),
                "composition length must equal alphabet size"
            );
            (0..len).map(|_| rng.next_weighted(weights) as u8).collect()
        }
    }
}

fn mutate(codes: &[u8], alphabet: Alphabet, family: &FamilySpec, rng: &mut dyn Rng) -> Vec<u8> {
    let n = alphabet.size() as u64;
    let mut out = Vec::with_capacity(codes.len() + 8);
    for &c in codes {
        if rng.next_bool(family.indel_rate) {
            if rng.next_bool(0.5) {
                // Deletion: skip this residue.
                continue;
            }
            // Insertion: emit a random residue, then the original.
            out.push(rng.next_below(n) as u8);
            out.push(c);
            continue;
        }
        if rng.next_bool(family.substitution_rate) {
            // Substitute with a *different* residue so the stated rate is
            // the observed difference rate.
            let mut replacement = rng.next_below(n) as u8;
            if replacement == c {
                replacement = (replacement + 1) % n as u8;
            }
            out.push(replacement);
        } else {
            out.push(c);
        }
    }
    if out.is_empty() {
        // Pathological rates can delete everything; keep one residue so
        // the record stays valid FASTA.
        out.push(codes.first().copied().unwrap_or(0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = DbSpec::protein_demo(20, 100);
        let a = SyntheticDb::generate(&spec, 7);
        let b = SyntheticDb::generate(&spec, 7);
        assert_eq!(a.sequences, b.sequences);
        let c = SyntheticDb::generate(&spec, 8);
        assert_ne!(a.sequences, c.sequences);
    }

    #[test]
    fn lengths_respect_spread() {
        let spec = DbSpec {
            alphabet: Alphabet::Dna,
            num_sequences: 200,
            mean_len: 50,
            len_spread: 10,
            composition: None,
        };
        let db = SyntheticDb::generate(&spec, 1);
        assert_eq!(db.sequences.len(), 200);
        for s in &db.sequences {
            assert!((40..=60).contains(&s.len()), "len {}", s.len());
        }
    }

    #[test]
    fn composition_is_respected() {
        let spec = DbSpec {
            alphabet: Alphabet::Dna,
            num_sequences: 50,
            mean_len: 400,
            len_spread: 0,
            composition: Some(vec![0.7, 0.1, 0.1, 0.1]),
        };
        let db = SyntheticDb::generate(&spec, 3);
        let total: usize = db.total_residues();
        let a_count: usize = db
            .sequences
            .iter()
            .flat_map(|s| s.codes())
            .filter(|&&c| c == 0)
            .count();
        let frac = a_count as f64 / total as f64;
        assert!((frac - 0.7).abs() < 0.03, "A fraction {frac}");
    }

    #[test]
    fn planted_family_members_resemble_parent() {
        let parent = random_sequence(Alphabet::Protein, "parent", 200, 99);
        let spec = DbSpec::protein_demo(30, 150);
        // No indels here: position-wise identity is only meaningful when
        // the reading frame is preserved.
        let fam = FamilySpec {
            copies: 5,
            substitution_rate: 0.1,
            indel_rate: 0.0,
        };
        let db = SyntheticDb::generate_with_family(&spec, &parent, &fam, 5);
        assert_eq!(db.planted_ids.len(), 5);
        assert_eq!(db.sequences.len(), 35);
        for id in &db.planted_ids {
            let member = db.sequences.iter().find(|s| &s.id == id).unwrap();
            assert_eq!(member.len(), parent.len());
            // Identity against the parent should be far above background
            // (~5% for random protein residues) and track 1 - rate.
            let matches = member
                .codes()
                .iter()
                .zip(parent.codes())
                .filter(|(a, b)| a == b)
                .count();
            let identity = matches as f64 / parent.len() as f64;
            assert!(identity > 0.75, "planted member identity only {identity}");
        }
    }

    #[test]
    fn indels_change_member_length() {
        let parent = random_sequence(Alphabet::Protein, "parent", 400, 17);
        let spec = DbSpec::protein_demo(5, 150);
        let fam = FamilySpec {
            copies: 4,
            substitution_rate: 0.0,
            indel_rate: 0.1,
        };
        let db = SyntheticDb::generate_with_family(&spec, &parent, &fam, 21);
        let changed = db
            .planted_ids
            .iter()
            .map(|id| db.sequences.iter().find(|s| &s.id == id).unwrap())
            .filter(|m| m.len() != parent.len())
            .count();
        assert!(changed >= 3, "indels should usually change the length");
    }

    #[test]
    fn extreme_deletion_rate_still_produces_valid_record() {
        let parent = random_sequence(Alphabet::Dna, "p", 10, 1);
        let spec = DbSpec::dna_demo(1, 20);
        let fam = FamilySpec {
            copies: 1,
            substitution_rate: 0.0,
            indel_rate: 1.0,
        };
        let db = SyntheticDb::generate_with_family(&spec, &parent, &fam, 2);
        let member = db
            .sequences
            .iter()
            .find(|s| s.id == db.planted_ids[0])
            .unwrap();
        assert!(!member.is_empty());
    }

    #[test]
    fn random_sequence_has_requested_length_and_no_ambiguity() {
        let s = random_sequence(Alphabet::Dna, "r", 64, 11);
        assert_eq!(s.len(), 64);
        assert_eq!(s.ambiguity_fraction(), 0.0);
    }
}
