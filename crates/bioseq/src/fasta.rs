//! FASTA parsing and writing.
//!
//! DSEARCH's inputs are "a FASTA database file \[and\] a FASTA query
//! sequences file" (paper §3.1). The parser accepts the ordinary
//! multi-record format: a `>` header line (id = first word, description
//! = remainder) followed by any number of residue lines; whitespace
//! inside residue lines is ignored.

use crate::alphabet::Alphabet;
use crate::seq::Sequence;

/// Error produced while parsing FASTA text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastaError {
    /// Residue data appeared before the first `>` header.
    DataBeforeHeader { line_number: usize },
    /// A header line had no identifier after `>`.
    EmptyHeader { line_number: usize },
    /// A residue character could not be encoded.
    BadResidue {
        record_id: String,
        line_number: usize,
        byte: u8,
    },
    /// A record contained no residues.
    EmptyRecord { record_id: String },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::DataBeforeHeader { line_number } => {
                write!(
                    f,
                    "line {line_number}: residue data before first `>` header"
                )
            }
            FastaError::EmptyHeader { line_number } => {
                write!(f, "line {line_number}: `>` header with no identifier")
            }
            FastaError::BadResidue {
                record_id,
                line_number,
                byte,
            } => write!(
                f,
                "record `{record_id}` line {line_number}: invalid residue byte 0x{byte:02X}"
            ),
            FastaError::EmptyRecord { record_id } => {
                write!(f, "record `{record_id}` contains no residues")
            }
        }
    }
}

impl std::error::Error for FastaError {}

/// Parses all records from FASTA text into encoded [`Sequence`]s.
pub fn parse_fasta(text: &str, alphabet: Alphabet) -> Result<Vec<Sequence>, FastaError> {
    let mut records = Vec::new();
    let mut current: Option<(String, String, Vec<u8>)> = None;

    let finish = |cur: Option<(String, String, Vec<u8>)>,
                  out: &mut Vec<Sequence>|
     -> Result<(), FastaError> {
        if let Some((id, desc, codes)) = cur {
            if codes.is_empty() {
                return Err(FastaError::EmptyRecord { record_id: id });
            }
            let mut seq = Sequence::from_codes(&id, alphabet, codes);
            seq.description = desc;
            out.push(seq);
        }
        Ok(())
    };

    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            finish(current.take(), &mut records)?;
            let header = header.trim();
            if header.is_empty() {
                return Err(FastaError::EmptyHeader { line_number: i + 1 });
            }
            let (id, desc) = match header.split_once(char::is_whitespace) {
                Some((id, rest)) => (id.to_string(), rest.trim().to_string()),
                None => (header.to_string(), String::new()),
            };
            current = Some((id, desc, Vec::new()));
        } else {
            let Some((id, _, codes)) = current.as_mut() else {
                return Err(FastaError::DataBeforeHeader { line_number: i + 1 });
            };
            for &b in line.as_bytes() {
                if b.is_ascii_whitespace() {
                    continue;
                }
                match alphabet.encode(b) {
                    Some(code) => codes.push(code),
                    None => {
                        return Err(FastaError::BadResidue {
                            record_id: id.clone(),
                            line_number: i + 1,
                            byte: b,
                        })
                    }
                }
            }
        }
    }
    finish(current, &mut records)?;
    Ok(records)
}

/// Writes sequences as FASTA text with `width`-column wrapping.
pub fn write_fasta(seqs: &[Sequence], width: usize) -> String {
    let width = width.max(1);
    let mut out = String::new();
    for seq in seqs {
        out.push('>');
        out.push_str(&seq.id);
        if !seq.description.is_empty() {
            out.push(' ');
            out.push_str(&seq.description);
        }
        out.push('\n');
        let text = seq.to_text();
        let bytes = text.as_bytes();
        for chunk in bytes.chunks(width) {
            out.push_str(std::str::from_utf8(chunk).expect("ASCII residues"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
>seq1 first test record
ACGTAC
GTACGT
>seq2
TTTT
";

    #[test]
    fn parses_multi_record_file() {
        let records = parse_fasta(SAMPLE, Alphabet::Dna).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "seq1");
        assert_eq!(records[0].description, "first test record");
        assert_eq!(records[0].to_text(), "ACGTACGTACGT");
        assert_eq!(records[1].id, "seq2");
        assert_eq!(records[1].description, "");
        assert_eq!(records[1].len(), 4);
    }

    #[test]
    fn round_trips_through_writer() {
        let records = parse_fasta(SAMPLE, Alphabet::Dna).unwrap();
        let text = write_fasta(&records, 5);
        let reparsed = parse_fasta(&text, Alphabet::Dna).unwrap();
        assert_eq!(records, reparsed);
    }

    #[test]
    fn writer_wraps_at_width() {
        let records = parse_fasta(SAMPLE, Alphabet::Dna).unwrap();
        let text = write_fasta(&records[..1], 4);
        assert!(text.contains("ACGT\nACGT\nACGT\n"));
    }

    #[test]
    fn rejects_data_before_header() {
        let err = parse_fasta("ACGT\n>late\nACGT\n", Alphabet::Dna).unwrap_err();
        assert_eq!(err, FastaError::DataBeforeHeader { line_number: 1 });
    }

    #[test]
    fn rejects_empty_header() {
        let err = parse_fasta(">\nACGT\n", Alphabet::Dna).unwrap_err();
        assert_eq!(err, FastaError::EmptyHeader { line_number: 1 });
    }

    #[test]
    fn rejects_empty_record() {
        let err = parse_fasta(">a\n>b\nACGT\n", Alphabet::Dna).unwrap_err();
        assert_eq!(
            err,
            FastaError::EmptyRecord {
                record_id: "a".into()
            }
        );
    }

    #[test]
    fn reports_bad_residue_with_record_and_line() {
        let err = parse_fasta(">a\nAC!T\n", Alphabet::Dna).unwrap_err();
        assert_eq!(
            err,
            FastaError::BadResidue {
                record_id: "a".into(),
                line_number: 2,
                byte: b'!'
            }
        );
    }

    #[test]
    fn interior_whitespace_in_residue_lines_is_ignored() {
        let records = parse_fasta(">a\nAC GT\tAC\n", Alphabet::Dna).unwrap();
        assert_eq!(records[0].to_text(), "ACGTAC");
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(parse_fasta("", Alphabet::Dna).unwrap().is_empty());
        assert!(parse_fasta("\n\n", Alphabet::Protein).unwrap().is_empty());
    }

    #[test]
    fn protein_records_parse() {
        let records = parse_fasta(">p desc here\nMKVLAW\n", Alphabet::Protein).unwrap();
        assert_eq!(records[0].to_text(), "MKVLAW");
        assert_eq!(records[0].alphabet, Alphabet::Protein);
    }
}
