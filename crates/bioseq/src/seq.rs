//! The [`Sequence`] type: an identified, alphabet-encoded residue string.

use crate::alphabet::{Alphabet, EncodeError};

/// A named biological sequence with residues stored as alphabet codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    /// Record identifier (the first word of a FASTA header).
    pub id: String,
    /// Free-text description (the rest of the FASTA header, may be empty).
    pub description: String,
    /// Alphabet this sequence is encoded in.
    pub alphabet: Alphabet,
    residues: Vec<u8>,
}

impl Sequence {
    /// Builds a sequence from residue text, encoding and validating it.
    pub fn from_text(
        id: &str,
        description: &str,
        alphabet: Alphabet,
        text: &str,
    ) -> Result<Self, EncodeError> {
        Ok(Self {
            id: id.to_string(),
            description: description.to_string(),
            alphabet,
            residues: alphabet.encode_str(text)?,
        })
    }

    /// Builds a sequence from already-encoded residue codes.
    ///
    /// # Panics
    /// Panics if any code exceeds the alphabet's ambiguity code.
    pub fn from_codes(id: &str, alphabet: Alphabet, codes: Vec<u8>) -> Self {
        let max = alphabet.any_code();
        assert!(
            codes.iter().all(|&c| c <= max),
            "Sequence `{id}`: residue code out of range for {alphabet:?}"
        );
        Self {
            id: id.to_string(),
            description: String::new(),
            alphabet,
            residues: codes,
        }
    }

    /// Residue codes.
    pub fn codes(&self) -> &[u8] {
        &self.residues
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// Whether the sequence has no residues.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Residue text (decoded).
    pub fn to_text(&self) -> String {
        self.alphabet.decode_to_string(&self.residues)
    }

    /// A sub-sequence covering `range`, keeping id/alphabet.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Sequence {
        Sequence {
            id: self.id.clone(),
            description: self.description.clone(),
            alphabet: self.alphabet,
            residues: self.residues[range].to_vec(),
        }
    }

    /// Fraction of residues that are the ambiguity code.
    pub fn ambiguity_fraction(&self) -> f64 {
        if self.residues.is_empty() {
            return 0.0;
        }
        let n = self
            .residues
            .iter()
            .filter(|&&c| c == self.alphabet.any_code())
            .count();
        n as f64 / self.residues.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_round_trips() {
        let s = Sequence::from_text("q1", "test query", Alphabet::Dna, "ACGTN").unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.to_text(), "ACGTN");
        assert_eq!(s.codes(), &[0, 1, 2, 3, 4]);
        assert_eq!(s.id, "q1");
        assert_eq!(s.description, "test query");
    }

    #[test]
    fn from_text_rejects_bad_residue() {
        assert!(Sequence::from_text("x", "", Alphabet::Dna, "AC-GT").is_err());
    }

    #[test]
    fn slice_preserves_identity() {
        let s = Sequence::from_text("s", "d", Alphabet::Protein, "MKVLAW").unwrap();
        let sub = s.slice(1..4);
        assert_eq!(sub.to_text(), "KVL");
        assert_eq!(sub.id, "s");
    }

    #[test]
    fn ambiguity_fraction_counts_ns() {
        let s = Sequence::from_text("s", "", Alphabet::Dna, "ANNA").unwrap();
        assert!((s.ambiguity_fraction() - 0.5).abs() < 1e-12);
        let empty = Sequence::from_codes("e", Alphabet::Dna, vec![]);
        assert_eq!(empty.ambiguity_fraction(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_codes_validates_range() {
        Sequence::from_codes("bad", Alphabet::Dna, vec![0, 7]);
    }
}
