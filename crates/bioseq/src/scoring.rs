//! Scoring schemes for pairwise alignment.
//!
//! A [`ScoringScheme`] bundles a residue [`ScoringMatrix`] with an
//! affine [`GapPenalty`]; this is the "scoring scheme" input of DSEARCH
//! (paper §3.1). BLOSUM62 is embedded (the standard NCBI matrix);
//! arbitrary matrices in the NCBI text format can be loaded with
//! [`ScoringMatrix::parse_ncbi`], and parametric DNA schemes
//! (match/mismatch and transition/transversion) are constructed
//! directly. We embed only BLOSUM62 rather than fabricating BLOSUM45/80
//! or PAM250 tables from memory — the parser covers those.

use crate::alphabet::Alphabet;

/// Affine gap penalty: a gap of length `L ≥ 1` costs `open + extend·(L-1)`.
///
/// Both components are stored as positive costs and *subtracted* from
/// alignment scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapPenalty {
    /// Cost of opening a gap (charged for the first gapped position).
    pub open: i32,
    /// Cost of each additional gapped position.
    pub extend: i32,
}

impl GapPenalty {
    /// Creates an affine penalty. Both values must be non-negative and
    /// `extend` must not exceed `open` (otherwise "affine" is meaningless
    /// and the DP recurrences below would be wrong).
    pub fn affine(open: i32, extend: i32) -> Self {
        assert!(
            open >= 0 && extend >= 0,
            "gap penalties must be non-negative"
        );
        assert!(extend <= open, "gap extend must not exceed gap open");
        Self { open, extend }
    }

    /// Linear penalty: every gapped position costs `per_residue`.
    pub fn linear(per_residue: i32) -> Self {
        Self::affine(per_residue, per_residue)
    }

    /// Total cost of a gap of `len` residues.
    pub fn cost(&self, len: usize) -> i64 {
        if len == 0 {
            0
        } else {
            self.open as i64 + self.extend as i64 * (len as i64 - 1)
        }
    }
}

/// A square substitution matrix over an alphabet's residue codes
/// (including the ambiguity code, so dimension is `size + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoringMatrix {
    alphabet: Alphabet,
    dim: usize,
    scores: Vec<i32>,
}

impl ScoringMatrix {
    /// The standard BLOSUM62 matrix (Henikoff & Henikoff 1992), the
    /// default protein scheme. Ambiguity (`X`) scores −1 against
    /// everything, a simplification of NCBI's mixed −1/−2 X column.
    pub fn blosum62() -> Self {
        // Rows/columns in PROTEIN_SYMBOLS order: A R N D C Q E G H I L K M F P S T W Y V
        const B62: [[i32; 20]; 20] = [
            [
                4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0,
            ],
            [
                -1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3,
            ],
            [
                -2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3,
            ],
            [
                -2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3,
            ],
            [
                0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1,
            ],
            [
                -1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2,
            ],
            [
                -1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2,
            ],
            [
                0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3,
            ],
            [
                -2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3,
            ],
            [
                -1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3,
            ],
            [
                -1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1,
            ],
            [
                -1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2,
            ],
            [
                -1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1,
            ],
            [
                -2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1,
            ],
            [
                -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2,
            ],
            [
                1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2,
            ],
            [
                0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0,
            ],
            [
                -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3,
            ],
            [
                -2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1,
            ],
            [
                0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4,
            ],
        ];
        let alphabet = Alphabet::Protein;
        let dim = alphabet.size() + 1;
        let mut scores = vec![-1; dim * dim];
        for (i, row) in B62.iter().enumerate() {
            for (j, &s) in row.iter().enumerate() {
                scores[i * dim + j] = s;
            }
        }
        Self {
            alphabet,
            dim,
            scores,
        }
    }

    /// Simple match/mismatch matrix (either alphabet). Ambiguity scores 0.
    pub fn match_mismatch(alphabet: Alphabet, match_score: i32, mismatch: i32) -> Self {
        let dim = alphabet.size() + 1;
        let mut scores = vec![0; dim * dim];
        for i in 0..alphabet.size() {
            for j in 0..alphabet.size() {
                scores[i * dim + j] = if i == j { match_score } else { mismatch };
            }
        }
        Self {
            alphabet,
            dim,
            scores,
        }
    }

    /// DNA matrix distinguishing transitions (A↔G, C↔T) from
    /// transversions, the standard refinement over flat mismatch.
    pub fn dna_transition_transversion(
        match_score: i32,
        transition: i32,
        transversion: i32,
    ) -> Self {
        let alphabet = Alphabet::Dna;
        let dim = alphabet.size() + 1;
        let mut scores = vec![0; dim * dim];
        // Purines are codes 0 (A) and 2 (G); pyrimidines 1 (C) and 3 (T).
        let is_purine = |c: usize| c == 0 || c == 2;
        for i in 0..4 {
            for j in 0..4 {
                scores[i * dim + j] = if i == j {
                    match_score
                } else if is_purine(i) == is_purine(j) {
                    transition
                } else {
                    transversion
                };
            }
        }
        Self {
            alphabet,
            dim,
            scores,
        }
    }

    /// Parses a matrix in the NCBI text format: a header line listing
    /// residue characters, then one row per residue. Characters the
    /// alphabet does not know (e.g. `B`, `Z`, `*`) are skipped.
    pub fn parse_ncbi(alphabet: Alphabet, text: &str) -> Result<Self, String> {
        let dim = alphabet.size() + 1;
        let mut scores = vec![0i32; dim * dim];
        let mut header: Option<Vec<Option<u8>>> = None;
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if header.is_none() {
                let cols: Vec<Option<u8>> = line
                    .split_whitespace()
                    .map(|tok| {
                        let ch = tok.as_bytes()[0];
                        alphabet
                            .encode(ch)
                            .filter(|&c| c < alphabet.any_code() || ch == alphabet.any_symbol())
                    })
                    .collect();
                if cols.iter().all(|c| c.is_none()) {
                    return Err("header row contains no known residues".into());
                }
                header = Some(cols);
                continue;
            }
            let cols = header.as_ref().expect("header parsed above");
            let mut toks = line.split_whitespace();
            let row_ch = toks.next().ok_or("empty matrix row")?.as_bytes()[0];
            let row_code = alphabet
                .encode(row_ch)
                .filter(|&c| c < alphabet.any_code() || row_ch == alphabet.any_symbol());
            let values: Vec<&str> = toks.collect();
            if values.len() != cols.len() {
                return Err(format!(
                    "row `{}` has {} values, header has {} columns",
                    row_ch as char,
                    values.len(),
                    cols.len()
                ));
            }
            let Some(ri) = row_code else { continue };
            for (col, tok) in cols.iter().zip(values) {
                let Some(ci) = *col else { continue };
                let v: i32 = tok
                    .parse()
                    .map_err(|_| format!("bad score `{tok}` in row `{}`", row_ch as char))?;
                scores[ri as usize * dim + ci as usize] = v;
            }
        }
        if header.is_none() {
            return Err("matrix text contained no data".into());
        }
        Ok(Self {
            alphabet,
            dim,
            scores,
        })
    }

    /// Alphabet this matrix scores.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Score for a pair of residue codes.
    #[inline(always)]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        debug_assert!((a as usize) < self.dim && (b as usize) < self.dim);
        self.scores[a as usize * self.dim + b as usize]
    }

    /// Number of residue codes the matrix covers: `alphabet.size() + 1`
    /// (the ambiguity code is included). Valid codes are `0..dim()`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Scores of residue code `a` against every code `0..dim()`, in code
    /// order. This is the row layout that query-profile builders (e.g.
    /// the striped SIMD kernel) interleave into lane vectors: for a
    /// query residue `q`, `row(q)[r]` is the substitution score against
    /// subject residue `r`.
    #[inline]
    pub fn row(&self, a: u8) -> &[i32] {
        let d = self.dim;
        &self.scores[a as usize * d..(a as usize + 1) * d]
    }

    /// Largest score in the matrix (used for search-statistics bounds).
    pub fn max_score(&self) -> i32 {
        self.scores.iter().copied().max().expect("non-empty matrix")
    }

    /// Whether the matrix is symmetric (all standard matrices are).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.dim {
            for j in 0..i {
                if self.scores[i * self.dim + j] != self.scores[j * self.dim + i] {
                    return false;
                }
            }
        }
        true
    }
}

/// A complete scoring scheme: substitution matrix + gap penalty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoringScheme {
    /// Residue substitution scores.
    pub matrix: ScoringMatrix,
    /// Affine gap model.
    pub gap: GapPenalty,
}

impl ScoringScheme {
    /// BLOSUM62 with the BLAST-default gap penalty 11/1.
    pub fn protein_default() -> Self {
        Self {
            matrix: ScoringMatrix::blosum62(),
            gap: GapPenalty::affine(11, 1),
        }
    }

    /// +5/−4 DNA scheme with gap 10/1 (megaBLAST-like costs).
    pub fn dna_default() -> Self {
        Self {
            matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 5, -4),
            gap: GapPenalty::affine(10, 1),
        }
    }

    /// Alphabet the scheme applies to.
    pub fn alphabet(&self) -> Alphabet {
        self.matrix.alphabet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::PROTEIN_SYMBOLS;

    #[test]
    fn blosum62_spot_values() {
        let m = ScoringMatrix::blosum62();
        let code = |ch: u8| Alphabet::Protein.encode(ch).unwrap();
        assert_eq!(m.score(code(b'W'), code(b'W')), 11);
        assert_eq!(m.score(code(b'A'), code(b'A')), 4);
        assert_eq!(m.score(code(b'C'), code(b'C')), 9);
        assert_eq!(m.score(code(b'A'), code(b'R')), -1);
        assert_eq!(m.score(code(b'I'), code(b'L')), 2);
        assert_eq!(m.score(code(b'D'), code(b'E')), 2);
        assert_eq!(m.score(code(b'X'), code(b'W')), -1);
        assert_eq!(m.max_score(), 11);
    }

    #[test]
    fn blosum62_is_symmetric() {
        assert!(ScoringMatrix::blosum62().is_symmetric());
    }

    #[test]
    fn blosum62_diagonal_is_positive_and_dominant() {
        let m = ScoringMatrix::blosum62();
        for (i, _) in PROTEIN_SYMBOLS.iter().enumerate() {
            let diag = m.score(i as u8, i as u8);
            assert!(diag > 0, "diagonal must be positive");
            for j in 0..PROTEIN_SYMBOLS.len() {
                if i != j {
                    assert!(m.score(i as u8, j as u8) < diag);
                }
            }
        }
    }

    #[test]
    fn match_mismatch_scores() {
        let m = ScoringMatrix::match_mismatch(Alphabet::Dna, 5, -4);
        assert_eq!(m.score(0, 0), 5);
        assert_eq!(m.score(0, 3), -4);
        assert_eq!(m.score(0, 4), 0, "ambiguity is neutral");
        assert!(m.is_symmetric());
    }

    #[test]
    fn transition_transversion_distinguishes_pairs() {
        let m = ScoringMatrix::dna_transition_transversion(5, -2, -6);
        let c = |ch: u8| Alphabet::Dna.encode(ch).unwrap();
        assert_eq!(m.score(c(b'A'), c(b'G')), -2, "A<->G is a transition");
        assert_eq!(m.score(c(b'C'), c(b'T')), -2, "C<->T is a transition");
        assert_eq!(m.score(c(b'A'), c(b'C')), -6, "A<->C is a transversion");
        assert_eq!(m.score(c(b'G'), c(b'G')), 5);
        assert!(m.is_symmetric());
    }

    #[test]
    fn gap_penalty_cost_formula() {
        let g = GapPenalty::affine(11, 1);
        assert_eq!(g.cost(0), 0);
        assert_eq!(g.cost(1), 11);
        assert_eq!(g.cost(5), 15);
        let lin = GapPenalty::linear(2);
        assert_eq!(lin.cost(4), 8);
    }

    #[test]
    #[should_panic(expected = "extend must not exceed")]
    fn gap_penalty_rejects_extend_above_open() {
        GapPenalty::affine(1, 5);
    }

    #[test]
    fn ncbi_parser_round_trips_blosum62() {
        // Render BLOSUM62 in NCBI format and parse it back.
        let m = ScoringMatrix::blosum62();
        let mut text = String::from("# comment line\n ");
        for &s in PROTEIN_SYMBOLS {
            text.push(s as char);
            text.push(' ');
        }
        text.push('\n');
        for (i, &s) in PROTEIN_SYMBOLS.iter().enumerate() {
            text.push(s as char);
            for j in 0..PROTEIN_SYMBOLS.len() {
                text.push_str(&format!(" {}", m.score(i as u8, j as u8)));
            }
            text.push('\n');
        }
        let parsed = ScoringMatrix::parse_ncbi(Alphabet::Protein, &text).unwrap();
        for i in 0..20u8 {
            for j in 0..20u8 {
                assert_eq!(parsed.score(i, j), m.score(i, j));
            }
        }
    }

    #[test]
    fn ncbi_parser_skips_unknown_columns() {
        let text = " A C G T B\nA 1 -1 -1 -1 9\nC -1 1 -1 -1 9\nG -1 -1 1 -1 9\nT -1 -1 -1 1 9\nB 9 9 9 9 9\n";
        // `B` is an IUPAC ambiguity letter: it encodes to the `any` code,
        // but only the designated symbol (N) may set ambiguity scores, so
        // B rows/columns are ignored.
        let m = ScoringMatrix::parse_ncbi(Alphabet::Dna, text).unwrap();
        assert_eq!(m.score(0, 0), 1);
        assert_eq!(m.score(0, 4), 0, "B column must not leak into N scores");
    }

    #[test]
    fn ncbi_parser_rejects_ragged_rows() {
        let text = " A C\nA 1\n";
        assert!(ScoringMatrix::parse_ncbi(Alphabet::Dna, text).is_err());
    }

    #[test]
    fn ncbi_parser_rejects_empty_input() {
        assert!(ScoringMatrix::parse_ncbi(Alphabet::Dna, "# only comments\n").is_err());
    }

    #[test]
    fn default_schemes_have_consistent_alphabets() {
        assert_eq!(
            ScoringScheme::protein_default().alphabet(),
            Alphabet::Protein
        );
        assert_eq!(ScoringScheme::dna_default().alphabet(), Alphabet::Dna);
    }
}
