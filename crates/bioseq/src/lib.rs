//! # biodist-bioseq
//!
//! Biological-sequence substrate for the `biodist` workspace: alphabets
//! and residue encoding, the [`Sequence`] type, FASTA parsing and
//! writing, scoring schemes (substitution matrices and affine gap
//! penalties) for the alignment kernels, and a seeded synthetic
//! database generator that stands in for the GenBank-style inputs used
//! by the paper's DSEARCH experiments (see DESIGN.md, substitution
//! table).

pub mod alphabet;
pub mod codon;
pub mod fasta;
pub mod scoring;
pub mod seq;
pub mod synth;

pub use alphabet::Alphabet;
pub use codon::{reverse_complement, six_frame_translations, translate_frame, Translation};
pub use fasta::{parse_fasta, write_fasta, FastaError};
pub use scoring::{GapPenalty, ScoringMatrix, ScoringScheme};
pub use seq::Sequence;
pub use synth::{DbSpec, FamilySpec, SyntheticDb};
