//! Farrar-style striped SIMD Smith–Waterman (score only, affine gaps).
//!
//! The DP runs over the striped query layout of [`QueryProfile`]: each
//! SIMD vector holds `width` query positions that are `seg_len` apart,
//! so the only intra-column dependency the vector loop cannot express —
//! the vertical gap state `F` — is deferred to a *lazy-F* correction
//! loop that terminates as soon as the carried `F` can no longer raise
//! any `H` (Farrar, Bioinformatics 2007). Scores are bit-identical to
//! [`crate::sw_score`]: the striped recurrence drops only `E`-after-`F`
//! gap openings, and any alignment using one can be reordered into an
//! equal-scoring `F`-after-`E` form that the recurrence does admit.
//!
//! # Adaptive lane width
//!
//! The fast path runs saturating `i16` lanes — 16 on AVX2, 8 on SSE2,
//! and 8 scalar-emulated lanes on any other target (the portable
//! fallback keeps the crate building everywhere). Saturating arithmetic
//! clamps instead of wrapping, so if the true score reaches
//! `i16::MAX` the reported maximum *equals* `i16::MAX`; that is the
//! saturation signal, and the subject is transparently rescored in
//! `i32` lanes, which are exact for everything the scalar kernel
//! handles. The `i16` path is exact for every score below `i16::MAX`.
//!
//! Backend selection is a runtime check (`is_x86_feature_detected!`) on
//! x86_64 and compile-time elsewhere; no feature flags are required.

use crate::profile::{QueryProfile, WIDTH_I32};
use biodist_bioseq::{GapPenalty, ScoringScheme, Sequence};

/// Which SIMD implementation the striped kernel dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// 256-bit AVX2 vectors: 16 × `i16` lanes.
    Avx2,
    /// 128-bit SSE2 vectors (x86_64 baseline): 8 × `i16` lanes.
    Sse2,
    /// Scalar-emulated 8 × `i16` lanes; compiles on every target.
    Portable,
}

impl SimdBackend {
    /// Lane count of the `i16` fast path.
    pub fn lanes_i16(self) -> usize {
        match self {
            SimdBackend::Avx2 => 16,
            SimdBackend::Sse2 | SimdBackend::Portable => 8,
        }
    }
}

/// Picks the widest backend the running CPU supports.
pub fn detect_backend() -> SimdBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdBackend::Avx2
        } else {
            SimdBackend::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdBackend::Portable
    }
}

/// Striped SIMD local-alignment score; convenience wrapper that builds
/// the query profile for a single pair. Batch callers should build the
/// profile once with [`QueryProfile::build`] and call
/// [`sw_score_striped_profiled`] per subject.
pub fn sw_score_striped(query: &Sequence, subject: &Sequence, scheme: &ScoringScheme) -> i32 {
    let profile = QueryProfile::build(query, &scheme.matrix);
    sw_score_striped_profiled(&profile, subject, &scheme.gap)
}

/// Striped SIMD local-alignment score against a prebuilt profile.
///
/// Returns exactly [`crate::sw_score`]`(query, subject, scheme)` for the
/// query the profile was built from, including after an `i16`-lane
/// saturation (the `i32` rescore path restores exactness).
pub fn sw_score_striped_profiled(
    profile: &QueryProfile,
    subject: &Sequence,
    gap: &GapPenalty,
) -> i32 {
    let sc = subject.codes();
    if profile.query_len() == 0 || sc.is_empty() {
        return 0;
    }
    let go16 = gap.open.min(i16::MAX as i32) as i16;
    let ge16 = gap.extend.min(i16::MAX as i32) as i16;
    let best16 = match profile.backend() {
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2 => unsafe {
            // Safety: the profile's backend is only Avx2 when
            // `is_x86_feature_detected!("avx2")` held at build time.
            run_i16_avx2(profile, sc, go16, ge16)
        },
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Sse2 => run_i16::<sse2::S16>(profile, sc, go16, ge16),
        _ => run_i16::<P16>(profile, sc, go16, ge16),
    };
    if best16 < i16::MAX {
        return best16 as i32;
    }
    // Saturated (or genuinely equal to i16::MAX — indistinguishable, and
    // the rescore returns the same value in that case): rerun in i32.
    run_i32(profile, sc, gap.open, gap.extend)
}

/// Fixed-width `i16` lane bundle. All ops are saturating, so overflow
/// clamps at the type bounds instead of wrapping; the kernel relies on
/// that for its saturation-detection contract.
trait LanesI16: Copy {
    const WIDTH: usize;
    fn zero() -> Self;
    fn splat(x: i16) -> Self;
    /// Loads `Self::WIDTH` lanes from the head of `src`.
    fn load(src: &[i16]) -> Self;
    fn adds(self, o: Self) -> Self;
    fn subs(self, o: Self) -> Self;
    fn max(self, o: Self) -> Self;
    /// Moves lane `l` to lane `l+1`; lane 0 becomes 0 (the local-
    /// alignment boundary, which can never raise an `H`).
    fn shift_up(self) -> Self;
    /// Whether any lane of `self` exceeds the same lane of `o`.
    fn any_gt(self, o: Self) -> bool;
    /// Horizontal maximum across lanes.
    fn hmax(self) -> i16;
}

/// The striped score loop, generic over the lane engine. Marked
/// `inline(always)` so that when instantiated inside a
/// `#[target_feature]` wrapper the lane ops compile with that feature.
#[inline(always)]
fn run_i16<V: LanesI16>(profile: &QueryProfile, subject: &[u8], go: i16, ge: i16) -> i16 {
    let seg_len = profile.seg_len();
    debug_assert_eq!(profile.width(), V::WIDTH);
    let (vgo, vge, zero) = (V::splat(go), V::splat(ge), V::zero());
    let mut h_store = vec![zero; seg_len];
    let mut h_load = vec![zero; seg_len];
    let mut e = vec![zero; seg_len];
    let mut vmax = zero;

    for &c in subject {
        let row = profile.row16(c);
        let mut vf = zero;
        // Diagonal feed for stripe 0: the previous column's last stripe,
        // lanes shifted up one (position p-1 sits one stripe "earlier",
        // wrapping into the next lane at stripe boundaries).
        let mut vh = h_store[seg_len - 1].shift_up();
        std::mem::swap(&mut h_store, &mut h_load);
        for s in 0..seg_len {
            vh = vh.adds(V::load(&row[s * V::WIDTH..]));
            vh = vh.max(e[s]).max(vf).max(zero);
            vmax = vmax.max(vh);
            h_store[s] = vh;
            let open = vh.subs(vgo);
            e[s] = e[s].subs(vge).max(open);
            vf = vf.subs(vge).max(open);
            vh = h_load[s];
        }
        // Lazy-F: carry F across the stripe wrap until it can no longer
        // beat opening a fresh gap from the (already corrected) H.
        //
        // The classic strict-`>` exit is exact only for open > extend:
        // with linear gaps (open == extend) a carry that just raised
        // H[s] yields a next-stripe candidate `F - e` that exactly TIES
        // `H'[s] - open`, and nothing else has propagated it — so in
        // that regime the loop must also keep going whenever it
        // actually raised an H.
        let linear = go == ge;
        'lazy: for _ in 0..V::WIDTH {
            vf = vf.shift_up();
            for s in 0..seg_len {
                let old = h_store[s];
                let vh = old.max(vf);
                h_store[s] = vh;
                vmax = vmax.max(vh);
                let raised_tie = linear && vf.any_gt(old);
                vf = vf.subs(vge);
                if !raised_tie && !vf.any_gt(vh.subs(vgo)) {
                    break 'lazy;
                }
            }
        }
    }
    vmax.hmax()
}

/// Exact `i32` rescore, striped over [`WIDTH_I32`] portable lanes. Same
/// recurrence as [`run_i16`]; plain arithmetic suffices because `i32`
/// scores cannot overflow for any input the scalar kernel handles.
fn run_i32(profile: &QueryProfile, subject: &[u8], go: i32, ge: i32) -> i32 {
    const W: usize = WIDTH_I32;
    type V = [i32; W];
    let seg_len = profile.seg_len32();
    let zero: V = [0; W];
    let mut h_store = vec![zero; seg_len];
    let mut h_load = vec![zero; seg_len];
    let mut e = vec![zero; seg_len];
    let mut vmax = zero;

    let vmaxw = |a: &mut V, b: V| {
        for l in 0..W {
            a[l] = a[l].max(b[l]);
        }
    };

    for &c in subject {
        let row = profile.row32(c);
        let mut vf = zero;
        let mut vh = {
            let last = h_store[seg_len - 1];
            let mut shifted = zero;
            shifted[1..].copy_from_slice(&last[..W - 1]);
            shifted
        };
        std::mem::swap(&mut h_store, &mut h_load);
        for s in 0..seg_len {
            for l in 0..W {
                // NEG_INF padding keeps saturation-free headroom: H ≥ 0
                // and profile ≥ NEG_INF, so the sum stays far from the
                // i32 bounds.
                vh[l] = (vh[l] + row[s * W + l]).max(e[s][l]).max(vf[l]).max(0);
            }
            vmaxw(&mut vmax, vh);
            h_store[s] = vh;
            for l in 0..W {
                let open = vh[l] - go;
                e[s][l] = (e[s][l] - ge).max(open);
                vf[l] = (vf[l] - ge).max(open);
            }
            vh = h_load[s];
        }
        // Same tie-aware exit as the i16 loop (see the comment there).
        let linear = go == ge;
        'lazy: for _ in 0..W {
            let mut shifted = zero;
            shifted[1..].copy_from_slice(&vf[..W - 1]);
            vf = shifted;
            for s in 0..seg_len {
                let mut raised_tie = false;
                for l in 0..W {
                    raised_tie |= linear && vf[l] > h_store[s][l];
                    h_store[s][l] = h_store[s][l].max(vf[l]);
                }
                vmaxw(&mut vmax, h_store[s]);
                let mut any = raised_tie;
                for l in 0..W {
                    vf[l] -= ge;
                    any |= vf[l] > h_store[s][l] - go;
                }
                if !any {
                    break 'lazy;
                }
            }
        }
    }
    vmax.into_iter().max().expect("non-empty lanes")
}

/// Portable engine: 8 scalar-emulated `i16` lanes. The compiler's
/// autovectoriser handles these fixed-size array loops well, and the
/// type compiles on every target.
#[derive(Clone, Copy)]
struct P16([i16; 8]);

impl LanesI16 for P16 {
    const WIDTH: usize = 8;

    fn zero() -> Self {
        Self([0; 8])
    }

    fn splat(x: i16) -> Self {
        Self([x; 8])
    }

    fn load(src: &[i16]) -> Self {
        let mut v = [0i16; 8];
        v.copy_from_slice(&src[..8]);
        Self(v)
    }

    fn adds(self, o: Self) -> Self {
        Self(std::array::from_fn(|l| self.0[l].saturating_add(o.0[l])))
    }

    fn subs(self, o: Self) -> Self {
        Self(std::array::from_fn(|l| self.0[l].saturating_sub(o.0[l])))
    }

    fn max(self, o: Self) -> Self {
        Self(std::array::from_fn(|l| self.0[l].max(o.0[l])))
    }

    fn shift_up(self) -> Self {
        let mut v = [0i16; 8];
        v[1..].copy_from_slice(&self.0[..7]);
        Self(v)
    }

    fn any_gt(self, o: Self) -> bool {
        (0..8).any(|l| self.0[l] > o.0[l])
    }

    fn hmax(self) -> i16 {
        self.0.into_iter().max().expect("non-empty lanes")
    }
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    //! 128-bit engine. SSE2 is part of the x86_64 baseline, so these
    //! intrinsics are statically available — no runtime gate needed.
    use super::LanesI16;
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub(super) struct S16(__m128i);

    impl LanesI16 for S16 {
        const WIDTH: usize = 8;

        #[inline(always)]
        fn zero() -> Self {
            Self(unsafe { _mm_setzero_si128() })
        }

        #[inline(always)]
        fn splat(x: i16) -> Self {
            Self(unsafe { _mm_set1_epi16(x) })
        }

        #[inline(always)]
        fn load(src: &[i16]) -> Self {
            debug_assert!(src.len() >= 8);
            Self(unsafe { _mm_loadu_si128(src.as_ptr() as *const __m128i) })
        }

        #[inline(always)]
        fn adds(self, o: Self) -> Self {
            Self(unsafe { _mm_adds_epi16(self.0, o.0) })
        }

        #[inline(always)]
        fn subs(self, o: Self) -> Self {
            Self(unsafe { _mm_subs_epi16(self.0, o.0) })
        }

        #[inline(always)]
        fn max(self, o: Self) -> Self {
            Self(unsafe { _mm_max_epi16(self.0, o.0) })
        }

        #[inline(always)]
        fn shift_up(self) -> Self {
            Self(unsafe { _mm_slli_si128::<2>(self.0) })
        }

        #[inline(always)]
        fn any_gt(self, o: Self) -> bool {
            unsafe { _mm_movemask_epi8(_mm_cmpgt_epi16(self.0, o.0)) != 0 }
        }

        #[inline(always)]
        fn hmax(self) -> i16 {
            unsafe {
                let v = _mm_max_epi16(self.0, _mm_srli_si128::<8>(self.0));
                let v = _mm_max_epi16(v, _mm_srli_si128::<4>(v));
                let v = _mm_max_epi16(v, _mm_srli_si128::<2>(v));
                _mm_extract_epi16::<0>(v) as i16
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! 256-bit engine. Only reachable through the `target_feature`
    //! wrapper below, so every method assumes AVX2 is available.
    use super::LanesI16;
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub(super) struct A16(__m256i);

    impl LanesI16 for A16 {
        const WIDTH: usize = 16;

        #[inline(always)]
        fn zero() -> Self {
            Self(unsafe { _mm256_setzero_si256() })
        }

        #[inline(always)]
        fn splat(x: i16) -> Self {
            Self(unsafe { _mm256_set1_epi16(x) })
        }

        #[inline(always)]
        fn load(src: &[i16]) -> Self {
            debug_assert!(src.len() >= 16);
            Self(unsafe { _mm256_loadu_si256(src.as_ptr() as *const __m256i) })
        }

        #[inline(always)]
        fn adds(self, o: Self) -> Self {
            Self(unsafe { _mm256_adds_epi16(self.0, o.0) })
        }

        #[inline(always)]
        fn subs(self, o: Self) -> Self {
            Self(unsafe { _mm256_subs_epi16(self.0, o.0) })
        }

        #[inline(always)]
        fn max(self, o: Self) -> Self {
            Self(unsafe { _mm256_max_epi16(self.0, o.0) })
        }

        #[inline(always)]
        fn shift_up(self) -> Self {
            // _mm256_slli_si256 shifts within each 128-bit half; carry
            // the byte pair across the half boundary with a permute.
            unsafe {
                let carry = _mm256_permute2x128_si256::<0x08>(self.0, self.0);
                Self(_mm256_alignr_epi8::<14>(self.0, carry))
            }
        }

        #[inline(always)]
        fn any_gt(self, o: Self) -> bool {
            unsafe { _mm256_movemask_epi8(_mm256_cmpgt_epi16(self.0, o.0)) != 0 }
        }

        #[inline(always)]
        fn hmax(self) -> i16 {
            unsafe {
                let lo = _mm256_castsi256_si128(self.0);
                let hi = _mm256_extracti128_si256::<1>(self.0);
                let v = _mm_max_epi16(lo, hi);
                let v = _mm_max_epi16(v, _mm_srli_si128::<8>(v));
                let v = _mm_max_epi16(v, _mm_srli_si128::<4>(v));
                let v = _mm_max_epi16(v, _mm_srli_si128::<2>(v));
                _mm_extract_epi16::<0>(v) as i16
            }
        }
    }
}

/// AVX2 instantiation of the generic loop. The `target_feature`
/// attribute lets the inlined lane ops compile to real 256-bit code.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_i16_avx2(profile: &QueryProfile, subject: &[u8], go: i16, ge: i16) -> i16 {
    run_i16::<avx2::A16>(profile, subject, go, ge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::sw_score;
    use biodist_bioseq::{Alphabet, GapPenalty, ScoringMatrix};

    fn seq(alphabet: Alphabet, text: &str) -> Sequence {
        Sequence::from_text("s", "", alphabet, text).unwrap()
    }

    fn check(a: &Sequence, b: &Sequence, scheme: &ScoringScheme) {
        assert_eq!(
            sw_score_striped(a, b, scheme),
            sw_score(a, b, scheme),
            "striped != scalar for |q|={} |s|={}",
            a.len(),
            b.len()
        );
    }

    #[test]
    fn agrees_with_scalar_on_protein_pair() {
        let scheme = ScoringScheme::protein_default();
        let a = seq(Alphabet::Protein, "MKWVLLLNAGRSKWALEHMKWVLLLNAGRSKW");
        let b = seq(Alphabet::Protein, "GGMKWVLNAGRSKWPPMKWVL");
        check(&a, &b, &scheme);
    }

    #[test]
    fn agrees_on_empty_and_single_residue() {
        let scheme = ScoringScheme::dna_default();
        let e = Sequence::from_codes("e", Alphabet::Dna, vec![]);
        let a = seq(Alphabet::Dna, "A");
        let g = seq(Alphabet::Dna, "ACGT");
        for (x, y) in [(&e, &g), (&g, &e), (&e, &e), (&a, &g), (&g, &a), (&a, &a)] {
            check(x, y, &scheme);
        }
    }

    #[test]
    fn profile_reuse_matches_fresh_profiles() {
        let scheme = ScoringScheme::protein_default();
        let q = seq(Alphabet::Protein, "MKWVLLLNAGRSKWALEH");
        let profile = QueryProfile::build(&q, &scheme.matrix);
        for text in [
            "MKWVL",
            "GGGGGGG",
            "MKWVLLLNAGRSKWALEH",
            "HELAWKSRGANLLLVWKM",
        ] {
            let s = seq(Alphabet::Protein, text);
            assert_eq!(
                sw_score_striped_profiled(&profile, &s, &scheme.gap),
                sw_score(&q, &s, &scheme)
            );
        }
    }

    #[test]
    fn saturation_falls_back_to_i32_lanes() {
        // +40 per match over 1200 identical residues: true score 48_000
        // overflows i16 (max 32_767); the i16 pass must saturate and the
        // i32 rescore must restore the exact scalar score.
        let scheme = ScoringScheme {
            matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 40, -30),
            gap: GapPenalty::affine(20, 2),
        };
        let codes: Vec<u8> = (0..1200).map(|i| (i % 4) as u8).collect();
        let a = Sequence::from_codes("a", Alphabet::Dna, codes.clone());
        let b = Sequence::from_codes("b", Alphabet::Dna, codes);
        let expected = sw_score(&a, &b, &scheme);
        assert!(
            expected > i16::MAX as i32,
            "test must actually overflow i16"
        );
        assert_eq!(sw_score_striped(&a, &b, &scheme), expected);
    }

    #[test]
    fn every_supported_backend_matches_scalar() {
        let scheme = ScoringScheme::protein_default();
        let q = seq(Alphabet::Protein, "MKWVLLLNAGRSKWALEHMKWVLLLNAGRSKWALEH");
        let subjects = ["MKWVLNAGRSKW", "HELAWKSRGANLLLVWKM", "PPPPPPPP", "M"];
        let detected = detect_backend();
        for backend in [SimdBackend::Portable, SimdBackend::Sse2, SimdBackend::Avx2] {
            if backend.lanes_i16() > detected.lanes_i16() {
                continue; // CPU cannot run this engine
            }
            if backend == SimdBackend::Sse2 && cfg!(not(target_arch = "x86_64")) {
                continue;
            }
            let profile = QueryProfile::build_for_backend(&q, &scheme.matrix, backend);
            for text in subjects {
                let s = seq(Alphabet::Protein, text);
                assert_eq!(
                    sw_score_striped_profiled(&profile, &s, &scheme.gap),
                    sw_score(&q, &s, &scheme),
                    "{backend:?} disagrees on {text}"
                );
            }
        }
    }

    #[test]
    fn zero_open_gap_regime_agrees() {
        let scheme = ScoringScheme {
            matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 2, -1),
            gap: GapPenalty::affine(0, 0),
        };
        let a = seq(Alphabet::Dna, "ACGTACGTACGTAAAA");
        let b = seq(Alphabet::Dna, "TTACGTCGTACGAA");
        check(&a, &b, &scheme);
    }
}
