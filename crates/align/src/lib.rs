//! # biodist-align
//!
//! Rigorous pairwise sequence-alignment kernels for DSEARCH (paper
//! §3.1): Needleman–Wunsch global alignment \[10\], Smith–Waterman
//! local alignment \[14\], a banded global variant, an anti-diagonal
//! score-only kernel standing in for the subquadratic algorithm of
//! Crochemore et al. \[4\] (see DESIGN.md, substitution table), and a
//! Farrar-style striped SIMD kernel ([`striped`]) with reusable query
//! profiles ([`profile`]) and an adaptive `i16`→`i32` lane-width
//! fallback. All kernels use Gotoh's affine-gap recurrences and agree
//! exactly on scores; the score-only variants run in linear memory.
//!
//! [`hits`] provides the bounded top-K hit collector DSEARCH uses to
//! merge per-chunk results on the server.
// DP and linear-algebra kernels index several arrays with one
// loop variable; iterator chains obscure the recurrences there.
#![allow(clippy::needless_range_loop)]

pub mod aln;
pub mod banded;
pub mod hits;
pub mod kernel;
pub mod nw;
pub mod profile;
pub mod sg;
pub mod striped;
pub mod sw;

pub use aln::{AlignedPair, AlnOp};
pub use banded::nw_banded_score;
pub use hits::{Hit, TopK};
pub use kernel::{AlignKernel, KernelKind, PreparedQuery};
pub use nw::{nw_align, nw_score};
pub use profile::QueryProfile;
pub use sg::{sg_align, sg_score};
pub use striped::{detect_backend, sw_score_striped, sw_score_striped_profiled, SimdBackend};
pub use sw::{sw_align, sw_score, sw_score_antidiagonal};

/// Sentinel for "minus infinity" in DP matrices, chosen so that adding
/// any single score or penalty cannot overflow `i32`.
pub(crate) const NEG_INF: i32 = i32::MIN / 4;
