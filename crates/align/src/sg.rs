//! Semi-global ("glocal") alignment: the whole query against a
//! substring of the subject.
//!
//! Database search often wants the *query* aligned end-to-end while the
//! *subject's* flanks are free — gene-in-genome, read-in-reference,
//! domain-in-protein. This kernel charges nothing for subject residues
//! before the alignment starts or after it ends, and the usual affine
//! costs for everything in between. Same Gotoh state machine as
//! [`crate::nw`].

use crate::aln::{AlignedPair, AlnOp};
use crate::NEG_INF;
use biodist_bioseq::{ScoringScheme, Sequence};

const ST_M: u8 = 0;
const ST_IX: u8 = 1;
const ST_IY: u8 = 2;

/// Semi-global score in `O(|subject|)` memory: `query` aligned fully,
/// `subject` flanks free.
pub fn sg_score(query: &Sequence, subject: &Sequence, scheme: &ScoringScheme) -> i32 {
    let (ac, bc) = (query.codes(), subject.codes());
    let (o, e) = (scheme.gap.open, scheme.gap.extend);
    let m = bc.len();

    let mut prev_m = vec![0i32; m + 1]; // row 0: free start anywhere
    let mut prev_ix = vec![NEG_INF; m + 1];
    let mut prev_iy = vec![NEG_INF; m + 1];
    let mut cur_m = vec![NEG_INF; m + 1];
    let mut cur_ix = vec![NEG_INF; m + 1];
    let mut cur_iy = vec![NEG_INF; m + 1];

    if ac.is_empty() {
        return 0;
    }

    for (i, &ra) in ac.iter().enumerate() {
        cur_m[0] = NEG_INF;
        cur_ix[0] = NEG_INF;
        cur_iy[0] = -(o + i as i32 * e);
        for (j, &rb) in bc.iter().enumerate() {
            let j1 = j + 1;
            let diag = prev_m[j].max(prev_ix[j]).max(prev_iy[j]);
            cur_m[j1] = diag + scheme.matrix.score(ra, rb);
            cur_ix[j1] = (cur_m[j1 - 1] - o)
                .max(cur_ix[j1 - 1] - e)
                .max(cur_iy[j1 - 1] - o);
            cur_iy[j1] = (prev_m[j1] - o).max(prev_iy[j1] - e).max(prev_ix[j1] - o);
        }
        std::mem::swap(&mut prev_m, &mut cur_m);
        std::mem::swap(&mut prev_ix, &mut cur_ix);
        std::mem::swap(&mut prev_iy, &mut cur_iy);
    }
    (0..=m)
        .map(|j| prev_m[j].max(prev_ix[j]).max(prev_iy[j]))
        .max()
        .expect("non-empty row")
}

/// Semi-global alignment with traceback (`O(n·m)` memory).
pub fn sg_align(query: &Sequence, subject: &Sequence, scheme: &ScoringScheme) -> AlignedPair {
    let (ac, bc) = (query.codes(), subject.codes());
    let (n, m) = (ac.len(), bc.len());
    let (o, e) = (scheme.gap.open, scheme.gap.extend);
    let w = m + 1;

    if n == 0 {
        return AlignedPair {
            score: 0,
            a_range: 0..0,
            b_range: 0..0,
            ops: vec![],
        };
    }

    let mut mm = vec![NEG_INF; (n + 1) * w];
    let mut ix = vec![NEG_INF; (n + 1) * w];
    let mut iy = vec![NEG_INF; (n + 1) * w];
    let mut tb_m = vec![ST_M; (n + 1) * w];
    let mut tb_x = vec![ST_IX; (n + 1) * w];
    let mut tb_y = vec![ST_IY; (n + 1) * w];

    for j in 0..=m {
        mm[j] = 0; // free leading subject gap: start anywhere on row 0
    }
    for i in 1..=n {
        iy[i * w] = -(o + (i as i32 - 1) * e);
        tb_y[i * w] = if i == 1 { ST_M } else { ST_IY };
    }

    for i in 1..=n {
        let ra = ac[i - 1];
        for j in 1..=m {
            let c = i * w + j;
            let up = (i - 1) * w + j;
            let left = c - 1;
            let diag = up - 1;

            let (dm, dx, dy) = (mm[diag], ix[diag], iy[diag]);
            let (best_diag, from) = if dm >= dx && dm >= dy {
                (dm, ST_M)
            } else if dx >= dy {
                (dx, ST_IX)
            } else {
                (dy, ST_IY)
            };
            mm[c] = best_diag + scheme.matrix.score(ra, bc[j - 1]);
            tb_m[c] = from;

            let (xm, xx, xy) = (mm[left] - o, ix[left] - e, iy[left] - o);
            let (bx, fx) = if xm >= xx && xm >= xy {
                (xm, ST_M)
            } else if xx >= xy {
                (xx, ST_IX)
            } else {
                (xy, ST_IY)
            };
            ix[c] = bx;
            tb_x[c] = fx;

            let (ym, yy, yx) = (mm[up] - o, iy[up] - e, ix[up] - o);
            let (by, fy) = if ym >= yy && ym >= yx {
                (ym, ST_M)
            } else if yy >= yx {
                (yy, ST_IY)
            } else {
                (yx, ST_IX)
            };
            iy[c] = by;
            tb_y[c] = fy;
        }
    }

    // Best end anywhere on the last row (trailing subject is free).
    let (mut best, mut bj, mut state) = (NEG_INF, 0usize, ST_M);
    for j in 0..=m {
        let c = n * w + j;
        for (s, v) in [(ST_M, mm[c]), (ST_IX, ix[c]), (ST_IY, iy[c])] {
            if v > best {
                best = v;
                bj = j;
                state = s;
            }
        }
    }

    let mut ops = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, bj);
    while i > 0 {
        let c = i * w + j;
        match state {
            ST_M => {
                ops.push(AlnOp::Pair);
                state = tb_m[c];
                i -= 1;
                j -= 1;
            }
            ST_IX => {
                ops.push(AlnOp::GapInA);
                state = tb_x[c];
                j -= 1;
            }
            _ => {
                ops.push(AlnOp::GapInB);
                state = tb_y[c];
                i -= 1;
            }
        }
    }
    ops.reverse();

    let aln = AlignedPair {
        score: best,
        a_range: 0..n,
        b_range: j..bj,
        ops,
    };
    debug_assert!(
        aln.verify_score(query, subject, scheme),
        "semi-global traceback inconsistent with its score"
    );
    aln
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw::nw_score;
    use crate::sw::sw_score;
    use biodist_bioseq::{Alphabet, GapPenalty, ScoringMatrix};

    fn seq(text: &str) -> Sequence {
        Sequence::from_text("s", "", Alphabet::Dna, text).unwrap()
    }

    fn scheme() -> ScoringScheme {
        ScoringScheme {
            matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 2, -3),
            gap: GapPenalty::affine(4, 1),
        }
    }

    #[test]
    fn exact_embedding_scores_full_query() {
        let s = scheme();
        let query = seq("ACGTACGT");
        let subject = seq("TTTTACGTACGTTTTT");
        let aln = sg_align(&query, &subject, &s);
        assert_eq!(aln.score, 16);
        assert_eq!(aln.a_range, 0..8, "query fully covered");
        assert_eq!(aln.b_range, 4..12, "planted location found");
        assert_eq!(sg_score(&query, &subject, &s), 16);
    }

    #[test]
    fn subject_flanks_are_free_but_query_flanks_are_not() {
        let s = scheme();
        // Query with a junk prefix that cannot match: it must be paid for.
        let query = seq("CCCCACGT");
        let subject = seq("TTTTTTACGTTTTTT");
        let semi = sg_score(&query, &subject, &s);
        let local = sw_score(&query, &subject, &s);
        assert!(
            local > semi,
            "SW may trim the query prefix; semi-global may not"
        );
    }

    #[test]
    fn semi_global_at_least_global() {
        let s = scheme();
        let a = seq("ACGTTGCA");
        let b = seq("GGGACGTTGCAGGG");
        assert!(sg_score(&a, &b, &s) >= nw_score(&a, &b, &s));
    }

    #[test]
    fn equal_length_unrelated_sequences_may_go_negative() {
        let s = scheme();
        let a = seq("AAAA");
        let b = seq("CCCC");
        // Best: align all four as mismatches (or pay gaps): negative.
        assert!(
            sg_score(&a, &b, &s) < 0,
            "unlike SW, semi-global can be negative"
        );
    }

    #[test]
    fn empty_query_scores_zero() {
        let s = scheme();
        let e = Sequence::from_codes("e", Alphabet::Dna, vec![]);
        let b = seq("ACGT");
        assert_eq!(sg_score(&e, &b, &s), 0);
        assert!(sg_align(&e, &b, &s).is_empty());
    }

    #[test]
    fn empty_subject_forces_all_query_gaps() {
        let s = scheme();
        let a = seq("ACGT");
        let e = Sequence::from_codes("e", Alphabet::Dna, vec![]);
        // One affine run of length 4: -(4 + 3).
        assert_eq!(sg_score(&a, &e, &s), -7);
        let aln = sg_align(&a, &e, &s);
        assert_eq!(aln.ops, vec![AlnOp::GapInB; 4]);
        assert!(aln.verify_score(&a, &e, &s));
    }

    #[test]
    fn score_only_matches_traceback_on_random_pairs() {
        use biodist_bioseq::synth::random_sequence;
        let s = scheme();
        for seed in 0..20 {
            let a = random_sequence(Alphabet::Dna, "a", 12 + (seed as usize % 9), seed);
            let b = random_sequence(Alphabet::Dna, "b", 18, seed + 100);
            let aln = sg_align(&a, &b, &s);
            assert_eq!(aln.score, sg_score(&a, &b, &s), "seed {seed}");
            assert!(aln.verify_score(&a, &b, &s), "seed {seed}");
        }
    }

    #[test]
    fn interior_gap_in_query_is_found() {
        let s = scheme();
        // Subject contains the query with one extra residue inserted.
        let query = seq("ACGTACGT");
        let subject = seq("GGGACGTTACGTGGG");
        let aln = sg_align(&query, &subject, &s);
        // 8 matches (+16) minus one gap open (−4): 12.
        assert_eq!(aln.score, 12);
        assert!(aln.ops.contains(&AlnOp::GapInA));
    }
}
