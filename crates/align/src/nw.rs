//! Needleman–Wunsch global alignment with Gotoh's affine-gap
//! recurrences: the most sensitive (and most expensive) of DSEARCH's
//! built-in algorithms.
//!
//! Three DP states per cell: `M` (column ends in a residue pair), `Ix`
//! (ends in a gap in the first sequence, consuming a residue of the
//! second) and `Iy` (ends in a gap in the second sequence). Opening a
//! gap costs `gap.open`; extending it costs `gap.extend`.

use crate::aln::{AlignedPair, AlnOp};
use crate::NEG_INF;
use biodist_bioseq::{ScoringScheme, Sequence};

const ST_M: u8 = 0;
const ST_IX: u8 = 1;
const ST_IY: u8 = 2;

/// Global alignment score in `O(min-side)` memory (rolling rows).
///
/// Returns exactly the same score as [`nw_align`].
pub fn nw_score(a: &Sequence, b: &Sequence, scheme: &ScoringScheme) -> i32 {
    let (ac, bc) = (a.codes(), b.codes());
    let (o, e) = (scheme.gap.open, scheme.gap.extend);
    let m = bc.len();

    // Row j=0..m of the three state matrices for the current i.
    let mut mm = vec![NEG_INF; m + 1];
    let mut ix = vec![NEG_INF; m + 1];
    let mut iy = vec![NEG_INF; m + 1];
    mm[0] = 0;
    for j in 1..=m {
        ix[j] = -(o + (j as i32 - 1) * e);
    }

    let mut prev_m = mm.clone();
    let mut prev_ix = ix.clone();
    let mut prev_iy = iy.clone();

    for (i, &ra) in ac.iter().enumerate() {
        std::mem::swap(&mut prev_m, &mut mm);
        std::mem::swap(&mut prev_ix, &mut ix);
        std::mem::swap(&mut prev_iy, &mut iy);
        mm[0] = NEG_INF;
        ix[0] = NEG_INF;
        iy[0] = -(o + i as i32 * e);
        for (j, &rb) in bc.iter().enumerate() {
            let j1 = j + 1;
            let diag = prev_m[j].max(prev_ix[j]).max(prev_iy[j]);
            mm[j1] = diag + scheme.matrix.score(ra, rb);
            ix[j1] = (mm[j1 - 1] - o).max(ix[j1 - 1] - e).max(iy[j1 - 1] - o);
            iy[j1] = (prev_m[j1] - o).max(prev_iy[j1] - e).max(prev_ix[j1] - o);
        }
    }
    mm[m].max(ix[m]).max(iy[m])
}

/// Global alignment with full traceback (`O(n·m)` memory).
pub fn nw_align(a: &Sequence, b: &Sequence, scheme: &ScoringScheme) -> AlignedPair {
    let (ac, bc) = (a.codes(), b.codes());
    let (n, m) = (ac.len(), bc.len());
    let (o, e) = (scheme.gap.open, scheme.gap.extend);
    let w = m + 1;

    let mut mm = vec![NEG_INF; (n + 1) * w];
    let mut ix = vec![NEG_INF; (n + 1) * w];
    let mut iy = vec![NEG_INF; (n + 1) * w];
    // Predecessor state for each cell of each state matrix.
    let mut tb_m = vec![ST_M; (n + 1) * w];
    let mut tb_x = vec![ST_IX; (n + 1) * w];
    let mut tb_y = vec![ST_IY; (n + 1) * w];

    mm[0] = 0;
    for j in 1..=m {
        ix[j] = -(o + (j as i32 - 1) * e);
        tb_x[j] = if j == 1 { ST_M } else { ST_IX };
    }
    for i in 1..=n {
        iy[i * w] = -(o + (i as i32 - 1) * e);
        tb_y[i * w] = if i == 1 { ST_M } else { ST_IY };
    }

    for i in 1..=n {
        let ra = ac[i - 1];
        for j in 1..=m {
            let c = i * w + j;
            let up = (i - 1) * w + j;
            let left = c - 1;
            let diag = up - 1;

            let (dm, dx, dy) = (mm[diag], ix[diag], iy[diag]);
            let (best_diag, from) = if dm >= dx && dm >= dy {
                (dm, ST_M)
            } else if dx >= dy {
                (dx, ST_IX)
            } else {
                (dy, ST_IY)
            };
            mm[c] = best_diag + scheme.matrix.score(ra, bc[j - 1]);
            tb_m[c] = from;

            let (xm, xx, xy) = (mm[left] - o, ix[left] - e, iy[left] - o);
            let (best_x, from_x) = if xm >= xx && xm >= xy {
                (xm, ST_M)
            } else if xx >= xy {
                (xx, ST_IX)
            } else {
                (xy, ST_IY)
            };
            ix[c] = best_x;
            tb_x[c] = from_x;

            let (ym, yy, yx) = (mm[up] - o, iy[up] - e, ix[up] - o);
            let (best_y, from_y) = if ym >= yy && ym >= yx {
                (ym, ST_M)
            } else if yy >= yx {
                (yy, ST_IY)
            } else {
                (yx, ST_IX)
            };
            iy[c] = best_y;
            tb_y[c] = from_y;
        }
    }

    let end = n * w + m;
    let (score, mut state) = {
        let (sm, sx, sy) = (mm[end], ix[end], iy[end]);
        if sm >= sx && sm >= sy {
            (sm, ST_M)
        } else if sx >= sy {
            (sx, ST_IX)
        } else {
            (sy, ST_IY)
        }
    };

    let mut ops = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let c = i * w + j;
        match state {
            ST_M => {
                ops.push(AlnOp::Pair);
                state = tb_m[c];
                i -= 1;
                j -= 1;
            }
            ST_IX => {
                ops.push(AlnOp::GapInA);
                state = tb_x[c];
                j -= 1;
            }
            _ => {
                ops.push(AlnOp::GapInB);
                state = tb_y[c];
                i -= 1;
            }
        }
    }
    ops.reverse();

    let aln = AlignedPair {
        score,
        a_range: 0..n,
        b_range: 0..m,
        ops,
    };
    debug_assert!(
        aln.verify_score(a, b, scheme),
        "NW traceback inconsistent with its score"
    );
    aln
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_bioseq::{Alphabet, GapPenalty, ScoringMatrix};

    fn seq(text: &str) -> Sequence {
        Sequence::from_text("s", "", Alphabet::Dna, text).unwrap()
    }

    fn simple_scheme() -> ScoringScheme {
        // match +1, mismatch -1, linear gap -2: hand-checkable.
        ScoringScheme {
            matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 1, -1),
            gap: GapPenalty::linear(2),
        }
    }

    #[test]
    fn identical_sequences_score_full_matches() {
        let a = seq("ACGTACGT");
        let scheme = simple_scheme();
        assert_eq!(nw_score(&a, &a, &scheme), 8);
        let aln = nw_align(&a, &a, &scheme);
        assert_eq!(aln.score, 8);
        assert_eq!(aln.ops, vec![AlnOp::Pair; 8]);
        assert!((aln.identity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_example_with_one_gap() {
        // ACGT vs ACT: best is 3 matches + 1 gap = 3*1 - 2 = 1.
        let scheme = simple_scheme();
        let (a, b) = (seq("ACGT"), seq("ACT"));
        assert_eq!(nw_score(&a, &b, &scheme), 1);
        let aln = nw_align(&a, &b, &scheme);
        assert_eq!(aln.score, 1);
        assert!(aln.verify_score(&a, &b, &scheme));
        assert_eq!(aln.ops.iter().filter(|&&op| op == AlnOp::GapInB).count(), 1);
    }

    #[test]
    fn empty_against_nonempty_is_all_gaps() {
        let scheme = ScoringScheme::dna_default(); // gap 10/1
        let (a, b) = (
            seq("ACGT"),
            Sequence::from_codes("e", Alphabet::Dna, vec![]),
        );
        // One gap run of length 4: -(10 + 3).
        assert_eq!(nw_score(&a, &b, &scheme), -13);
        let aln = nw_align(&a, &b, &scheme);
        assert_eq!(aln.score, -13);
        assert_eq!(aln.ops, vec![AlnOp::GapInB; 4]);
        assert!(aln.verify_score(&a, &b, &scheme));
    }

    #[test]
    fn both_empty_scores_zero() {
        let scheme = simple_scheme();
        let e = Sequence::from_codes("e", Alphabet::Dna, vec![]);
        assert_eq!(nw_score(&e, &e, &scheme), 0);
        assert!(nw_align(&e, &e, &scheme).is_empty());
    }

    #[test]
    fn affine_gaps_prefer_one_long_gap() {
        // With affine costs a single length-2 gap beats two single gaps.
        let scheme = ScoringScheme {
            matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 2, -3),
            gap: GapPenalty::affine(4, 1),
        };
        let a = seq("AACCGG");
        let b = seq("AAGG");
        let aln = nw_align(&a, &b, &scheme);
        // 4 matches - (4+1) for a single CC gap = 8 - 5 = 3.
        assert_eq!(aln.score, 3);
        assert!(aln.verify_score(&a, &b, &scheme));
        // The two gap columns must be adjacent (one run).
        let gap_positions: Vec<usize> = aln
            .ops
            .iter()
            .enumerate()
            .filter(|(_, &op)| op == AlnOp::GapInB)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(gap_positions.len(), 2);
        assert_eq!(gap_positions[1], gap_positions[0] + 1);
    }

    #[test]
    fn score_only_matches_full_alignment_on_protein() {
        let scheme = ScoringScheme::protein_default();
        let a = Sequence::from_text("a", "", Alphabet::Protein, "MKVLAWGRRKHG").unwrap();
        let b = Sequence::from_text("b", "", Alphabet::Protein, "MKVAWGRKHAG").unwrap();
        let aln = nw_align(&a, &b, &scheme);
        assert_eq!(nw_score(&a, &b, &scheme), aln.score);
        assert!(aln.verify_score(&a, &b, &scheme));
    }

    #[test]
    fn score_is_symmetric_for_symmetric_matrix() {
        let scheme = ScoringScheme::dna_default();
        let a = seq("ACGTTGCAACGT");
        let b = seq("AGTTGAACG");
        assert_eq!(nw_score(&a, &b, &scheme), nw_score(&b, &a, &scheme));
    }
}
