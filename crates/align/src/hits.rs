//! Bounded top-K hit collection.
//!
//! Each DSEARCH work unit returns the best hits of one database chunk;
//! the server's `DataManager` merges them into a global top-K list.
//! [`TopK`] is the collector both sides use: a bounded min-heap with a
//! deterministic total order (score desc, then database id asc) so the
//! distributed search reports *exactly* the same hit list as the
//! sequential reference regardless of chunk boundaries or arrival order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One database hit for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Query sequence id.
    pub query_id: String,
    /// Database sequence id.
    pub db_id: String,
    /// Alignment score.
    pub score: i32,
}

impl Hit {
    /// Deterministic ranking: higher score first, ties by db id, then
    /// query id (ids are unique within a database / query set).
    fn rank_cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .cmp(&self.score)
            .then_with(|| self.db_id.cmp(&other.db_id))
            .then_with(|| self.query_id.cmp(&other.query_id))
    }
}

// Wrapper so the BinaryHeap (a max-heap) acts as a min-heap over rank:
// the heap root is the *worst* retained hit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Worst(Hit);

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse of rank order: "greater" means "worse".
        other.0.rank_cmp(&self.0).reverse()
    }
}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded collector retaining the best `k` hits seen so far.
///
/// ```
/// use biodist_align::{Hit, TopK};
/// let mut top = TopK::new(2);
/// for (id, score) in [("a", 5), ("b", 9), ("c", 7)] {
///     top.offer(Hit { query_id: "q".into(), db_id: id.into(), score });
/// }
/// let best: Vec<i32> = top.into_sorted().iter().map(|h| h.score).collect();
/// assert_eq!(best, vec![9, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Worst>,
}

impl TopK {
    /// Creates a collector retaining at most `k` hits (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "TopK: k must be at least 1");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of currently retained hits.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no hits are retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers a hit; it is retained if it ranks within the best `k`.
    pub fn offer(&mut self, hit: Hit) {
        if self.heap.len() < self.k {
            self.heap.push(Worst(hit));
            return;
        }
        let worst = self.heap.peek().expect("heap non-empty at capacity");
        if hit.rank_cmp(&worst.0) == Ordering::Less {
            self.heap.pop();
            self.heap.push(Worst(hit));
        }
    }

    /// Merges all hits retained by `other` into `self`.
    pub fn merge(&mut self, other: TopK) {
        for Worst(hit) in other.heap.into_vec() {
            self.offer(hit);
        }
    }

    /// The lowest score that would currently be retained, or `None`
    /// while below capacity. Work units use this as a prune threshold.
    pub fn cutoff(&self) -> Option<i32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|w| w.0.score)
        }
    }

    /// Consumes the collector, returning hits best-first.
    pub fn into_sorted(self) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self.heap.into_vec().into_iter().map(|w| w.0).collect();
        hits.sort_by(|a, b| a.rank_cmp(b));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(db: &str, score: i32) -> Hit {
        Hit {
            query_id: "q".into(),
            db_id: db.into(),
            score,
        }
    }

    #[test]
    fn retains_best_k_in_order() {
        let mut top = TopK::new(3);
        for (db, s) in [("a", 5), ("b", 9), ("c", 1), ("d", 7), ("e", 3)] {
            top.offer(hit(db, s));
        }
        let sorted = top.into_sorted();
        assert_eq!(
            sorted
                .iter()
                .map(|h| (h.db_id.as_str(), h.score))
                .collect::<Vec<_>>(),
            vec![("b", 9), ("d", 7), ("a", 5)]
        );
    }

    #[test]
    fn ties_break_deterministically_by_db_id() {
        let mut top = TopK::new(2);
        top.offer(hit("z", 5));
        top.offer(hit("a", 5));
        top.offer(hit("m", 5));
        let sorted = top.into_sorted();
        assert_eq!(
            sorted.iter().map(|h| h.db_id.as_str()).collect::<Vec<_>>(),
            vec!["a", "m"],
            "lexicographically smaller ids win ties"
        );
    }

    #[test]
    fn merge_equals_offering_everything_to_one_collector() {
        let hits: Vec<Hit> = (0..50)
            .map(|i| hit(&format!("db{i:02}"), i * 37 % 23))
            .collect();
        let mut whole = TopK::new(10);
        for h in &hits {
            whole.offer(h.clone());
        }
        let mut left = TopK::new(10);
        let mut right = TopK::new(10);
        for (i, h) in hits.iter().enumerate() {
            if i % 2 == 0 {
                left.offer(h.clone());
            } else {
                right.offer(h.clone());
            }
        }
        left.merge(right);
        assert_eq!(left.into_sorted(), whole.into_sorted());
    }

    #[test]
    fn merge_is_order_independent() {
        let hits: Vec<Hit> = (0..30).map(|i| hit(&format!("d{i}"), i % 7)).collect();
        let collect = |order: &[usize]| {
            let mut t = TopK::new(5);
            for &i in order {
                t.offer(hits[i].clone());
            }
            t.into_sorted()
        };
        let forward: Vec<usize> = (0..30).collect();
        let backward: Vec<usize> = (0..30).rev().collect();
        assert_eq!(collect(&forward), collect(&backward));
    }

    #[test]
    fn cutoff_appears_once_full() {
        let mut top = TopK::new(2);
        assert_eq!(top.cutoff(), None);
        top.offer(hit("a", 10));
        assert_eq!(top.cutoff(), None);
        top.offer(hit("b", 4));
        assert_eq!(top.cutoff(), Some(4));
        top.offer(hit("c", 8));
        assert_eq!(top.cutoff(), Some(8));
    }

    #[test]
    fn below_capacity_keeps_everything() {
        let mut top = TopK::new(100);
        for i in 0..5 {
            top.offer(hit(&format!("d{i}"), i));
        }
        assert_eq!(top.len(), 5);
        assert!(!top.is_empty());
        assert_eq!(top.capacity(), 100);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_capacity_is_rejected() {
        TopK::new(0);
    }
}
