//! Alignment representation: edit operations, rendering, and statistics.

use biodist_bioseq::{ScoringScheme, Sequence};

/// One column of a pairwise alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlnOp {
    /// Residue from both sequences (may be identical or a substitution).
    Pair,
    /// Residue from the first sequence aligned to a gap in the second.
    GapInB,
    /// Residue from the second sequence aligned to a gap in the first.
    GapInA,
}

/// A scored pairwise alignment of two sequences (or sub-sequences).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedPair {
    /// Alignment score under the scheme used to produce it.
    pub score: i32,
    /// Half-open range of the first sequence covered by the alignment.
    pub a_range: std::ops::Range<usize>,
    /// Half-open range of the second sequence covered by the alignment.
    pub b_range: std::ops::Range<usize>,
    /// Alignment columns, in order.
    pub ops: Vec<AlnOp>,
}

impl AlignedPair {
    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the alignment is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Counts (identical pairs, substituted pairs, gap columns) against
    /// the two sequences the alignment was computed from.
    pub fn column_counts(&self, a: &Sequence, b: &Sequence) -> (usize, usize, usize) {
        let (mut ident, mut subst, mut gaps) = (0, 0, 0);
        let (mut i, mut j) = (self.a_range.start, self.b_range.start);
        for op in &self.ops {
            match op {
                AlnOp::Pair => {
                    if a.codes()[i] == b.codes()[j] {
                        ident += 1;
                    } else {
                        subst += 1;
                    }
                    i += 1;
                    j += 1;
                }
                AlnOp::GapInB => {
                    gaps += 1;
                    i += 1;
                }
                AlnOp::GapInA => {
                    gaps += 1;
                    j += 1;
                }
            }
        }
        (ident, subst, gaps)
    }

    /// Fraction of columns that are identical residue pairs.
    pub fn identity(&self, a: &Sequence, b: &Sequence) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        let (ident, _, _) = self.column_counts(a, b);
        ident as f64 / self.ops.len() as f64
    }

    /// Recomputes the score of this alignment from first principles and
    /// checks it equals [`AlignedPair::score`]. Used by tests and debug
    /// assertions to validate tracebacks.
    pub fn verify_score(&self, a: &Sequence, b: &Sequence, scheme: &ScoringScheme) -> bool {
        let mut total: i64 = 0;
        let (mut i, mut j) = (self.a_range.start, self.b_range.start);
        let mut run: Option<(AlnOp, usize)> = None;
        let flush = |run: &mut Option<(AlnOp, usize)>, total: &mut i64| {
            if let Some((_, len)) = run.take() {
                *total -= scheme.gap.cost(len);
            }
        };
        for &op in &self.ops {
            match op {
                AlnOp::Pair => {
                    flush(&mut run, &mut total);
                    total += scheme.matrix.score(a.codes()[i], b.codes()[j]) as i64;
                    i += 1;
                    j += 1;
                }
                gap @ (AlnOp::GapInA | AlnOp::GapInB) => {
                    match &mut run {
                        Some((kind, len)) if *kind == gap => *len += 1,
                        _ => {
                            flush(&mut run, &mut total);
                            run = Some((gap, 1));
                        }
                    }
                    if gap == AlnOp::GapInB {
                        i += 1;
                    } else {
                        j += 1;
                    }
                }
            }
        }
        flush(&mut run, &mut total);
        i == self.a_range.end && j == self.b_range.end && total == self.score as i64
    }

    /// Renders the classic three-line alignment view (sequence A, a
    /// match line with `|` for identities, sequence B).
    pub fn render(&self, a: &Sequence, b: &Sequence) -> String {
        let mut top = String::new();
        let mut mid = String::new();
        let mut bot = String::new();
        let (mut i, mut j) = (self.a_range.start, self.b_range.start);
        for op in &self.ops {
            match op {
                AlnOp::Pair => {
                    let (ca, cb) = (a.codes()[i], b.codes()[j]);
                    top.push(a.alphabet.decode(ca) as char);
                    mid.push(if ca == cb { '|' } else { ' ' });
                    bot.push(b.alphabet.decode(cb) as char);
                    i += 1;
                    j += 1;
                }
                AlnOp::GapInB => {
                    top.push(a.alphabet.decode(a.codes()[i]) as char);
                    mid.push(' ');
                    bot.push('-');
                    i += 1;
                }
                AlnOp::GapInA => {
                    top.push('-');
                    mid.push(' ');
                    bot.push(b.alphabet.decode(b.codes()[j]) as char);
                    j += 1;
                }
            }
        }
        format!("{top}\n{mid}\n{bot}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_bioseq::Alphabet;

    fn seq(text: &str) -> Sequence {
        Sequence::from_text("s", "", Alphabet::Dna, text).unwrap()
    }

    #[test]
    fn column_counts_and_identity() {
        // A C G T      vs  A C - T with one gap and full identity elsewhere.
        let a = seq("ACGT");
        let b = seq("ACT");
        let aln = AlignedPair {
            score: 0,
            a_range: 0..4,
            b_range: 0..3,
            ops: vec![AlnOp::Pair, AlnOp::Pair, AlnOp::GapInB, AlnOp::Pair],
        };
        let (ident, subst, gaps) = aln.column_counts(&a, &b);
        assert_eq!((ident, subst, gaps), (3, 0, 1));
        assert!((aln.identity(&a, &b) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn verify_score_accepts_correct_affine_total() {
        let a = seq("ACGT");
        let b = seq("ACT");
        let scheme = ScoringScheme::dna_default(); // +5/-4, gap 10/1
        let aln = AlignedPair {
            score: 5, // three +5 matches, one −10 gap open
            a_range: 0..4,
            b_range: 0..3,
            ops: vec![AlnOp::Pair, AlnOp::Pair, AlnOp::GapInB, AlnOp::Pair],
        };
        assert!(aln.verify_score(&a, &b, &scheme));
    }

    #[test]
    fn verify_score_rejects_wrong_total_or_ranges() {
        let a = seq("ACGT");
        let b = seq("ACT");
        let scheme = ScoringScheme::dna_default();
        let mut aln = AlignedPair {
            score: 99,
            a_range: 0..4,
            b_range: 0..3,
            ops: vec![AlnOp::Pair, AlnOp::Pair, AlnOp::GapInB, AlnOp::Pair],
        };
        assert!(!aln.verify_score(&a, &b, &scheme));
        aln.score = 5;
        aln.a_range = 0..3; // inconsistent with ops
        assert!(!aln.verify_score(&a, &b, &scheme));
    }

    #[test]
    fn verify_score_charges_gap_runs_affinely() {
        let a = seq("AAAA");
        let b = seq("A");
        let scheme = ScoringScheme::dna_default();
        // One pair + a single 3-long gap run: 5 - (10 + 1 + 1) = -7.
        let aln = AlignedPair {
            score: -7,
            a_range: 0..4,
            b_range: 0..1,
            ops: vec![AlnOp::Pair, AlnOp::GapInB, AlnOp::GapInB, AlnOp::GapInB],
        };
        assert!(aln.verify_score(&a, &b, &scheme));
    }

    #[test]
    fn render_shows_gaps_and_matches() {
        let a = seq("ACGT");
        let b = seq("ACT");
        let aln = AlignedPair {
            score: 0,
            a_range: 0..4,
            b_range: 0..3,
            ops: vec![AlnOp::Pair, AlnOp::Pair, AlnOp::GapInB, AlnOp::Pair],
        };
        assert_eq!(aln.render(&a, &b), "ACGT\n|| |\nAC-T\n");
    }
}
