//! Smith–Waterman local alignment (affine gaps), the default DSEARCH
//! kernel, plus an anti-diagonal score-only evaluation that serves as
//! the "fast rigorous kernel" configuration option (DESIGN.md's
//! substitute for the Crochemore et al. subquadratic algorithm).

use crate::aln::{AlignedPair, AlnOp};
use crate::NEG_INF;
use biodist_bioseq::{ScoringScheme, Sequence};

const ST_M: u8 = 0;
const ST_IX: u8 = 1;
const ST_IY: u8 = 2;
const ST_START: u8 = 3;

/// Local alignment score in `O(m)` memory (rolling rows).
///
/// The score is always ≥ 0 (the empty alignment is admissible).
pub fn sw_score(a: &Sequence, b: &Sequence, scheme: &ScoringScheme) -> i32 {
    let (ac, bc) = (a.codes(), b.codes());
    let (o, e) = (scheme.gap.open, scheme.gap.extend);
    let m = bc.len();

    let mut prev_m = vec![0i32; m + 1];
    let mut prev_ix = vec![NEG_INF; m + 1];
    let mut prev_iy = vec![NEG_INF; m + 1];
    let mut cur_m = vec![0i32; m + 1];
    let mut cur_ix = vec![NEG_INF; m + 1];
    let mut cur_iy = vec![NEG_INF; m + 1];
    let mut best = 0;

    for &ra in ac {
        cur_m[0] = 0;
        cur_ix[0] = NEG_INF;
        cur_iy[0] = NEG_INF;
        for (j, &rb) in bc.iter().enumerate() {
            let j1 = j + 1;
            let diag = prev_m[j].max(prev_ix[j]).max(prev_iy[j]).max(0);
            let mv = (diag + scheme.matrix.score(ra, rb)).max(0);
            cur_m[j1] = mv;
            cur_ix[j1] = (cur_m[j1 - 1] - o)
                .max(cur_ix[j1 - 1] - e)
                .max(cur_iy[j1 - 1] - o);
            cur_iy[j1] = (prev_m[j1] - o).max(prev_iy[j1] - e).max(prev_ix[j1] - o);
            best = best.max(mv);
        }
        std::mem::swap(&mut prev_m, &mut cur_m);
        std::mem::swap(&mut prev_ix, &mut cur_ix);
        std::mem::swap(&mut prev_iy, &mut cur_iy);
    }
    best
}

/// Local alignment with full traceback (`O(n·m)` memory).
///
/// Returns the best-scoring local alignment; ties broken toward the
/// smallest end coordinates (row-major scan order).
///
/// ```
/// use biodist_align::sw_align;
/// use biodist_bioseq::{Alphabet, ScoringScheme, Sequence};
/// let a = Sequence::from_text("a", "", Alphabet::Dna, "TTTACGTACGTTT").unwrap();
/// let b = Sequence::from_text("b", "", Alphabet::Dna, "ACGTACG").unwrap();
/// let aln = sw_align(&a, &b, &ScoringScheme::dna_default());
/// assert_eq!(aln.a_range, 3..10);
/// assert_eq!(aln.score, 35); // 7 matches at +5
/// ```
pub fn sw_align(a: &Sequence, b: &Sequence, scheme: &ScoringScheme) -> AlignedPair {
    let (ac, bc) = (a.codes(), b.codes());
    let (n, m) = (ac.len(), bc.len());
    let (o, e) = (scheme.gap.open, scheme.gap.extend);
    let w = m + 1;

    let mut mm = vec![0i32; (n + 1) * w];
    let mut ix = vec![NEG_INF; (n + 1) * w];
    let mut iy = vec![NEG_INF; (n + 1) * w];
    let mut tb_m = vec![ST_START; (n + 1) * w];
    let mut tb_x = vec![ST_IX; (n + 1) * w];
    let mut tb_y = vec![ST_IY; (n + 1) * w];

    let mut best = 0i32;
    let mut best_cell = (0usize, 0usize);

    for i in 1..=n {
        let ra = ac[i - 1];
        for j in 1..=m {
            let c = i * w + j;
            let up = (i - 1) * w + j;
            let left = c - 1;
            let diag = up - 1;

            let (dm, dx, dy) = (mm[diag], ix[diag], iy[diag]);
            let (best_diag, from) = if dm >= dx && dm >= dy {
                (dm, ST_M)
            } else if dx >= dy {
                (dx, ST_IX)
            } else {
                (dy, ST_IY)
            };
            // Extending a non-positive prefix is never better than
            // starting a fresh local alignment at this residue pair.
            let (base, from) = if best_diag > 0 {
                (best_diag, from)
            } else {
                (0, ST_START)
            };
            let cand = base + scheme.matrix.score(ra, bc[j - 1]);
            if cand > 0 {
                mm[c] = cand;
                tb_m[c] = from;
            } else {
                mm[c] = 0;
                tb_m[c] = ST_START;
            }

            let (xm, xx, xy) = (mm[left] - o, ix[left] - e, iy[left] - o);
            let (bx, fx) = if xm >= xx && xm >= xy {
                (xm, ST_M)
            } else if xx >= xy {
                (xx, ST_IX)
            } else {
                (xy, ST_IY)
            };
            ix[c] = bx;
            tb_x[c] = fx;

            let (ym, yy, yx) = (mm[up] - o, iy[up] - e, ix[up] - o);
            let (by, fy) = if ym >= yy && ym >= yx {
                (ym, ST_M)
            } else if yy >= yx {
                (yy, ST_IY)
            } else {
                (yx, ST_IX)
            };
            iy[c] = by;
            tb_y[c] = fy;

            if mm[c] > best {
                best = mm[c];
                best_cell = (i, j);
            }
        }
    }

    if best == 0 {
        return AlignedPair {
            score: 0,
            a_range: 0..0,
            b_range: 0..0,
            ops: vec![],
        };
    }

    // Local alignments end in state M (a gap column can never be the
    // last column of an optimal local alignment: dropping it only
    // increases the score).
    let (mut i, mut j) = best_cell;
    let mut state = ST_M;
    let mut ops = Vec::new();
    loop {
        let c = i * w + j;
        match state {
            ST_M => {
                let from = tb_m[c];
                ops.push(AlnOp::Pair);
                i -= 1;
                j -= 1;
                if from == ST_START {
                    break;
                }
                state = from;
            }
            ST_IX => {
                ops.push(AlnOp::GapInA);
                state = tb_x[c];
                j -= 1;
            }
            _ => {
                ops.push(AlnOp::GapInB);
                state = tb_y[c];
                i -= 1;
            }
        }
    }
    ops.reverse();

    let aln = AlignedPair {
        score: best,
        a_range: i..best_cell.0,
        b_range: j..best_cell.1,
        ops,
    };
    debug_assert!(
        aln.verify_score(a, b, scheme),
        "SW traceback inconsistent with its score"
    );
    aln
}

/// Anti-diagonal (wavefront) evaluation of the Smith–Waterman score.
///
/// Processes cells in order of `i + j`, so all cells on one
/// anti-diagonal are mutually independent — the memory-access pattern
/// that SIMD and systolic implementations exploit, and our stand-in for
/// the paper's third "fast" kernel \[4\]. Produces exactly the same
/// score as [`sw_score`].
pub fn sw_score_antidiagonal(a: &Sequence, b: &Sequence, scheme: &ScoringScheme) -> i32 {
    let (ac, bc) = (a.codes(), b.codes());
    let (n, m) = (ac.len(), bc.len());
    if n == 0 || m == 0 {
        return 0;
    }
    let (o, e) = (scheme.gap.open, scheme.gap.extend);

    // Three anti-diagonals of each state, indexed by i (row). Diagonal d
    // holds cells (i, d - i).
    let len = n + 1;
    let mut m_prev2 = vec![0i32; len];
    let mut m_prev = vec![0i32; len];
    let mut m_cur = vec![0i32; len];
    let mut x_prev = vec![NEG_INF; len];
    let mut x_cur = vec![NEG_INF; len];
    let mut y_prev = vec![NEG_INF; len];
    let mut y_cur = vec![NEG_INF; len];

    let mut best = 0i32;
    for d in 2..=(n + m) {
        let i_lo = 1.max(d.saturating_sub(m));
        let i_hi = n.min(d - 1);
        for slot in m_cur.iter_mut() {
            *slot = 0;
        }
        for slot in x_cur.iter_mut() {
            *slot = NEG_INF;
        }
        for slot in y_cur.iter_mut() {
            *slot = NEG_INF;
        }
        for i in i_lo..=i_hi {
            let j = d - i;
            // (i-1, j-1) lives on diagonal d-2 at row i-1.
            let diag = m_prev2[i - 1];
            let s = scheme.matrix.score(ac[i - 1], bc[j - 1]);
            let mv = (diag + s).max(0);
            m_cur[i] = mv;
            // (i, j-1) lives on diagonal d-1 at row i.
            x_cur[i] = (m_prev[i] - o).max(x_prev[i] - e).max(y_prev[i] - o);
            // (i-1, j) lives on diagonal d-1 at row i-1.
            y_cur[i] = (m_prev[i - 1] - o)
                .max(y_prev[i - 1] - e)
                .max(x_prev[i - 1] - o);
            best = best.max(mv);
        }
        // For the *next* diagonal, the diagonal predecessor of M must be
        // the three-state maximum at (i-1, j-1), so fold Ix/Iy into the
        // values we retire to `m_prev2`.
        for i in 0..len {
            m_prev2[i] = m_prev[i].max(x_prev[i]).max(y_prev[i]).max(0);
        }
        std::mem::swap(&mut m_prev, &mut m_cur);
        std::mem::swap(&mut x_prev, &mut x_cur);
        std::mem::swap(&mut y_prev, &mut y_cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_bioseq::{Alphabet, GapPenalty, ScoringMatrix};

    fn seq(text: &str) -> Sequence {
        Sequence::from_text("s", "", Alphabet::Dna, text).unwrap()
    }

    fn simple_scheme() -> ScoringScheme {
        ScoringScheme {
            matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 2, -3),
            gap: GapPenalty::affine(4, 1),
        }
    }

    #[test]
    fn finds_embedded_exact_match() {
        let scheme = simple_scheme();
        let a = seq("TTTTACGTACGTTTT");
        let b = seq("ACGTACGT");
        let aln = sw_align(&a, &b, &scheme);
        assert_eq!(aln.score, 16, "8 matches at +2");
        assert_eq!(aln.a_range, 4..12);
        assert_eq!(aln.b_range, 0..8);
        assert_eq!(sw_score(&a, &b, &scheme), 16);
        assert_eq!(sw_score_antidiagonal(&a, &b, &scheme), 16);
    }

    #[test]
    fn unrelated_sequences_score_low_but_nonnegative() {
        let scheme = simple_scheme();
        let a = seq("AAAAAAAA");
        let b = seq("CCCCCCCC");
        assert_eq!(sw_score(&a, &b, &scheme), 0);
        let aln = sw_align(&a, &b, &scheme);
        assert_eq!(aln.score, 0);
        assert!(aln.is_empty());
    }

    #[test]
    fn local_alignment_trims_poor_flanks() {
        let scheme = simple_scheme();
        // Matching core GGGG with mismatching flanks that global alignment
        // would be forced to include.
        let a = seq("TTGGGGTT");
        let b = seq("AAGGGGAA");
        let aln = sw_align(&a, &b, &scheme);
        assert_eq!(aln.score, 8);
        assert_eq!(aln.a_range, 2..6);
        assert_eq!(aln.b_range, 2..6);
        assert!(aln.verify_score(&a, &b, &scheme));
    }

    #[test]
    fn gap_in_local_alignment_when_profitable() {
        let scheme = ScoringScheme {
            matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 3, -4),
            gap: GapPenalty::affine(4, 1),
        };
        // b is a with one residue deleted; bridging the gap (cost 4) keeps
        // six more matches (+18), so the gapped alignment wins.
        let a = seq("ACGTCCTGCA");
        let b = seq("ACGTCTGCA");
        let aln = sw_align(&a, &b, &scheme);
        assert_eq!(aln.score, 9 * 3 - 4);
        assert!(aln.ops.contains(&AlnOp::GapInB));
        assert!(aln.verify_score(&a, &b, &scheme));
    }

    #[test]
    fn score_only_variants_agree_with_traceback() {
        let scheme = ScoringScheme::protein_default();
        let a = Sequence::from_text("a", "", Alphabet::Protein, "MKWVLLLNAGRSKW").unwrap();
        let b = Sequence::from_text("b", "", Alphabet::Protein, "GGMKWVLNAGRSKWPP").unwrap();
        let aln = sw_align(&a, &b, &scheme);
        assert_eq!(sw_score(&a, &b, &scheme), aln.score);
        assert_eq!(sw_score_antidiagonal(&a, &b, &scheme), aln.score);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        let scheme = simple_scheme();
        let e = Sequence::from_codes("e", Alphabet::Dna, vec![]);
        let a = seq("ACGT");
        assert_eq!(sw_score(&e, &a, &scheme), 0);
        assert_eq!(sw_score(&a, &e, &scheme), 0);
        assert_eq!(sw_score_antidiagonal(&e, &a, &scheme), 0);
        assert_eq!(sw_align(&e, &e, &scheme).score, 0);
    }

    #[test]
    fn local_score_at_least_global_score() {
        let scheme = ScoringScheme::dna_default();
        let a = seq("ACGTTGCA");
        let b = seq("TTGC");
        assert!(sw_score(&a, &b, &scheme) >= crate::nw::nw_score(&a, &b, &scheme));
    }
}
