//! Kernel selection: the "choose one of the built-in search algorithms"
//! configuration knob of DSEARCH (paper §3.1).

use crate::banded::nw_banded_score;
use crate::nw::nw_score;
use crate::profile::QueryProfile;
use crate::sg::sg_score;
use crate::striped::{sw_score_striped, sw_score_striped_profiled};
use crate::sw::{sw_score, sw_score_antidiagonal};
use biodist_bioseq::{ScoringScheme, Sequence};

/// The built-in search algorithms a DSEARCH configuration can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Needleman–Wunsch global alignment \[10\].
    NeedlemanWunsch,
    /// Smith–Waterman local alignment \[14\] (the default).
    SmithWaterman,
    /// Anti-diagonal score-only Smith–Waterman — the fast rigorous
    /// kernel standing in for Crochemore et al. \[4\].
    FastLocal,
    /// Striped SIMD Smith–Waterman (Farrar 2007): query-profiled `i16`
    /// lanes with an exact `i32` saturation fallback. Scores equal
    /// [`KernelKind::SmithWaterman`] bit for bit.
    Striped,
    /// Semi-global: the whole query against a substring of the subject.
    SemiGlobal,
    /// Banded Needleman–Wunsch with the given half-band width.
    Banded {
        /// Half-width of the DP band.
        band: u32,
    },
}

impl KernelKind {
    /// Parses the configuration-file spelling of a kernel name.
    ///
    /// Accepted values: `needleman-wunsch` | `nw`, `smith-waterman` |
    /// `sw`, `fast` | `fast-local`, `striped` | `simd`,
    /// `banded:<width>`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let t = text.trim().to_ascii_lowercase();
        match t.as_str() {
            "needleman-wunsch" | "nw" | "global" => Ok(Self::NeedlemanWunsch),
            "smith-waterman" | "sw" | "local" => Ok(Self::SmithWaterman),
            "fast" | "fast-local" | "antidiagonal" => Ok(Self::FastLocal),
            "striped" | "simd" | "sw-striped" => Ok(Self::Striped),
            "semiglobal" | "sg" | "glocal" => Ok(Self::SemiGlobal),
            _ => {
                if let Some(width) = t.strip_prefix("banded:") {
                    let band: u32 = width
                        .parse()
                        .map_err(|_| format!("bad band width `{width}`"))?;
                    Ok(Self::Banded { band })
                } else {
                    Err(format!("unknown search algorithm `{text}`"))
                }
            }
        }
    }

    /// The configuration-file spelling of this kernel.
    pub fn name(self) -> String {
        match self {
            Self::NeedlemanWunsch => "needleman-wunsch".into(),
            Self::SmithWaterman => "smith-waterman".into(),
            Self::FastLocal => "fast-local".into(),
            Self::Striped => "striped".into(),
            Self::SemiGlobal => "semiglobal".into(),
            Self::Banded { band } => format!("banded:{band}"),
        }
    }
}

/// A scoring kernel bound to a scheme, ready to score query/subject pairs.
#[derive(Debug, Clone)]
pub struct AlignKernel {
    kind: KernelKind,
    scheme: ScoringScheme,
}

impl AlignKernel {
    /// Binds a kernel kind to a scoring scheme.
    pub fn new(kind: KernelKind, scheme: ScoringScheme) -> Self {
        Self { kind, scheme }
    }

    /// Which algorithm this kernel runs.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// The scheme in use.
    pub fn scheme(&self) -> &ScoringScheme {
        &self.scheme
    }

    /// Scores one query/subject pair.
    ///
    /// Banded alignments that cannot connect the corners under their
    /// band (length difference exceeds the band) score `i32::MIN`, which
    /// ranks them below every real alignment.
    pub fn score(&self, query: &Sequence, subject: &Sequence) -> i32 {
        match self.kind {
            KernelKind::NeedlemanWunsch => nw_score(query, subject, &self.scheme),
            KernelKind::SmithWaterman => sw_score(query, subject, &self.scheme),
            KernelKind::FastLocal => sw_score_antidiagonal(query, subject, &self.scheme),
            KernelKind::Striped => sw_score_striped(query, subject, &self.scheme),
            KernelKind::SemiGlobal => sg_score(query, subject, &self.scheme),
            KernelKind::Banded { band } => {
                nw_banded_score(query, subject, &self.scheme, band as usize).unwrap_or(i32::MIN)
            }
        }
    }

    /// Precomputes whatever per-query state this kernel can reuse across
    /// many subjects. For [`KernelKind::Striped`] that is the query
    /// profile — the dominant per-pair setup cost, built once per
    /// DSEARCH work-unit chunk instead of once per pair. For every other
    /// kernel this is free.
    pub fn prepare(&self, query: &Sequence) -> PreparedQuery {
        let profile = match self.kind {
            KernelKind::Striped => Some(QueryProfile::build(query, &self.scheme.matrix)),
            _ => None,
        };
        PreparedQuery { profile }
    }

    /// Scores one pair using state prepared by [`AlignKernel::prepare`]
    /// for the same query. Always returns exactly
    /// [`AlignKernel::score`]`(query, subject)`.
    pub fn score_prepared(
        &self,
        query: &Sequence,
        prepared: &PreparedQuery,
        subject: &Sequence,
    ) -> i32 {
        match (&self.kind, &prepared.profile) {
            (KernelKind::Striped, Some(profile)) => {
                sw_score_striped_profiled(profile, subject, &self.scheme.gap)
            }
            _ => self.score(query, subject),
        }
    }

    /// Abstract cost of this pair in scalar-Smith–Waterman-equivalent
    /// DP cells — the unit the scheduler and the simulator budget in.
    ///
    /// Cost is `cells(n, m) × cost-per-cell ratio`, with the ratios
    /// calibrated against measured throughput (`abl_kernels --smoke`,
    /// AVX2 host, 256-residue protein pairs, profiled batch path; see
    /// `BENCH_kernels.json`):
    ///
    /// | kernel           | cells   | measured Mcells/s | ratio vs `sw` |
    /// |------------------|---------|-------------------|---------------|
    /// | `smith-waterman` | `n·m`   | ≈ 129             | 1             |
    /// | `needleman-wunsch`/`semiglobal` | `n·m` | ≈ 170–260 | 1       |
    /// | `fast-local`     | `n·m`   | ≈ 100             | 4/3 (slower)  |
    /// | `striped`        | `n·m`   | ≈ 4300            | 1/32          |
    /// | `banded:w`       | band    | —                 | 1             |
    ///
    /// The anti-diagonal kernel touches the same cells but pays for the
    /// diagonal state-fold passes, costing ~1.3× a scalar cell; the
    /// striped kernel retires ~33× more cells per second than scalar
    /// even after the lazy-F overhead, modelled conservatively as 1/32
    /// (floored at 1 so no pair is ever free). The global kernels run
    /// somewhat faster per cell than local `sw` (no zero-clamp state),
    /// but stay at ratio 1: the model's job is scheduling-grade
    /// ordering, not nanosecond fidelity.
    pub fn cost_cells(&self, query: &Sequence, subject: &Sequence) -> u64 {
        let (n, m) = (query.len() as u64, subject.len() as u64);
        match self.kind {
            KernelKind::NeedlemanWunsch | KernelKind::SmithWaterman | KernelKind::SemiGlobal => {
                n * m
            }
            KernelKind::FastLocal => 4 * n * m / 3,
            KernelKind::Striped => (n * m / 32).max(1.min(n * m)),
            KernelKind::Banded { band } => {
                let width = 2 * band as u64 + 1 + n.abs_diff(m);
                (n + m) * width.min(m.max(1))
            }
        }
    }
}

/// Reusable per-query kernel state from [`AlignKernel::prepare`]: the
/// striped query profile when the kernel is [`KernelKind::Striped`],
/// nothing otherwise.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    profile: Option<QueryProfile>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_bioseq::Alphabet;

    fn seqs() -> (Sequence, Sequence) {
        (
            Sequence::from_text("q", "", Alphabet::Dna, "ACGTACGTAC").unwrap(),
            Sequence::from_text("s", "", Alphabet::Dna, "ACGTTCGTAC").unwrap(),
        )
    }

    #[test]
    fn parse_round_trips_all_kernels() {
        for kind in [
            KernelKind::NeedlemanWunsch,
            KernelKind::SmithWaterman,
            KernelKind::FastLocal,
            KernelKind::Striped,
            KernelKind::Banded { band: 8 },
            KernelKind::SemiGlobal,
        ] {
            assert_eq!(KernelKind::parse(&kind.name()).unwrap(), kind);
        }
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(KernelKind::parse("SW").unwrap(), KernelKind::SmithWaterman);
        assert_eq!(
            KernelKind::parse("nw").unwrap(),
            KernelKind::NeedlemanWunsch
        );
        assert_eq!(KernelKind::parse("simd").unwrap(), KernelKind::Striped);
        assert_eq!(
            KernelKind::parse("banded:16").unwrap(),
            KernelKind::Banded { band: 16 }
        );
        assert!(KernelKind::parse("blast").is_err());
        assert!(KernelKind::parse("banded:wide").is_err());
    }

    #[test]
    fn local_kernels_agree_with_each_other() {
        let (q, s) = seqs();
        let scheme = ScoringScheme::dna_default();
        let sw = AlignKernel::new(KernelKind::SmithWaterman, scheme.clone());
        let fast = AlignKernel::new(KernelKind::FastLocal, scheme.clone());
        let striped = AlignKernel::new(KernelKind::Striped, scheme);
        assert_eq!(sw.score(&q, &s), fast.score(&q, &s));
        assert_eq!(sw.score(&q, &s), striped.score(&q, &s));
    }

    #[test]
    fn prepared_scoring_equals_direct_scoring_for_all_kernels() {
        let (q, s) = seqs();
        let scheme = ScoringScheme::dna_default();
        for kind in [
            KernelKind::NeedlemanWunsch,
            KernelKind::SmithWaterman,
            KernelKind::FastLocal,
            KernelKind::Striped,
            KernelKind::SemiGlobal,
            KernelKind::Banded { band: 4 },
        ] {
            let k = AlignKernel::new(kind, scheme.clone());
            let prep = k.prepare(&q);
            assert_eq!(k.score_prepared(&q, &prep, &s), k.score(&q, &s), "{kind:?}");
        }
    }

    #[test]
    fn banded_kernel_flags_impossible_band() {
        let scheme = ScoringScheme::dna_default();
        let q = Sequence::from_text("q", "", Alphabet::Dna, "ACGTACGTACGTACGT").unwrap();
        let s = Sequence::from_text("s", "", Alphabet::Dna, "AC").unwrap();
        let k = AlignKernel::new(KernelKind::Banded { band: 1 }, scheme);
        assert_eq!(k.score(&q, &s), i32::MIN);
    }

    #[test]
    fn cost_model_orders_kernels_sensibly() {
        let (q, s) = seqs();
        let scheme = ScoringScheme::dna_default();
        let full = AlignKernel::new(KernelKind::SmithWaterman, scheme.clone());
        let fast = AlignKernel::new(KernelKind::FastLocal, scheme.clone());
        let striped = AlignKernel::new(KernelKind::Striped, scheme.clone());
        let banded = AlignKernel::new(KernelKind::Banded { band: 1 }, scheme);
        // Measured: the anti-diagonal formulation costs MORE per cell on
        // a scalar host; the striped kernel costs ~1/8.
        assert!(fast.cost_cells(&q, &s) > full.cost_cells(&q, &s));
        assert!(striped.cost_cells(&q, &s) < full.cost_cells(&q, &s));
        assert!(striped.cost_cells(&q, &s) >= 1);
        assert!(banded.cost_cells(&q, &s) < full.cost_cells(&q, &s));
    }
}
