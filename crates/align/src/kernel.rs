//! Kernel selection: the "choose one of the built-in search algorithms"
//! configuration knob of DSEARCH (paper §3.1).

use crate::banded::nw_banded_score;
use crate::nw::nw_score;
use crate::sg::sg_score;
use crate::sw::{sw_score, sw_score_antidiagonal};
use biodist_bioseq::{ScoringScheme, Sequence};

/// The built-in search algorithms a DSEARCH configuration can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Needleman–Wunsch global alignment \[10\].
    NeedlemanWunsch,
    /// Smith–Waterman local alignment \[14\] (the default).
    SmithWaterman,
    /// Anti-diagonal score-only Smith–Waterman — the fast rigorous
    /// kernel standing in for Crochemore et al. \[4\].
    FastLocal,
    /// Semi-global: the whole query against a substring of the subject.
    SemiGlobal,
    /// Banded Needleman–Wunsch with the given half-band width.
    Banded {
        /// Half-width of the DP band.
        band: u32,
    },
}

impl KernelKind {
    /// Parses the configuration-file spelling of a kernel name.
    ///
    /// Accepted values: `needleman-wunsch` | `nw`, `smith-waterman` |
    /// `sw`, `fast` | `fast-local`, `banded:<width>`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let t = text.trim().to_ascii_lowercase();
        match t.as_str() {
            "needleman-wunsch" | "nw" | "global" => Ok(Self::NeedlemanWunsch),
            "smith-waterman" | "sw" | "local" => Ok(Self::SmithWaterman),
            "fast" | "fast-local" | "antidiagonal" => Ok(Self::FastLocal),
            "semiglobal" | "sg" | "glocal" => Ok(Self::SemiGlobal),
            _ => {
                if let Some(width) = t.strip_prefix("banded:") {
                    let band: u32 = width
                        .parse()
                        .map_err(|_| format!("bad band width `{width}`"))?;
                    Ok(Self::Banded { band })
                } else {
                    Err(format!("unknown search algorithm `{text}`"))
                }
            }
        }
    }

    /// The configuration-file spelling of this kernel.
    pub fn name(self) -> String {
        match self {
            Self::NeedlemanWunsch => "needleman-wunsch".into(),
            Self::SmithWaterman => "smith-waterman".into(),
            Self::FastLocal => "fast-local".into(),
            Self::SemiGlobal => "semiglobal".into(),
            Self::Banded { band } => format!("banded:{band}"),
        }
    }
}

/// A scoring kernel bound to a scheme, ready to score query/subject pairs.
#[derive(Debug, Clone)]
pub struct AlignKernel {
    kind: KernelKind,
    scheme: ScoringScheme,
}

impl AlignKernel {
    /// Binds a kernel kind to a scoring scheme.
    pub fn new(kind: KernelKind, scheme: ScoringScheme) -> Self {
        Self { kind, scheme }
    }

    /// Which algorithm this kernel runs.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// The scheme in use.
    pub fn scheme(&self) -> &ScoringScheme {
        &self.scheme
    }

    /// Scores one query/subject pair.
    ///
    /// Banded alignments that cannot connect the corners under their
    /// band (length difference exceeds the band) score `i32::MIN`, which
    /// ranks them below every real alignment.
    pub fn score(&self, query: &Sequence, subject: &Sequence) -> i32 {
        match self.kind {
            KernelKind::NeedlemanWunsch => nw_score(query, subject, &self.scheme),
            KernelKind::SmithWaterman => sw_score(query, subject, &self.scheme),
            KernelKind::FastLocal => sw_score_antidiagonal(query, subject, &self.scheme),
            KernelKind::SemiGlobal => sg_score(query, subject, &self.scheme),
            KernelKind::Banded { band } => {
                nw_banded_score(query, subject, &self.scheme, band as usize)
                    .unwrap_or(i32::MIN)
            }
        }
    }

    /// Number of DP cells the kernel evaluates for this pair — the
    /// abstract cost unit used by the scheduler and the simulator.
    pub fn cost_cells(&self, query: &Sequence, subject: &Sequence) -> u64 {
        let (n, m) = (query.len() as u64, subject.len() as u64);
        match self.kind {
            KernelKind::NeedlemanWunsch
            | KernelKind::SmithWaterman
            | KernelKind::SemiGlobal => n * m,
            // The anti-diagonal kernel evaluates the same cells but with
            // roughly 2x better throughput per cell in vectorised form;
            // model that as half the cell cost.
            KernelKind::FastLocal => n * m / 2,
            KernelKind::Banded { band } => {
                let width = 2 * band as u64 + 1 + n.abs_diff(m);
                (n + m) * width.min(m.max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_bioseq::Alphabet;

    fn seqs() -> (Sequence, Sequence) {
        (
            Sequence::from_text("q", "", Alphabet::Dna, "ACGTACGTAC").unwrap(),
            Sequence::from_text("s", "", Alphabet::Dna, "ACGTTCGTAC").unwrap(),
        )
    }

    #[test]
    fn parse_round_trips_all_kernels() {
        for kind in [
            KernelKind::NeedlemanWunsch,
            KernelKind::SmithWaterman,
            KernelKind::FastLocal,
            KernelKind::Banded { band: 8 },
            KernelKind::SemiGlobal,
        ] {
            assert_eq!(KernelKind::parse(&kind.name()).unwrap(), kind);
        }
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(KernelKind::parse("SW").unwrap(), KernelKind::SmithWaterman);
        assert_eq!(KernelKind::parse("nw").unwrap(), KernelKind::NeedlemanWunsch);
        assert_eq!(KernelKind::parse("banded:16").unwrap(), KernelKind::Banded { band: 16 });
        assert!(KernelKind::parse("blast").is_err());
        assert!(KernelKind::parse("banded:wide").is_err());
    }

    #[test]
    fn local_kernels_agree_with_each_other() {
        let (q, s) = seqs();
        let scheme = ScoringScheme::dna_default();
        let sw = AlignKernel::new(KernelKind::SmithWaterman, scheme.clone());
        let fast = AlignKernel::new(KernelKind::FastLocal, scheme);
        assert_eq!(sw.score(&q, &s), fast.score(&q, &s));
    }

    #[test]
    fn banded_kernel_flags_impossible_band() {
        let scheme = ScoringScheme::dna_default();
        let q = Sequence::from_text("q", "", Alphabet::Dna, "ACGTACGTACGTACGT").unwrap();
        let s = Sequence::from_text("s", "", Alphabet::Dna, "AC").unwrap();
        let k = AlignKernel::new(KernelKind::Banded { band: 1 }, scheme);
        assert_eq!(k.score(&q, &s), i32::MIN);
    }

    #[test]
    fn cost_model_orders_kernels_sensibly() {
        let (q, s) = seqs();
        let scheme = ScoringScheme::dna_default();
        let full = AlignKernel::new(KernelKind::SmithWaterman, scheme.clone());
        let fast = AlignKernel::new(KernelKind::FastLocal, scheme.clone());
        let banded = AlignKernel::new(KernelKind::Banded { band: 1 }, scheme);
        assert!(fast.cost_cells(&q, &s) < full.cost_cells(&q, &s));
        assert!(banded.cost_cells(&q, &s) < full.cost_cells(&q, &s));
    }
}
