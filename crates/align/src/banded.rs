//! Banded global alignment.
//!
//! Restricts the Needleman–Wunsch DP to a diagonal band of half-width
//! `band`, an `O((n+m)·band)` approximation that is exact whenever the
//! optimal alignment stays inside the band (always true when the
//! sequences differ by at most `band` indels). DSEARCH exposes it as a
//! faster configuration for near-length-matched database searches.

use crate::NEG_INF;
use biodist_bioseq::{ScoringScheme, Sequence};

/// Banded global alignment score.
///
/// Cells with `|i - j - offset| > band` are treated as unreachable,
/// where `offset` centres the band on the main diagonal adjusted for
/// the length difference. Returns `None` when the band is too narrow
/// to connect the origin to the terminal cell (i.e. `band` smaller than
/// needed to absorb the length difference).
pub fn nw_banded_score(
    a: &Sequence,
    b: &Sequence,
    scheme: &ScoringScheme,
    band: usize,
) -> Option<i32> {
    let (ac, bc) = (a.codes(), b.codes());
    let (n, m) = (ac.len(), bc.len());
    let (o, e) = (scheme.gap.open, scheme.gap.extend);

    // The terminal cell (n, m) sits on diagonal m - n; the band is
    // centred between 0 and that, and must contain both endpoints.
    let diff = m as i64 - n as i64;
    if (band as i64) < diff.abs() {
        return None;
    }

    let w = m + 1;
    let mut mm = vec![NEG_INF; (n + 1) * w];
    let mut ix = vec![NEG_INF; (n + 1) * w];
    let mut iy = vec![NEG_INF; (n + 1) * w];
    mm[0] = 0;

    let in_band = |i: usize, j: usize| -> bool {
        let d = j as i64 - i as i64;
        // Allow diagonals between min(0, diff) - band and max(0, diff) + band.
        d >= diff.min(0) - band as i64 && d <= diff.max(0) + band as i64
    };

    for j in 1..=m {
        if !in_band(0, j) {
            break;
        }
        ix[j] = -(o + (j as i32 - 1) * e);
    }
    for i in 1..=n {
        if !in_band(i, 0) {
            break;
        }
        iy[i * w] = -(o + (i as i32 - 1) * e);
    }

    for i in 1..=n {
        let ra = ac[i - 1];
        let j_lo = ((i as i64 + diff.min(0) - band as i64).max(1)) as usize;
        let j_hi = ((i as i64 + diff.max(0) + band as i64).min(m as i64)) as usize;
        for j in j_lo..=j_hi {
            let c = i * w + j;
            let up = (i - 1) * w + j;
            let left = c - 1;
            let diag = up - 1;
            let best_diag = mm[diag].max(ix[diag]).max(iy[diag]);
            if best_diag > NEG_INF / 2 {
                mm[c] = best_diag + scheme.matrix.score(ra, bc[j - 1]);
            }
            ix[c] = (mm[left] - o).max(ix[left] - e).max(iy[left] - o);
            iy[c] = (mm[up] - o).max(iy[up] - e).max(ix[up] - o);
        }
    }

    let end = n * w + m;
    let best = mm[end].max(ix[end]).max(iy[end]);
    if best <= NEG_INF / 2 {
        None
    } else {
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw::nw_score;
    use biodist_bioseq::{Alphabet, GapPenalty, ScoringMatrix};

    fn seq(text: &str) -> Sequence {
        Sequence::from_text("s", "", Alphabet::Dna, text).unwrap()
    }

    fn scheme() -> ScoringScheme {
        ScoringScheme {
            matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 1, -1),
            gap: GapPenalty::linear(2),
        }
    }

    #[test]
    fn wide_band_equals_full_nw() {
        let s = scheme();
        let a = seq("ACGTTGCAACGTAC");
        let b = seq("ACTTGCACGTAC");
        let full = nw_score(&a, &b, &s);
        assert_eq!(
            nw_banded_score(&a, &b, &s, a.len().max(b.len())),
            Some(full)
        );
    }

    #[test]
    fn band_exact_for_small_edit_distance() {
        let s = scheme();
        let a = seq("ACGTACGTACGTACGT");
        let b = seq("ACGTACGAACGTACGT"); // one substitution
        assert_eq!(nw_banded_score(&a, &b, &s, 2), Some(nw_score(&a, &b, &s)));
    }

    #[test]
    fn band_narrower_than_length_difference_is_rejected() {
        let s = scheme();
        let a = seq("ACGTACGTACGT");
        let b = seq("ACGT");
        assert_eq!(nw_banded_score(&a, &b, &s, 2), None);
    }

    #[test]
    fn band_covers_length_difference_exactly() {
        let s = scheme();
        let a = seq("ACGTACGT");
        let b = seq("ACGTAC"); // diff 2
        let got = nw_banded_score(&a, &b, &s, 2).unwrap();
        assert_eq!(got, nw_score(&a, &b, &s));
    }

    #[test]
    fn narrow_band_never_beats_full_score() {
        let s = scheme();
        let a = seq("AACCGGTTAACCGGTT");
        let b = seq("TTGGCCAATTGGCCAA");
        let full = nw_score(&a, &b, &s);
        if let Some(banded) = nw_banded_score(&a, &b, &s, 1) {
            assert!(
                banded <= full,
                "banded {banded} must not exceed full {full}"
            );
        }
    }

    #[test]
    fn identical_sequences_work_with_zero_band() {
        let s = scheme();
        let a = seq("ACGTACGT");
        assert_eq!(nw_banded_score(&a, &a, &s, 0), Some(8));
    }
}
