//! Striped query profiles for the SIMD Smith–Waterman kernel.
//!
//! A [`QueryProfile`] precomputes, for every possible subject residue
//! code, the substitution scores of the whole query laid out in the
//! *striped* order of Farrar (2007): the query is cut into `width`
//! equal segments of `seg_len` positions, and stripe vector `s` holds
//! positions `{l·seg_len + s | l < width}` — one per SIMD lane. The DP
//! inner loop then loads one vector per stripe instead of gathering
//! `width` scattered matrix lookups, and the profile is reusable across
//! every subject scored against the same query (DSEARCH builds it once
//! per work-unit chunk, not once per pair).
//!
//! Two lane widths are materialised:
//!
//! * `i16` lanes at the width of the selected SIMD backend (16 on AVX2,
//!   8 on SSE2 and on the portable fallback) — the fast path;
//! * `i32` lanes at a fixed width of 8 — the exact rescore path used
//!   when the `i16` run saturates (see `striped.rs`).
//!
//! Padding lanes (query positions past the end) carry the most negative
//! lane value, so a padded cell's `H` can never rise above a real
//! cell's contribution in the same column and the running maximum is
//! unaffected.

use crate::striped::{detect_backend, SimdBackend};
use biodist_bioseq::{ScoringMatrix, Sequence};

/// Lane count of the `i32` rescore profile (portable arrays).
pub(crate) const WIDTH_I32: usize = 8;

/// Lane-interleaved substitution scores for one query, reusable across
/// subjects. Build with [`QueryProfile::build`]; consume through
/// [`crate::sw_score_striped_profiled`].
#[derive(Debug, Clone)]
pub struct QueryProfile {
    backend: SimdBackend,
    query_len: usize,
    dim: usize,
    /// `i16` stripes: `width * seg_len` lanes per residue code.
    width: usize,
    seg_len: usize,
    prof16: Vec<i16>,
    /// `i32` stripes at [`WIDTH_I32`] lanes for the saturation rescore.
    seg_len32: usize,
    prof32: Vec<i32>,
}

impl QueryProfile {
    /// Builds both lane-width profiles for `query` under `matrix`,
    /// laid out for the widest backend the CPU supports.
    ///
    /// Matrix scores outside the `i16` range are clamped into it for the
    /// fast path; the `i32` profile keeps them exact, and the saturation
    /// fallback guarantees the reported score is always the exact one.
    pub fn build(query: &Sequence, matrix: &ScoringMatrix) -> Self {
        Self::build_for_backend(query, matrix, detect_backend())
    }

    /// Builds profiles laid out for a specific backend. `backend` must
    /// not be wider than what the CPU supports (narrower is always
    /// fine — that is how the parity tests exercise every engine).
    pub fn build_for_backend(
        query: &Sequence,
        matrix: &ScoringMatrix,
        backend: SimdBackend,
    ) -> Self {
        let width = backend.lanes_i16();
        let codes = query.codes();
        let n = codes.len();
        let dim = matrix.dim();

        let seg_len = n.div_ceil(width).max(1);
        let mut prof16 = vec![i16::MIN; dim * seg_len * width];
        let seg_len32 = n.div_ceil(WIDTH_I32).max(1);
        let mut prof32 = vec![crate::NEG_INF; dim * seg_len32 * WIDTH_I32];

        for (pos, &q) in codes.iter().enumerate() {
            let row = matrix.row(q);
            for (r, &score) in row.iter().enumerate() {
                let (l, s) = (pos / seg_len, pos % seg_len);
                prof16[(r * seg_len + s) * width + l] =
                    score.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
                let (l, s) = (pos / seg_len32, pos % seg_len32);
                prof32[(r * seg_len32 + s) * WIDTH_I32 + l] = score;
            }
        }
        Self {
            backend,
            query_len: n,
            dim,
            width,
            seg_len,
            prof16,
            seg_len32,
            prof32,
        }
    }

    /// Length of the profiled query.
    pub fn query_len(&self) -> usize {
        self.query_len
    }

    /// Number of `i16` SIMD lanes the fast path runs with.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The SIMD backend this profile was laid out for.
    pub fn backend(&self) -> SimdBackend {
        self.backend
    }

    /// Stripe count of the `i16` layout.
    pub(crate) fn seg_len(&self) -> usize {
        self.seg_len
    }

    /// All `i16` stripes for subject residue code `r`.
    #[inline]
    pub(crate) fn row16(&self, r: u8) -> &[i16] {
        debug_assert!((r as usize) < self.dim, "residue code out of range");
        let span = self.seg_len * self.width;
        &self.prof16[r as usize * span..(r as usize + 1) * span]
    }

    /// Stripe count of the `i32` layout.
    pub(crate) fn seg_len32(&self) -> usize {
        self.seg_len32
    }

    /// All `i32` stripes for subject residue code `r`.
    #[inline]
    pub(crate) fn row32(&self, r: u8) -> &[i32] {
        debug_assert!((r as usize) < self.dim, "residue code out of range");
        let span = self.seg_len32 * WIDTH_I32;
        &self.prof32[r as usize * span..(r as usize + 1) * span]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_bioseq::{Alphabet, Sequence};

    #[test]
    fn striped_layout_places_each_position_once() {
        let m = ScoringMatrix::blosum62();
        let q = Sequence::from_text("q", "", Alphabet::Protein, "MKWVLLLNAGRSKWALE").unwrap();
        let p = QueryProfile::build(&q, &m);
        let (w, seg) = (p.width(), p.seg_len());
        assert!(w * seg >= q.len());
        // Every query position appears exactly once, at the striped
        // index, with the right substitution score.
        for r in 0..m.dim() as u8 {
            let row = p.row16(r);
            let mut seen = 0usize;
            for l in 0..w {
                for s in 0..seg {
                    let pos = l * seg + s;
                    let v = row[s * w + l];
                    if pos < q.len() {
                        assert_eq!(v as i32, m.score(q.codes()[pos], r));
                        seen += 1;
                    } else {
                        assert_eq!(v, i16::MIN, "padding must be -inf");
                    }
                }
            }
            assert_eq!(seen, q.len());
        }
    }

    #[test]
    fn i32_layout_matches_matrix_exactly() {
        let m = ScoringMatrix::match_mismatch(Alphabet::Dna, 7, -5);
        let q = Sequence::from_text("q", "", Alphabet::Dna, "ACGTACGTT").unwrap();
        let p = QueryProfile::build(&q, &m);
        let seg = p.seg_len32();
        for r in 0..m.dim() as u8 {
            let row = p.row32(r);
            for l in 0..WIDTH_I32 {
                for s in 0..seg {
                    let pos = l * seg + s;
                    if pos < q.len() {
                        assert_eq!(row[s * WIDTH_I32 + l], m.score(q.codes()[pos], r));
                    }
                }
            }
        }
    }

    #[test]
    fn empty_query_builds_padded_profile() {
        let m = ScoringMatrix::blosum62();
        let q = Sequence::from_codes("q", Alphabet::Protein, vec![]);
        let p = QueryProfile::build(&q, &m);
        assert_eq!(p.query_len(), 0);
        assert!(p.row16(0).iter().all(|&v| v == i16::MIN));
    }
}
