//! Exhaustive scalar-vs-striped score parity.
//!
//! The striped SIMD kernel's contract is *bit-identical* scores with
//! the scalar rolling-row [`sw_score`]. These tests sweep random
//! DNA/protein pairs across the length range 0..~600 under both gap
//! regimes (steep open/cheap extend and flat linear), hit the
//! empty/single-residue edges, and force an `i16` saturation to prove
//! the `i32` rescore path returns the exact scalar score.

use biodist_align::{sw_score, sw_score_striped, sw_score_striped_profiled, QueryProfile};
use biodist_bioseq::synth::random_sequence;
use biodist_bioseq::{Alphabet, GapPenalty, ScoringMatrix, ScoringScheme, Sequence};
use biodist_util::rng::{Rng, Xoshiro256StarStar};

fn schemes(alphabet: Alphabet) -> Vec<ScoringScheme> {
    let matrix = match alphabet {
        Alphabet::Protein => ScoringMatrix::blosum62(),
        Alphabet::Dna => ScoringMatrix::match_mismatch(Alphabet::Dna, 5, -4),
    };
    vec![
        // Steep open, cheap extend (the BLAST-style regime).
        ScoringScheme {
            matrix: matrix.clone(),
            gap: GapPenalty::affine(11, 1),
        },
        // Flat linear gaps: open == extend stresses the lazy-F exit
        // condition differently (every extension ties with reopening).
        ScoringScheme {
            matrix,
            gap: GapPenalty::linear(3),
        },
    ]
}

fn random_pair(alphabet: Alphabet, max_len: usize, rng: &mut dyn Rng) -> (Sequence, Sequence) {
    let n = rng.next_below(max_len as u64 + 1) as usize;
    let m = rng.next_below(max_len as u64 + 1) as usize;
    (
        random_sequence(alphabet, "q", n, rng.next_u64()),
        random_sequence(alphabet, "s", m, rng.next_u64()),
    )
}

fn assert_parity(q: &Sequence, s: &Sequence, scheme: &ScoringScheme) {
    let scalar = sw_score(q, s, scheme);
    let striped = sw_score_striped(q, s, scheme);
    assert_eq!(
        striped,
        scalar,
        "striped != scalar: |q|={} |s|={} gap={:?}",
        q.len(),
        s.len(),
        scheme.gap
    );
}

#[test]
fn random_pairs_across_length_sweep_agree() {
    let mut rng = Xoshiro256StarStar::new(0xA11C_ED01);
    for alphabet in [Alphabet::Dna, Alphabet::Protein] {
        for scheme in schemes(alphabet) {
            // Small lengths catch lane/stripe boundary bugs; long ones
            // catch lazy-F wrap and profile-reuse bugs.
            for max_len in [3, 9, 17, 33, 65, 130, 330, 600] {
                for _ in 0..6 {
                    let (q, s) = random_pair(alphabet, max_len, &mut rng);
                    assert_parity(&q, &s, &scheme);
                }
            }
        }
    }
}

#[test]
fn empty_and_single_residue_edges_agree() {
    for alphabet in [Alphabet::Dna, Alphabet::Protein] {
        for scheme in schemes(alphabet) {
            let empty = Sequence::from_codes("e", alphabet, vec![]);
            let one = Sequence::from_codes("o", alphabet, vec![0]);
            let some = random_sequence(alphabet, "r", 37, 5);
            for (q, s) in [
                (&empty, &empty),
                (&empty, &some),
                (&some, &empty),
                (&one, &one),
                (&one, &some),
                (&some, &one),
            ] {
                assert_parity(q, s, &scheme);
            }
        }
    }
}

#[test]
fn related_pairs_with_planted_homology_agree() {
    // Highly similar pairs drive scores much higher than random pairs
    // do, exercising the upper `i16` range without saturating it.
    let mut rng = Xoshiro256StarStar::new(0xBEE5);
    for scheme in schemes(Alphabet::Protein) {
        for len in [64usize, 256, 600] {
            let q = random_sequence(Alphabet::Protein, "q", len, rng.next_u64());
            // Mutate ~10% of residues.
            let mut codes = q.codes().to_vec();
            for c in codes.iter_mut() {
                if rng.next_bool(0.1) {
                    *c = rng.next_below(20) as u8;
                }
            }
            let s = Sequence::from_codes("s", Alphabet::Protein, codes);
            assert_parity(&q, &s, &scheme);
        }
    }
}

#[test]
fn linear_gap_tie_in_lazy_f_exit_is_not_dropped() {
    // Regression: with open == extend, a lazy-F correction that raises
    // H[s] produces a next-stripe candidate `F − e` that exactly ties
    // `H'[s] − open`; the classic strict-`>` exit test dropped it, and
    // this 6×6 pair (whose best alignment needs F to propagate two
    // query rows inside one column) scored 13 instead of 14.
    let scheme = ScoringScheme {
        matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 5, -4),
        gap: GapPenalty::linear(3),
    };
    let q = Sequence::from_codes("q", Alphabet::Dna, vec![3, 2, 0, 1, 3, 3]);
    let s = Sequence::from_codes("s", Alphabet::Dna, vec![3, 3, 2, 3, 3, 3]);
    assert_eq!(sw_score(&q, &s, &scheme), 14);
    assert_parity(&q, &s, &scheme);
}

#[test]
fn forced_i16_saturation_rescales_to_exact_i32_score() {
    // 900 identical residues at +40 each: the true local score is
    // 36_000 > i16::MAX, so the i16 pass must saturate and hand off.
    let scheme = ScoringScheme {
        matrix: ScoringMatrix::match_mismatch(Alphabet::Dna, 40, -35),
        gap: GapPenalty::affine(30, 3),
    };
    let codes: Vec<u8> = (0..900).map(|i| ((i * 7) % 4) as u8).collect();
    let q = Sequence::from_codes("q", Alphabet::Dna, codes.clone());
    let s = Sequence::from_codes("s", Alphabet::Dna, codes);
    let scalar = sw_score(&q, &s, &scheme);
    assert!(
        scalar > i16::MAX as i32,
        "must exceed i16 range, got {scalar}"
    );
    assert_eq!(sw_score_striped(&q, &s, &scheme), scalar);

    // Near-threshold scores (just below and just above i16::MAX) must
    // also be exact — the switchover itself cannot lose precision.
    for copies in [818usize, 820] {
        let codes: Vec<u8> = (0..copies).map(|i| (i % 4) as u8).collect();
        let q = Sequence::from_codes("q", Alphabet::Dna, codes.clone());
        let s = Sequence::from_codes("s", Alphabet::Dna, codes);
        assert_parity(&q, &s, &scheme);
    }
}

#[test]
fn chunk_style_profile_reuse_is_exact() {
    // The DSEARCH batch path: one profile, many subjects.
    let scheme = ScoringScheme::protein_default();
    let mut rng = Xoshiro256StarStar::new(77);
    let q = random_sequence(Alphabet::Protein, "q", 210, 3);
    let profile = QueryProfile::build(&q, &scheme.matrix);
    for _ in 0..40 {
        let len = rng.next_range(1, 400) as usize;
        let s = random_sequence(Alphabet::Protein, "s", len, rng.next_u64());
        assert_eq!(
            sw_score_striped_profiled(&profile, &s, &scheme.gap),
            sw_score(&q, &s, &scheme)
        );
    }
}
