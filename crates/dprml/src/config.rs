//! DPRml configuration.
//!
//! Paper §3.2: "The user has a very straightforward configuration file
//! with which to tailor the computation and can choose from one of the
//! most extensive ranges of DNA substitution models currently
//! available." Recognised keys:
//!
//! ```text
//! model            = hky85:4.0   # jc69 | k80:<κ> | f81 | f84:<κ> | hky85:<κ> | tn93:<κ> | gtr
//! gamma_alpha      = 0.5         # omit for rate homogeneity
//! gamma_categories = 4
//! p_invariant      = 0.0
//! candidate_rounds = 2           # branch-length sweeps per candidate
//! refine_rounds    = 4           # sweeps after each stage
//! nni              = true
//! ```

use biodist_phylo::model::{GammaRates, ModelKind, SubstModel};
use biodist_phylo::search::SearchOptions;
use biodist_util::config::Config;

/// Parsed DPRml settings.
#[derive(Debug, Clone)]
pub struct DprmlConfig {
    /// Substitution model.
    pub model: ModelKind,
    /// Γ shape (None = rate homogeneity).
    pub gamma_alpha: Option<f64>,
    /// Number of Γ categories.
    pub gamma_categories: usize,
    /// Proportion of invariant sites.
    pub p_invariant: f64,
    /// Tree-search tuning.
    pub search: SearchOptions,
    /// Abstract ops charged per modelled likelihood flop
    /// (`cost_scale` key, default 1). Experiment harnesses use ~20 to
    /// calibrate this library's optimised Rust pruning to the paper's
    /// Java/PAL throughput, reproducing multi-hour virtual runtimes
    /// while real compute stays tractable.
    pub cost_scale: f64,
}

impl Default for DprmlConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Hky85 {
                kappa: 4.0,
                freqs: [0.25; 4],
            },
            gamma_alpha: None,
            gamma_categories: 4,
            p_invariant: 0.0,
            search: SearchOptions::default(),
            cost_scale: 1.0,
        }
    }
}

impl DprmlConfig {
    /// Parses a configuration file's text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let cfg = Config::parse(text).map_err(|e| e.to_string())?;
        let mut out = Self::default();
        if let Some(m) = cfg.get("model") {
            out.model = ModelKind::parse(m)?;
        }
        if let Some(alpha) = cfg.get("gamma_alpha") {
            let a: f64 = alpha
                .parse()
                .map_err(|_| format!("bad gamma_alpha `{alpha}`"))?;
            if a <= 0.0 {
                return Err("gamma_alpha must be positive".into());
            }
            out.gamma_alpha = Some(a);
        }
        out.gamma_categories = cfg
            .get_u64_or("gamma_categories", 4)
            .map_err(|e| e.to_string())? as usize;
        if out.gamma_categories == 0 {
            return Err("gamma_categories must be at least 1".into());
        }
        out.p_invariant = cfg
            .get_f64_or("p_invariant", 0.0)
            .map_err(|e| e.to_string())?;
        if !(0.0..1.0).contains(&out.p_invariant) {
            return Err("p_invariant must be in [0, 1)".into());
        }
        out.search.candidate_rounds = cfg
            .get_u64_or("candidate_rounds", 2)
            .map_err(|e| e.to_string())? as u32;
        out.search.refine_rounds = cfg
            .get_u64_or("refine_rounds", 4)
            .map_err(|e| e.to_string())? as u32;
        out.search.nni = cfg.get_bool_or("nni", true).map_err(|e| e.to_string())?;
        out.cost_scale = cfg
            .get_f64_or("cost_scale", 1.0)
            .map_err(|e| e.to_string())?;
        if out.cost_scale <= 0.0 {
            return Err("cost_scale must be positive".into());
        }
        Ok(out)
    }

    /// Instantiates the substitution process this configuration selects.
    pub fn build_model(&self) -> SubstModel {
        let p = self.p_invariant;
        let rates = match self.gamma_alpha {
            None if p == 0.0 => GammaRates::uniform(),
            None => GammaRates::gamma_invariant(1e6, 1, p),
            Some(a) if p == 0.0 => GammaRates::gamma(a, self.gamma_categories),
            Some(a) => GammaRates::gamma_invariant(a, self.gamma_categories, p),
        };
        SubstModel::new(self.model.clone(), rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let cfg = DprmlConfig::default();
        let model = cfg.build_model();
        assert_eq!(model.rate_categories().ncat(), 1);
        assert!(matches!(cfg.model, ModelKind::Hky85 { .. }));
    }

    #[test]
    fn full_file_parses() {
        let cfg = DprmlConfig::parse(
            "model = gtr\ngamma_alpha = 0.5\ngamma_categories = 4\np_invariant = 0.2\n\
             candidate_rounds = 3\nrefine_rounds = 5\nnni = false\n",
        )
        .unwrap();
        assert!(matches!(cfg.model, ModelKind::Gtr { .. }));
        assert_eq!(cfg.gamma_alpha, Some(0.5));
        assert!(!cfg.search.nni);
        assert_eq!(cfg.search.candidate_rounds, 3);
        let model = cfg.build_model();
        // 4 gamma categories + 1 invariant class.
        assert_eq!(model.rate_categories().ncat(), 5);
        assert!((model.rate_categories().mean_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_without_invariant_sites() {
        let cfg = DprmlConfig::parse("gamma_alpha = 1.0\ngamma_categories = 8\n").unwrap();
        assert_eq!(cfg.build_model().rate_categories().ncat(), 8);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(DprmlConfig::parse("model = wag\n").is_err());
        assert!(DprmlConfig::parse("gamma_alpha = -1\n").is_err());
        assert!(DprmlConfig::parse("gamma_alpha = x\n").is_err());
        assert!(DprmlConfig::parse("gamma_categories = 0\n").is_err());
        assert!(DprmlConfig::parse("p_invariant = 1.5\n").is_err());
    }
}
