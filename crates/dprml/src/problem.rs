//! DPRml as a framework [`Problem`]: a staged `DataManager`.
//!
//! The manager walks the same state machine as the sequential
//! reference `stepwise_ml`:
//!
//! ```text
//! refine(initial triple)
//! per taxon:  INSERT stage   — evaluate all 2i−5 insertion edges (parallel units)
//!             refine
//!             NNI loop ≤ 8:  — evaluate all NNI moves (parallel units)
//!                            — apply best improving move, refine, repeat
//! ```
//!
//! Candidate evaluation is the pure function
//! [`biodist_phylo::search::evaluate_insertion`]; winners use the same
//! deterministic tie-breaks as the sequential code, so the distributed
//! tree and log-likelihood equal the reference *exactly*. Stage
//! barriers are expressed by returning `None` from `next_unit` while
//! results are outstanding — precisely the behaviour that idles donors
//! when only one DPRml instance runs (paper §3.2 / Fig. 2).

use crate::config::DprmlConfig;
use biodist_core::{
    Algorithm, ByteReader, ByteWriter, DataManager, EventKind, Payload, Problem, ProblemId,
    TaskResult, Telemetry, UnitId, WireCodec, WireError, WorkUnit,
};
use biodist_phylo::lik::TreeLikelihood;
use biodist_phylo::model::SubstModel;
use biodist_phylo::newick::to_newick;
use biodist_phylo::patterns::PatternAlignment;
use biodist_phylo::search::{
    best_candidate, evaluate_insertion, InsertionCandidate, SearchOptions,
};
use biodist_phylo::tree::Tree;
use std::sync::Arc;

/// Final output of a DPRml run.
#[derive(Debug, Clone)]
pub struct PhyloOutput {
    /// The maximum-likelihood tree found.
    pub tree: Tree,
    /// Its log-likelihood.
    pub ln_likelihood: f64,
    /// Newick rendering (taxon names from the alignment).
    pub newick: String,
}

impl PhyloOutput {
    /// FNV-1a digest of the Newick rendering (topology + branch
    /// lengths) and the exact log-likelihood bits. Two outputs digest
    /// equal iff tree and likelihood are bit-identical, so the chaos
    /// suite can compare a fault-injected run against the sequential
    /// reference with one `u64`.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self
            .newick
            .as_bytes()
            .iter()
            .chain(&self.ln_likelihood.to_bits().to_le_bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

type NniMove = (usize, usize, usize);

enum DprmlUnit {
    Refine {
        tree: Tree,
    },
    Insert {
        tree: Arc<Tree>,
        taxon: usize,
        edges: Vec<usize>,
    },
    Nni {
        tree: Arc<Tree>,
        lnl: f64,
        moves: Vec<(usize, NniMove)>,
    },
}

/// Likelihood-kernel statistics a donor reports alongside every result:
/// which SIMD backend computed it and how the transition-matrix cache
/// behaved. The manager aggregates them into the `lik.*` run metrics.
#[derive(Clone, Copy)]
struct KernelStats {
    backend: u8,
    pmat_hits: u64,
    pmat_misses: u64,
}

struct DprmlResult {
    kind: DprmlResultKind,
    stats: KernelStats,
}

enum DprmlResultKind {
    Refined { tree: Tree, lnl: f64 },
    InsertBest { candidate: InsertionCandidate },
    NniBest { best: Option<(usize, f64, Tree)> },
}

// ---------------------------------------------------------------- costs

/// Abstract ops per node·pattern·category update, calibrated against
/// the measured stage-evaluation throughput of the SIMD likelihood
/// kernels (`abl_likelihood --smoke` → BENCH_likelihood.json: ~11.6×
/// the scalar engine the original 20.0 figure modelled, so 20/11.6).
/// Same recalibration PR 1 applied to DSEARCH's `cost_cells` after
/// striping Smith–Waterman.
const OPS_PER_NODE_UPDATE: f64 = 1.75;

/// Abstract ops for one full pruning traversal (matches the gridsim
/// scale: a PIII-1000 runs ~1e7 of these per second).
fn traversal_ops(n_nodes: usize, data: &PatternAlignment, model: &SubstModel) -> f64 {
    (n_nodes * data.pattern_count() * model.rate_categories().ncat()) as f64 * OPS_PER_NODE_UPDATE
}

/// Ops for optimising one branch for one sweep (traversal + ~20 cheap
/// Brent evaluations of the edge function).
fn edge_round_ops(n_nodes: usize, data: &PatternAlignment, model: &SubstModel) -> f64 {
    1.7 * traversal_ops(n_nodes, data, model)
}

fn insert_candidate_ops(
    tree: &Tree,
    data: &PatternAlignment,
    model: &SubstModel,
    opts: &SearchOptions,
) -> f64 {
    let nodes = tree.node_count() + 2;
    let edges = if opts.local_candidates {
        3
    } else {
        tree.edges().len() + 2
    };
    (opts.candidate_rounds as usize * edges) as f64 * edge_round_ops(nodes, data, model)
        + 2.0 * traversal_ops(nodes, data, model)
}

fn nni_move_ops(
    tree: &Tree,
    data: &PatternAlignment,
    model: &SubstModel,
    opts: &SearchOptions,
) -> f64 {
    opts.candidate_rounds as f64 * edge_round_ops(tree.node_count(), data, model)
        + 2.0 * traversal_ops(tree.node_count(), data, model)
}

fn refine_ops(
    tree: &Tree,
    data: &PatternAlignment,
    model: &SubstModel,
    opts: &SearchOptions,
) -> f64 {
    (opts.refine_rounds as usize * tree.edges().len()) as f64
        * edge_round_ops(tree.node_count(), data, model)
        + 2.0 * traversal_ops(tree.node_count(), data, model)
}

fn tree_wire_bytes(tree: &Tree) -> u64 {
    tree.node_count() as u64 * 48
}

// ----------------------------------------------------------- wire codec

fn write_tree(w: &mut ByteWriter, tree: &Tree) {
    w.u32(tree.node_count() as u32);
    w.usize(tree.root());
    for id in 0..tree.node_count() {
        let node = tree.node(id);
        w.opt_usize(node.parent);
        w.u32(node.children.len() as u32);
        for &c in &node.children {
            w.usize(c);
        }
        w.f64(node.blen);
        w.opt_usize(node.taxon);
    }
}

fn read_tree(r: &mut ByteReader) -> Result<Tree, WireError> {
    // Every node is ≥ 28 bytes (parent + child count + blen + taxon),
    // so the count can't demand more memory than the wire carries.
    let n = r.count(28)?;
    let root = r.usize()?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let parent = r.opt_usize()?;
        let n_children = r.count(8)?;
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            children.push(r.usize()?);
        }
        let blen = r.f64()?;
        let taxon = r.opt_usize()?;
        nodes.push(biodist_phylo::tree::Node {
            parent,
            children,
            blen,
            taxon,
        });
    }
    // `from_parts` re-validates the arena, so a frame that passed the
    // CRC but carries a nonsense topology is still rejected here.
    Tree::from_parts(nodes, root).map_err(WireError::new)
}

const UNIT_REFINE: u8 = 1;
const UNIT_INSERT: u8 = 2;
const UNIT_NNI: u8 = 3;
const RESULT_REFINED: u8 = 1;
const RESULT_INSERT_BEST: u8 = 2;
const RESULT_NNI_BEST: u8 = 3;

/// Wire codec for DPRml: units and results are tagged unions whose tree
/// payloads ship as full node arenas (the real cost the declared
/// `wire_bytes` always modelled — ~48 bytes per node).
struct DprmlCodec;

impl WireCodec for DprmlCodec {
    fn encode_unit(&self, payload: &Payload) -> Result<Vec<u8>, WireError> {
        let du = payload
            .downcast_ref::<DprmlUnit>()
            .ok_or_else(|| WireError::new("dprml unit payload has the wrong type"))?;
        let mut w = ByteWriter::new();
        match du {
            DprmlUnit::Refine { tree } => {
                w.u8(UNIT_REFINE);
                write_tree(&mut w, tree);
            }
            DprmlUnit::Insert { tree, taxon, edges } => {
                w.u8(UNIT_INSERT);
                write_tree(&mut w, tree);
                w.usize(*taxon);
                w.u32(edges.len() as u32);
                for &e in edges {
                    w.usize(e);
                }
            }
            DprmlUnit::Nni { tree, lnl, moves } => {
                w.u8(UNIT_NNI);
                write_tree(&mut w, tree);
                w.f64(*lnl);
                w.u32(moves.len() as u32);
                for &(idx, (c, a, b)) in moves {
                    w.usize(idx);
                    w.usize(c);
                    w.usize(a);
                    w.usize(b);
                }
            }
        }
        Ok(w.into_bytes())
    }

    fn decode_unit(&self, bytes: &[u8]) -> Result<Payload, WireError> {
        let mut r = ByteReader::new(bytes);
        let unit = match r.u8()? {
            UNIT_REFINE => DprmlUnit::Refine {
                tree: read_tree(&mut r)?,
            },
            UNIT_INSERT => {
                let tree = Arc::new(read_tree(&mut r)?);
                let taxon = r.usize()?;
                let n = r.count(8)?;
                let mut edges = Vec::with_capacity(n);
                for _ in 0..n {
                    edges.push(r.usize()?);
                }
                DprmlUnit::Insert { tree, taxon, edges }
            }
            UNIT_NNI => {
                let tree = Arc::new(read_tree(&mut r)?);
                let lnl = r.f64()?;
                let n = r.count(32)?;
                let mut moves = Vec::with_capacity(n);
                for _ in 0..n {
                    moves.push((r.usize()?, (r.usize()?, r.usize()?, r.usize()?)));
                }
                DprmlUnit::Nni { tree, lnl, moves }
            }
            tag => return Err(WireError::new(format!("unknown dprml unit tag {tag}"))),
        };
        r.finish()?;
        Ok(Payload::new(unit, bytes.len() as u64))
    }

    fn encode_result(&self, payload: &Payload) -> Result<Vec<u8>, WireError> {
        let dr = payload
            .downcast_ref::<DprmlResult>()
            .ok_or_else(|| WireError::new("dprml result payload has the wrong type"))?;
        let mut w = ByteWriter::new();
        match &dr.kind {
            DprmlResultKind::Refined { tree, lnl } => {
                w.u8(RESULT_REFINED);
                write_tree(&mut w, tree);
                w.f64(*lnl);
            }
            DprmlResultKind::InsertBest { candidate } => {
                w.u8(RESULT_INSERT_BEST);
                w.usize(candidate.edge);
                w.f64(candidate.ln_likelihood);
                write_tree(&mut w, &candidate.tree);
            }
            DprmlResultKind::NniBest { best } => {
                w.u8(RESULT_NNI_BEST);
                match best {
                    Some((idx, lnl, tree)) => {
                        w.u8(1);
                        w.usize(*idx);
                        w.f64(*lnl);
                        write_tree(&mut w, tree);
                    }
                    None => w.u8(0),
                }
            }
        }
        // Kernel stats trailer — every result shape carries one.
        w.u8(dr.stats.backend);
        w.u64(dr.stats.pmat_hits);
        w.u64(dr.stats.pmat_misses);
        Ok(w.into_bytes())
    }

    fn decode_result(&self, bytes: &[u8]) -> Result<Payload, WireError> {
        let mut r = ByteReader::new(bytes);
        let kind = match r.u8()? {
            RESULT_REFINED => {
                let tree = read_tree(&mut r)?;
                let lnl = r.f64()?;
                DprmlResultKind::Refined { tree, lnl }
            }
            RESULT_INSERT_BEST => {
                let edge = r.usize()?;
                let ln_likelihood = r.f64()?;
                let tree = read_tree(&mut r)?;
                DprmlResultKind::InsertBest {
                    candidate: InsertionCandidate {
                        edge,
                        ln_likelihood,
                        tree,
                    },
                }
            }
            RESULT_NNI_BEST => {
                let best = match r.u8()? {
                    0 => None,
                    1 => Some((r.usize()?, r.f64()?, read_tree(&mut r)?)),
                    flag => {
                        return Err(WireError::new(format!("bad option flag {flag}")));
                    }
                };
                DprmlResultKind::NniBest { best }
            }
            tag => return Err(WireError::new(format!("unknown dprml result tag {tag}"))),
        };
        let stats = KernelStats {
            backend: r.u8()?,
            pmat_hits: r.u64()?,
            pmat_misses: r.u64()?,
        };
        r.finish()?;
        Ok(Payload::new(
            DprmlResult { kind, stats },
            bytes.len() as u64,
        ))
    }
}

// ------------------------------------------------------------ algorithm

struct DprmlAlgo {
    data: Arc<PatternAlignment>,
    model: Arc<SubstModel>,
    opts: SearchOptions,
}

impl Algorithm for DprmlAlgo {
    fn compute(&self, unit: &WorkUnit) -> TaskResult {
        let engine = TreeLikelihood::new(&self.model, &self.data);
        let du = unit
            .payload
            .downcast_ref::<DprmlUnit>()
            .expect("dprml unit");
        let kind = match du {
            DprmlUnit::Refine { tree } => {
                let mut t = tree.clone();
                let lnl =
                    engine.optimize_edges(&mut t, None, self.opts.refine_rounds, self.opts.tol);
                DprmlResultKind::Refined { tree: t, lnl }
            }
            DprmlUnit::Insert { tree, taxon, edges } => {
                let candidates: Vec<InsertionCandidate> = edges
                    .iter()
                    .map(|&e| evaluate_insertion(tree, *taxon, e, &engine, &self.opts))
                    .collect();
                DprmlResultKind::InsertBest {
                    candidate: best_candidate(candidates),
                }
            }
            DprmlUnit::Nni { tree, lnl, moves } => {
                let mut best: Option<(usize, f64, Tree)> = None;
                for &(idx, (c, a, b)) in moves {
                    let mut candidate = (**tree).clone();
                    candidate.nni_swap(c, a, b);
                    let cand_lnl = engine.optimize_edges(
                        &mut candidate,
                        Some(&[c]),
                        self.opts.candidate_rounds,
                        self.opts.tol,
                    );
                    // Same acceptance rule as `nni_improve`: strictly
                    // better than current, strictly better than best so
                    // far (earliest move wins ties).
                    if cand_lnl > lnl + self.opts.tol
                        && best
                            .as_ref()
                            .map(|(_, bl, _)| cand_lnl > *bl)
                            .unwrap_or(true)
                    {
                        best = Some((idx, cand_lnl, candidate));
                    }
                }
                DprmlResultKind::NniBest { best }
            }
        };
        let (pmat_hits, pmat_misses) = engine.pmat_cache_stats();
        let result = DprmlResult {
            kind,
            stats: KernelStats {
                backend: engine.backend().index(),
                pmat_hits,
                pmat_misses,
            },
        };
        let wire = match &result.kind {
            DprmlResultKind::Refined { tree, .. } => tree_wire_bytes(tree),
            DprmlResultKind::InsertBest { candidate } => tree_wire_bytes(&candidate.tree),
            DprmlResultKind::NniBest { best } => best
                .as_ref()
                .map(|(_, _, t)| tree_wire_bytes(t))
                .unwrap_or(16),
        };
        TaskResult {
            unit_id: unit.id,
            payload: Payload::new(result, wire),
        }
    }
}

// --------------------------------------------------------- data manager

enum Stage {
    /// One refine unit (dispatched flag, awaiting flag).
    Refine {
        next: RefineNext,
        dispatched: bool,
    },
    Insert {
        taxon: usize,
        edges: Vec<usize>,
        next_edge: usize,
        outstanding: u32,
        best: Option<InsertionCandidate>,
    },
    Nni {
        moves: Vec<NniMove>,
        next_move: usize,
        outstanding: u32,
        best: Option<(usize, f64, Tree)>,
    },
    Done,
}

#[derive(Clone, Copy, PartialEq)]
enum RefineNext {
    InsertNextTaxon,
    TryNni,
}

struct DprmlDm {
    data: Arc<PatternAlignment>,
    model: Arc<SubstModel>,
    opts: SearchOptions,
    cost_scale: f64,
    order: Vec<usize>,
    tree: Tree,
    lnl: f64,
    taxon_pos: usize,
    insertions_done: u32,
    nni_round: u32,
    stage: Stage,
    stage_tree: Arc<Tree>,
    next_id: UnitId,
    /// Installed by the server; stage transitions emit `StageStarted`
    /// so run reports can place the barrier boundaries that idle
    /// donors when only one instance runs (paper §3.2 / Fig. 2).
    telemetry: Telemetry,
    problem: ProblemId,
}

impl DprmlDm {
    fn new(
        data: Arc<PatternAlignment>,
        model: Arc<SubstModel>,
        opts: SearchOptions,
        cost_scale: f64,
        order: Vec<usize>,
    ) -> Self {
        let tree = Tree::initial_triple([order[0], order[1], order[2]], opts.initial_blen);
        let stage_tree = Arc::new(tree.clone());
        Self {
            data,
            model,
            opts,
            cost_scale,
            order,
            tree,
            lnl: f64::NEG_INFINITY,
            taxon_pos: 3,
            insertions_done: 0,
            nni_round: 0,
            stage: Stage::Refine {
                next: RefineNext::InsertNextTaxon,
                dispatched: false,
            },
            stage_tree,
            next_id: 0,
            telemetry: Telemetry::default(),
            problem: 0,
        }
    }

    /// Emits a `StageStarted` event for the stage just entered.
    fn note_stage(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let stage = match self.stage {
            Stage::Refine { .. } => "refine",
            Stage::Insert { .. } => "insert",
            Stage::Nni { .. } => "nni",
            Stage::Done => "done",
        };
        self.telemetry.emit(EventKind::StageStarted {
            problem: self.problem,
            stage: stage.to_string(),
        });
    }

    fn start_insert_or_done(&mut self) {
        if self.taxon_pos >= self.order.len() {
            self.stage = Stage::Done;
            self.note_stage();
            return;
        }
        let taxon = self.order[self.taxon_pos];
        self.taxon_pos += 1;
        self.nni_round = 0;
        self.stage_tree = Arc::new(self.tree.clone());
        self.stage = Stage::Insert {
            taxon,
            edges: self.tree.edges(),
            next_edge: 0,
            outstanding: 0,
            best: None,
        };
        self.note_stage();
    }

    fn try_nni_or_advance(&mut self) {
        if !self.opts.nni || self.nni_round >= 8 {
            self.start_insert_or_done();
            return;
        }
        let moves = self.tree.nni_moves();
        if moves.is_empty() {
            self.start_insert_or_done();
            return;
        }
        self.stage_tree = Arc::new(self.tree.clone());
        self.stage = Stage::Nni {
            moves,
            next_move: 0,
            outstanding: 0,
            best: None,
        };
        self.note_stage();
    }

    fn start_refine(&mut self, next: RefineNext) {
        self.stage = Stage::Refine {
            next,
            dispatched: false,
        };
        self.note_stage();
    }

    fn make_unit(&mut self, payload: DprmlUnit, cost_ops: f64, wire: u64) -> WorkUnit {
        let id = self.next_id;
        self.next_id += 1;
        WorkUnit {
            id,
            payload: Payload::new(payload, wire),
            cost_ops: cost_ops * self.cost_scale,
        }
    }
}

impl DataManager for DprmlDm {
    fn next_unit(&mut self, hint_ops: f64) -> Option<WorkUnit> {
        match &mut self.stage {
            Stage::Done => None,
            Stage::Refine { dispatched, .. } => {
                if *dispatched {
                    return None; // stage barrier
                }
                *dispatched = true;
                let tree = self.tree.clone();
                let cost = refine_ops(&tree, &self.data, &self.model, &self.opts);
                let wire = tree_wire_bytes(&tree);
                Some(self.make_unit(DprmlUnit::Refine { tree }, cost, wire))
            }
            Stage::Insert {
                taxon,
                edges,
                next_edge,
                outstanding,
                ..
            } => {
                if *next_edge >= edges.len() {
                    return None; // barrier: waiting for batch results
                }
                let per =
                    insert_candidate_ops(&self.stage_tree, &self.data, &self.model, &self.opts)
                        * self.cost_scale;
                let batch = ((hint_ops / per).floor() as usize).clamp(1, edges.len() - *next_edge);
                let slice: Vec<usize> = edges[*next_edge..*next_edge + batch].to_vec();
                *next_edge += batch;
                *outstanding += 1;
                let taxon = *taxon;
                let cost = per / self.cost_scale * batch as f64;
                let wire = tree_wire_bytes(&self.stage_tree) + 16 * batch as u64;
                let tree = self.stage_tree.clone();
                Some(self.make_unit(
                    DprmlUnit::Insert {
                        tree,
                        taxon,
                        edges: slice,
                    },
                    cost,
                    wire,
                ))
            }
            Stage::Nni {
                moves,
                next_move,
                outstanding,
                ..
            } => {
                if *next_move >= moves.len() {
                    return None;
                }
                let per = nni_move_ops(&self.stage_tree, &self.data, &self.model, &self.opts)
                    * self.cost_scale;
                let batch = ((hint_ops / per).floor() as usize).clamp(1, moves.len() - *next_move);
                let slice: Vec<(usize, NniMove)> = (*next_move..*next_move + batch)
                    .map(|i| (i, moves[i]))
                    .collect();
                *next_move += batch;
                *outstanding += 1;
                let cost = per / self.cost_scale * batch as f64;
                let wire = tree_wire_bytes(&self.stage_tree) + 24 * batch as u64;
                let tree = self.stage_tree.clone();
                let lnl = self.lnl;
                Some(self.make_unit(
                    DprmlUnit::Nni {
                        tree,
                        lnl,
                        moves: slice,
                    },
                    cost,
                    wire,
                ))
            }
        }
    }

    fn accept_result(&mut self, result: TaskResult) {
        let payload = result.payload.into_inner::<DprmlResult>();
        if self.telemetry.is_enabled() {
            // Which kernel produced the numbers, and how well `P_v(t)`
            // reuse worked — so run reports document the backend behind
            // every ablation figure.
            self.telemetry
                .gauge_set("lik.backend", payload.stats.backend as f64);
            self.telemetry
                .counter_add("lik.pmat_cache_hits", payload.stats.pmat_hits);
            self.telemetry
                .counter_add("lik.pmat_cache_misses", payload.stats.pmat_misses);
        }
        match (&mut self.stage, payload.kind) {
            (Stage::Refine { next, .. }, DprmlResultKind::Refined { tree, lnl }) => {
                let next = *next;
                self.tree = tree;
                self.lnl = lnl;
                match next {
                    RefineNext::InsertNextTaxon => self.start_insert_or_done(),
                    RefineNext::TryNni => self.try_nni_or_advance(),
                }
            }
            (
                Stage::Insert {
                    edges,
                    next_edge,
                    outstanding,
                    best,
                    ..
                },
                DprmlResultKind::InsertBest { candidate },
            ) => {
                // Same tie-break as `best_candidate`: higher lnl, then
                // smaller edge id.
                let better = match best {
                    None => true,
                    Some(b) => {
                        candidate.ln_likelihood > b.ln_likelihood
                            || (candidate.ln_likelihood == b.ln_likelihood
                                && candidate.edge < b.edge)
                    }
                };
                if better {
                    *best = Some(candidate);
                }
                *outstanding -= 1;
                if *next_edge >= edges.len() && *outstanding == 0 {
                    let chosen = best.take().expect("at least one candidate");
                    self.tree = chosen.tree;
                    self.insertions_done += 1;
                    // Same cadence as the sequential reference: full
                    // refinement every `refine_every`-th insertion and
                    // after the last one.
                    let re = self.opts.refine_every.max(1);
                    let is_last = self.taxon_pos >= self.order.len();
                    if self.insertions_done.is_multiple_of(re) || is_last {
                        self.start_refine(RefineNext::TryNni);
                    } else {
                        self.lnl = chosen.ln_likelihood;
                        self.try_nni_or_advance();
                    }
                }
            }
            (
                Stage::Nni {
                    moves,
                    next_move,
                    outstanding,
                    best,
                },
                DprmlResultKind::NniBest { best: batch_best },
            ) => {
                if let Some((idx, lnl, tree)) = batch_best {
                    // Strictly-greater comparison, ties to the earliest
                    // move index — identical to `nni_improve`.
                    let better = match best {
                        None => true,
                        Some((bidx, blnl, _)) => lnl > *blnl || (lnl == *blnl && idx < *bidx),
                    };
                    if better {
                        *best = Some((idx, lnl, tree));
                    }
                }
                *outstanding -= 1;
                if *next_move >= moves.len() && *outstanding == 0 {
                    match best.take() {
                        Some((_, _, tree)) => {
                            self.tree = tree;
                            self.nni_round += 1;
                            self.start_refine(RefineNext::TryNni);
                        }
                        None => self.start_insert_or_done(),
                    }
                }
            }
            _ => unreachable!("result arrived for a stage that cannot have issued it"),
        }
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry, problem: ProblemId) {
        self.telemetry = telemetry;
        self.problem = problem;
        // The initial refine stage predates attachment; report it now so
        // every run's trace opens with its first stage boundary.
        self.note_stage();
    }

    fn is_complete(&self) -> bool {
        matches!(self.stage, Stage::Done)
    }

    fn final_output(&mut self) -> Payload {
        let newick = to_newick(&self.tree, &self.data.names);
        let wire = newick.len() as u64 + 16;
        Payload::new(
            PhyloOutput {
                tree: self.tree.clone(),
                ln_likelihood: self.lnl,
                newick,
            },
            wire,
        )
    }
}

/// Builds a DPRml [`Problem`] for an alignment and configuration.
///
/// `taxon_order` controls insertion order (defaults to row order). Each
/// problem instance owns its own manager, so several instances run
/// simultaneously on one server (Fig. 2's setup).
pub fn build_problem(
    data: Arc<PatternAlignment>,
    config: &DprmlConfig,
    taxon_order: Option<Vec<usize>>,
    instance_name: &str,
) -> Problem {
    let n = data.taxon_count();
    assert!(n >= 3, "need at least 3 taxa");
    let order = taxon_order.unwrap_or_else(|| (0..n).collect());
    assert_eq!(order.len(), n, "taxon order must cover all taxa");
    let model = Arc::new(config.build_model());
    // Setup download: the alignment (patterns × taxa bytes) + code.
    let setup = (data.pattern_count() * n) as u64 + 200_000;
    let dm = DprmlDm::new(
        data.clone(),
        model.clone(),
        config.search.clone(),
        config.cost_scale,
        order,
    );
    let algo = DprmlAlgo {
        data,
        model,
        opts: config.search.clone(),
    };
    Problem::new(instance_name, Box::new(dm), Arc::new(algo))
        .with_setup_bytes(setup)
        .with_codec(Arc::new(DprmlCodec))
}

/// Rough sequential cost (abstract ops) of a full stepwise run — used
/// by harnesses for sanity checks and progress estimates.
pub fn estimate_sequential_ops(data: &PatternAlignment, config: &DprmlConfig) -> f64 {
    let model = config.build_model();
    let n = data.taxon_count();
    let opts = &config.search;
    let mut total = 0.0;
    for i in 3..=n {
        let nodes = 2 * i - 2;
        let edges = 2 * i - 3;
        let tree_cost = (nodes * data.pattern_count() * model.rate_categories().ncat()) as f64
            * OPS_PER_NODE_UPDATE;
        // Insert stage: one candidate per edge.
        total +=
            edges as f64 * ((opts.candidate_rounds * 3) as f64 * 1.7 * tree_cost + 2.0 * tree_cost);
        // Refine + one NNI sweep (coarse).
        total += (opts.refine_rounds as usize * edges) as f64 * 1.7 * tree_cost;
        if opts.nni {
            total += (4 * (i.saturating_sub(3))) as f64
                * (opts.candidate_rounds as f64 * 1.7 * tree_cost + 2.0 * tree_cost);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_core::{run_threaded, SchedulerConfig, Server, SimRunner};
    use biodist_gridsim::deployments::homogeneous_lab;
    use biodist_phylo::evolve::{random_yule_tree, simulate_alignment};
    use biodist_phylo::search::stepwise_ml;

    fn test_alignment(n_taxa: usize, sites: usize, seed: u64) -> (Tree, Arc<PatternAlignment>) {
        let truth = random_yule_tree(n_taxa, 0.12, seed);
        let cfg = DprmlConfig::default();
        let model = cfg.build_model();
        let seqs = simulate_alignment(&truth, &model, sites, None, seed + 1);
        (truth, Arc::new(PatternAlignment::from_sequences(&seqs)))
    }

    fn small_unit_sched() -> SchedulerConfig {
        SchedulerConfig {
            target_unit_secs: 0.002,
            prior_ops_per_sec: 1e8,
            min_unit_ops: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn distributed_threaded_equals_sequential_reference() {
        let (_, data) = test_alignment(7, 150, 101);
        let config = DprmlConfig::default();
        let model = config.build_model();
        let (ref_tree, ref_lnl) = stepwise_ml(&data, &model, None, &config.search);

        let mut server = Server::new(small_unit_sched());
        let pid = server.submit(build_problem(data.clone(), &config, None, "dprml-0"));
        let (mut server, _) = run_threaded(server, 6);
        let out = server.take_output(pid).unwrap().into_inner::<PhyloOutput>();

        assert_eq!(
            out.tree.rf_distance(&ref_tree),
            0,
            "topology must match reference"
        );
        assert!(
            (out.ln_likelihood - ref_lnl).abs() < 1e-9,
            "lnl {} vs reference {ref_lnl}",
            out.ln_likelihood
        );
        assert!(
            server.stats(pid).completed_units > 3,
            "staged into multiple units"
        );
    }

    #[test]
    fn distributed_simulated_equals_sequential_reference() {
        let (_, data) = test_alignment(6, 120, 303);
        let config = DprmlConfig::default();
        let model = config.build_model();
        let (ref_tree, ref_lnl) = stepwise_ml(&data, &model, None, &config.search);

        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 20.0,
            ..Default::default()
        });
        let pid = server.submit(build_problem(data.clone(), &config, None, "dprml-sim"));
        let machines = homogeneous_lab(8, 404);
        let (report, mut server) = SimRunner::with_defaults(server, machines).run();
        let out = server.take_output(pid).unwrap().into_inner::<PhyloOutput>();

        assert_eq!(out.tree.rf_distance(&ref_tree), 0);
        assert!((out.ln_likelihood - ref_lnl).abs() < 1e-9);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn recovers_generating_topology_on_clean_data() {
        let (truth, data) = test_alignment(6, 800, 17);
        let config = DprmlConfig::default();
        let mut server = Server::new(small_unit_sched());
        let pid = server.submit(build_problem(data, &config, None, "dprml"));
        let (mut server, _) = run_threaded(server, 4);
        let out = server.take_output(pid).unwrap().into_inner::<PhyloOutput>();
        assert_eq!(
            out.tree.rf_distance(&truth),
            0,
            "should recover the true tree"
        );
        assert!(out.newick.ends_with(';'));
    }

    #[test]
    fn multiple_instances_run_simultaneously() {
        let (_, data) = test_alignment(6, 100, 505);
        let config = DprmlConfig::default();
        let mut server = Server::new(small_unit_sched());
        let pids: Vec<_> = (0..3)
            .map(|i| {
                server.submit(build_problem(
                    data.clone(),
                    &config,
                    None,
                    &format!("inst-{i}"),
                ))
            })
            .collect();
        let (mut server, _) = run_threaded(server, 6);
        let outs: Vec<PhyloOutput> = pids
            .iter()
            .map(|&p| server.take_output(p).unwrap().into_inner::<PhyloOutput>())
            .collect();
        // Identical instances must give identical answers.
        assert_eq!(outs[0].tree.rf_distance(&outs[1].tree), 0);
        assert!((outs[0].ln_likelihood - outs[2].ln_likelihood).abs() < 1e-9);
    }

    #[test]
    fn insertion_stage_issues_expected_candidate_count() {
        let (_, data) = test_alignment(5, 60, 99);
        let config = DprmlConfig::default();
        let model = Arc::new(config.build_model());
        let mut dm = DprmlDm::new(
            data.clone(),
            model,
            config.search.clone(),
            1.0,
            (0..5).collect(),
        );
        // Initial stage is one refine unit, then a barrier.
        let refine = dm.next_unit(1e12).expect("refine unit");
        assert!(
            dm.next_unit(1e12).is_none(),
            "barrier while refine outstanding"
        );
        // Feed the refine result through a real evaluation.
        let algo = DprmlAlgo {
            data: data.clone(),
            model: Arc::new(config.build_model()),
            opts: config.search.clone(),
        };
        let r = algo.compute(&refine);
        dm.accept_result(r);
        // Now the insert stage for taxon 3: a 3-taxon tree has 3 edges;
        // with a huge hint they fit one batch.
        let unit = dm.next_unit(1e12).expect("insert batch");
        let du = unit.payload.downcast_ref::<DprmlUnit>().unwrap();
        match du {
            DprmlUnit::Insert { edges, taxon, .. } => {
                assert_eq!(edges.len(), 3, "2i-5 = 3 edges for the 4th taxon");
                assert_eq!(*taxon, 3);
            }
            _ => panic!("expected insert unit"),
        }
        // Tiny hint → batches of one edge each.
        let mut dm2 = DprmlDm::new(
            data,
            Arc::new(config.build_model()),
            config.search.clone(),
            1.0,
            (0..5).collect(),
        );
        let refine2 = dm2.next_unit(1e12).unwrap();
        let r2 = algo.compute(&refine2);
        dm2.accept_result(r2);
        let u1 = dm2.next_unit(1.0).unwrap();
        match u1.payload.downcast_ref::<DprmlUnit>().unwrap() {
            DprmlUnit::Insert { edges, .. } => assert_eq!(edges.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn wire_codec_round_trips_every_unit_and_result_shape() {
        let tree = Tree::initial_triple([0, 1, 2], 0.1);
        let codec = DprmlCodec;

        let units = vec![
            DprmlUnit::Refine { tree: tree.clone() },
            DprmlUnit::Insert {
                tree: Arc::new(tree.clone()),
                taxon: 3,
                edges: vec![0, 1, 2],
            },
            DprmlUnit::Nni {
                tree: Arc::new(tree.clone()),
                lnl: -123.456,
                moves: vec![(0, (3, 0, 1)), (1, (3, 0, 2))],
            },
        ];
        for unit in units {
            let payload = Payload::new(unit, 64);
            let bytes = codec.encode_unit(&payload).unwrap();
            let back = codec.decode_unit(&bytes).unwrap();
            // Round-trip fidelity via re-encoding (DprmlUnit is not Eq).
            assert_eq!(codec.encode_unit(&back).unwrap(), bytes);
            assert!(codec.decode_unit(&bytes[..bytes.len() - 1]).is_err());
        }

        let kinds = vec![
            DprmlResultKind::Refined {
                tree: tree.clone(),
                lnl: -99.0,
            },
            DprmlResultKind::InsertBest {
                candidate: InsertionCandidate {
                    edge: 1,
                    ln_likelihood: -88.5,
                    tree: tree.clone(),
                },
            },
            DprmlResultKind::NniBest { best: None },
            DprmlResultKind::NniBest {
                best: Some((2, -77.25, tree.clone())),
            },
        ];
        for kind in kinds {
            let result = DprmlResult {
                kind,
                stats: KernelStats {
                    backend: 3,
                    pmat_hits: 1234,
                    pmat_misses: 56,
                },
            };
            let payload = Payload::new(result, 64);
            let bytes = codec.encode_result(&payload).unwrap();
            let back = codec.decode_result(&bytes).unwrap();
            assert_eq!(codec.encode_result(&back).unwrap(), bytes);
            let decoded = back.downcast_ref::<DprmlResult>().unwrap();
            assert_eq!(decoded.stats.backend, 3);
            assert_eq!(decoded.stats.pmat_hits, 1234);
            assert_eq!(decoded.stats.pmat_misses, 56);
        }

        // A CRC-clean but topologically nonsense tree is rejected by
        // from_parts-level validation, not trusted.
        let mut w = biodist_core::ByteWriter::new();
        w.u8(1); // Refine tag
        w.u32(1); // one node
        w.usize(0); // root
        w.opt_usize(Some(7)); // parent points outside the arena
        w.u32(0);
        w.f64(0.1);
        w.opt_usize(None);
        assert!(codec.decode_unit(&w.into_bytes()).is_err());
    }

    #[test]
    fn distributed_over_tcp_equals_sequential_reference() {
        let (_, data) = test_alignment(6, 100, 707);
        let config = DprmlConfig::default();
        let model = config.build_model();
        let (ref_tree, ref_lnl) = stepwise_ml(&data, &model, None, &config.search);

        let mut server = Server::new(small_unit_sched());
        let pid = server.submit(build_problem(data.clone(), &config, None, "dprml-tcp"));
        let (mut server, _) = biodist_core::run_tcp(server, 4);
        let out = server.take_output(pid).unwrap().into_inner::<PhyloOutput>();

        assert_eq!(out.tree.rf_distance(&ref_tree), 0);
        assert!((out.ln_likelihood - ref_lnl).abs() < 1e-9);
    }

    #[test]
    fn run_records_kernel_backend_and_pmat_cache_metrics() {
        let (_, data) = test_alignment(6, 100, 606);
        let config = DprmlConfig::default();
        let mut server = Server::new(small_unit_sched());
        server.set_telemetry(biodist_core::Telemetry::enabled());
        let pid = server.submit(build_problem(data, &config, None, "dprml-tel"));
        let (server, _) = run_threaded(server, 4);
        let snap = server.telemetry().metrics_snapshot();
        let backend = snap.gauge("lik.backend").expect("backend gauge recorded");
        assert!(
            biodist_phylo::LikBackend::from_index(backend as u8).is_some(),
            "gauge {backend} must name a real backend"
        );
        // The SIMD engines cache transition matrices; the scalar
        // baseline reports zeros for both counters.
        if backend as u8 != biodist_phylo::LikBackend::Scalar.index() {
            assert!(snap.counter("lik.pmat_cache_hits") > 0);
            assert!(snap.counter("lik.pmat_cache_misses") > 0);
        }
        let _ = pid;
    }

    #[test]
    fn estimate_sequential_ops_grows_with_taxa() {
        let (_, small) = test_alignment(5, 100, 1);
        let (_, big) = test_alignment(10, 100, 2);
        let cfg = DprmlConfig::default();
        assert!(estimate_sequential_ops(&big, &cfg) > 3.0 * estimate_sequential_ops(&small, &cfg));
    }
}
