//! `dprml` — the command-line tool (paper §3.2).
//!
//! ```text
//! dprml --alignment <aln.fasta> [--config <file>] [--workers N]
//!       [--output <tree.nwk>] [--order natural|maximin|jumble:<seed>]
//!       [--instances N] [--verify]
//! ```
//!
//! Reads an aligned FASTA file (all sequences equal length, DNA),
//! builds the maximum-likelihood tree by distributed stepwise
//! insertion under the configured substitution model, and writes the
//! Newick tree. `--order` selects the taxon addition order: input
//! order, distance-diverse (maximin over JC distances), or a seeded
//! random "jumble". `--instances N` runs N stochastic instances
//! *simultaneously* (each with its own jumbled order, keeping donors
//! busy across stage barriers — the paper's Fig. 2 usage) and reports
//! the best tree. `--verify` also runs the sequential reference for
//! each instance and asserts identical trees.

use biodist_core::{run_threaded, SchedulerConfig, Server};
use biodist_dprml::{build_problem, DprmlConfig, PhyloOutput};
use biodist_phylo::nj::{jc_distance_matrix, maximin_order};
use biodist_phylo::patterns::PatternAlignment;
use biodist_phylo::search::stepwise_ml;
use biodist_util::rng::{shuffle, Xoshiro256StarStar};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    alignment: String,
    config: Option<String>,
    workers: usize,
    output: Option<String>,
    order: String,
    instances: usize,
    verify: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        alignment: String::new(),
        config: None,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        output: None,
        order: "natural".into(),
        instances: 1,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--alignment" => args.alignment = value("--alignment")?,
            "--config" => args.config = Some(value("--config")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?
            }
            "--output" => args.output = Some(value("--output")?),
            "--order" => args.order = value("--order")?,
            "--instances" => {
                args.instances = value("--instances")?
                    .parse()
                    .map_err(|_| "--instances must be a positive integer".to_string())?
            }
            "--verify" => args.verify = true,
            "--help" | "-h" => {
                println!(
                    "usage: dprml --alignment <aln.fasta> [--config <file>] [--workers N] \
                     [--output <tree.nwk>] [--order natural|maximin|jumble:<seed>] \
                     [--instances N] [--verify]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.alignment.is_empty() {
        return Err("--alignment is required (see --help)".into());
    }
    if args.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if args.instances == 0 {
        return Err("--instances must be at least 1".into());
    }
    Ok(args)
}

fn taxon_order(spec: &str, data: &PatternAlignment) -> Result<Option<Vec<usize>>, String> {
    let n = data.taxon_count();
    match spec {
        "natural" => Ok(None),
        "maximin" => Ok(Some(maximin_order(&jc_distance_matrix(data)))),
        other => {
            if let Some(seed) = other.strip_prefix("jumble:") {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("bad jumble seed `{seed}`"))?;
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = Xoshiro256StarStar::new(seed);
                shuffle(&mut order, &mut rng);
                Ok(Some(order))
            } else {
                Err(format!(
                    "unknown order `{other}` (natural|maximin|jumble:<seed>)"
                ))
            }
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let config = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read config `{path}`: {e}"))?;
            DprmlConfig::parse(&text)?
        }
        None => DprmlConfig::default(),
    };

    let text = std::fs::read_to_string(&args.alignment)
        .map_err(|e| format!("cannot read alignment `{}`: {e}", args.alignment))?;
    let seqs = biodist_bioseq::parse_fasta(&text, biodist_bioseq::Alphabet::Dna)
        .map_err(|e| e.to_string())?;
    if seqs.len() < 3 {
        return Err("need at least 3 aligned sequences".into());
    }
    let data = Arc::new(PatternAlignment::from_sequences(&seqs));
    eprintln!(
        "dprml: {} taxa x {} sites ({} patterns), model {:?}, {} workers",
        data.taxon_count(),
        data.site_count(),
        data.pattern_count(),
        config.model,
        args.workers
    );

    // Instance 0 uses the requested order; extra stochastic instances
    // get their own jumbled orders so their stage barriers interleave.
    let mut orders: Vec<Option<Vec<usize>>> = vec![taxon_order(&args.order, &data)?];
    for i in 1..args.instances {
        orders.push(taxon_order(&format!("jumble:{}", 1000 + i), &data)?);
    }

    let mut server = Server::new(SchedulerConfig {
        target_unit_secs: 0.02,
        prior_ops_per_sec: 2e8,
        min_unit_ops: 1.0,
        ..Default::default()
    });
    let pids: Vec<_> = orders
        .iter()
        .enumerate()
        .map(|(i, order)| {
            server.submit(build_problem(
                data.clone(),
                &config,
                order.clone(),
                &format!("dprml-{i}"),
            ))
        })
        .collect();
    let (mut server, elapsed) = run_threaded(server, args.workers);
    let outs: Vec<PhyloOutput> = pids
        .iter()
        .map(|&p| {
            server
                .take_output(p)
                .expect("search completed")
                .into_inner::<PhyloOutput>()
        })
        .collect();
    for (i, out) in outs.iter().enumerate() {
        let stats = server.stats(pids[i]);
        eprintln!(
            "instance {i}: lnL = {:.4} ({} units)",
            out.ln_likelihood, stats.completed_units
        );
    }
    eprintln!("total wall clock: {elapsed:.2} s");

    if args.verify {
        eprintln!("verifying each instance against the sequential reference...");
        let model = config.build_model();
        for (out, order) in outs.iter().zip(&orders) {
            let (ref_tree, ref_lnl) = stepwise_ml(&data, &model, order.as_deref(), &config.search);
            if out.tree.rf_distance(&ref_tree) != 0 || (out.ln_likelihood - ref_lnl).abs() > 1e-6 {
                return Err("distributed tree differs from sequential reference".into());
            }
        }
        eprintln!("verified: distributed == sequential for all instances");
    }

    // Report the best instance (stochastic restarts keep the max).
    let out = outs
        .into_iter()
        .max_by(|a, b| a.ln_likelihood.total_cmp(&b.ln_likelihood))
        .expect("at least one instance");
    eprintln!("best instance lnL = {:.4}", out.ln_likelihood);

    match &args.output {
        Some(path) => {
            std::fs::write(path, format!("{}\n", out.newick))
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{}", out.newick),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dprml: error: {msg}");
            ExitCode::FAILURE
        }
    }
}
