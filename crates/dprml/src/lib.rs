//! # biodist-dprml
//!
//! DPRml (paper §3.2, ref \[9\]): distributed phylogeny reconstruction
//! by maximum likelihood on the framework. The stepwise-insertion
//! search \[11, 16\] is a *staged* computation: within a stage, the
//! `2i−5` candidate insertion points (and later the NNI rearrangement
//! moves) of the current tree are evaluated in parallel on donor
//! machines; a stage barrier follows while the server folds the
//! candidates, picks the winner, and opens the next stage. Running a
//! single instance therefore leaves clients idle at stage boundaries —
//! which is why the paper's Fig. 2 measures *6 problem instances
//! running simultaneously*, and why this crate provides a
//! multi-instance driver.
//!
//! The distributed search reproduces the sequential reference
//! (`biodist_phylo::search::stepwise_ml`) move for move: candidate
//! evaluation is a pure function, winners are chosen with the same
//! deterministic tie-breaks, so the final tree and likelihood agree
//! exactly.

pub mod config;
pub mod problem;

pub use config::DprmlConfig;
pub use problem::{build_problem, estimate_sequential_ops, PhyloOutput};
