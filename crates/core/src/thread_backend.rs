//! Real-thread execution backend.
//!
//! Runs a [`Server`]'s problems on actual OS threads (one per simulated
//! donor) with the wall clock as the time source. Its purpose is
//! correctness: the exact same `Server` + `Problem` objects the
//! simulator drives are executed with genuine concurrency, and the
//! integration tests assert distributed output == sequential reference.

use crate::fault::{DeliveryAction, FaultInjector, FaultPlan, PlanInterpreter};
use crate::server::{Assignment, Server};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Runs every submitted problem to completion on `n_workers` threads;
/// returns the server (holding outputs and statistics) and the elapsed
/// wall-clock seconds.
///
/// Workers that receive [`Assignment::Wait`] (stage barrier or
/// end-game) park on a condition variable that every result submission
/// signals, so barriers cost no CPU; a coarse timeout keeps the
/// periodic `check_timeouts` sweep alive even when no results arrive.
pub fn run_threaded(server: Server, n_workers: usize) -> (Server, f64) {
    run_threaded_faulty(server, n_workers, &FaultPlan::none(), 1.0)
}

/// [`run_threaded`] with a [`FaultPlan`] injected against a *scaled*
/// wall clock: the server and the plan see `now = wall_elapsed ×
/// time_scale` seconds, so the same plan times used on the simulator's
/// virtual clock land in milliseconds of real time here. Scheduler
/// durations (`lease_min_secs`, …) are interpreted in the same scaled
/// seconds.
///
/// Fault semantics on real threads:
///
/// * `LateJoin` — the worker thread sleeps before its first request;
/// * `Depart` — the worker exits its loop permanently and silently
///   (leases recover its in-flight work);
/// * `Crash` — a worker inside the downtime window stops requesting,
///   and a crash firing mid-unit discards the computed result before
///   submission (the in-flight work is lost, exactly as on the sim);
/// * `Slowdown` — the worker sleeps `(factor − 1) ×` the unit's actual
///   compute time, sampled at unit start;
/// * `DropResult` / `DuplicateResult` / `CorruptResult` — the delivery
///   is suppressed, doubled (the duplicate is recomputed — results are
///   not clonable), or routed to [`Server::result_corrupted`];
/// * `LinkDegrade` — ignored: there is no modelled network between a
///   thread and the in-process server.
pub fn run_threaded_faulty(
    server: Server,
    n_workers: usize,
    plan: &FaultPlan,
    time_scale: f64,
) -> (Server, f64) {
    assert!(n_workers >= 1, "need at least one worker");
    assert!(
        time_scale.is_finite() && time_scale > 0.0,
        "time scale must be finite and positive"
    );
    let tel = server.telemetry();
    let shared = Mutex::new(server);
    let progress = Condvar::new();
    let injector = Mutex::new(PlanInterpreter::new(plan, n_workers));
    let start = Instant::now();
    let now = move || start.elapsed().as_secs_f64() * time_scale;

    std::thread::scope(|scope| {
        for worker in 0..n_workers {
            let (shared, progress, injector) = (&shared, &progress, &injector);
            let tel = tel.clone();
            let join_at = plan.join_time(worker);
            let depart_at = plan.departure_time(worker);
            let crashes = plan.crashes(worker);
            scope.spawn(move || {
                let wall =
                    |plan_secs: f64| Duration::from_secs_f64(plan_secs.max(0.0) / time_scale);
                if let Some(t) = join_at {
                    // Absent until the late join.
                    std::thread::sleep(wall(t - now()));
                }
                tel.emit_at(
                    now(),
                    crate::telemetry::EventKind::MachineJoined { client: worker },
                );
                let mut guard = shared.lock().expect("server lock");
                loop {
                    let t = now();
                    if depart_at.is_some_and(|d| t >= d) {
                        // Permanent silent departure: in-flight leases
                        // expire and other workers pick up the units.
                        tel.emit_at(
                            t,
                            crate::telemetry::EventKind::MachineDeparted { client: worker },
                        );
                        break;
                    }
                    if let Some(&(at, down)) =
                        crashes.iter().find(|&&(at, down)| t >= at && t < at + down)
                    {
                        // Down for a reboot: release the server and
                        // sleep out the rest of the window.
                        tel.emit_at(
                            t,
                            crate::telemetry::EventKind::MachineCrashed {
                                client: worker,
                                down_secs: down,
                            },
                        );
                        drop(guard);
                        std::thread::sleep(wall(at + down - t));
                        guard = shared.lock().expect("server lock");
                        continue;
                    }
                    guard.check_timeouts(t);
                    match guard.request_work(worker, t) {
                        Assignment::Unit {
                            problem,
                            unit,
                            algorithm,
                        } => {
                            // Compute OUTSIDE the lock: this is the part
                            // that actually runs in parallel.
                            drop(guard);
                            let unit_start = now();
                            // Delivery is instantaneous in-process, so
                            // the transfer and queue-wait phases of this
                            // unit's span collapse to zero.
                            tel.emit_at(
                                unit_start,
                                crate::telemetry::EventKind::UnitDelivered {
                                    problem,
                                    unit: unit.id,
                                    client: worker,
                                },
                            );
                            tel.emit_at(
                                unit_start,
                                crate::telemetry::EventKind::ComputeStarted {
                                    problem,
                                    unit: unit.id,
                                    client: worker,
                                },
                            );
                            let result = algorithm.compute(&unit);
                            let factor = injector
                                .lock()
                                .expect("injector lock")
                                .compute_scale(worker, unit_start);
                            if factor > 1.0 {
                                // Straggler: stretch this unit's wall
                                // time by the slowdown factor.
                                let compute_wall = (now() - unit_start) / time_scale;
                                std::thread::sleep(Duration::from_secs_f64(
                                    compute_wall * (factor - 1.0),
                                ));
                            }
                            let done = now();
                            // A crash window overlapping the compute
                            // interval loses the result mid-unit.
                            let crashed = crashes
                                .iter()
                                .find(|&&(at, down)| at <= done && at + down > unit_start)
                                .copied();
                            if let Some((at, down)) = crashed {
                                // The crash orphans this unit's compute
                                // sub-span; the crash event closes every
                                // span the worker held.
                                tel.emit_at(
                                    done,
                                    crate::telemetry::EventKind::MachineCrashed {
                                        client: worker,
                                        down_secs: down,
                                    },
                                );
                                std::thread::sleep(wall(at + down - now()));
                                guard = shared.lock().expect("server lock");
                                continue;
                            }
                            let (action, wrong) = {
                                let mut inj = injector.lock().expect("injector lock");
                                (
                                    inj.delivery_action(worker, done),
                                    inj.wrong_result(worker, done),
                                )
                            };
                            tel.emit_at(
                                done,
                                crate::telemetry::EventKind::ComputeFinished {
                                    problem,
                                    unit: unit.id,
                                    client: worker,
                                },
                            );
                            guard = shared.lock().expect("server lock");
                            // A Byzantine donor lies: flip the encoded
                            // payload bytes before framing — the wire
                            // layer cannot catch it, only quorum compare
                            // can. An undecodable lie degrades to a
                            // corrupt delivery.
                            let mut action = action;
                            let mut result = result;
                            if wrong {
                                tel.emit_at(
                                    now(),
                                    crate::telemetry::EventKind::FaultInjected {
                                        client: worker,
                                        action: "wrong_result".to_string(),
                                    },
                                );
                                if let Some(codec) = guard.codec(problem) {
                                    if let Ok(mut bytes) = codec.encode_result(&result.payload) {
                                        crate::fault::flip_result_bytes(&mut bytes, worker);
                                        match codec.decode_result(&bytes) {
                                            Ok(payload) => {
                                                result = crate::problem::TaskResult {
                                                    unit_id: result.unit_id,
                                                    payload,
                                                }
                                            }
                                            Err(_) => action = DeliveryAction::Corrupt,
                                        }
                                    }
                                }
                            }
                            match action {
                                DeliveryAction::Deliver => {
                                    guard.submit_result(worker, problem, result, now());
                                    // A finished unit may release a stage
                                    // barrier or finish the run; wake the
                                    // parked workers.
                                    progress.notify_all();
                                }
                                DeliveryAction::Drop => {
                                    // Lost in transit: the server never
                                    // sees it; the lease must expire and
                                    // the unit be reissued.
                                    tel.emit_at(
                                        now(),
                                        crate::telemetry::EventKind::FaultInjected {
                                            client: worker,
                                            action: "drop".to_string(),
                                        },
                                    );
                                }
                                DeliveryAction::Duplicate => {
                                    tel.emit_at(
                                        now(),
                                        crate::telemetry::EventKind::FaultInjected {
                                            client: worker,
                                            action: "duplicate".to_string(),
                                        },
                                    );
                                    drop(guard);
                                    let copy = algorithm.compute(&unit);
                                    guard = shared.lock().expect("server lock");
                                    let at = now();
                                    guard.submit_result(worker, problem, result, at);
                                    guard.submit_result(worker, problem, copy, at);
                                    progress.notify_all();
                                }
                                DeliveryAction::Corrupt => {
                                    tel.emit_at(
                                        now(),
                                        crate::telemetry::EventKind::FaultInjected {
                                            client: worker,
                                            action: "corrupt".to_string(),
                                        },
                                    );
                                    guard.result_corrupted(worker, problem, unit.id, now());
                                    progress.notify_all();
                                }
                            }
                        }
                        Assignment::Wait => {
                            // Parked until some worker submits a result;
                            // the timeout bounds how stale the timeout
                            // sweep above can get.
                            let (g, _) = progress
                                .wait_timeout(guard, Duration::from_millis(5))
                                .expect("server lock");
                            guard = g;
                        }
                        Assignment::Finished => break,
                    }
                }
            });
        }
    });

    let elapsed = now();
    tel.flush();
    (shared.into_inner().expect("server lock"), elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::integration_problem;
    use crate::sched::SchedulerConfig;
    use crate::server::Server;

    fn fast_cfg() -> SchedulerConfig {
        SchedulerConfig {
            // Wall-clock throughput of the integration algorithm is far
            // above the simulator's abstract prior; size units to a few
            // milliseconds so the test exercises many round trips.
            target_unit_secs: 0.005,
            prior_ops_per_sec: 2e9,
            min_unit_ops: 1e4,
            ..Default::default()
        }
    }

    #[test]
    fn computes_pi_on_one_worker() {
        let mut server = Server::new(fast_cfg());
        let pid = server.submit(integration_problem(200_000));
        let (mut server, _) = run_threaded(server, 1);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
    }

    #[test]
    fn computes_pi_on_many_workers() {
        let mut server = Server::new(fast_cfg());
        let pid = server.submit(integration_problem(500_000));
        let (mut server, _) = run_threaded(server, 8);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        assert!(server.stats(pid).completed_units >= 2, "work was split");
    }

    #[test]
    fn runs_multiple_problems_simultaneously() {
        let mut server = Server::new(fast_cfg());
        let a = server.submit(integration_problem(100_000));
        let b = server.submit(integration_problem(150_000));
        let c = server.submit(integration_problem(200_000));
        let (mut server, _) = run_threaded(server, 4);
        for pid in [a, b, c] {
            let pi = server.take_output(pid).unwrap().into_inner::<f64>();
            assert!(
                (pi - std::f64::consts::PI).abs() < 1e-7,
                "problem {pid}: {pi}"
            );
        }
    }

    #[test]
    fn delivery_faults_on_real_threads_still_compute_pi() {
        use crate::fault::{FaultKind, FaultPlan};
        // Times below are in scaled seconds: scale 100 maps 5 scaled
        // seconds of lease to 50 ms of wall clock.
        let scale = 100.0;
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 0.5,
            prior_ops_per_sec: 2e7,
            min_unit_ops: 1e4,
            // Cap unit growth so every worker delivers several results
            // and each armed delivery fault has a delivery to hit.
            max_unit_ops: 2e6,
            lease_min_secs: 5.0,
            ..Default::default()
        });
        let pid = server.submit(integration_problem(400_000));
        // Arm every worker with the same three one-shot faults: test
        // threads can start late under a loaded runner, so tying faults
        // to one specific worker would be racy. Whichever workers end
        // up delivering, their first three deliveries are corrupted,
        // duplicated, then dropped.
        let mut plan = FaultPlan::new(0);
        for w in 0..4 {
            plan.push(0.0, w, FaultKind::CorruptResult);
            plan.push(0.0, w, FaultKind::DuplicateResult);
            plan.push(0.0, w, FaultKind::DropResult);
        }
        let (mut server, _) = run_threaded_faulty(server, 4, &plan, scale);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        let stats = server.stats(pid);
        assert!(
            stats.wasted_results >= 1,
            "duplicate must be discarded: {stats:?}"
        );
        assert!(
            stats.corrupted_results >= 1,
            "corruption must be detected: {stats:?}"
        );
        // The dropped and corrupted results force extra assignments
        // (reissue after lease expiry, or a redundant end-game copy —
        // whichever the scheduler reaches first).
        assert!(
            stats.assignments > stats.completed_units,
            "lost results must cost extra assignments: {stats:?}"
        );
    }

    #[test]
    fn churn_on_real_threads_still_computes_pi() {
        use crate::fault::{FaultKind, FaultPlan};
        let scale = 100.0;
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 0.5,
            prior_ops_per_sec: 2e7,
            min_unit_ops: 1e4,
            lease_min_secs: 5.0,
            ..Default::default()
        });
        let pid = server.submit(integration_problem(400_000));
        let plan = FaultPlan::new(0)
            .with(1.0, 0, FaultKind::Depart)
            .with(2.0, 1, FaultKind::LateJoin)
            .with(1.0, 2, FaultKind::Crash { down_secs: 3.0 })
            .with(
                0.5,
                3,
                FaultKind::Slowdown {
                    factor: 3.0,
                    duration_secs: 2.0,
                },
            );
        let (mut server, _) = run_threaded_faulty(server, 4, &plan, scale);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
    }

    #[test]
    fn parallel_result_is_bitwise_deterministic_per_unit_count() {
        // Floating-point folding order could vary across runs; the DM
        // folds in arrival order, so exact equality is only guaranteed
        // against tolerance, not bitwise. Assert the tolerance contract.
        let run = |workers: usize| {
            let mut server = Server::new(fast_cfg());
            let pid = server.submit(integration_problem(300_000));
            let (mut server, _) = run_threaded(server, workers);
            server.take_output(pid).unwrap().into_inner::<f64>()
        };
        let (a, b) = (run(2), run(6));
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
