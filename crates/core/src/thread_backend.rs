//! Real-thread execution backend.
//!
//! Runs a [`Server`]'s problems on actual OS threads (one per simulated
//! donor) with the wall clock as the time source. Its purpose is
//! correctness: the exact same `Server` + `Problem` objects the
//! simulator drives are executed with genuine concurrency, and the
//! integration tests assert distributed output == sequential reference.

use crate::server::{Assignment, Server};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Runs every submitted problem to completion on `n_workers` threads;
/// returns the server (holding outputs and statistics) and the elapsed
/// wall-clock seconds.
///
/// Workers that receive [`Assignment::Wait`] (stage barrier or
/// end-game) park on a condition variable that every result submission
/// signals, so barriers cost no CPU; a coarse timeout keeps the
/// periodic `check_timeouts` sweep alive even when no results arrive.
pub fn run_threaded(server: Server, n_workers: usize) -> (Server, f64) {
    assert!(n_workers >= 1, "need at least one worker");
    let shared = Mutex::new(server);
    let progress = Condvar::new();
    let start = Instant::now();
    let now = || start.elapsed().as_secs_f64();

    std::thread::scope(|scope| {
        for worker in 0..n_workers {
            let (shared, progress) = (&shared, &progress);
            scope.spawn(move || {
                let mut guard = shared.lock().expect("server lock");
                loop {
                    guard.check_timeouts(now());
                    match guard.request_work(worker, now()) {
                        Assignment::Unit { problem, unit, algorithm } => {
                            // Compute OUTSIDE the lock: this is the part
                            // that actually runs in parallel.
                            drop(guard);
                            let result = algorithm.compute(&unit);
                            guard = shared.lock().expect("server lock");
                            guard.submit_result(worker, problem, result, now());
                            // A finished unit may release a stage barrier
                            // or finish the run; wake the parked workers.
                            progress.notify_all();
                        }
                        Assignment::Wait => {
                            // Parked until some worker submits a result;
                            // the timeout bounds how stale the timeout
                            // sweep above can get.
                            let (g, _) = progress
                                .wait_timeout(guard, Duration::from_millis(5))
                                .expect("server lock");
                            guard = g;
                        }
                        Assignment::Finished => break,
                    }
                }
            });
        }
    });

    let elapsed = now();
    (shared.into_inner().expect("server lock"), elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::integration_problem;
    use crate::sched::SchedulerConfig;
    use crate::server::Server;

    fn fast_cfg() -> SchedulerConfig {
        SchedulerConfig {
            // Wall-clock throughput of the integration algorithm is far
            // above the simulator's abstract prior; size units to a few
            // milliseconds so the test exercises many round trips.
            target_unit_secs: 0.005,
            prior_ops_per_sec: 2e9,
            min_unit_ops: 1e4,
            ..Default::default()
        }
    }

    #[test]
    fn computes_pi_on_one_worker() {
        let mut server = Server::new(fast_cfg());
        let pid = server.submit(integration_problem(200_000));
        let (mut server, _) = run_threaded(server, 1);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
    }

    #[test]
    fn computes_pi_on_many_workers() {
        let mut server = Server::new(fast_cfg());
        let pid = server.submit(integration_problem(500_000));
        let (mut server, _) = run_threaded(server, 8);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        assert!(server.stats(pid).completed_units >= 2, "work was split");
    }

    #[test]
    fn runs_multiple_problems_simultaneously() {
        let mut server = Server::new(fast_cfg());
        let a = server.submit(integration_problem(100_000));
        let b = server.submit(integration_problem(150_000));
        let c = server.submit(integration_problem(200_000));
        let (mut server, _) = run_threaded(server, 4);
        for pid in [a, b, c] {
            let pi = server.take_output(pid).unwrap().into_inner::<f64>();
            assert!((pi - std::f64::consts::PI).abs() < 1e-7, "problem {pid}: {pi}");
        }
    }

    #[test]
    fn parallel_result_is_bitwise_deterministic_per_unit_count() {
        // Floating-point folding order could vary across runs; the DM
        // folds in arrival order, so exact equality is only guaranteed
        // against tolerance, not bitwise. Assert the tolerance contract.
        let run = |workers: usize| {
            let mut server = Server::new(fast_cfg());
            let pid = server.submit(integration_problem(300_000));
            let (mut server, _) = run_threaded(server, workers);
            server.take_output(pid).unwrap().into_inner::<f64>()
        };
        let (a, b) = (run(2), run(6));
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
