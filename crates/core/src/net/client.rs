//! Donor client threads for the TCP backend.
//!
//! Each client is one OS thread owning one socket at a time. The loop
//! mirrors the paper's donor daemon: request work, compute, submit,
//! repeat — plus the robustness the real deployment needed: heartbeats
//! so the server can tell "slow" from "gone", reconnect with jittered
//! exponential backoff (re-reading the [`super::Directory`], so a
//! restarted server on a new port is found), and idempotent result
//! resubmission — a result is retired only on a [`Frame::ResultAck`],
//! so an ack lost to a broken connection leads to a resend, never a
//! lost unit (the server dedups).
//!
//! Lifecycle faults from a [`FaultPlan`] (late join, permanent
//! departure, crash windows, slowdowns) are interpreted client-side
//! against the shared [`Clock`], exactly like the thread backend, so
//! identical plans mean identical stories on both transports.

use super::backoff::Backoff;
use super::cache::{chunk_digest, ChunkCache};
use super::wire::{encode_frame, Frame, FrameReader, ReadError};
use super::{Clock, Directory};
use crate::codec::{ChunkNeed, WireCodec};
use crate::fault::{FaultInjector, FaultPlan, PlanInterpreter};
use crate::problem::{Algorithm, Payload, WorkUnit};
use crate::server::Server;
use crate::telemetry::Telemetry;
use biodist_util::rng::SplitMix64;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning for the donor clients. Time-valued fields are in *scaled*
/// seconds (the [`Clock`]'s unit) unless suffixed `_wall`.
#[derive(Debug, Clone)]
pub struct NetClientOptions {
    /// Heartbeat cadence while idle/polling.
    pub heartbeat_interval: f64,
    /// How long to await a response frame before treating the
    /// connection as broken (triggers reconnect + resubmission).
    pub ack_timeout: f64,
    /// Sleep after a `Wait` before asking again.
    pub poll_interval: f64,
    /// Reconnect backoff base (doubles per consecutive failure, with
    /// ±50% deterministic jitter).
    pub reconnect_base: f64,
    /// Reconnect backoff cap.
    pub reconnect_cap: f64,
    /// Socket read timeout (wall time) — the granularity at which a
    /// blocked client notices shutdown flags and deadlines.
    pub read_timeout_wall: Duration,
    /// Pipelined dispatch depth: how many assignments the donor keeps
    /// prefetched (chunks fetched, unit hydrated) so the next compute
    /// starts without a request round-trip. 1 disables pipelining.
    pub queue_depth: usize,
    /// Capacity of the donor's chunk cache in bytes. Data a unit needs
    /// is fetched over the wire only when this cache misses.
    pub chunk_cache_bytes: u64,
    /// Cadence at which the donor ships a [`Frame::MetricsReport`]
    /// delta snapshot of its local metrics registry (scaled seconds).
    /// 0 disables shipping. Reports are fire-and-forget: a delta lost
    /// to a broken connection is dropped, not retried — metrics are
    /// advisory, results are not.
    pub metrics_report_interval: f64,
}

impl Default for NetClientOptions {
    fn default() -> Self {
        Self {
            heartbeat_interval: 0.5,
            ack_timeout: 2.0,
            poll_interval: 0.05,
            reconnect_base: 0.05,
            reconnect_cap: 2.0,
            read_timeout_wall: Duration::from_millis(5),
            queue_depth: 2,
            chunk_cache_bytes: 64 * 1024 * 1024,
            metrics_report_interval: 0.0,
        }
    }
}

/// The per-problem pieces a donor needs locally: the algorithm to run
/// and the codec to speak. Built from the server *before* it goes
/// behind the transport — modelling the paper's one-time shipping of
/// algorithm code to donors at problem-registration time.
#[derive(Clone)]
pub struct ClientKit {
    algorithms: Vec<Arc<dyn Algorithm>>,
    codecs: Vec<Arc<dyn WireCodec>>,
    telemetry: Telemetry,
}

impl ClientKit {
    /// Captures algorithm + codec for every submitted problem; errors
    /// if any problem lacks a [`WireCodec`] (it cannot go on the wire).
    /// The server's telemetry handle rides along so donor-side cache
    /// counters land in the same registry as the server's.
    pub fn from_server(server: &Server) -> Result<Self, String> {
        let mut algorithms = Vec::new();
        let mut codecs = Vec::new();
        for pid in 0..server.problem_count() {
            algorithms.push(server.algorithm(pid));
            codecs.push(server.codec(pid).ok_or_else(|| {
                format!(
                    "problem {pid} ({}) has no wire codec; register one with \
                     Problem::with_codec to run on the TCP backend",
                    server.problem_name(pid)
                )
            })?);
        }
        Ok(Self {
            algorithms,
            codecs,
            telemetry: server.telemetry(),
        })
    }

    fn algorithm(&self, pid: usize) -> Option<&Arc<dyn Algorithm>> {
        self.algorithms.get(pid)
    }

    fn codec(&self, pid: usize) -> Option<&Arc<dyn WireCodec>> {
        self.codecs.get(pid)
    }
}

/// Spawns `n_clients` donor threads against `directory`. They exit when
/// the server says `Finished`, their plan departs them, or `run_over`
/// is set (the orchestrator's backstop after the server completes).
pub fn spawn_clients(
    directory: Directory,
    clock: Clock,
    kit: ClientKit,
    n_clients: usize,
    plan: &FaultPlan,
    run_over: Arc<AtomicBool>,
    opts: NetClientOptions,
) -> Vec<JoinHandle<()>> {
    (0..n_clients)
        .map(|c| {
            let directory = directory.clone();
            let kit = kit.clone();
            let plan = plan.clone();
            let run_over = run_over.clone();
            let opts = opts.clone();
            thread::spawn(move || {
                ClientLoop::new(c, directory, clock, kit, &plan, n_clients, run_over, opts).run()
            })
        })
        .collect()
}

/// A result computed but not yet acknowledged — the idempotence unit.
struct PendingResult {
    problem: u64,
    unit: u64,
    payload: Vec<u8>,
}

/// A prefetched assignment: decoded, its chunks fetched and hydrated,
/// ready to compute without touching the wire again.
struct QueuedUnit {
    problem: u64,
    unit: u64,
    cost_ops: f64,
    payload: Payload,
}

struct ClientLoop {
    id: usize,
    directory: Directory,
    clock: Clock,
    kit: ClientKit,
    interp: PlanInterpreter,
    departure: Option<f64>,
    crashes: Vec<(f64, f64)>,
    join_at: Option<f64>,
    run_over: Arc<AtomicBool>,
    opts: NetClientOptions,
    rng: SplitMix64,
    conn: Option<(TcpStream, FrameReader)>,
    reconnect: Backoff,
    pending: Option<PendingResult>,
    last_heartbeat: f64,
    cache: ChunkCache,
    queue: VecDeque<QueuedUnit>,
    telemetry: Telemetry,
    /// Donor-local registry, shipped as delta snapshots (and cleared)
    /// every `metrics_report_interval`. Dual-written next to the shared
    /// handle so the server's merged view carries per-donor prefixes.
    local_metrics: crate::telemetry::MetricsRegistry,
    last_report: f64,
}

#[allow(clippy::too_many_arguments)]
impl ClientLoop {
    fn new(
        id: usize,
        directory: Directory,
        clock: Clock,
        kit: ClientKit,
        plan: &FaultPlan,
        n_clients: usize,
        run_over: Arc<AtomicBool>,
        opts: NetClientOptions,
    ) -> Self {
        Self {
            id,
            directory,
            clock,
            interp: PlanInterpreter::new(plan, n_clients),
            departure: plan.departure_time(id),
            crashes: plan.crashes(id),
            join_at: plan.join_time(id),
            run_over,
            rng: SplitMix64::new(0xC11E_27B1 ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            conn: None,
            reconnect: Backoff::new(opts.reconnect_base, opts.reconnect_cap, 6),
            pending: None,
            last_heartbeat: 0.0,
            cache: ChunkCache::new(opts.chunk_cache_bytes),
            queue: VecDeque::new(),
            telemetry: kit.telemetry.clone(),
            local_metrics: Default::default(),
            last_report: 0.0,
            kit,
            opts,
        }
    }

    fn run(mut self) {
        if let Some(t) = self.join_at {
            thread::sleep(self.clock.wall(t - self.clock.now()));
        }
        loop {
            if self.run_over.load(Ordering::SeqCst) {
                return;
            }
            let now = self.clock.now();
            if self.departure.is_some_and(|t| now >= t) {
                // Silent permanent departure (owner pulls the plug):
                // no Goodbye — leases/liveness must recover the work.
                return;
            }
            if self.handle_crash_window(now) {
                continue;
            }
            if self.conn.is_none() && !self.connect() {
                continue; // backoff slept inside connect()
            }
            // Resubmission first: a pending result outranks new work.
            if self.pending.is_some() {
                self.flush_pending();
                continue;
            }
            self.maybe_heartbeat();
            self.maybe_report_metrics();
            match self.request_and_compute() {
                Step::Continue => {}
                Step::Finished => {
                    self.send(&Frame::Goodbye {
                        client: self.id as u64,
                    });
                    return;
                }
            }
        }
    }

    /// If `now` is inside a crash window: drop the connection and any
    /// in-flight state (a crashed donor loses everything — pending
    /// result, prefetch queue, and the chunk cache), sleep out the
    /// remaining downtime, and report `true`.
    fn handle_crash_window(&mut self, now: f64) -> bool {
        for &(at, down) in &self.crashes {
            if now >= at && now < at + down {
                self.conn = None;
                self.pending = None;
                self.queue.clear();
                self.cache.clear();
                self.local_metrics = Default::default();
                // The crash event closes every span this donor held
                // (leases and compute sub-spans) in verify_spans.
                self.telemetry.emit_at(
                    now,
                    crate::telemetry::EventKind::MachineCrashed {
                        client: self.id,
                        down_secs: down,
                    },
                );
                let wake = at + down;
                thread::sleep(self.clock.wall(wake - now));
                return true;
            }
        }
        false
    }

    /// Connects via the directory and says Hello; on failure sleeps a
    /// jittered exponential backoff (shared [`Backoff`] implementation
    /// with the fetch failover ladder). Returns whether connected.
    fn connect(&mut self) -> bool {
        let addr = self.directory.origin();
        let stream = addr.and_then(|a| TcpStream::connect(a).ok());
        match stream {
            Some(mut stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(self.opts.read_timeout_wall));
                let _ = stream.write_all(&encode_frame(&Frame::Hello {
                    client: self.id as u64,
                }));
                self.conn = Some((stream, FrameReader::new()));
                self.reconnect.reset();
                true
            }
            None => {
                let delay = self.reconnect.delay_secs(&mut self.rng);
                self.reconnect.record_failure();
                thread::sleep(self.clock.wall(delay));
                false
            }
        }
    }

    fn drop_conn(&mut self) {
        self.conn = None;
    }

    fn send(&mut self, frame: &Frame) -> bool {
        let bytes = encode_frame(frame);
        if let Some((stream, _)) = self.conn.as_mut() {
            if stream.write_all(&bytes).is_ok() {
                return true;
            }
        }
        self.drop_conn();
        false
    }

    /// Reads frames until `accept` claims one, the ack timeout passes
    /// (`None`), or the connection breaks (`None` + dropped conn).
    /// Non-matching frames (stale acks after a reconnect, heartbeat
    /// acks) are skipped — the protocol is idempotent, so late
    /// responses are harmless.
    fn await_frame(&mut self, accept: impl Fn(&Frame) -> bool) -> Option<Frame> {
        let deadline = self.clock.now() + self.opts.ack_timeout;
        loop {
            if self.run_over.load(Ordering::SeqCst) || self.clock.now() > deadline {
                return None;
            }
            let (stream, reader) = self.conn.as_mut()?;
            match reader.poll(stream) {
                Ok(Some(frame)) if accept(&frame) => return Some(frame),
                Ok(Some(Frame::ReplicaAnnounce { endpoints })) => {
                    // Unsolicited topology update (the Hello reply, or
                    // a re-announcement): fold it into the directory.
                    self.directory.merge_replicas(&endpoints);
                }
                Ok(Some(_)) => {}               // stale/unsolicited frame: skip
                Ok(None) => {}                  // read timeout tick
                Err(ReadError::Decode(_)) => {} // mangled inbound frame: skip
                Err(ReadError::Io(_)) => {
                    self.drop_conn();
                    return None;
                }
            }
        }
    }

    /// Sends the pending result and awaits its ack. On timeout or a
    /// broken connection the pending result is kept and resent after
    /// reconnect — the server dedups, so at-least-once is safe.
    fn flush_pending(&mut self) {
        let Some((want_p, want_u, payload)) = self
            .pending
            .as_ref()
            .map(|p| (p.problem, p.unit, p.payload.clone()))
        else {
            return;
        };
        let frame = Frame::SubmitResult {
            client: self.id as u64,
            problem: want_p,
            unit: want_u,
            payload,
        };
        if !self.send(&frame) {
            return;
        }
        let ack = self.await_frame(|f| {
            matches!(f, Frame::ResultAck { problem, unit, .. }
                     if *problem == want_p && *unit == want_u)
        });
        if ack.is_some() {
            // Accepted or nacked (duplicate/corrupt) — either way the
            // server has ruled and the pending copy is retired.
            self.pending = None;
        }
    }

    fn maybe_heartbeat(&mut self) {
        let now = self.clock.now();
        if now - self.last_heartbeat >= self.opts.heartbeat_interval {
            self.last_heartbeat = now;
            self.send(&Frame::Heartbeat {
                client: self.id as u64,
            });
            // The ack is skipped by the next await_frame; no wait here.
        }
    }

    /// Ships the local registry as a delta snapshot when the cadence is
    /// due. Fire-and-forget: the delta is reset whether or not the send
    /// lands — a lost report skews counters, never correctness.
    fn maybe_report_metrics(&mut self) {
        if self.opts.metrics_report_interval <= 0.0 {
            return;
        }
        let now = self.clock.now();
        if now - self.last_report < self.opts.metrics_report_interval {
            return;
        }
        self.last_report = now;
        let local = std::mem::take(&mut self.local_metrics);
        self.send(&Frame::MetricsReport {
            client: self.id as u64,
            snapshot: local.snapshot().to_wire_bytes(),
        });
    }

    fn request_and_compute(&mut self) -> Step {
        // Pipelined dispatch: top the prefetch queue up to
        // `queue_depth` assignments — each decoded, its chunks fetched
        // (cache misses only) and hydrated — then compute the front.
        while self.queue.len() < self.opts.queue_depth.max(1) {
            if !self.send(&Frame::RequestWork {
                client: self.id as u64,
            }) {
                break;
            }
            let reply = self.await_frame(|f| {
                matches!(f, Frame::AssignUnit { .. } | Frame::Wait | Frame::Finished)
            });
            match reply {
                Some(Frame::AssignUnit {
                    problem,
                    unit,
                    cost_ops,
                    payload,
                }) => self.enqueue_assignment(problem, unit, cost_ops, &payload),
                Some(Frame::Wait) => break,
                Some(Frame::Finished) => {
                    // Every problem is complete; any queued units could
                    // only produce wasted results.
                    self.queue.clear();
                    return Step::Finished;
                }
                _ => break, // timeout or broken conn: reconnect path
            }
        }
        match self.queue.pop_front() {
            Some(qu) => self.compute_queued(qu),
            None => self.parked_wait(self.opts.poll_interval),
        }
        Step::Continue
    }

    /// A real parked wait with a deadline, replacing the old fixed
    /// sleep after a `Wait`: the client blocks *on the socket* for up
    /// to `scaled_secs`, so any inbound frame (a replica
    /// re-announcement, a stale ack) ends the pause immediately instead
    /// of after a poll tick. Degrades to a plain sleep with no
    /// connection.
    fn parked_wait(&mut self, scaled_secs: f64) {
        let wall = self.clock.wall(scaled_secs);
        if self.conn.is_none() {
            thread::sleep(wall);
            return;
        }
        let deadline = std::time::Instant::now() + wall;
        if let Some((stream, _)) = self.conn.as_mut() {
            let _ = stream.set_read_timeout(Some(wall.max(Duration::from_millis(1))));
        }
        loop {
            if self.run_over.load(Ordering::SeqCst) {
                break;
            }
            let Some((stream, reader)) = self.conn.as_mut() else {
                return;
            };
            match reader.poll(stream) {
                Ok(Some(Frame::ReplicaAnnounce { endpoints })) => {
                    self.directory.merge_replicas(&endpoints);
                    break;
                }
                Ok(Some(_)) => break, // any inbound frame ends the pause
                Ok(None) => {
                    if std::time::Instant::now() >= deadline {
                        break;
                    }
                }
                Err(ReadError::Decode(_)) => break,
                Err(ReadError::Io(_)) => {
                    self.drop_conn();
                    return;
                }
            }
        }
        if let Some((stream, _)) = self.conn.as_mut() {
            let _ = stream.set_read_timeout(Some(self.opts.read_timeout_wall));
        }
    }

    /// Decodes an assignment, fetches the chunks it needs (donor cache
    /// first, `ChunkRequest` on miss), hydrates it, and queues it ready
    /// to compute. Any failure simply drops the unit — the server's
    /// lease expiry recovers it.
    fn enqueue_assignment(&mut self, problem: u64, unit: u64, cost_ops: f64, payload: &[u8]) {
        let pid = problem as usize;
        let Some(codec) = self.kit.codec(pid).cloned() else {
            return; // unknown problem id: drop; lease expiry recovers
        };
        let Ok(decoded) = codec.decode_unit(payload) else {
            return; // undecodable unit: drop; lease expiry recovers
        };
        let needs = codec.unit_chunks(&decoded);
        let hydrated = if needs.is_empty() {
            decoded
        } else {
            let Some(chunks) = self.fetch_chunks(problem, &needs) else {
                return; // transfer failed: drop; lease expiry recovers
            };
            match codec.hydrate_unit(decoded, &chunks) {
                Ok(p) => p,
                Err(_) => return,
            }
        };
        // The unit is hydrated and ready: the donor-side delivery point
        // of its span (transfer ends, pipeline queue-wait begins).
        self.telemetry.emit_at(
            self.clock.now(),
            crate::telemetry::EventKind::UnitDelivered {
                problem: pid,
                unit,
                client: self.id,
            },
        );
        self.queue.push_back(QueuedUnit {
            problem,
            unit,
            cost_ops,
            payload: hydrated,
        });
    }

    /// Assembles the chunk bytes a unit needs, in `needs` order. Cache
    /// hits cost zero wire bytes; misses go out as [`Frame::ChunkRequest`].
    fn fetch_chunks(
        &mut self,
        problem: u64,
        needs: &[ChunkNeed],
    ) -> Option<Vec<(u64, Arc<Vec<u8>>)>> {
        let mut out = Vec::with_capacity(needs.len());
        for need in needs {
            if let Some(bytes) = self.cache.get_verified(need.digest) {
                self.telemetry.counter_add("cache.hits", 1);
                self.local_metrics.counter_add("cache.hits", 1);
                self.telemetry.emit_at(
                    self.clock.now(),
                    crate::telemetry::EventKind::CacheHit {
                        client: self.id,
                        digest: need.digest,
                    },
                );
                out.push((need.chunk, bytes));
                continue;
            }
            self.telemetry.counter_add("cache.misses", 1);
            self.local_metrics.counter_add("cache.misses", 1);
            let t = self.clock.now();
            self.telemetry.emit_at(
                t,
                crate::telemetry::EventKind::CacheMiss {
                    client: self.id,
                    digest: need.digest,
                },
            );
            self.telemetry.emit_at(
                t,
                crate::telemetry::EventKind::ChunkFetchStarted {
                    client: self.id,
                    digest: need.digest,
                },
            );
            out.push((need.chunk, self.fetch_one(problem, need)?));
        }
        Some(out)
    }

    /// Fetches one chunk through the failover ladder: the routed
    /// replica candidates first (rendezvous order, healthy endpoints
    /// only), the origin as last resort. Every failure — connect
    /// refusal, timeout, `ChunkMissing`, digest mismatch — marks the
    /// endpoint dead in the directory, counts a failover, and falls
    /// through to the next rung after a jittered backoff. Received
    /// bytes are verified against the digest the unit advertised
    /// before caching, so no endpoint can launder wrong bytes.
    fn fetch_one(&mut self, problem: u64, need: &ChunkNeed) -> Option<Arc<Vec<u8>>> {
        let candidates =
            self.directory
                .candidates_for(need.digest, self.id as u64, 2, self.clock.now());
        if !candidates.is_empty() {
            self.telemetry.counter_add("replica.fetches", 1);
        }
        let mut backoff = Backoff::new(self.opts.reconnect_base, self.opts.reconnect_cap, 6);
        for (rung, addr) in candidates.into_iter().enumerate() {
            if let Some(payload) = self.fetch_from_replica(addr, problem, need) {
                self.directory.mark_alive(addr);
                self.telemetry
                    .counter_add("replica.bytes_replica", payload.len() as u64);
                self.telemetry.emit_at(
                    self.clock.now(),
                    crate::telemetry::EventKind::ChunkFetchFinished {
                        client: self.id,
                        digest: need.digest,
                        replica: true,
                    },
                );
                return Some(self.cache_fetched(need, payload));
            }
            self.directory.mark_dead(addr, self.clock.now());
            self.telemetry.counter_add("replica.failovers", 1);
            self.local_metrics.counter_add("replica.failovers", 1);
            self.telemetry.emit_at(
                self.clock.now(),
                crate::telemetry::EventKind::ReplicaFailover {
                    client: self.id,
                    replica: rung,
                },
            );
            let delay = backoff.delay_secs(&mut self.rng);
            backoff.record_failure();
            thread::sleep(self.clock.wall(delay));
        }
        // Origin, over the main connection: the fallback of last resort.
        for _attempt in 0..3 {
            if !self.send(&Frame::ChunkRequest {
                client: self.id as u64,
                problem,
                chunk: need.chunk,
            }) {
                return None;
            }
            let reply = self.await_frame(|f| {
                matches!(f, Frame::ChunkData { problem: p, chunk: c, .. }
                         if *p == problem && *c == need.chunk)
                    || matches!(f, Frame::ChunkMissing { problem: p, chunk: c }
                         if *p == problem && *c == need.chunk)
            })?;
            let Frame::ChunkData {
                digest, payload, ..
            } = reply
            else {
                // ChunkMissing: the origin does not hold the chunk, so
                // no rung can — drop the unit; lease expiry recovers it.
                return None;
            };
            if digest != need.digest || chunk_digest(&payload) != need.digest {
                continue; // wrong bytes: never cached, fetch again
            }
            self.telemetry
                .counter_add("replica.bytes_origin", payload.len() as u64);
            self.telemetry.emit_at(
                self.clock.now(),
                crate::telemetry::EventKind::ChunkFetchFinished {
                    client: self.id,
                    digest: need.digest,
                    replica: false,
                },
            );
            return Some(self.cache_fetched(need, payload));
        }
        None
    }

    /// One replica rung of the ladder: a dedicated short-lived
    /// connection, one request, one digest-verified reply. `None` on
    /// refusal, timeout, `ChunkMissing`, connection reset, or a digest
    /// mismatch — the caller treats them all as "this endpoint is no
    /// good right now".
    fn fetch_from_replica(
        &mut self,
        addr: SocketAddr,
        problem: u64,
        need: &ChunkNeed,
    ) -> Option<Vec<u8>> {
        let mut stream = TcpStream::connect(addr).ok()?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.opts.read_timeout_wall));
        stream
            .write_all(&encode_frame(&Frame::ChunkRequest {
                client: self.id as u64,
                problem,
                chunk: need.chunk,
            }))
            .ok()?;
        let mut reader = FrameReader::new();
        let deadline = self.clock.now() + self.opts.ack_timeout;
        loop {
            if self.run_over.load(Ordering::SeqCst) || self.clock.now() > deadline {
                return None;
            }
            match reader.poll(&mut stream) {
                Ok(Some(Frame::ChunkData {
                    problem: p,
                    chunk: c,
                    digest,
                    payload,
                })) if p == problem && c == need.chunk => {
                    if digest != need.digest || chunk_digest(&payload) != need.digest {
                        return None; // self-verification failed: fail over
                    }
                    return Some(payload);
                }
                Ok(Some(Frame::ChunkMissing {
                    problem: p,
                    chunk: c,
                })) if p == problem && c == need.chunk => return None,
                Ok(Some(_)) | Ok(None) => {} // unsolicited frame / timeout tick
                Err(ReadError::Decode(_)) => {} // mangled frame: keep waiting
                Err(ReadError::Io(_)) => return None,
            }
        }
    }

    /// Counts and caches verified chunk bytes.
    fn cache_fetched(&mut self, need: &ChunkNeed, payload: Vec<u8>) -> Arc<Vec<u8>> {
        self.telemetry
            .counter_add("cache.bytes_fetched", payload.len() as u64);
        self.local_metrics
            .counter_add("cache.bytes_fetched", payload.len() as u64);
        let bytes = Arc::new(payload);
        let before = self.cache.stats().evictions;
        self.cache.insert(need.digest, bytes.clone());
        let evicted = self.cache.stats().evictions - before;
        if evicted > 0 {
            self.telemetry.counter_add("cache.evictions", evicted);
        }
        bytes
    }

    fn compute_queued(&mut self, qu: QueuedUnit) {
        let pid = qu.problem as usize;
        let Some(algorithm) = self.kit.algorithm(pid).cloned() else {
            return; // unknown problem id: drop; lease expiry recovers
        };
        let Some(codec) = self.kit.codec(pid).cloned() else {
            return;
        };
        let (problem, unit) = (qu.problem, qu.unit);
        let started = self.clock.now();
        self.telemetry.emit_at(
            started,
            crate::telemetry::EventKind::ComputeStarted {
                problem: pid,
                unit: qu.unit,
                client: self.id,
            },
        );
        let wu = WorkUnit {
            id: qu.unit,
            payload: qu.payload,
            cost_ops: qu.cost_ops,
        };
        let result = algorithm.compute(&wu);
        // Straggler faults stretch the unit's wall time, like the
        // thread backend: factor sampled once at unit start.
        let scale = self.interp.compute_scale(self.id, started);
        if scale > 1.0 {
            let real = self.clock.now() - started;
            thread::sleep(self.clock.wall(real * (scale - 1.0)));
        }
        // A crash window that opened mid-compute swallows the result —
        // and everything else the donor held in memory.
        let done = self.clock.now();
        if let Some(&(_, down)) = self
            .crashes
            .iter()
            .find(|&&(at, _down)| started < at && done >= at)
        {
            self.drop_conn();
            self.queue.clear();
            self.cache.clear();
            self.local_metrics = Default::default();
            // The orphaned compute sub-span is closed by the crash
            // event's client-wide closure.
            self.telemetry.emit_at(
                done,
                crate::telemetry::EventKind::MachineCrashed {
                    client: self.id,
                    down_secs: down,
                },
            );
            return;
        }
        self.telemetry.emit_at(
            done,
            crate::telemetry::EventKind::ComputeFinished {
                problem: pid,
                unit: qu.unit,
                client: self.id,
            },
        );
        self.local_metrics.counter_add("units_computed", 1);
        self.local_metrics.observe(
            "compute.secs",
            crate::telemetry::LATENCY_BOUNDS,
            done - started,
        );
        let Ok(mut encoded) = codec.encode_result(&result.payload) else {
            return;
        };
        // A Byzantine donor lies: flip the encoded payload bytes *here*,
        // before the frame CRC is computed, so the wire layer delivers
        // the lie intact — only server-side quorum compare can catch it.
        if self.interp.wrong_result(self.id, done) {
            crate::fault::flip_result_bytes(&mut encoded, self.id);
            self.telemetry
                .emit(crate::telemetry::EventKind::FaultInjected {
                    client: self.id,
                    action: "wrong_result".to_string(),
                });
        }
        self.pending = Some(PendingResult {
            problem,
            unit,
            payload: encoded,
        });
        self.flush_pending();
    }
}

enum Step {
    Continue,
    Finished,
}
