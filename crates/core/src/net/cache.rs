//! Donor-side chunk cache: a bounded, byte-capacity LRU keyed by
//! *content digest*.
//!
//! Work units reference their input data as `(chunk id, digest, bytes)`
//! triples; a donor fetches the residues over the wire only when the
//! digest is absent here (see `net::client`), so a database chunk
//! crosses the link once per donor and every later unit touching it —
//! even from a different problem with identical data — is served
//! locally. Keying by content digest rather than `(problem, chunk)` is
//! what makes the cross-problem reuse work: a repeated query over the
//! same database hits the warm cache instead of the network.
//!
//! The cache is deliberately free of I/O and telemetry: it is pure data
//! structure + counters, so the property suite can drive it with a
//! seeded RNG and check its invariants exactly (capacity never
//! exceeded, eviction strictly in access order, hits never re-transfer,
//! digest mismatch forces a refetch). The transport layers translate
//! [`CacheStats`] deltas into the metrics registry.

use std::collections::HashMap;
use std::sync::Arc;

/// FNV-1a digest of a chunk's wire bytes — the cache key and the
/// integrity check a client applies to every `ChunkData` frame before
/// trusting it.
pub fn chunk_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Monotonic counters describing a cache's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Verified lookups that returned cached bytes.
    pub hits: u64,
    /// Lookups that found nothing usable (absent or digest mismatch).
    pub misses: u64,
    /// Entries removed to make room (or discarded as corrupt).
    pub evictions: u64,
}

/// A bounded LRU of chunk bytes, keyed by content digest.
#[derive(Debug, Default)]
pub struct ChunkCache {
    capacity_bytes: u64,
    used_bytes: u64,
    entries: HashMap<u64, Arc<Vec<u8>>>,
    /// Access order, least-recently-used first.
    order: Vec<u64>,
    stats: CacheStats,
}

impl ChunkCache {
    /// An empty cache holding at most `capacity_bytes` of chunk data.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            ..Self::default()
        }
    }

    /// The configured byte capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently held (always ≤ capacity).
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `digest` is present (no access-order side effect).
    pub fn contains(&self, digest: u64) -> bool {
        self.entries.contains_key(&digest)
    }

    /// The lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Digests in eviction order: least-recently-used first.
    pub fn lru_order(&self) -> Vec<u64> {
        self.order.clone()
    }

    fn touch(&mut self, digest: u64) {
        if let Some(pos) = self.order.iter().position(|&d| d == digest) {
            self.order.remove(pos);
        }
        self.order.push(digest);
    }

    fn remove_entry(&mut self, digest: u64) {
        if let Some(bytes) = self.entries.remove(&digest) {
            self.used_bytes -= bytes.len() as u64;
            if let Some(pos) = self.order.iter().position(|&d| d == digest) {
                self.order.remove(pos);
            }
        }
    }

    /// Looks up `digest`, *re-verifying the stored bytes against it*: a
    /// hit refreshes the entry's recency and returns the bytes; an
    /// absent key is a miss; present-but-mismatched bytes (a corrupted
    /// entry) are evicted and reported as a miss, forcing the caller to
    /// refetch from the server.
    pub fn get_verified(&mut self, digest: u64) -> Option<Arc<Vec<u8>>> {
        match self.entries.get(&digest) {
            Some(bytes) if chunk_digest(bytes) == digest => {
                let bytes = bytes.clone();
                self.touch(digest);
                self.stats.hits += 1;
                Some(bytes)
            }
            Some(_) => {
                self.remove_entry(digest);
                self.stats.evictions += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `bytes` under `digest` as the most-recently-used entry,
    /// evicting least-recently-used entries until it fits. Returns
    /// `false` (and caches nothing) when the chunk alone exceeds the
    /// capacity — the caller still holds the bytes it fetched, so the
    /// unit proceeds; the cache just cannot amortise it.
    ///
    /// The digest is trusted here: callers validate `ChunkData` frames
    /// with [`chunk_digest`] *before* inserting.
    pub fn insert(&mut self, digest: u64, bytes: Arc<Vec<u8>>) -> bool {
        let size = bytes.len() as u64;
        if size > self.capacity_bytes {
            return false;
        }
        self.remove_entry(digest);
        while self.used_bytes + size > self.capacity_bytes {
            let victim = self.order[0];
            self.remove_entry(victim);
            self.stats.evictions += 1;
        }
        self.used_bytes += size;
        self.entries.insert(digest, bytes);
        self.order.push(digest);
        true
    }

    /// Drops every entry (a crashed donor loses its cache; the stats
    /// survive — they describe the lifetime, not the contents).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(fill: u8, len: usize) -> (u64, Arc<Vec<u8>>) {
        let bytes = Arc::new(vec![fill; len]);
        (chunk_digest(&bytes), bytes)
    }

    #[test]
    fn hit_refreshes_recency_and_miss_counts() {
        let mut c = ChunkCache::new(100);
        let (d1, b1) = chunk(1, 40);
        let (d2, b2) = chunk(2, 40);
        assert!(c.insert(d1, b1));
        assert!(c.insert(d2, b2));
        assert_eq!(c.lru_order(), vec![d1, d2]);
        assert!(c.get_verified(d1).is_some());
        assert_eq!(c.lru_order(), vec![d2, d1], "hit moves d1 to MRU");
        assert!(c.get_verified(0xBAD).is_none());
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn eviction_follows_access_order_and_respects_capacity() {
        let mut c = ChunkCache::new(100);
        let (d1, b1) = chunk(1, 40);
        let (d2, b2) = chunk(2, 40);
        let (d3, b3) = chunk(3, 40);
        c.insert(d1, b1);
        c.insert(d2, b2);
        c.get_verified(d1); // d2 is now LRU
        assert!(c.insert(d3, b3));
        assert!(c.used_bytes() <= c.capacity_bytes());
        assert!(!c.contains(d2), "LRU entry is the victim");
        assert!(c.contains(d1) && c.contains(d3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_chunk_is_refused_without_evicting_anything() {
        let mut c = ChunkCache::new(50);
        let (d1, b1) = chunk(1, 30);
        c.insert(d1, b1);
        let (big, bytes) = chunk(9, 51);
        assert!(!c.insert(big, bytes));
        assert!(c.contains(d1), "resident entries survive the refusal");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn corrupt_entry_is_evicted_and_reported_as_miss() {
        let mut c = ChunkCache::new(100);
        let bytes = Arc::new(vec![7u8; 20]);
        let wrong_digest = chunk_digest(&bytes) ^ 1;
        c.insert(wrong_digest, bytes); // simulate a corrupted entry
        assert!(c.get_verified(wrong_digest).is_none());
        assert!(!c.contains(wrong_digest), "corrupt entry must not linger");
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn clear_empties_contents_but_keeps_lifetime_stats() {
        let mut c = ChunkCache::new(100);
        let (d1, b1) = chunk(1, 10);
        c.insert(d1, b1);
        c.get_verified(d1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats().hits, 1);
    }
}
