//! The TCP-facing server: accept loop, per-connection frame handlers,
//! and a ticker thread for lease sweeps, heartbeat liveness and
//! periodic scheduler snapshots.
//!
//! The [`crate::Server`] itself stays single-threaded behind a mutex —
//! exactly the paper's design, where one server process coordinated
//! ~200 donors and the per-request critical section is tiny (scheduling
//! is O(clients), folding is the `DataManager`'s job). Connection
//! handlers only hold the lock for the duration of one request; unit
//! computation happens on the far side of the socket.

use super::checkpoint::CheckpointWriter;
use super::wire::{encode_frame, DecodeError, Frame, FrameReader, ReadError, SUBMIT_RESULT_TYPE};
use super::Clock;
use crate::codec::ByteReader;
use crate::sched::ClientId;
use crate::server::{Assignment, Server};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning for [`NetServer`]. Time-valued fields are in *scaled* seconds
/// (the [`Clock`]'s unit), so the same options work at any time scale.
#[derive(Debug, Clone)]
pub struct NetServerOptions {
    /// A client silent for longer than this (no frame of any kind) is
    /// declared gone: its leases reissue immediately instead of waiting
    /// for lease expiry. Scaled seconds.
    pub liveness_timeout: f64,
    /// Ticker period (lease sweep + liveness check), wall time.
    pub tick_wall: Duration,
    /// Append a scheduler snapshot to the checkpoint log every this
    /// many ticks (0 disables periodic snapshots).
    pub snapshot_every_ticks: u64,
    /// When set, the ticker appends periodic [`crate::SchedSnapshot`]
    /// records here so a recovered server starts with warm throughput
    /// estimates. (Unit issue/fold journaling is separate: install the
    /// writer as the server's journal via [`crate::Server::set_journal`].)
    pub checkpoint: Option<CheckpointWriter>,
}

impl Default for NetServerOptions {
    fn default() -> Self {
        Self {
            liveness_timeout: 5.0,
            tick_wall: Duration::from_millis(2),
            snapshot_every_ticks: 50,
            checkpoint: None,
        }
    }
}

struct Shared {
    /// `None` after `wait()` hands the server back or `kill()` drops it
    /// (simulated server-process death).
    server: Mutex<Option<Server>>,
    done: Condvar,
    last_seen: Mutex<HashMap<ClientId, f64>>,
    /// Hard stop: handlers and the accept loop exit promptly.
    kill: AtomicBool,
    /// Cloned off the server at start so wire-level counters and sweep
    /// events don't need the server lock.
    telemetry: crate::telemetry::Telemetry,
    /// Chunk replica endpoints, announced to every donor on `Hello`
    /// and snapshotted to the checkpoint log. Set after start (replicas
    /// bind once the origin's address is known).
    replicas: Mutex<Vec<SocketAddr>>,
}

/// A running TCP server around a [`Server`]. Bind with [`NetServer::start`],
/// then either [`NetServer::wait`] for completion or [`NetServer::kill`]
/// it mid-run to simulate a server crash (the checkpoint log survives;
/// [`super::recover`] rebuilds the state).
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: JoinHandle<()>,
    ticker_thread: JoinHandle<()>,
}

impl NetServer {
    /// Binds an ephemeral loopback port and starts serving `server`.
    pub fn start(server: Server, clock: Clock, opts: NetServerOptions) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let telemetry = server.telemetry();
        let shared = Arc::new(Shared {
            server: Mutex::new(Some(server)),
            done: Condvar::new(),
            last_seen: Mutex::new(HashMap::new()),
            kill: AtomicBool::new(false),
            telemetry,
            replicas: Mutex::new(Vec::new()),
        });
        let accept_thread = {
            let shared = shared.clone();
            thread::spawn(move || accept_loop(&listener, &shared, clock))
        };
        let ticker_thread = {
            let shared = shared.clone();
            let opts = opts.clone();
            thread::spawn(move || ticker_loop(&shared, clock, &opts))
        };
        Ok(Self {
            addr,
            shared,
            accept_thread,
            ticker_thread,
        })
    }

    /// The address clients (or a fault proxy) should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers the chunk replica endpoints. Every subsequent `Hello`
    /// is answered with a [`Frame::ReplicaAnnounce`] carrying this
    /// list, and the ticker snapshots it to the checkpoint log.
    pub fn set_replicas(&self, endpoints: Vec<SocketAddr>) {
        *self.shared.replicas.lock().unwrap() = endpoints;
    }

    /// Runs `f` against the live server (e.g. to poll progress from a
    /// test); `None` if the server was already taken or killed.
    pub fn with_server<R>(&self, f: impl FnOnce(&Server) -> R) -> Option<R> {
        self.shared.server.lock().unwrap().as_ref().map(f)
    }

    /// Blocks until every problem completes, then tears the transport
    /// down and returns the server.
    pub fn wait(self) -> Server {
        let server = {
            let mut guard = self.shared.server.lock().unwrap();
            loop {
                match guard.as_ref() {
                    Some(s) if !s.all_complete() => {
                        let (g, _) = self
                            .shared
                            .done
                            .wait_timeout(guard, Duration::from_millis(5))
                            .unwrap();
                        guard = g;
                    }
                    Some(_) => break guard.take().expect("checked above"),
                    None => panic!("server was killed before wait()"),
                }
            }
        };
        self.shutdown();
        server
    }

    /// Simulates the server process dying mid-run: the in-memory
    /// [`Server`] is dropped on the spot, connections go dark, and only
    /// what reached the checkpoint log survives.
    pub fn kill(self) {
        self.shared.server.lock().unwrap().take();
        self.shutdown();
    }

    fn shutdown(self) {
        self.shared.kill.store(true, Ordering::SeqCst);
        let _ = self.accept_thread.join();
        let _ = self.ticker_thread.join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, clock: Clock) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.kill.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                handlers.push(thread::spawn(move || {
                    handle_connection(stream, &shared, clock)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(500));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared, clock: Clock) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
    let mut reader = FrameReader::new();
    loop {
        if shared.kill.load(Ordering::SeqCst) {
            return;
        }
        let frame = match reader.poll(&mut stream) {
            Ok(Some(frame)) => {
                shared.telemetry.counter_add("net.frames_in", 1);
                frame
            }
            Ok(None) => continue, // read timeout: re-check the kill flag
            Err(ReadError::Decode(DecodeError::BodyCrc {
                frame_type,
                body_prefix,
            })) => {
                shared.telemetry.counter_add("net.crc_failures", 1);
                // A corrupt frame is detected, not fatal: a mangled
                // result still routes to the reissue path (its id
                // fields are in the prefix), and the stream already
                // resynced past the frame.
                if frame_type == SUBMIT_RESULT_TYPE {
                    handle_corrupt_result(&body_prefix, shared, clock, &mut stream);
                }
                continue;
            }
            // EOF, socket error, or an unrecoverable decode: drop the
            // connection but NOT the client's leases — it may be a
            // crash-rejoin or reconnect. True departures are reclaimed
            // by the liveness sweep / lease timeouts.
            Err(_) => return,
        };
        let reply = match frame {
            Frame::Hello { client } => {
                mark_alive(shared, client as ClientId, clock.now());
                // Advertise the replica tier so the donor can route
                // chunk fetches without out-of-band configuration.
                let endpoints = shared.replicas.lock().unwrap().clone();
                if endpoints.is_empty() {
                    None
                } else {
                    Some(Frame::ReplicaAnnounce { endpoints })
                }
            }
            Frame::Heartbeat { client } => {
                mark_alive(shared, client as ClientId, clock.now());
                Some(Frame::HeartbeatAck)
            }
            Frame::RequestWork { client } => {
                let now = clock.now();
                mark_alive(shared, client as ClientId, now);
                let mut guard = shared.server.lock().unwrap();
                let Some(server) = guard.as_mut() else { return };
                server.check_timeouts(now);
                match server.request_work(client as ClientId, now) {
                    Assignment::Unit { problem, unit, .. } => {
                        let encoded = server
                            .codec(problem)
                            .and_then(|c| c.encode_unit(&unit.payload).ok());
                        drop(guard);
                        match encoded {
                            Some(payload) => Some(Frame::AssignUnit {
                                problem: problem as u64,
                                unit: unit.id,
                                cost_ops: unit.cost_ops,
                                payload,
                            }),
                            // Unencodable unit (codec bug): stall this
                            // client; the lease will expire and reissue.
                            None => Some(Frame::Wait),
                        }
                    }
                    Assignment::Wait => Some(Frame::Wait),
                    Assignment::Finished => Some(Frame::Finished),
                }
            }
            Frame::SubmitResult {
                client,
                problem,
                unit,
                payload,
            } => {
                let now = clock.now();
                mark_alive(shared, client as ClientId, now);
                let pid = problem as usize;
                let mut guard = shared.server.lock().unwrap();
                let Some(server) = guard.as_mut() else { return };
                let accepted = if pid < server.problem_count() {
                    match server.codec(pid).map(|c| c.decode_result(&payload)) {
                        Some(Ok(decoded)) => server.submit_result(
                            client as ClientId,
                            pid,
                            crate::problem::TaskResult {
                                unit_id: unit,
                                payload: decoded,
                            },
                            now,
                        ),
                        // Frame CRC passed but the payload didn't parse:
                        // semantic corruption; reissue path.
                        _ => {
                            server.result_corrupted(client as ClientId, pid, unit, now);
                            false
                        }
                    }
                } else {
                    false // garbage problem id: ignore, nack
                };
                let complete = server.all_complete();
                drop(guard);
                if complete {
                    shared.done.notify_all();
                }
                Some(Frame::ResultAck {
                    problem,
                    unit,
                    accepted,
                })
            }
            Frame::Goodbye { client } => {
                let mut guard = shared.server.lock().unwrap();
                if let Some(server) = guard.as_mut() {
                    server.client_gone(client as ClientId);
                }
                drop(guard);
                shared
                    .last_seen
                    .lock()
                    .unwrap()
                    .remove(&(client as ClientId));
                return;
            }
            Frame::ChunkRequest {
                client,
                problem,
                chunk,
            } => {
                let now = clock.now();
                // A replica pulling through is infrastructure, not a
                // donor: it gets no liveness entry and no chunk
                // affinity, or the scheduler would start routing units
                // at a machine that never computes.
                let is_replica = client == super::store::REPLICA_CLIENT_ID;
                if !is_replica {
                    mark_alive(shared, client as ClientId, now);
                }
                let pid = problem as usize;
                let mut guard = shared.server.lock().unwrap();
                let Some(server) = guard.as_mut() else { return };
                if pid >= server.problem_count() {
                    drop(guard);
                    // Garbage problem id: an explicit refusal, so the
                    // requester fails over instead of waiting out its
                    // ack timeout.
                    Some(Frame::ChunkMissing { problem, chunk })
                } else {
                    match server.codec(pid).map(|c| c.encode_chunk(chunk)) {
                        Some(Ok(payload)) => {
                            let digest = super::cache::chunk_digest(&payload);
                            if !is_replica {
                                // The donor is about to hold this chunk:
                                // feed the scheduler's affinity map so
                                // later units covering it land here.
                                server.note_client_chunks(client as ClientId, &[digest]);
                            }
                            drop(guard);
                            shared.telemetry.counter_add("net.chunks_served", 1);
                            shared
                                .telemetry
                                .counter_add("net.chunk_bytes_out", payload.len() as u64);
                            Some(Frame::ChunkData {
                                problem,
                                chunk,
                                digest,
                                payload,
                            })
                        }
                        // Unknown chunk or codec without chunk support:
                        // answer ChunkMissing instead of silence — a
                        // silent miss left the requester blocked in
                        // await_frame until the heartbeat liveness
                        // sweep fired.
                        _ => {
                            drop(guard);
                            Some(Frame::ChunkMissing { problem, chunk })
                        }
                    }
                }
            }
            Frame::MetricsReport { client, snapshot } => {
                let now = clock.now();
                mark_alive(shared, client as ClientId, now);
                match crate::telemetry::MetricsSnapshot::from_wire_bytes(&snapshot) {
                    Ok(snap) => {
                        shared
                            .telemetry
                            .merge_snapshot_prefixed(&format!("donor.c{client}."), &snap);
                        shared.telemetry.emit_at(
                            now,
                            crate::telemetry::EventKind::MetricsReported {
                                client: client as ClientId,
                            },
                        );
                    }
                    Err(_) => {
                        shared
                            .telemetry
                            .counter_add("telemetry.report_decode_errors", 1);
                    }
                }
                None
            }
            Frame::StatusRequest => {
                let now = clock.now();
                let mut guard = shared.server.lock().unwrap();
                let Some(server) = guard.as_mut() else { return };
                let snapshot = server.status_snapshot(now);
                drop(guard);
                Some(Frame::StatusReport {
                    snapshot: snapshot.to_wire_bytes(),
                })
            }
            // Server-bound protocol only; a client frame here is a bug
            // or corruption that slipped the type check — ignore it.
            Frame::AssignUnit { .. }
            | Frame::Wait
            | Frame::Finished
            | Frame::ResultAck { .. }
            | Frame::HeartbeatAck
            | Frame::ChunkData { .. }
            | Frame::ChunkMissing { .. }
            | Frame::ReplicaAnnounce { .. }
            | Frame::StatusReport { .. } => None,
        };
        if let Some(reply) = reply {
            let bytes = encode_frame(&reply);
            shared.telemetry.counter_add("net.frames_out", 1);
            shared
                .telemetry
                .counter_add("net.bytes_out", bytes.len() as u64);
            if stream.write_all(&bytes).is_err() {
                return;
            }
        }
    }
}

/// Routes a CRC-failed `SubmitResult` to [`Server::result_corrupted`]
/// using the id fields from the (header-validated) body prefix, and
/// nacks so the sender retires or retries its pending copy.
fn handle_corrupt_result(
    body_prefix: &[u8],
    shared: &Shared,
    clock: Clock,
    stream: &mut TcpStream,
) {
    let mut r = ByteReader::new(body_prefix);
    let (Ok(client), Ok(problem), Ok(unit)) = (r.u64(), r.u64(), r.u64()) else {
        return; // prefix too mangled to attribute; lease expiry recovers
    };
    let pid = problem as usize;
    let now = clock.now();
    {
        let mut guard = shared.server.lock().unwrap();
        let Some(server) = guard.as_mut() else { return };
        if pid < server.problem_count() {
            server.result_corrupted(client as ClientId, pid, unit, now);
        }
    }
    let _ = stream.write_all(&encode_frame(&Frame::ResultAck {
        problem,
        unit,
        accepted: false,
    }));
}

fn mark_alive(shared: &Shared, client: ClientId, now: f64) {
    shared.last_seen.lock().unwrap().insert(client, now);
}

fn ticker_loop(shared: &Arc<Shared>, clock: Clock, opts: &NetServerOptions) {
    let mut tick = 0u64;
    while !shared.kill.load(Ordering::SeqCst) {
        thread::sleep(opts.tick_wall);
        tick += 1;
        let now = clock.now();
        // Liveness sweep outside the server lock (fixed lock order:
        // never hold both mutexes at once).
        let stale: Vec<ClientId> = {
            let mut seen = shared.last_seen.lock().unwrap();
            let stale: Vec<ClientId> = seen
                .iter()
                .filter(|&(_, &t)| now - t > opts.liveness_timeout)
                .map(|(&c, _)| c)
                .collect();
            for c in &stale {
                seen.remove(c);
            }
            stale
        };
        if !stale.is_empty() {
            shared.telemetry.emit_at(
                now,
                crate::telemetry::EventKind::LivenessSweep { stale: stale.len() },
            );
        }
        let mut guard = shared.server.lock().unwrap();
        let Some(server) = guard.as_mut() else { return };
        server.check_timeouts(now);
        for c in stale {
            server.client_gone(c);
        }
        let complete = server.all_complete();
        if !complete {
            if let Some(w) = &opts.checkpoint {
                if opts.snapshot_every_ticks > 0 && tick.is_multiple_of(opts.snapshot_every_ticks) {
                    w.append_snapshot(&server.scheduler_snapshot());
                    w.append_affinity(&server.affinity_snapshot());
                    w.append_reputation(&server.reputation_snapshot());
                    let endpoints = shared.replicas.lock().unwrap().clone();
                    if !endpoints.is_empty() {
                        w.append_replicas(&endpoints);
                    }
                }
            }
        }
        drop(guard);
        if complete {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::integration_problem;
    use crate::sched::SchedulerConfig;
    use crate::server::Server;

    fn small_cfg() -> SchedulerConfig {
        SchedulerConfig {
            min_unit_ops: 2e6,
            max_unit_ops: 2e6,
            ..Default::default()
        }
    }

    /// Drives a full protocol session over a raw socket — no client.rs
    /// machinery — including one deliberately corrupted submission.
    #[test]
    fn raw_socket_session_completes_and_survives_corruption() {
        let clock = Clock::new(1000.0);
        let mut server = Server::new(small_cfg());
        let pid = server.submit(integration_problem(100_000));
        let algorithm = server.algorithm(pid);
        let codec = server.codec(pid).unwrap();
        let net = NetServer::start(server, clock, NetServerOptions::default()).unwrap();

        let mut stream = TcpStream::connect(net.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut reader = FrameReader::new();
        let await_frame = |stream: &mut TcpStream, reader: &mut FrameReader| loop {
            match reader.poll(stream) {
                Ok(Some(f)) => return f,
                Ok(None) => {}
                Err(e) => panic!("read failed: {e}"),
            }
        };

        stream
            .write_all(&encode_frame(&Frame::Hello { client: 0 }))
            .unwrap();
        let mut corrupted_once = false;
        loop {
            stream
                .write_all(&encode_frame(&Frame::RequestWork { client: 0 }))
                .unwrap();
            match await_frame(&mut stream, &mut reader) {
                Frame::AssignUnit {
                    problem,
                    unit,
                    cost_ops,
                    payload,
                } => {
                    let wu = crate::problem::WorkUnit {
                        id: unit,
                        payload: codec.decode_unit(&payload).unwrap(),
                        cost_ops,
                    };
                    let result = algorithm.compute(&wu);
                    let encoded = codec.encode_result(&result.payload).unwrap();
                    let mut frame = encode_frame(&Frame::SubmitResult {
                        client: 0,
                        problem,
                        unit,
                        payload: encoded,
                    });
                    if !corrupted_once {
                        corrupted_once = true;
                        let n = frame.len();
                        frame[n - 1] ^= 0xFF; // break the body CRC
                        stream.write_all(&frame).unwrap();
                        match await_frame(&mut stream, &mut reader) {
                            Frame::ResultAck {
                                accepted: false, ..
                            } => {}
                            other => panic!("expected a nack, got {other:?}"),
                        }
                        continue; // the unit reissues via the lease/corrupt path
                    }
                    stream.write_all(&frame).unwrap();
                    match await_frame(&mut stream, &mut reader) {
                        Frame::ResultAck { .. } => {}
                        other => panic!("expected an ack, got {other:?}"),
                    }
                }
                Frame::Wait => thread::sleep(Duration::from_millis(1)),
                Frame::Finished => break,
                other => panic!("unexpected frame {other:?}"),
            }
        }
        stream
            .write_all(&encode_frame(&Frame::Goodbye { client: 0 }))
            .unwrap();

        let mut server = net.wait();
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        assert_eq!(server.stats(pid).corrupted_results, 1);
    }

    #[test]
    fn silent_client_is_reclaimed_by_the_liveness_sweep() {
        let clock = Clock::new(1000.0);
        let mut server = Server::new(small_cfg());
        let pid = server.submit(integration_problem(100_000));
        let net = NetServer::start(
            server,
            clock,
            NetServerOptions {
                liveness_timeout: 20.0, // 20ms wall at scale 1000
                ..Default::default()
            },
        )
        .unwrap();

        // Take a unit and go silent, never submitting.
        let mut stream = TcpStream::connect(net.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut reader = FrameReader::new();
        stream
            .write_all(&encode_frame(&Frame::RequestWork { client: 7 }))
            .unwrap();
        loop {
            match reader.poll(&mut stream) {
                Ok(Some(Frame::AssignUnit { .. })) => break,
                Ok(Some(Frame::Wait)) => {
                    stream
                        .write_all(&encode_frame(&Frame::RequestWork { client: 7 }))
                        .unwrap();
                }
                Ok(Some(other)) => panic!("unexpected frame {other:?}"),
                Ok(None) => {}
                Err(e) => panic!("read failed: {e}"),
            }
        }
        // Wait well past the liveness timeout; the sweep must reclaim
        // the lease so another client could finish the run.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let reissued = net
                .with_server(|s| s.stats(pid).reissued_units)
                .expect("server alive");
            if reissued >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "liveness sweep never reclaimed the silent client's lease"
            );
            thread::sleep(Duration::from_millis(2));
        }
        net.kill();
    }
}
