//! The TCP-facing server: a nonblocking readiness event loop with a
//! sharded dispatch plane.
//!
//! The paper's server was thread-per-connection Java — fine for ~200
//! donors, O(threads) beyond that. Here the transport runs on a fixed
//! thread count: one blocking acceptor, `shards` event-loop threads
//! (each owning a [`super::evloop::Poller`], its connections' read/
//! write buffers and frame reassembly), and one ticker for lease
//! sweeps, heartbeat liveness and periodic checkpoint snapshots. No
//! thread is ever dedicated to a donor, and no loop polls on a sleep:
//! every wakeup is readiness (bytes, buffer space, or a
//! [`super::evloop::Waker`] poke for cross-thread handoff).
//!
//! Scheduling authority stays central — one [`crate::Server`] behind
//! one mutex keeps leases, folds, quorum votes, reputation, health and
//! recovery exactly as before (the protocol and every fault-tolerance
//! path are unchanged). What shards is *dispatch*: each event-loop
//! thread owns a claimed-unit queue ([`super::shard::ShardQueues`])
//! filled in batches under the server lock, drained without touching
//! the data managers, and work-stolen by sibling shards when one runs
//! dry. Donors are routed to their home shard (`client % shards`)
//! exactly once, at the first client-bearing frame: the accepting
//! shard ships the whole connection — buffers and all — to the home
//! shard's inbox and wakes it.

use super::checkpoint::CheckpointWriter;
use super::evloop::{drain_wakes, raw_fd, thread_cpu_ticks, waker_pair, Event, Poller, Waker};
use super::shard::ShardQueues;
use super::wire::{encode_frame, DecodeError, Frame, FrameAssembler, SUBMIT_RESULT_TYPE};
use super::Clock;
use crate::codec::ByteReader;
use crate::sched::ClientId;
use crate::server::{Assignment, Server};
use crate::telemetry::Telemetry;
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning for [`NetServer`]. Time-valued fields are in *scaled* seconds
/// (the [`Clock`]'s unit), so the same options work at any time scale.
#[derive(Debug, Clone)]
pub struct NetServerOptions {
    /// A client silent for longer than this (no frame of any kind) is
    /// declared gone: its leases reissue immediately instead of waiting
    /// for lease expiry. Scaled seconds.
    pub liveness_timeout: f64,
    /// Ticker period (lease sweep + liveness check), wall time.
    pub tick_wall: Duration,
    /// Append a scheduler snapshot to the checkpoint log every this
    /// many ticks (0 disables periodic snapshots).
    pub snapshot_every_ticks: u64,
    /// When set, the ticker appends periodic [`crate::SchedSnapshot`]
    /// records here so a recovered server starts with warm throughput
    /// estimates. (Unit issue/fold journaling is separate: install the
    /// writer as the server's journal via [`crate::Server::set_journal`].)
    pub checkpoint: Option<CheckpointWriter>,
    /// Event-loop shards serving connections. Donors are homed by
    /// `client % shards`. 1 (the default, overridable via the
    /// `BIODIST_NET_SHARDS` env var) is drop-in identical to the
    /// unsharded dispatch path.
    pub shards: usize,
    /// Fresh units a shard claims from the server per refill of its
    /// claimed-unit queue (only used when `shards > 1`).
    pub claim_batch: usize,
}

impl Default for NetServerOptions {
    fn default() -> Self {
        let shards = std::env::var("BIODIST_NET_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1);
        Self {
            liveness_timeout: 5.0,
            tick_wall: Duration::from_millis(2),
            snapshot_every_ticks: 50,
            checkpoint: None,
            shards,
            claim_batch: 4,
        }
    }
}

/// A connection handed to a shard: fresh from the acceptor, or
/// migrated whole (buffers, reassembly state, queued frames) from the
/// shard that accepted it to the donor's home shard.
enum Inbound {
    Fresh(TcpStream),
    Migrated(Box<MigratedConn>),
}

struct MigratedConn {
    stream: TcpStream,
    asm: FrameAssembler,
    out: Vec<u8>,
    out_pos: usize,
    client: Option<u64>,
    /// Frames already reassembled but not yet handled, starting with
    /// the one that triggered the migration.
    pending: Vec<Frame>,
}

struct ShardHandle {
    inbox: Mutex<Vec<Inbound>>,
    waker: Waker,
}

struct Shared {
    /// `None` after `wait()` hands the server back or `kill()` drops it
    /// (simulated server-process death).
    server: Mutex<Option<Server>>,
    done: Condvar,
    last_seen: Mutex<HashMap<ClientId, f64>>,
    /// Hard stop: shard loops and the accept loop exit promptly.
    kill: AtomicBool,
    /// Cloned off the server at start so wire-level counters and sweep
    /// events don't need the server lock.
    telemetry: Telemetry,
    /// Chunk replica endpoints, announced to every donor on `Hello`
    /// and snapshotted to the checkpoint log. Set after start (replicas
    /// bind once the origin's address is known).
    replicas: Mutex<Vec<SocketAddr>>,
    /// Per-shard claimed-unit queues (the sharded dispatch plane).
    queues: ShardQueues,
    /// Per-shard connection inboxes and wakers.
    shards: Vec<ShardHandle>,
}

impl Shared {
    fn hand_to_shard(&self, shard: usize, inbound: Inbound) {
        self.shards[shard].inbox.lock().unwrap().push(inbound);
        self.shards[shard].waker.wake();
    }
}

/// A running TCP server around a [`Server`]. Bind with [`NetServer::start`],
/// then either [`NetServer::wait`] for completion or [`NetServer::kill`]
/// it mid-run to simulate a server crash (the checkpoint log survives;
/// [`super::recover`] rebuilds the state).
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: JoinHandle<()>,
    ticker_thread: JoinHandle<()>,
    shard_threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds an ephemeral loopback port and starts serving `server`.
    pub fn start(server: Server, clock: Clock, opts: NetServerOptions) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let telemetry = server.telemetry();
        let n_shards = opts.shards.max(1);
        // The whole transport is this many threads, donors be damned:
        // the scale tier asserts it from the metrics registry.
        telemetry.gauge_set("evloop.threads", (n_shards + 2) as f64);
        let mut handles = Vec::with_capacity(n_shards);
        let mut rxs = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (waker, rx) = waker_pair()?;
            handles.push(ShardHandle {
                inbox: Mutex::new(Vec::new()),
                waker,
            });
            rxs.push(rx);
        }
        let shared = Arc::new(Shared {
            server: Mutex::new(Some(server)),
            done: Condvar::new(),
            last_seen: Mutex::new(HashMap::new()),
            kill: AtomicBool::new(false),
            telemetry,
            replicas: Mutex::new(Vec::new()),
            queues: ShardQueues::new(n_shards),
            shards: handles,
        });
        let shard_threads = rxs
            .into_iter()
            .enumerate()
            .map(|(idx, rx)| {
                let shared = shared.clone();
                let opts = opts.clone();
                thread::spawn(move || {
                    with_cpu_accounting(&shared.telemetry.clone(), || {
                        shard_loop(idx, &shared, clock, rx, &opts)
                    })
                })
            })
            .collect();
        let accept_thread = {
            let shared = shared.clone();
            thread::spawn(move || {
                with_cpu_accounting(&shared.telemetry.clone(), || {
                    accept_loop(&listener, &shared)
                })
            })
        };
        let ticker_thread = {
            let shared = shared.clone();
            let opts = opts.clone();
            thread::spawn(move || {
                with_cpu_accounting(&shared.telemetry.clone(), || {
                    ticker_loop(&shared, clock, &opts)
                })
            })
        };
        Ok(Self {
            addr,
            shared,
            accept_thread,
            ticker_thread,
            shard_threads,
        })
    }

    /// The address clients (or a fault proxy) should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers the chunk replica endpoints. Every subsequent `Hello`
    /// is answered with a [`Frame::ReplicaAnnounce`] carrying this
    /// list, and the ticker snapshots it to the checkpoint log.
    pub fn set_replicas(&self, endpoints: Vec<SocketAddr>) {
        *self.shared.replicas.lock().unwrap() = endpoints;
    }

    /// Runs `f` against the live server (e.g. to poll progress from a
    /// test); `None` if the server was already taken or killed.
    pub fn with_server<R>(&self, f: impl FnOnce(&Server) -> R) -> Option<R> {
        self.shared.server.lock().unwrap().as_ref().map(f)
    }

    /// Blocks until every problem completes, then tears the transport
    /// down and returns the server.
    pub fn wait(self) -> Server {
        let server = {
            let mut guard = self.shared.server.lock().unwrap();
            loop {
                match guard.as_ref() {
                    Some(s) if !s.all_complete() => {
                        let (g, _) = self
                            .shared
                            .done
                            .wait_timeout(guard, Duration::from_millis(5))
                            .unwrap();
                        guard = g;
                    }
                    Some(_) => break guard.take().expect("checked above"),
                    None => panic!("server was killed before wait()"),
                }
            }
        };
        self.shutdown();
        server
    }

    /// Simulates the server process dying mid-run: the in-memory
    /// [`Server`] is dropped on the spot, connections go dark, and only
    /// what reached the checkpoint log survives.
    pub fn kill(self) {
        self.shared.server.lock().unwrap().take();
        self.shutdown();
    }

    fn shutdown(self) {
        self.shared.kill.store(true, Ordering::SeqCst);
        // Unblock the acceptor (blocked in accept) with a throwaway
        // connection, and every shard loop with a wake.
        let _ = TcpStream::connect(self.addr);
        for s in &self.shared.shards {
            s.waker.wake();
        }
        let _ = self.accept_thread.join();
        let _ = self.ticker_thread.join();
        for t in self.shard_threads {
            let _ = t.join();
        }
    }
}

/// Runs `f`, then charges this thread's CPU time (user + system, in
/// kernel ticks) to the `evloop.cpu_ticks` counter — the scale bench's
/// measure of *server-side* cost, isolated from donor threads sharing
/// the process.
fn with_cpu_accounting(telemetry: &Telemetry, f: impl FnOnce()) {
    let start = thread_cpu_ticks();
    f();
    if let (Some(s), Some(e)) = (start, thread_cpu_ticks()) {
        telemetry.counter_add("evloop.cpu_ticks", e.saturating_sub(s));
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    // Blocking accept: no polling sleep. Shutdown unblocks it with a
    // throwaway self-connection after raising the kill flag.
    let mut next = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.kill.load(Ordering::SeqCst) {
                    return;
                }
                // Round-robin the raw connection; the donor's first
                // client-bearing frame migrates it to its home shard.
                shared.hand_to_shard(next, Inbound::Fresh(stream));
                next = (next + 1) % shared.shards.len();
            }
            Err(_) => {
                if shared.kill.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (EMFILE, aborted handshake):
                // back off briefly instead of spinning on the error.
                thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Poller token of the shard's waker read-end; connections start at 1.
const WAKE_TOKEN: u64 = 0;

struct Conn {
    stream: TcpStream,
    asm: FrameAssembler,
    out: Vec<u8>,
    out_pos: usize,
    /// Client id this connection last spoke for (routing + gauges).
    client: Option<u64>,
    /// Homed: the first client-bearing frame was handled on this shard
    /// (directly or after one migration). Never migrates again.
    routed: bool,
    /// Whether the poller currently watches for writability.
    want_write: bool,
}

impl Conn {
    fn fresh(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            asm: FrameAssembler::new(),
            out: Vec::new(),
            out_pos: 0,
            client: None,
            routed: false,
            want_write: false,
        })
    }

    fn queue_reply(&mut self, frame: &Frame, telemetry: &Telemetry) {
        let bytes = encode_frame(frame);
        telemetry.counter_add("net.frames_out", 1);
        telemetry.counter_add("net.bytes_out", bytes.len() as u64);
        self.out.extend_from_slice(&bytes);
    }

    /// Writes buffered output until done or the socket would block.
    fn flush(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match (&self.stream).write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    /// Reads every available byte into the assembler. `Ok(true)` = EOF.
    fn read_available(&mut self) -> io::Result<bool> {
        let mut buf = [0u8; 16384];
        loop {
            match (&self.stream).read(&mut buf) {
                Ok(0) => return Ok(true),
                Ok(n) => self.asm.push(&buf[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(false)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// What handling one frame decided about the connection.
enum Action {
    /// Keep serving it (a reply may be queued).
    Keep,
    /// Drop it (graceful goodbye, server gone, or write/protocol
    /// failure). Leases are NOT dropped — reconnects and the liveness
    /// sweep handle real departures.
    Close,
    /// First client-bearing frame homed elsewhere: ship the connection
    /// to shard `.0`, with `.1` as the first pending frame.
    Migrate(usize, Frame),
}

fn shard_loop(
    shard: usize,
    shared: &Arc<Shared>,
    clock: Clock,
    mut wake_rx: TcpStream,
    opts: &NetServerOptions,
) {
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => return,
    };
    if poller.add(raw_fd(&wake_rx), WAKE_TOKEN, false).is_err() {
        return;
    }
    let mut ctx = ShardCtx {
        shard,
        n_shards: shared.shards.len(),
        shared,
        clock,
        opts,
        poller,
        conns: HashMap::new(),
        next_token: WAKE_TOKEN + 1,
        seen_clients: HashSet::new(),
    };
    let mut events: Vec<Event> = Vec::new();
    while !shared.kill.load(Ordering::SeqCst) {
        // Adopt connections handed over by the acceptor or a sibling.
        let inbox: Vec<Inbound> = std::mem::take(&mut *shared.shards[shard].inbox.lock().unwrap());
        for inbound in inbox {
            ctx.adopt(inbound);
        }
        events.clear();
        if ctx.poller.wait(10, &mut events).is_err() {
            return;
        }
        for ev in &events {
            if ev.token == WAKE_TOKEN {
                drain_wakes(&mut wake_rx);
                continue;
            }
            ctx.service(ev.token, ev.readable, ev.writable);
        }
    }
}

struct ShardCtx<'a> {
    shard: usize,
    n_shards: usize,
    shared: &'a Arc<Shared>,
    clock: Clock,
    opts: &'a NetServerOptions,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Distinct donors homed on this shard (drives `shard.s<i>.clients`).
    seen_clients: HashSet<u64>,
}

impl ShardCtx<'_> {
    fn adopt(&mut self, inbound: Inbound) {
        let (conn, pending) = match inbound {
            Inbound::Fresh(stream) => match Conn::fresh(stream) {
                Ok(c) => (c, Vec::new()),
                Err(_) => return,
            },
            Inbound::Migrated(m) => {
                let MigratedConn {
                    stream,
                    asm,
                    out,
                    out_pos,
                    client,
                    pending,
                } = *m;
                let conn = Conn {
                    stream,
                    asm,
                    out,
                    out_pos,
                    client,
                    // Migration lands the connection on its home shard;
                    // the pending frames must not bounce it again.
                    routed: true,
                    want_write: false,
                };
                (conn, pending)
            }
        };
        self.finish_adopt(conn, pending);
    }

    fn finish_adopt(&mut self, mut conn: Conn, pending: Vec<Frame>) {
        let token = self.next_token;
        self.next_token += 1;
        let fd = raw_fd(&conn.stream);
        let want_write = conn.out_pos < conn.out.len();
        conn.want_write = want_write;
        if self.poller.add(fd, token, want_write).is_err() {
            return; // fd table full or poller gone; drop the connection
        }
        self.conns.insert(token, conn);
        if !pending.is_empty() {
            self.pump(token, pending, false);
        }
    }

    /// Handles a readiness event on `token`.
    fn service(&mut self, token: u64, readable: bool, writable: bool) {
        if !self.conns.contains_key(&token) {
            return;
        }
        if writable {
            let conn = self.conns.get_mut(&token).expect("checked");
            if conn.flush().is_err() {
                self.drop_conn(token);
                return;
            }
        }
        if readable {
            self.pump(token, Vec::new(), true);
        } else {
            self.update_interest(token);
        }
    }

    /// Drives one connection: handle `pending` frames, optionally read
    /// fresh bytes, drain the assembler, flush, update interest.
    fn pump(&mut self, token: u64, pending: Vec<Frame>, do_read: bool) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let mut pending = pending.into_iter();
        while let Some(frame) = pending.next() {
            match self.handle_frame(&mut conn, frame) {
                Action::Keep => {}
                Action::Close => return, // conn dropped (not reinserted)
                Action::Migrate(home, frame) => {
                    let mut rest: Vec<Frame> = vec![frame];
                    rest.extend(pending);
                    self.migrate(conn, home, rest);
                    return;
                }
            }
        }
        if do_read {
            match conn.read_available() {
                Ok(false) => {}
                // EOF or socket failure: drop the connection but NOT
                // the client's leases — it may be a crash-rejoin or
                // reconnect. True departures are reclaimed by the
                // liveness sweep / lease timeouts.
                Ok(true) | Err(_) => return,
            }
        }
        loop {
            match conn.asm.next_frame() {
                Ok(Some(frame)) => {
                    self.shared.telemetry.counter_add("net.frames_in", 1);
                    match self.handle_frame(&mut conn, frame) {
                        Action::Keep => {}
                        Action::Close => return,
                        Action::Migrate(home, frame) => {
                            self.migrate(conn, home, vec![frame]);
                            return;
                        }
                    }
                }
                Ok(None) => break,
                Err(DecodeError::BodyCrc {
                    frame_type,
                    body_prefix,
                }) => {
                    self.shared.telemetry.counter_add("net.crc_failures", 1);
                    // A corrupt frame is detected, not fatal: a mangled
                    // result still routes to the reissue path (its id
                    // fields are in the prefix), and the assembler
                    // already resynced past the frame.
                    if frame_type == SUBMIT_RESULT_TYPE {
                        self.handle_corrupt_result(&mut conn, &body_prefix);
                    }
                }
                // Unrecoverable decode (bad magic/version/header CRC):
                // the stream cannot be trusted; drop the connection.
                Err(_) => return,
            }
        }
        if conn.flush().is_err() {
            return;
        }
        self.conns.insert(token, conn);
        self.update_interest(token);
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = conn.out_pos < conn.out.len();
        if want != conn.want_write {
            conn.want_write = want;
            let fd = raw_fd(&conn.stream);
            if self.poller.modify(fd, token, want).is_err() {
                self.drop_conn(token);
            }
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.remove(raw_fd(&conn.stream), token);
        }
    }

    /// Ships a connection (it was removed from `conns` already) to its
    /// home shard, buffers and pending frames included.
    fn migrate(&mut self, conn: Conn, home: usize, pending: Vec<Frame>) {
        // The token dies with this shard's registration; the home shard
        // assigns its own.
        let _ = self.poller.remove(raw_fd(&conn.stream), 0);
        self.shared.telemetry.counter_add("shard.migrations", 1);
        self.shared.hand_to_shard(
            home,
            Inbound::Migrated(Box::new(MigratedConn {
                stream: conn.stream,
                asm: conn.asm,
                out: conn.out,
                out_pos: conn.out_pos,
                client: conn.client,
                pending,
            })),
        );
    }

    /// The donor id a frame routes by, `None` for unrouted traffic
    /// (status probes, replica pull-through, goodbyes).
    fn routing_client(frame: &Frame) -> Option<u64> {
        match frame {
            Frame::Hello { client }
            | Frame::RequestWork { client }
            | Frame::Heartbeat { client }
            | Frame::SubmitResult { client, .. }
            | Frame::MetricsReport { client, .. } => Some(*client),
            Frame::ChunkRequest { client, .. } if *client != super::store::REPLICA_CLIENT_ID => {
                Some(*client)
            }
            _ => None,
        }
    }

    /// Applies the directory handshake to one frame: returns the home
    /// shard when the connection must migrate, `None` to handle here.
    fn route(&mut self, conn: &mut Conn, frame: &Frame) -> Option<usize> {
        let client = Self::routing_client(frame)?;
        let home = (client as usize) % self.n_shards;
        if home == self.shard {
            conn.routed = true;
            conn.client = Some(client);
            if self.seen_clients.insert(client) {
                self.shared.telemetry.gauge_set(
                    &format!("shard.s{}.clients", self.shard),
                    self.seen_clients.len() as f64,
                );
            }
            None
        } else if conn.routed || self.n_shards == 1 {
            // Routed exactly once: a second client id on the same
            // connection is served here and counted as an anomaly.
            self.shared.telemetry.counter_add("shard.misrouted", 1);
            None
        } else {
            Some(home)
        }
    }

    fn handle_frame(&mut self, conn: &mut Conn, frame: Frame) -> Action {
        if let Some(home) = self.route(conn, &frame) {
            return Action::Migrate(home, frame);
        }
        let shared = self.shared;
        let clock = self.clock;
        let reply = match frame {
            Frame::Hello { client } => {
                mark_alive(shared, client as ClientId, clock.now());
                // Advertise the replica tier so the donor can route
                // chunk fetches without out-of-band configuration.
                let endpoints = shared.replicas.lock().unwrap().clone();
                if endpoints.is_empty() {
                    None
                } else {
                    Some(Frame::ReplicaAnnounce { endpoints })
                }
            }
            Frame::Heartbeat { client } => {
                mark_alive(shared, client as ClientId, clock.now());
                Some(Frame::HeartbeatAck)
            }
            Frame::RequestWork { client } => {
                let now = clock.now();
                mark_alive(shared, client as ClientId, now);
                let mut guard = shared.server.lock().unwrap();
                let Some(server) = guard.as_mut() else {
                    return Action::Close;
                };
                server.check_timeouts(now);
                let assignment = if self.n_shards > 1 {
                    sharded_request_work(
                        server,
                        shared,
                        self.shard,
                        client as ClientId,
                        now,
                        self.opts.claim_batch.max(1),
                    )
                } else {
                    server.request_work(client as ClientId, now)
                };
                match assignment {
                    Assignment::Unit { problem, unit, .. } => {
                        let encoded = server
                            .codec(problem)
                            .and_then(|c| c.encode_unit(&unit.payload).ok());
                        drop(guard);
                        match encoded {
                            Some(payload) => Some(Frame::AssignUnit {
                                problem: problem as u64,
                                unit: unit.id,
                                cost_ops: unit.cost_ops,
                                payload,
                            }),
                            // Unencodable unit (codec bug): stall this
                            // client; the lease will expire and reissue.
                            None => Some(Frame::Wait),
                        }
                    }
                    Assignment::Wait => Some(Frame::Wait),
                    Assignment::Finished => Some(Frame::Finished),
                }
            }
            Frame::SubmitResult {
                client,
                problem,
                unit,
                payload,
            } => {
                let now = clock.now();
                mark_alive(shared, client as ClientId, now);
                let pid = problem as usize;
                let mut guard = shared.server.lock().unwrap();
                let Some(server) = guard.as_mut() else {
                    return Action::Close;
                };
                let accepted = if pid < server.problem_count() {
                    match server.codec(pid).map(|c| c.decode_result(&payload)) {
                        Some(Ok(decoded)) => server.submit_result(
                            client as ClientId,
                            pid,
                            crate::problem::TaskResult {
                                unit_id: unit,
                                payload: decoded,
                            },
                            now,
                        ),
                        // Frame CRC passed but the payload didn't parse:
                        // semantic corruption; reissue path.
                        _ => {
                            server.result_corrupted(client as ClientId, pid, unit, now);
                            false
                        }
                    }
                } else {
                    false // garbage problem id: ignore, nack
                };
                let complete = server.all_complete();
                drop(guard);
                if complete {
                    shared.done.notify_all();
                }
                Some(Frame::ResultAck {
                    problem,
                    unit,
                    accepted,
                })
            }
            Frame::Goodbye { client } => {
                let mut guard = shared.server.lock().unwrap();
                if let Some(server) = guard.as_mut() {
                    server.client_gone(client as ClientId);
                }
                drop(guard);
                shared
                    .last_seen
                    .lock()
                    .unwrap()
                    .remove(&(client as ClientId));
                return Action::Close;
            }
            Frame::ChunkRequest {
                client,
                problem,
                chunk,
            } => {
                let now = clock.now();
                // A replica pulling through is infrastructure, not a
                // donor: it gets no liveness entry and no chunk
                // affinity, or the scheduler would start routing units
                // at a machine that never computes.
                let is_replica = client == super::store::REPLICA_CLIENT_ID;
                if !is_replica {
                    mark_alive(shared, client as ClientId, now);
                }
                let pid = problem as usize;
                let mut guard = shared.server.lock().unwrap();
                let Some(server) = guard.as_mut() else {
                    return Action::Close;
                };
                if pid >= server.problem_count() {
                    drop(guard);
                    // Garbage problem id: an explicit refusal, so the
                    // requester fails over instead of waiting out its
                    // ack timeout.
                    Some(Frame::ChunkMissing { problem, chunk })
                } else {
                    match server.codec(pid).map(|c| c.encode_chunk(chunk)) {
                        Some(Ok(payload)) => {
                            let digest = super::cache::chunk_digest(&payload);
                            if !is_replica {
                                // The donor is about to hold this chunk:
                                // feed the scheduler's affinity map so
                                // later units covering it land here.
                                server.note_client_chunks(client as ClientId, &[digest]);
                            }
                            drop(guard);
                            shared.telemetry.counter_add("net.chunks_served", 1);
                            shared
                                .telemetry
                                .counter_add("net.chunk_bytes_out", payload.len() as u64);
                            Some(Frame::ChunkData {
                                problem,
                                chunk,
                                digest,
                                payload,
                            })
                        }
                        // Unknown chunk or codec without chunk support:
                        // answer ChunkMissing instead of silence — a
                        // silent miss left the requester blocked in
                        // await_frame until the heartbeat liveness
                        // sweep fired.
                        _ => {
                            drop(guard);
                            Some(Frame::ChunkMissing { problem, chunk })
                        }
                    }
                }
            }
            Frame::MetricsReport { client, snapshot } => {
                let now = clock.now();
                mark_alive(shared, client as ClientId, now);
                match crate::telemetry::MetricsSnapshot::from_wire_bytes(&snapshot) {
                    Ok(snap) => {
                        shared
                            .telemetry
                            .merge_snapshot_prefixed(&format!("donor.c{client}."), &snap);
                        shared.telemetry.emit_at(
                            now,
                            crate::telemetry::EventKind::MetricsReported {
                                client: client as ClientId,
                            },
                        );
                    }
                    Err(_) => {
                        shared
                            .telemetry
                            .counter_add("telemetry.report_decode_errors", 1);
                    }
                }
                None
            }
            Frame::StatusRequest => {
                let now = clock.now();
                let mut guard = shared.server.lock().unwrap();
                let Some(server) = guard.as_mut() else {
                    return Action::Close;
                };
                let snapshot = server.status_snapshot(now);
                drop(guard);
                Some(Frame::StatusReport {
                    snapshot: snapshot.to_wire_bytes(),
                })
            }
            // Server-bound protocol only; a client frame here is a bug
            // or corruption that slipped the type check — ignore it.
            Frame::AssignUnit { .. }
            | Frame::Wait
            | Frame::Finished
            | Frame::ResultAck { .. }
            | Frame::HeartbeatAck
            | Frame::ChunkData { .. }
            | Frame::ChunkMissing { .. }
            | Frame::ReplicaAnnounce { .. }
            | Frame::StatusReport { .. } => None,
        };
        if let Some(reply) = reply {
            conn.queue_reply(&reply, &shared.telemetry);
        }
        Action::Keep
    }

    /// Routes a CRC-failed `SubmitResult` to [`Server::result_corrupted`]
    /// using the id fields from the (header-validated) body prefix, and
    /// nacks so the sender retires or retries its pending copy.
    fn handle_corrupt_result(&mut self, conn: &mut Conn, body_prefix: &[u8]) {
        let mut r = ByteReader::new(body_prefix);
        let (Ok(client), Ok(problem), Ok(unit)) = (r.u64(), r.u64(), r.u64()) else {
            return; // prefix too mangled to attribute; lease expiry recovers
        };
        let pid = problem as usize;
        let now = self.clock.now();
        {
            let mut guard = self.shared.server.lock().unwrap();
            let Some(server) = guard.as_mut() else { return };
            if pid < server.problem_count() {
                server.result_corrupted(client as ClientId, pid, unit, now);
            }
        }
        conn.queue_reply(
            &Frame::ResultAck {
                problem,
                unit,
                accepted: false,
            },
            &self.shared.telemetry.clone(),
        );
    }
}

/// The sharded request path, run under the server lock: centrally-owned
/// priority queues first (rescue/reissue/quorum), then this shard's
/// claimed units (affinity-picked), then a steal from the first
/// non-empty sibling, then a fresh claim batch — and only when every
/// queue in the system is dry, the full legacy path (lookahead pool,
/// end-game speculation, `Wait`).
///
/// Ordering is the liveness argument: any request while any shard queue
/// is non-empty leases a queued unit, so claimed units always drain —
/// a shard whose donors all crashed cannot strand work.
fn sharded_request_work(
    server: &mut Server,
    shared: &Shared,
    shard: usize,
    client: ClientId,
    now: f64,
    claim_batch: usize,
) -> Assignment {
    if let Some(a) = server.priority_work(client, now) {
        return a;
    }
    // Donors caching chunks dispatch through the affinity machinery,
    // not the shard-local claim queues: first the best cached-data
    // match across *every* queue (a batch claim may have pulled this
    // donor's unit into a sibling's queue), then the central path,
    // whose lookahead pool is the full `affinity_lookahead` window —
    // a shard-sized claim window would refetch chunks the fleet
    // already holds. The claim/steal plane below serves cold donors.
    if server.has_affinity(client) {
        while let Some((pid, unit)) = shared
            .queues
            .pop_best(shard, |(pid, u)| server.claimed_affinity(client, *pid, u))
        {
            match server.lease_claimed(client, pid, unit, now) {
                Some(a) => return a,
                // The problem completed while the unit sat queued;
                // drop it and try the next candidate.
                None => continue,
            }
        }
        let a = server.request_work(client, now);
        if !matches!(a, Assignment::Wait) {
            return a;
        }
        // Nothing fresh anywhere: drain stranded claims — a queued
        // unit's affine donor may never come back, and leaving it
        // would stall the run on a cache optimisation.
        loop {
            let Some((pid, unit)) = shared.queues.pop_any(shard) else {
                return Assignment::Wait;
            };
            match server.lease_claimed(client, pid, unit, now) {
                Some(a) => return a,
                None => continue,
            }
        }
    }
    loop {
        if let Some((pid, unit)) = shared
            .queues
            .pop_pick(shard, |q| server.claimed_pick(client, q))
        {
            match server.lease_claimed(client, pid, unit, now) {
                Some(a) => return a,
                None => continue,
            }
        }
        let stolen = shared.queues.steal_into(shard);
        if stolen > 0 {
            shared.telemetry.counter_add("shard.steals", 1);
            shared
                .telemetry
                .counter_add("shard.stolen_units", stolen as u64);
            continue;
        }
        let batch = server.claim_units(client, claim_batch, now);
        if batch.is_empty() {
            break;
        }
        shared
            .telemetry
            .counter_add("shard.claimed", batch.len() as u64);
        shared.queues.push_batch(shard, batch);
    }
    server.request_work(client, now)
}

fn mark_alive(shared: &Shared, client: ClientId, now: f64) {
    shared.last_seen.lock().unwrap().insert(client, now);
}

fn ticker_loop(shared: &Arc<Shared>, clock: Clock, opts: &NetServerOptions) {
    let mut tick = 0u64;
    while !shared.kill.load(Ordering::SeqCst) {
        thread::sleep(opts.tick_wall);
        tick += 1;
        let now = clock.now();
        // Liveness sweep outside the server lock (fixed lock order:
        // never hold both mutexes at once).
        let stale: Vec<ClientId> = {
            let mut seen = shared.last_seen.lock().unwrap();
            let stale: Vec<ClientId> = seen
                .iter()
                .filter(|&(_, &t)| now - t > opts.liveness_timeout)
                .map(|(&c, _)| c)
                .collect();
            for c in &stale {
                seen.remove(c);
            }
            stale
        };
        if !stale.is_empty() {
            shared.telemetry.emit_at(
                now,
                crate::telemetry::EventKind::LivenessSweep { stale: stale.len() },
            );
        }
        let mut guard = shared.server.lock().unwrap();
        let Some(server) = guard.as_mut() else { return };
        server.check_timeouts(now);
        for c in stale {
            server.client_gone(c);
        }
        let complete = server.all_complete();
        if !complete {
            if let Some(w) = &opts.checkpoint {
                if opts.snapshot_every_ticks > 0 && tick.is_multiple_of(opts.snapshot_every_ticks) {
                    w.append_snapshot(&server.scheduler_snapshot());
                    w.append_affinity(&server.affinity_snapshot());
                    w.append_reputation(&server.reputation_snapshot());
                    let endpoints = shared.replicas.lock().unwrap().clone();
                    if !endpoints.is_empty() {
                        w.append_replicas(&endpoints);
                    }
                }
            }
        }
        drop(guard);
        if complete {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::integration_problem;
    use crate::net::wire::FrameReader;
    use crate::sched::SchedulerConfig;
    use crate::server::Server;

    fn small_cfg() -> SchedulerConfig {
        SchedulerConfig {
            min_unit_ops: 2e6,
            max_unit_ops: 2e6,
            ..Default::default()
        }
    }

    /// Drives a full protocol session over a raw socket — no client.rs
    /// machinery — including one deliberately corrupted submission.
    #[test]
    fn raw_socket_session_completes_and_survives_corruption() {
        let clock = Clock::new(1000.0);
        let mut server = Server::new(small_cfg());
        let pid = server.submit(integration_problem(100_000));
        let algorithm = server.algorithm(pid);
        let codec = server.codec(pid).unwrap();
        let net = NetServer::start(server, clock, NetServerOptions::default()).unwrap();

        let mut stream = TcpStream::connect(net.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut reader = FrameReader::new();
        let await_frame = |stream: &mut TcpStream, reader: &mut FrameReader| loop {
            match reader.poll(stream) {
                Ok(Some(f)) => return f,
                Ok(None) => {}
                Err(e) => panic!("read failed: {e}"),
            }
        };

        stream
            .write_all(&encode_frame(&Frame::Hello { client: 0 }))
            .unwrap();
        let mut corrupted_once = false;
        loop {
            stream
                .write_all(&encode_frame(&Frame::RequestWork { client: 0 }))
                .unwrap();
            match await_frame(&mut stream, &mut reader) {
                Frame::AssignUnit {
                    problem,
                    unit,
                    cost_ops,
                    payload,
                } => {
                    let wu = crate::problem::WorkUnit {
                        id: unit,
                        payload: codec.decode_unit(&payload).unwrap(),
                        cost_ops,
                    };
                    let result = algorithm.compute(&wu);
                    let encoded = codec.encode_result(&result.payload).unwrap();
                    let mut frame = encode_frame(&Frame::SubmitResult {
                        client: 0,
                        problem,
                        unit,
                        payload: encoded,
                    });
                    if !corrupted_once {
                        corrupted_once = true;
                        let n = frame.len();
                        frame[n - 1] ^= 0xFF; // break the body CRC
                        stream.write_all(&frame).unwrap();
                        match await_frame(&mut stream, &mut reader) {
                            Frame::ResultAck {
                                accepted: false, ..
                            } => {}
                            other => panic!("expected a nack, got {other:?}"),
                        }
                        continue; // the unit reissues via the lease/corrupt path
                    }
                    stream.write_all(&frame).unwrap();
                    match await_frame(&mut stream, &mut reader) {
                        Frame::ResultAck { .. } => {}
                        other => panic!("expected an ack, got {other:?}"),
                    }
                }
                // A Wait is a real pause server-side; the raw client
                // just asks again on its next loop iteration.
                Frame::Wait => thread::sleep(Duration::from_millis(1)),
                Frame::Finished => break,
                other => panic!("unexpected frame {other:?}"),
            }
        }
        stream
            .write_all(&encode_frame(&Frame::Goodbye { client: 0 }))
            .unwrap();

        let mut server = net.wait();
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        assert_eq!(server.stats(pid).corrupted_results, 1);
    }

    #[test]
    fn silent_client_is_reclaimed_by_the_liveness_sweep() {
        let clock = Clock::new(1000.0);
        let mut server = Server::new(small_cfg());
        let pid = server.submit(integration_problem(100_000));
        let net = NetServer::start(
            server,
            clock,
            NetServerOptions {
                liveness_timeout: 20.0, // 20ms wall at scale 1000
                ..Default::default()
            },
        )
        .unwrap();

        // Take a unit and go silent, never submitting.
        let mut stream = TcpStream::connect(net.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut reader = FrameReader::new();
        stream
            .write_all(&encode_frame(&Frame::RequestWork { client: 7 }))
            .unwrap();
        loop {
            match reader.poll(&mut stream) {
                Ok(Some(Frame::AssignUnit { .. })) => break,
                Ok(Some(Frame::Wait)) => {
                    stream
                        .write_all(&encode_frame(&Frame::RequestWork { client: 7 }))
                        .unwrap();
                }
                Ok(Some(other)) => panic!("unexpected frame {other:?}"),
                Ok(None) => {}
                Err(e) => panic!("read failed: {e}"),
            }
        }
        // Wait well past the liveness timeout; the sweep must reclaim
        // the lease so another client could finish the run.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let reissued = net
                .with_server(|s| s.stats(pid).reissued_units)
                .expect("server alive");
            if reissued >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "liveness sweep never reclaimed the silent client's lease"
            );
            thread::sleep(Duration::from_millis(2));
        }
        net.kill();
    }

    /// Two raw donors homed on different shards: each frame must be
    /// handled on its home shard (gauges say so), with exactly one
    /// migration per connection and no misroutes.
    #[test]
    fn donors_land_on_their_home_shards() {
        let clock = Clock::new(1000.0);
        let mut server = Server::new(small_cfg());
        server.set_telemetry(crate::telemetry::Telemetry::enabled());
        let telemetry = server.telemetry();
        let pid = server.submit(integration_problem(100_000));
        let algorithm = server.algorithm(pid);
        let codec = server.codec(pid).unwrap();
        let net = NetServer::start(
            server,
            clock,
            NetServerOptions {
                shards: 2,
                ..Default::default()
            },
        )
        .unwrap();

        let run_donor = |client: u64, addr: SocketAddr| {
            let algorithm = algorithm.clone();
            let codec = codec.clone();
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_millis(50)))
                    .unwrap();
                let mut reader = FrameReader::new();
                let await_frame = |stream: &mut TcpStream, reader: &mut FrameReader| loop {
                    match reader.poll(stream) {
                        Ok(Some(f)) => return f,
                        Ok(None) => {}
                        Err(e) => panic!("read failed: {e}"),
                    }
                };
                stream
                    .write_all(&encode_frame(&Frame::Hello { client }))
                    .unwrap();
                loop {
                    stream
                        .write_all(&encode_frame(&Frame::RequestWork { client }))
                        .unwrap();
                    match await_frame(&mut stream, &mut reader) {
                        Frame::AssignUnit {
                            problem,
                            unit,
                            cost_ops,
                            payload,
                        } => {
                            let wu = crate::problem::WorkUnit {
                                id: unit,
                                payload: codec.decode_unit(&payload).unwrap(),
                                cost_ops,
                            };
                            let result = algorithm.compute(&wu);
                            let encoded = codec.encode_result(&result.payload).unwrap();
                            stream
                                .write_all(&encode_frame(&Frame::SubmitResult {
                                    client,
                                    problem,
                                    unit,
                                    payload: encoded,
                                }))
                                .unwrap();
                            match await_frame(&mut stream, &mut reader) {
                                Frame::ResultAck { .. } => {}
                                other => panic!("expected an ack, got {other:?}"),
                            }
                        }
                        Frame::Wait => thread::sleep(Duration::from_millis(1)),
                        Frame::Finished => break,
                        other => panic!("unexpected frame {other:?}"),
                    }
                }
            })
        };
        let d0 = run_donor(0, net.addr()); // home shard 0
        let d1 = run_donor(1, net.addr()); // home shard 1
        d0.join().unwrap();
        d1.join().unwrap();
        let mut server = net.wait();
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        let snap = telemetry.metrics_snapshot();
        assert_eq!(
            snap.gauge("shard.s0.clients"),
            Some(1.0),
            "donor 0 on shard 0"
        );
        assert_eq!(
            snap.gauge("shard.s1.clients"),
            Some(1.0),
            "donor 1 on shard 1"
        );
        assert_eq!(snap.counter("shard.misrouted"), 0);
        assert_eq!(
            snap.gauge("evloop.threads"),
            Some(4.0),
            "2 shards + acceptor + ticker"
        );
    }
}
