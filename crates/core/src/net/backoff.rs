//! Jittered exponential backoff shared by the reconnect loop and the
//! chunk-fetch failover ladder.
//!
//! One implementation, two very different consumers: [`client`]'s
//! reconnect path (a donor probing for a restarted server) and the
//! replica failover ladder in `fetch_one` (a donor walking its
//! candidate endpoints after a timeout or digest mismatch). Both need
//! the same three properties the scheduler's lease backoff already
//! pinned down: doubling with a hard clamp on the exponent (so the
//! shift can never overflow), a cap on the final delay, and a ±50%
//! jitter so a herd of donors hitting the same dead endpoint does not
//! retry in lockstep.
//!
//! [`client`]: super::client

use biodist_util::rng::Rng;

/// Exponential backoff state: call [`Backoff::record_failure`] after
/// each failed attempt and [`Backoff::delay_secs`] for the pause before
/// the next one; [`Backoff::reset`] on success.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_secs: f64,
    cap_secs: f64,
    max_doublings: u32,
    failures: u32,
}

impl Backoff {
    /// A backoff starting at `base_secs`, doubling per recorded failure
    /// up to `max_doublings` times, with every delay capped at
    /// `cap_secs` before jitter-scaling (jitter can only shrink or grow
    /// the delay within ±50%, and the post-jitter value is capped too).
    pub fn new(base_secs: f64, cap_secs: f64, max_doublings: u32) -> Self {
        assert!(
            base_secs.is_finite() && base_secs >= 0.0,
            "backoff base must be finite and non-negative"
        );
        assert!(
            cap_secs.is_finite() && cap_secs >= 0.0,
            "backoff cap must be finite and non-negative"
        );
        Self {
            base_secs,
            cap_secs,
            max_doublings,
            failures: 0,
        }
    }

    /// Consecutive failures recorded since the last reset.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Notes one more failed attempt (saturating).
    pub fn record_failure(&mut self) {
        self.failures = self.failures.saturating_add(1);
    }

    /// Clears the failure streak after a success.
    pub fn reset(&mut self) {
        self.failures = 0;
    }

    /// The jittered delay before the next attempt, in (caller-scaled)
    /// seconds. Doubles per recorded failure with the same overflow
    /// discipline as the scheduler's lease backoff: the exponent is
    /// clamped both by `max_doublings` and by 63, so the shift is
    /// always defined no matter how long the failure streak runs.
    pub fn delay_secs<R: Rng>(&self, rng: &mut R) -> f64 {
        let doublings = self.failures.min(self.max_doublings).min(63);
        let factor = (1u64 << doublings) as f64;
        let jitter = 0.5 + rng.next_f64();
        (self.base_secs * factor * jitter).min(self.cap_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_util::rng::SplitMix64;

    #[test]
    fn delay_doubles_then_clamps_at_the_cap() {
        let mut b = Backoff::new(0.05, 2.0, 6);
        let mut rng = SplitMix64::new(1);
        let mut prev = 0.0;
        for _ in 0..20 {
            let d = b.delay_secs(&mut rng);
            assert!(d.is_finite() && d >= 0.0, "delay must be sane, got {d}");
            assert!(d <= 2.0 + 1e-12, "delay {d} exceeds the cap");
            // Jitter is ±50%, so with base doubling the *upper envelope*
            // grows monotonically until the cap; check the envelope.
            let envelope = (0.05 * (1u64 << b.failures().min(6)) as f64 * 1.5).min(2.0);
            assert!(d <= envelope + 1e-12, "delay {d} above envelope {envelope}");
            let _ = prev;
            prev = d;
            b.record_failure();
        }
    }

    #[test]
    fn backoff_never_overflows_or_grows_unbounded() {
        // Mirror of the scheduler's lease-backoff regression: a failure
        // streak far past 63 doublings must neither panic (shift
        // overflow) nor produce a delay above the cap.
        let mut b = Backoff::new(0.05, 2.0, u32::MAX);
        for _ in 0..100_000 {
            b.record_failure();
        }
        let mut rng = SplitMix64::new(7);
        let d = b.delay_secs(&mut rng);
        assert!(d.is_finite(), "delay overflowed to non-finite: {d}");
        assert!(d <= 2.0 + 1e-12, "delay {d} escaped the cap");
    }

    #[test]
    fn jitter_spreads_delays_and_reset_restarts_the_streak() {
        let mut b = Backoff::new(1.0, 100.0, 6);
        b.record_failure();
        let mut rng = SplitMix64::new(42);
        let samples: Vec<f64> = (0..32).map(|_| b.delay_secs(&mut rng)).collect();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(min >= 1.0, "jitter floor is 0.5 × doubled base, got {min}");
        assert!(
            max <= 3.0,
            "jitter ceiling is 1.5 × doubled base, got {max}"
        );
        assert!(max - min > 0.1, "jitter must actually spread the delays");
        b.reset();
        assert_eq!(b.failures(), 0, "reset clears the streak");
        let d = b.delay_secs(&mut rng);
        assert!(d <= 1.5, "post-reset delay is back to the jittered base");
    }
}
