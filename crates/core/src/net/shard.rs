//! Claimed-unit queues for the sharded dispatch plane.
//!
//! Each event-loop shard owns one queue of *claimed* units: fresh work
//! pulled (and journaled) from the central server in batches, waiting
//! to be leased to the shard's own donors. The central server keeps all
//! authority — leases, folds, quorum, reissue, recovery — so a claimed
//! unit is nothing but a dispatch reservation; anything that crashes or
//! completes is handled by the same central paths as before.
//!
//! When a shard runs dry it *steals* from its siblings before asking
//! the server for fresh work, so a shard whose donors all vanish
//! mid-run cannot strand its claimed units: any surviving donor's next
//! request drains every queue in the system before falling back. That
//! ordering is the liveness argument — data managers generate each
//! unit exactly once, so a claimed unit must eventually be leased or
//! its problem never completes.
//!
//! Locks here are leaves: each queue has its own mutex, taken strictly
//! after (or without) the server lock, and never two at once — a steal
//! drains the victim under one lock, releases it, then fills the thief.

use crate::problem::WorkUnit;
use crate::server::ProblemId;
use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;

/// One claimed unit: the problem it belongs to and the unit itself.
pub type Claimed = (ProblemId, Arc<WorkUnit>);

/// The per-shard claimed-unit queues, shared by every server thread.
pub struct ShardQueues {
    queues: Vec<Mutex<VecDeque<Claimed>>>,
}

impl ShardQueues {
    /// Queues for `shards` shards (at least one).
    pub fn new(shards: usize) -> Self {
        Self {
            queues: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Appends a freshly claimed batch to `shard`'s queue.
    pub fn push_batch(&self, shard: usize, batch: Vec<Claimed>) {
        if batch.is_empty() {
            return;
        }
        let mut q = self.queues[shard].lock().unwrap();
        q.extend(batch);
    }

    /// Pops one unit from `shard`'s queue, letting `pick` choose the
    /// index (affinity-aware selection runs under the caller's server
    /// lock; this lock is a leaf below it).
    pub fn pop_pick(
        &self,
        shard: usize,
        pick: impl FnOnce(&VecDeque<Claimed>) -> usize,
    ) -> Option<Claimed> {
        let mut q = self.queues[shard].lock().unwrap();
        if q.is_empty() {
            return None;
        }
        let idx = pick(&q).min(q.len() - 1);
        q.remove(idx)
    }

    /// Pops the highest-`score` unit across *every* queue, scanning
    /// `home` first so equal scores stay shard-local; returns `None`
    /// when nothing scores above zero. Used for donors with
    /// chunk-affinity entries: the unit whose data a donor caches may
    /// have been claimed by any shard, and leaving it there trades a
    /// queue pop for a full chunk refetch — while a zero-score unit is
    /// deliberately left queued for whichever donor does cache it.
    ///
    /// Locks queues strictly one at a time. Callers hold the server
    /// lock (scoring requires it), which serializes every queue
    /// mutation in the dispatch path, so the two-phase scan-then-pop
    /// is exact, not merely best-effort.
    pub fn pop_best(&self, home: usize, score: impl Fn(&Claimed) -> usize) -> Option<Claimed> {
        let n = self.queues.len();
        let mut best: Option<(usize, usize)> = None;
        for step in 0..n {
            let shard = (home + step) % n;
            let q = self.queues[shard].lock().unwrap();
            for c in q.iter() {
                let s = score(c);
                if s > 0 && best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((shard, s));
                }
            }
        }
        let (shard, _) = best?;
        let mut q = self.queues[shard].lock().unwrap();
        let mut bi = 0usize;
        let mut bs = 0usize;
        for (i, c) in q.iter().enumerate() {
            let s = score(c);
            if s > bs {
                bi = i;
                bs = s;
            }
        }
        if bs == 0 {
            return None;
        }
        q.remove(bi)
    }

    /// Pops the front of the first non-empty queue, scanning `home`
    /// first — the liveness backstop for claimed units whose affine
    /// donor never returns.
    pub fn pop_any(&self, home: usize) -> Option<Claimed> {
        let n = self.queues.len();
        for step in 0..n {
            let shard = (home + step) % n;
            let mut q = self.queues[shard].lock().unwrap();
            if let Some(c) = q.pop_front() {
                return Some(c);
            }
        }
        None
    }

    /// Steals work into `thief`'s queue from the first non-empty
    /// sibling, scanning `(thief + 1) % n` onward so victims rotate.
    /// Takes the back half (≥ 1 unit) of the victim — the owner keeps
    /// its oldest claims — and returns how many units moved.
    pub fn steal_into(&self, thief: usize) -> usize {
        let n = self.queues.len();
        for step in 1..n {
            let victim = (thief + step) % n;
            // Drain under the victim's lock only, fill the thief after
            // releasing it: no two queue locks are ever held at once,
            // so concurrent mutual steals cannot deadlock.
            let taken: Vec<Claimed> = {
                let mut q = self.queues[victim].lock().unwrap();
                if q.is_empty() {
                    continue;
                }
                let keep = q.len() / 2;
                q.split_off(keep).into()
            };
            let count = taken.len();
            if count > 0 {
                self.queues[thief].lock().unwrap().extend(taken);
                return count;
            }
        }
        0
    }

    /// Units queued on `shard`.
    pub fn len(&self, shard: usize) -> usize {
        self.queues[shard].lock().unwrap().len()
    }

    /// Units queued across every shard.
    pub fn total_len(&self) -> usize {
        (0..self.queues.len()).map(|s| self.len(s)).sum()
    }

    /// Whether every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.total_len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Payload, WorkUnit};

    fn unit(id: u64) -> Claimed {
        (
            0,
            Arc::new(WorkUnit {
                id,
                payload: Payload::new((), 0),
                cost_ops: 1.0,
            }),
        )
    }

    #[test]
    fn steal_takes_back_half_and_rotates_victims() {
        let q = ShardQueues::new(3);
        q.push_batch(1, (0..4).map(unit).collect());
        // Shard 0 steals: victim scan starts at shard 1.
        let moved = q.steal_into(0);
        assert_eq!(moved, 2, "back half of 4");
        assert_eq!(q.len(0), 2);
        assert_eq!(q.len(1), 2);
        // Victim keeps its *oldest* claims.
        let kept = q.pop_pick(1, |_| 0).unwrap();
        assert_eq!(kept.1.id, 0);
        // Drain shard 0 so the next scan reaches shard 1, which holds a
        // single unit: still stealable (half ≥ 1).
        q.pop_pick(0, |_| 0).unwrap();
        q.pop_pick(0, |_| 0).unwrap();
        assert_eq!(q.steal_into(2), 1);
        assert_eq!(q.len(1), 0);
        assert_eq!(q.len(2), 1);
    }

    #[test]
    fn pop_pick_selects_by_index_and_clamps() {
        let q = ShardQueues::new(1);
        q.push_batch(0, (0..3).map(unit).collect());
        assert_eq!(q.pop_pick(0, |_| 1).unwrap().1.id, 1);
        assert_eq!(q.pop_pick(0, |_| 99).unwrap().1.id, 2, "clamped to last");
        assert_eq!(q.pop_pick(0, |_| 0).unwrap().1.id, 0);
        assert!(q.pop_pick(0, |_| 0).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn empty_system_steals_nothing() {
        let q = ShardQueues::new(4);
        assert_eq!(q.steal_into(2), 0);
        assert_eq!(q.total_len(), 0);
    }
}
