//! Readiness primitives for the nonblocking TCP server: a small poller
//! abstraction, a cross-thread waker, and per-thread CPU accounting.
//!
//! The workspace carries no external dependencies, so the Linux backend
//! speaks `epoll` directly through raw syscalls (`core::arch::asm`) on
//! x86_64 and aarch64. Everywhere else a portable fallback emulates
//! level-triggered readiness: `wait` sleeps briefly and reports every
//! registered connection as maybe-ready — correct (handlers treat
//! `WouldBlock` as a no-op) but less efficient, exactly the
//! `TcpStream::set_nonblocking` + readiness-fallback design the event
//! loop is specified against.
//!
//! The waker is a self-connected loopback TCP pair: the read end lives
//! in the poller like any other connection, the write end is poked from
//! other threads (new-connection handoff, shard migration, shutdown).
//! No pipes, no signals — `std` only.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// Bytes may be readable (or the peer hung up — a read will say).
    pub readable: bool,
    /// The socket's send buffer has room again.
    pub writable: bool,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::Event;
    use std::io;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: u64 = 3;
        pub const EPOLL_WAIT: u64 = 232; // plain epoll_wait exists here
        pub const EPOLL_CTL: u64 = 233;
        pub const EPOLL_CREATE1: u64 = 291;
        pub const PRLIMIT64: u64 = 302;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: u64 = 20;
        pub const EPOLL_CTL: u64 = 21;
        pub const EPOLL_PWAIT: u64 = 22; // no epoll_wait on aarch64
        pub const CLOSE: u64 = 57;
        pub const PRLIMIT64: u64 = 261;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as i64 => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "svc #0",
            in("x8") n,
            inlateout("x0") a as i64 => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    const EPOLL_CLOEXEC: u64 = 0x80000;
    const EPOLL_CTL_ADD: u64 = 1;
    const EPOLL_CTL_DEL: u64 = 2;
    const EPOLL_CTL_MOD: u64 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    // The kernel packs epoll_event on x86_64 only; every other
    // architecture uses natural alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Readiness via `epoll`, level-triggered.
    pub struct Poller {
        epfd: i64,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let epfd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
            Ok(Self { epfd })
        }

        fn ctl(&self, op: u64, fd: i32, events: u32, token: u64) -> io::Result<()> {
            let ev = EpollEvent {
                events,
                data: token,
            };
            let ptr = if op == EPOLL_CTL_DEL {
                0u64
            } else {
                &ev as *const EpollEvent as u64
            };
            check(unsafe { syscall6(nr::EPOLL_CTL, self.epfd as u64, op, fd as u64, ptr, 0, 0) })?;
            Ok(())
        }

        pub fn add(&mut self, fd: i32, token: u64, writable: bool) -> io::Result<()> {
            let mut events = EPOLLIN;
            if writable {
                events |= EPOLLOUT;
            }
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        pub fn modify(&mut self, fd: i32, token: u64, writable: bool) -> io::Result<()> {
            let mut events = EPOLLIN;
            if writable {
                events |= EPOLLOUT;
            }
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        pub fn remove(&mut self, fd: i32, _token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            const MAX: usize = 64;
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX];
            #[cfg(target_arch = "x86_64")]
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_WAIT,
                    self.epfd as u64,
                    buf.as_mut_ptr() as u64,
                    MAX as u64,
                    timeout_ms as u64,
                    0,
                    0,
                )
            };
            #[cfg(target_arch = "aarch64")]
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.epfd as u64,
                    buf.as_mut_ptr() as u64,
                    MAX as u64,
                    timeout_ms as u64,
                    0, // no sigmask
                    8, // sigsetsize (ignored with a null mask)
                )
            };
            let n = match check(ret) {
                Ok(n) => n as usize,
                // A signal mid-wait is an empty wake, not a failure.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in buf.iter().take(n) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    // Errors and hangups surface as "readable": the next
                    // read reports the actual condition.
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                syscall6(nr::CLOSE, self.epfd as u64, 0, 0, 0, 0, 0);
            }
        }
    }

    /// Raises the process's soft `RLIMIT_NOFILE` toward `want` (capped
    /// at the hard limit). Returns the resulting soft limit.
    pub fn raise_nofile_limit(want: u64) -> Option<u64> {
        const RLIMIT_NOFILE: u64 = 7;
        #[repr(C)]
        struct Rlimit {
            cur: u64,
            max: u64,
        }
        let mut old = Rlimit { cur: 0, max: 0 };
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                0,
                &mut old as *mut Rlimit as u64,
                0,
                0,
            )
        })
        .ok()?;
        let new = Rlimit {
            cur: old.cur.max(want.min(old.max)),
            max: old.max,
        };
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &new as *const Rlimit as u64,
                0,
                0,
                0,
            )
        })
        .ok()?;
        Some(new.cur)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::Event;
    use std::collections::HashMap;
    use std::io;
    use std::time::Duration;

    /// Portable readiness emulation: every registered descriptor is
    /// reported maybe-ready after a short sleep. Handlers are written
    /// against nonblocking sockets, so a spurious report costs one
    /// `WouldBlock` — correctness is identical, only efficiency drops.
    pub struct Poller {
        registered: HashMap<u64, bool>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registered: HashMap::new(),
            })
        }

        pub fn add(&mut self, _fd: i32, token: u64, writable: bool) -> io::Result<()> {
            self.registered.insert(token, writable);
            Ok(())
        }

        pub fn modify(&mut self, _fd: i32, token: u64, writable: bool) -> io::Result<()> {
            self.registered.insert(token, writable);
            Ok(())
        }

        pub fn remove(&mut self, _fd: i32, token: u64) -> io::Result<()> {
            self.registered.remove(&token);
            Ok(())
        }

        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            let ms = (timeout_ms.max(0) as u64).min(5);
            std::thread::sleep(Duration::from_millis(ms.max(1)));
            for (&token, &writable) in &self.registered {
                out.push(Event {
                    token,
                    readable: true,
                    writable,
                });
            }
            Ok(())
        }
    }

    pub fn raise_nofile_limit(_want: u64) -> Option<u64> {
        None
    }
}

/// Raises the process's soft open-file limit toward `want` so a
/// 1k-donor loopback soak does not trip a conservative default (1024 on
/// stock CI runners). Best effort: returns the resulting soft limit on
/// Linux, `None` elsewhere.
pub fn raise_nofile_limit(want: u64) -> Option<u64> {
    sys::raise_nofile_limit(want)
}

/// Readiness poller: `epoll` on Linux (x86_64/aarch64, raw syscalls —
/// the workspace carries no libc), a sleep-and-report-all fallback
/// elsewhere. File descriptors are registered level-triggered under a
/// caller-chosen token; `writable` interest should be kept only while a
/// connection has buffered output, or every wait returns instantly.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// A fresh poller.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            inner: sys::Poller::new()?,
        })
    }

    /// Registers `fd` under `token`, readable interest always, plus
    /// writable interest when `writable`.
    pub fn add(&mut self, fd: i32, token: u64, writable: bool) -> io::Result<()> {
        self.inner.add(fd, token, writable)
    }

    /// Updates the interest set of an already-registered descriptor.
    pub fn modify(&mut self, fd: i32, token: u64, writable: bool) -> io::Result<()> {
        self.inner.modify(fd, token, writable)
    }

    /// Deregisters a descriptor.
    pub fn remove(&mut self, fd: i32, token: u64) -> io::Result<()> {
        self.inner.remove(fd, token)
    }

    /// Blocks up to `timeout_ms` for readiness; appends reports to
    /// `out` (which the caller should clear between waits).
    pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
        self.inner.wait(timeout_ms, out)
    }
}

/// The write end of a self-connected loopback pair: poking it makes the
/// owning event loop's [`Poller::wait`] return. Cheap enough to poke on
/// every cross-thread handoff; a byte already buffered is as good as
/// two.
pub struct Waker {
    tx: TcpStream,
}

impl Waker {
    /// Wakes the owning event loop. Never blocks: the send buffer
    /// holding unread wake bytes already guarantees a pending wake.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// Builds a waker and the nonblocking read end its event loop should
/// register; [`drain_wakes`] empties it after every wake.
pub fn waker_pair() -> io::Result<(Waker, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, rx))
}

/// Discards every buffered wake byte.
pub fn drain_wakes(rx: &mut TcpStream) {
    let mut buf = [0u8; 64];
    while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
}

/// The raw file descriptor of a stream for poller registration; `-1`
/// on platforms without Unix descriptors (the fallback poller ignores
/// the fd entirely).
#[cfg(unix)]
pub fn raw_fd(stream: &TcpStream) -> i32 {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}
#[cfg(not(unix))]
pub fn raw_fd(_stream: &TcpStream) -> i32 {
    -1
}

/// CPU time this thread has consumed (user + system) in kernel clock
/// ticks, read from `/proc/thread-self/stat`. `None` off Linux. Server
/// threads sample it at start and exit so `evloop.cpu_ticks` counts
/// *server-side* cost only, even when donor threads share the process.
pub fn thread_cpu_ticks() -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // comm may contain spaces; fields are stable after the last ')'.
    let rest = stat.get(stat.rfind(')')? + 2..)?;
    let mut fields = rest.split(' ');
    // rest begins at field 3 (state); utime/stime are fields 14/15.
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(utime + stime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn waker_wakes_a_waiting_poller() {
        let (waker, mut rx) = waker_pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(raw_fd(&rx), 7, false).unwrap();
        waker.wake();
        let mut events = Vec::new();
        // Generous timeout: the wake must cut it short.
        let start = std::time::Instant::now();
        while events.is_empty() && start.elapsed().as_secs() < 5 {
            poller.wait(2000, &mut events).unwrap();
        }
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        drain_wakes(&mut rx);
        // Drained: a fresh wake is needed for the next report (on the
        // epoll path; the fallback reports unconditionally).
    }

    #[test]
    fn poller_reports_readable_bytes_and_writable_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(raw_fd(&rx), 1, true).unwrap();
        tx.write_all(b"x").unwrap();
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        while !events
            .iter()
            .any(|e: &Event| e.token == 1 && e.readable && e.writable)
            && start.elapsed().as_secs() < 5
        {
            events.clear();
            poller.wait(1000, &mut events).unwrap();
        }
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        poller.modify(raw_fd(&rx), 1, false).unwrap();
        poller.remove(raw_fd(&rx), 1).unwrap();
    }

    #[test]
    fn cpu_ticks_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(thread_cpu_ticks().is_some());
        }
    }

    #[test]
    fn nofile_limit_is_reported_on_linux() {
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            let got = raise_nofile_limit(1024).expect("prlimit64 works");
            assert!(got >= 1024 || got > 0);
        }
    }
}
