//! The real-TCP execution backend.
//!
//! The paper's system ran over Java RMI plus raw sockets (§2.1); the
//! in-process backends model that wire, this module *is* one: donor
//! clients connect to the server over loopback/LAN TCP and speak the
//! CRC-framed protocol in [`wire`]. The robustness stack mirrors what
//! three years of cycle-scavenging demand:
//!
//! * [`server::NetServer`] — accept loop, per-connection handlers, and
//!   a ticker doing lease sweeps, heartbeat liveness and periodic
//!   scheduler snapshots;
//! * [`client`] — donor threads with heartbeats, jittered-exponential
//!   reconnect, idempotent result resubmission, and `FaultPlan`
//!   lifecycle faults (late join, departure, crash, slowdown)
//!   self-interpreted exactly as on the thread backend;
//! * [`proxy::FaultProxy`] — a socket-level interposer that drops,
//!   duplicates, corrupts and delays *real bytes* per the same
//!   `FaultPlan` delivery faults the PR 2 chaos harness uses;
//! * [`checkpoint`] — the append-only log that makes the server itself
//!   crash-recoverable ([`recover`]).
//!
//! [`run_tcp`] / [`run_tcp_faulty`] wire the pieces together with the
//! same signature shape as the thread backend, so the chaos suite runs
//! identical plans against all three backends and compares digests.

pub mod backoff;
pub mod cache;
pub mod checkpoint;
pub mod client;
pub mod evloop;
pub mod proxy;
pub mod server;
pub mod shard;
pub mod store;
pub mod wire;

pub use backoff::Backoff;
pub use cache::{chunk_digest, CacheStats, ChunkCache};
pub use checkpoint::{recover, recover_traced, CheckpointWriter, LogRecord, RecoveryReport};
pub use client::{spawn_clients, ClientKit, NetClientOptions};
pub use evloop::raise_nofile_limit;
pub use proxy::FaultProxy;
pub use server::{NetServer, NetServerOptions};
pub use shard::ShardQueues;
pub use store::{ChunkStore, ReplicaServer, REPLICA_CLIENT_ID};

use crate::fault::FaultPlan;
use crate::server::Server;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a [`Directory::mark_dead`] verdict sticks, in scaled
/// seconds: the endpoint is excluded from [`Directory::candidates_for`]
/// until the window passes, then gets one probe (and is re-marked on
/// another failure). Keeps a rebooted replica reachable again without
/// any explicit revival protocol.
const DEAD_WINDOW_SECS: f64 = 0.5;

#[derive(Debug, Default)]
struct DirState {
    origin: Option<SocketAddr>,
    replicas: Vec<SocketAddr>,
    /// Endpoint → time of the last failure verdict against it.
    dead_at: HashMap<SocketAddr, f64>,
}

/// Where the chunk-serving endpoints currently listen: the origin
/// server plus any replica tier. Clients re-read the origin on every
/// reconnect attempt, so a restarted server (fresh ephemeral port after
/// a crash) is found without any client-side configuration; chunk
/// fetches are routed across the replica map by rendezvous hashing with
/// per-endpoint health (a failed endpoint is excluded from candidate
/// lists for a short window, so no donor picks a known-dead replica
/// twice in a row).
#[derive(Debug, Clone, Default)]
pub struct Directory {
    inner: Arc<Mutex<DirState>>,
}

impl Directory {
    /// A fresh, empty directory (no origin, no replicas).
    pub fn new() -> Self {
        Self::default()
    }

    /// A directory whose origin is already known.
    pub fn with_origin(addr: SocketAddr) -> Self {
        let dir = Self::new();
        dir.set_origin(Some(addr));
        dir
    }

    /// The origin server's address, if one is registered.
    pub fn origin(&self) -> Option<SocketAddr> {
        self.inner.lock().unwrap().origin
    }

    /// Points the directory at a (re)started origin server.
    pub fn set_origin(&self, addr: Option<SocketAddr>) {
        self.inner.lock().unwrap().origin = addr;
    }

    /// Replaces the replica endpoint list.
    pub fn set_replicas(&self, endpoints: Vec<SocketAddr>) {
        self.inner.lock().unwrap().replicas = endpoints;
    }

    /// Merges announced endpoints into the replica list (idempotent —
    /// re-announcements on every `Hello` must not duplicate entries).
    pub fn merge_replicas(&self, endpoints: &[SocketAddr]) {
        let mut state = self.inner.lock().unwrap();
        for ep in endpoints {
            if !state.replicas.contains(ep) {
                state.replicas.push(*ep);
            }
        }
    }

    /// The current replica endpoints, in announcement order.
    pub fn replicas(&self) -> Vec<SocketAddr> {
        self.inner.lock().unwrap().replicas.clone()
    }

    /// Records a failure verdict against `addr` at `now` (scaled
    /// seconds): the endpoint is excluded from candidate lists for
    /// [`DEAD_WINDOW_SECS`].
    pub fn mark_dead(&self, addr: SocketAddr, now: f64) {
        self.inner.lock().unwrap().dead_at.insert(addr, now);
    }

    /// Clears any failure verdict against `addr` (a fetch succeeded).
    pub fn mark_alive(&self, addr: SocketAddr) {
        self.inner.lock().unwrap().dead_at.remove(&addr);
    }

    /// The replica endpoints a fetch for `digest` should try, in
    /// rendezvous order, healthy endpoints only, at most `want` of
    /// them. Deterministic given (digest, directory state, seed): the
    /// same digest and seed always walk the replicas in the same order,
    /// and an endpoint marked dead within the exclusion window is never
    /// returned. The origin is *not* in the list — it is the caller's
    /// fallback of last resort.
    pub fn candidates_for(&self, digest: u64, seed: u64, want: usize, now: f64) -> Vec<SocketAddr> {
        let state = self.inner.lock().unwrap();
        let mut scored: Vec<(u64, SocketAddr)> = state
            .replicas
            .iter()
            .filter(|ep| {
                state
                    .dead_at
                    .get(ep)
                    .is_none_or(|&t| now - t >= DEAD_WINDOW_SECS)
            })
            .map(|&ep| (store::rendezvous_score(digest, seed, endpoint_key(&ep)), ep))
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        scored.truncate(want);
        scored.into_iter().map(|(_, ep)| ep).collect()
    }
}

/// A stable hash key for an endpoint address (FNV-1a over its textual
/// form), feeding the rendezvous score.
fn endpoint_key(addr: &SocketAddr) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in addr.to_string().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fresh, empty directory.
pub fn directory() -> Directory {
    Directory::new()
}

/// The scaled wall clock every TCP-backend component shares: `now()` is
/// wall seconds since creation times `time_scale`, so the same
/// `FaultPlan` times used on the simulator's virtual clock land in
/// milliseconds of real time here (exactly like the thread backend).
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    start: Instant,
    scale: f64,
}

impl Clock {
    /// Starts the clock now.
    pub fn new(time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time scale must be finite and positive"
        );
        Self {
            start: Instant::now(),
            scale: time_scale,
        }
    }

    /// Scaled seconds since the clock started.
    pub fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * self.scale
    }

    /// Converts a scaled duration to wall time (clamped at zero).
    pub fn wall(&self, scaled_secs: f64) -> Duration {
        Duration::from_secs_f64(scaled_secs.max(0.0) / self.scale)
    }
}

/// Runs every submitted problem to completion over real TCP with
/// `n_clients` donor clients on loopback; returns the server and the
/// elapsed (scaled = wall) seconds. Every problem must carry a
/// [`crate::codec::WireCodec`].
pub fn run_tcp(server: Server, n_clients: usize) -> (Server, f64) {
    run_tcp_faulty(server, n_clients, &FaultPlan::none(), 1.0)
}

/// [`run_tcp`] with a [`FaultPlan`] injected against a scaled clock.
/// Lifecycle and slowdown faults are interpreted by the clients
/// themselves (as on the thread backend); delivery faults and link
/// degradation are applied to the actual bytes by a [`FaultProxy`]
/// interposed between clients and server.
///
/// # Panics
/// Panics if any submitted problem lacks a codec, or if loopback
/// sockets cannot be created.
pub fn run_tcp_faulty(
    server: Server,
    n_clients: usize,
    plan: &FaultPlan,
    time_scale: f64,
) -> (Server, f64) {
    run_tcp_replicated(server, n_clients, 0, plan, time_scale)
}

/// [`run_tcp_faulty`] with `n_replicas` chunk replica endpoints started
/// alongside the origin. Replicas pull chunks through from the origin
/// on first request (digest-verified) and serve donors directly; the
/// plan's [`crate::fault::FaultKind::ReplicaCrash`] /
/// [`crate::fault::FaultKind::ReplicaStall`] events are applied to the
/// replica whose index the event names.
///
/// # Panics
/// Panics if any submitted problem lacks a codec, or if loopback
/// sockets cannot be created.
pub fn run_tcp_replicated(
    server: Server,
    n_clients: usize,
    n_replicas: usize,
    plan: &FaultPlan,
    time_scale: f64,
) -> (Server, f64) {
    run_tcp_with(
        server,
        n_clients,
        n_replicas,
        plan,
        time_scale,
        NetServerOptions::default(),
    )
}

/// [`run_tcp_replicated`] with explicit [`NetServerOptions`] — the way
/// to run any existing workload on a sharded control plane (set
/// `opts.shards`; `BIODIST_NET_SHARDS` does the same for the default
/// options, making every TCP suite shard-parameterizable from the
/// environment).
///
/// # Panics
/// Panics if any submitted problem lacks a codec, or if loopback
/// sockets cannot be created.
pub fn run_tcp_with(
    server: Server,
    n_clients: usize,
    n_replicas: usize,
    plan: &FaultPlan,
    time_scale: f64,
    opts: NetServerOptions,
) -> (Server, f64) {
    assert!(n_clients >= 1, "need at least one client");
    let kit = ClientKit::from_server(&server).expect("TCP backend requires codecs");
    let telemetry = server.telemetry();
    let clock = Clock::new(time_scale);
    let net = NetServer::start(server, clock, opts).expect("bind loopback listener");
    let upstream = Directory::with_origin(net.addr());
    let replicas: Vec<ReplicaServer> = (0..n_replicas)
        .map(|r| {
            ReplicaServer::start(
                upstream.clone(),
                clock,
                telemetry.clone(),
                plan.replica_crashes(r),
                plan.replica_stalls(r),
            )
            .expect("bind replica listener")
        })
        .collect();
    let replica_addrs: Vec<SocketAddr> = replicas.iter().map(ReplicaServer::addr).collect();
    net.set_replicas(replica_addrs.clone());
    let proxy = FaultProxy::start_traced(upstream, plan, n_clients, clock, telemetry.clone())
        .expect("bind proxy listener");
    let client_dir = Directory::with_origin(proxy.addr());
    client_dir.set_replicas(replica_addrs);
    let run_over = Arc::new(AtomicBool::new(false));
    let handles = spawn_clients(
        client_dir,
        clock,
        kit,
        n_clients,
        plan,
        run_over.clone(),
        NetClientOptions::default(),
    );
    let server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    for r in replicas {
        r.stop();
    }
    proxy.stop();
    telemetry.flush();
    (server, clock.now())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::integration_problem;
    use crate::fault::FaultKind;
    use crate::sched::SchedulerConfig;

    fn tcp_cfg() -> SchedulerConfig {
        SchedulerConfig {
            target_unit_secs: 0.05,
            prior_ops_per_sec: 2e9,
            min_unit_ops: 1e4,
            max_unit_ops: 1e7,
            lease_min_secs: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn computes_pi_over_real_sockets() {
        let mut server = Server::new(tcp_cfg());
        let pid = server.submit(integration_problem(300_000));
        let (mut server, _) = run_tcp_faulty(server, 3, &FaultPlan::none(), 20.0);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        assert!(server.stats(pid).completed_units >= 2, "work was split");
    }

    #[test]
    fn wire_corruption_is_detected_and_survived() {
        let mut server = Server::new(tcp_cfg());
        let pid = server.submit(integration_problem(300_000));
        // Arm every client so whichever delivers first gets corrupted.
        let mut plan = FaultPlan::new(0);
        for c in 0..3 {
            plan.push(0.0, c, FaultKind::CorruptResult);
        }
        let (mut server, _) = run_tcp_faulty(server, 3, &plan, 20.0);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        assert!(
            server.stats(pid).corrupted_results >= 1,
            "the flipped bytes must be caught by the frame CRC: {:?}",
            server.stats(pid)
        );
    }

    #[test]
    fn churn_over_real_sockets_still_completes() {
        let mut server = Server::new(tcp_cfg());
        let pid = server.submit(integration_problem(300_000));
        let plan = FaultPlan::new(0)
            .with(0.5, 0, FaultKind::Depart)
            .with(1.0, 1, FaultKind::Crash { down_secs: 2.0 })
            .with(0.5, 2, FaultKind::LateJoin)
            .with(
                0.2,
                3,
                FaultKind::Slowdown {
                    factor: 3.0,
                    duration_secs: 2.0,
                },
            );
        let (mut server, _) = run_tcp_faulty(server, 4, &plan, 20.0);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
    }
}
