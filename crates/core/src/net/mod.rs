//! The real-TCP execution backend.
//!
//! The paper's system ran over Java RMI plus raw sockets (§2.1); the
//! in-process backends model that wire, this module *is* one: donor
//! clients connect to the server over loopback/LAN TCP and speak the
//! CRC-framed protocol in [`wire`]. The robustness stack mirrors what
//! three years of cycle-scavenging demand:
//!
//! * [`server::NetServer`] — accept loop, per-connection handlers, and
//!   a ticker doing lease sweeps, heartbeat liveness and periodic
//!   scheduler snapshots;
//! * [`client`] — donor threads with heartbeats, jittered-exponential
//!   reconnect, idempotent result resubmission, and `FaultPlan`
//!   lifecycle faults (late join, departure, crash, slowdown)
//!   self-interpreted exactly as on the thread backend;
//! * [`proxy::FaultProxy`] — a socket-level interposer that drops,
//!   duplicates, corrupts and delays *real bytes* per the same
//!   `FaultPlan` delivery faults the PR 2 chaos harness uses;
//! * [`checkpoint`] — the append-only log that makes the server itself
//!   crash-recoverable ([`recover`]).
//!
//! [`run_tcp`] / [`run_tcp_faulty`] wire the pieces together with the
//! same signature shape as the thread backend, so the chaos suite runs
//! identical plans against all three backends and compares digests.

pub mod cache;
pub mod checkpoint;
pub mod client;
pub mod proxy;
pub mod server;
pub mod wire;

pub use cache::{chunk_digest, CacheStats, ChunkCache};
pub use checkpoint::{recover, recover_traced, CheckpointWriter, LogRecord, RecoveryReport};
pub use client::{spawn_clients, ClientKit, NetClientOptions};
pub use proxy::FaultProxy;
pub use server::{NetServer, NetServerOptions};

use crate::fault::FaultPlan;
use crate::server::Server;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where the server currently listens. Clients re-read it on every
/// reconnect attempt, so a restarted server (fresh ephemeral port after
/// a crash) is found without any client-side configuration.
pub type Directory = Arc<Mutex<Option<SocketAddr>>>;

/// A fresh, empty directory.
pub fn directory() -> Directory {
    Arc::new(Mutex::new(None))
}

/// The scaled wall clock every TCP-backend component shares: `now()` is
/// wall seconds since creation times `time_scale`, so the same
/// `FaultPlan` times used on the simulator's virtual clock land in
/// milliseconds of real time here (exactly like the thread backend).
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    start: Instant,
    scale: f64,
}

impl Clock {
    /// Starts the clock now.
    pub fn new(time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time scale must be finite and positive"
        );
        Self {
            start: Instant::now(),
            scale: time_scale,
        }
    }

    /// Scaled seconds since the clock started.
    pub fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * self.scale
    }

    /// Converts a scaled duration to wall time (clamped at zero).
    pub fn wall(&self, scaled_secs: f64) -> Duration {
        Duration::from_secs_f64(scaled_secs.max(0.0) / self.scale)
    }
}

/// Runs every submitted problem to completion over real TCP with
/// `n_clients` donor clients on loopback; returns the server and the
/// elapsed (scaled = wall) seconds. Every problem must carry a
/// [`crate::codec::WireCodec`].
pub fn run_tcp(server: Server, n_clients: usize) -> (Server, f64) {
    run_tcp_faulty(server, n_clients, &FaultPlan::none(), 1.0)
}

/// [`run_tcp`] with a [`FaultPlan`] injected against a scaled clock.
/// Lifecycle and slowdown faults are interpreted by the clients
/// themselves (as on the thread backend); delivery faults and link
/// degradation are applied to the actual bytes by a [`FaultProxy`]
/// interposed between clients and server.
///
/// # Panics
/// Panics if any submitted problem lacks a codec, or if loopback
/// sockets cannot be created.
pub fn run_tcp_faulty(
    server: Server,
    n_clients: usize,
    plan: &FaultPlan,
    time_scale: f64,
) -> (Server, f64) {
    assert!(n_clients >= 1, "need at least one client");
    let kit = ClientKit::from_server(&server).expect("TCP backend requires codecs");
    let telemetry = server.telemetry();
    let clock = Clock::new(time_scale);
    let net = NetServer::start(server, clock, NetServerOptions::default())
        .expect("bind loopback listener");
    let upstream: Directory = Arc::new(Mutex::new(Some(net.addr())));
    let proxy = FaultProxy::start_traced(upstream, plan, n_clients, clock, telemetry.clone())
        .expect("bind proxy listener");
    let client_dir: Directory = Arc::new(Mutex::new(Some(proxy.addr())));
    let run_over = Arc::new(AtomicBool::new(false));
    let handles = spawn_clients(
        client_dir,
        clock,
        kit,
        n_clients,
        plan,
        run_over.clone(),
        NetClientOptions::default(),
    );
    let server = net.wait();
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    proxy.stop();
    telemetry.flush();
    (server, clock.now())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::integration_problem;
    use crate::fault::FaultKind;
    use crate::sched::SchedulerConfig;

    fn tcp_cfg() -> SchedulerConfig {
        SchedulerConfig {
            target_unit_secs: 0.05,
            prior_ops_per_sec: 2e9,
            min_unit_ops: 1e4,
            max_unit_ops: 1e7,
            lease_min_secs: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn computes_pi_over_real_sockets() {
        let mut server = Server::new(tcp_cfg());
        let pid = server.submit(integration_problem(300_000));
        let (mut server, _) = run_tcp_faulty(server, 3, &FaultPlan::none(), 20.0);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        assert!(server.stats(pid).completed_units >= 2, "work was split");
    }

    #[test]
    fn wire_corruption_is_detected_and_survived() {
        let mut server = Server::new(tcp_cfg());
        let pid = server.submit(integration_problem(300_000));
        // Arm every client so whichever delivers first gets corrupted.
        let mut plan = FaultPlan::new(0);
        for c in 0..3 {
            plan.push(0.0, c, FaultKind::CorruptResult);
        }
        let (mut server, _) = run_tcp_faulty(server, 3, &plan, 20.0);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        assert!(
            server.stats(pid).corrupted_results >= 1,
            "the flipped bytes must be caught by the frame CRC: {:?}",
            server.stats(pid)
        );
    }

    #[test]
    fn churn_over_real_sockets_still_completes() {
        let mut server = Server::new(tcp_cfg());
        let pid = server.submit(integration_problem(300_000));
        let plan = FaultPlan::new(0)
            .with(0.5, 0, FaultKind::Depart)
            .with(1.0, 1, FaultKind::Crash { down_secs: 2.0 })
            .with(0.5, 2, FaultKind::LateJoin)
            .with(
                0.2,
                3,
                FaultKind::Slowdown {
                    factor: 3.0,
                    duration_secs: 2.0,
                },
            );
        let (mut server, _) = run_tcp_faulty(server, 4, &plan, 20.0);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
    }
}
