//! The framed wire protocol spoken on the real TCP transport.
//!
//! Every message is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        0xB10D157C, little-endian
//! 4       1     version      currently 1
//! 5       1     frame type   see the `Frame` discriminants
//! 6       4     body length  little-endian, ≤ MAX_BODY
//! 10      4     header CRC   CRC-32 (IEEE) over bytes 0..10
//! 14      n     body         frame-type-specific, ByteWriter layout
//! 14+n    4     body CRC     CRC-32 (IEEE) over the body
//! ```
//!
//! The split checksum matters: the header CRC lets a receiver trust the
//! *length* before allocating or skipping, so a corrupted body never
//! desynchronises the stream — the frame is skipped whole and the error
//! reported ([`DecodeError::BodyCrc`] carries the body prefix so a
//! corrupt `SubmitResult` can still be routed to
//! [`crate::Server::result_corrupted`]). Decoding is total: any byte
//! string yields a frame or a [`DecodeError`], never a panic, and no
//! length field can drive an allocation past the bytes actually
//! received (the property tests below pin all of this down).

use crate::codec::{ByteReader, ByteWriter, WireError};
use std::io::Read;

/// Frame magic: "BIODIST" squeezed into 4 bytes.
pub const MAGIC: u32 = 0xB10D_157C;
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 14;
/// Hard cap on a frame body. Anything larger is rejected before any
/// allocation — a corrupted or hostile length cannot balloon memory.
pub const MAX_BODY: u32 = 64 * 1024 * 1024;

const FT_HELLO: u8 = 1;
const FT_REQUEST_WORK: u8 = 2;
const FT_ASSIGN_UNIT: u8 = 3;
const FT_WAIT: u8 = 4;
const FT_FINISHED: u8 = 5;
const FT_SUBMIT_RESULT: u8 = 6;
const FT_RESULT_ACK: u8 = 7;
const FT_HEARTBEAT: u8 = 8;
const FT_HEARTBEAT_ACK: u8 = 9;
const FT_GOODBYE: u8 = 10;
const FT_CHUNK_REQUEST: u8 = 11;
const FT_CHUNK_DATA: u8 = 12;
const FT_CHUNK_MISSING: u8 = 13;
const FT_REPLICA_ANNOUNCE: u8 = 14;
const FT_METRICS_REPORT: u8 = 15;
const FT_STATUS_REQUEST: u8 = 16;
const FT_STATUS_REPORT: u8 = 17;

/// Frame type code for [`Frame::SubmitResult`] — exposed so transport
/// code can recognise a corrupt result frame from its header alone.
pub const SUBMIT_RESULT_TYPE: u8 = FT_SUBMIT_RESULT;
/// Frame type code for [`Frame::ChunkData`] — exposed so transports can
/// account chunk traffic separately from control traffic.
pub const CHUNK_DATA_TYPE: u8 = FT_CHUNK_DATA;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client announces itself on a fresh connection.
    Hello {
        /// The donor's client id.
        client: u64,
    },
    /// Client asks for a unit.
    RequestWork {
        /// The donor's client id.
        client: u64,
    },
    /// Server hands out a unit (payload is the problem codec's bytes).
    AssignUnit {
        /// Problem the unit belongs to.
        problem: u64,
        /// Unit id within the problem.
        unit: u64,
        /// Estimated cost in abstract ops.
        cost_ops: f64,
        /// Codec-encoded unit payload.
        payload: Vec<u8>,
    },
    /// No unit available right now; ask again shortly.
    Wait,
    /// Every problem is complete; the client may shut down.
    Finished,
    /// Client reports a computed result.
    SubmitResult {
        /// The donor's client id.
        client: u64,
        /// Problem the unit belongs to.
        problem: u64,
        /// Unit id within the problem.
        unit: u64,
        /// Codec-encoded result payload.
        payload: Vec<u8>,
    },
    /// Server acknowledges a result (idempotence anchor: the client
    /// retires its pending result only on a matching ack).
    ResultAck {
        /// Problem the acked unit belongs to.
        problem: u64,
        /// The acked unit.
        unit: u64,
        /// Whether the result was folded (false = duplicate/corrupt).
        accepted: bool,
    },
    /// Client liveness beacon.
    Heartbeat {
        /// The donor's client id.
        client: u64,
    },
    /// Server's reply to a heartbeat.
    HeartbeatAck,
    /// Client leaves gracefully; the server releases its leases.
    Goodbye {
        /// The donor's client id.
        client: u64,
    },
    /// Client asks for one data chunk it does not hold in its cache
    /// (work units carry only chunk *references*; residues cross the
    /// wire once and are cached donor-side).
    ChunkRequest {
        /// The donor's client id.
        client: u64,
        /// Problem whose codec serves the chunk.
        problem: u64,
        /// Codec-defined chunk id within the problem.
        chunk: u64,
    },
    /// Server ships the requested chunk's bytes.
    ChunkData {
        /// Problem the chunk belongs to.
        problem: u64,
        /// Codec-defined chunk id within the problem.
        chunk: u64,
        /// Content digest of `payload` (FNV-1a); the client verifies it
        /// before caching, so a stale or mismatched chunk is refetched
        /// rather than silently used.
        digest: u64,
        /// Codec-encoded chunk bytes.
        payload: Vec<u8>,
    },
    /// Negative reply to a [`Frame::ChunkRequest`] the serving endpoint
    /// cannot satisfy (replica not yet synced and origin unreachable,
    /// or an out-of-range chunk id). Without it a miss would leave the
    /// requester blocked in `await_frame` until the liveness sweep
    /// reclaimed its lease — the explicit refusal lets it fail over to
    /// the next candidate endpoint immediately.
    ChunkMissing {
        /// Problem the unsatisfiable request named.
        problem: u64,
        /// Chunk id the serving endpoint does not hold.
        chunk: u64,
    },
    /// Server advertises the replica endpoints serving the chunk tier
    /// (sent in reply to `Hello`). Clients merge the list into their
    /// directory so chunk fetches can be routed by rendezvous hashing.
    ReplicaAnnounce {
        /// Replica socket addresses, in stable announcement order.
        endpoints: Vec<std::net::SocketAddr>,
    },
    /// Client ships a *delta* snapshot of its local metrics registry
    /// (counters/gauges/histograms accumulated since the last report);
    /// the server merges it into the cluster registry under a
    /// `donor.c<id>.` prefix.
    MetricsReport {
        /// The donor's client id.
        client: u64,
        /// [`crate::telemetry::MetricsSnapshot`] wire bytes.
        snapshot: Vec<u8>,
    },
    /// Anyone (a monitoring tool, `biodist_top`) asks the server for a
    /// live cluster snapshot.
    StatusRequest,
    /// Server's reply to a [`Frame::StatusRequest`].
    StatusReport {
        /// [`crate::server::StatusSnapshot`] wire bytes.
        snapshot: Vec<u8>,
    },
}

impl Frame {
    fn type_code(&self) -> u8 {
        match self {
            Frame::Hello { .. } => FT_HELLO,
            Frame::RequestWork { .. } => FT_REQUEST_WORK,
            Frame::AssignUnit { .. } => FT_ASSIGN_UNIT,
            Frame::Wait => FT_WAIT,
            Frame::Finished => FT_FINISHED,
            Frame::SubmitResult { .. } => FT_SUBMIT_RESULT,
            Frame::ResultAck { .. } => FT_RESULT_ACK,
            Frame::Heartbeat { .. } => FT_HEARTBEAT,
            Frame::HeartbeatAck => FT_HEARTBEAT_ACK,
            Frame::Goodbye { .. } => FT_GOODBYE,
            Frame::ChunkRequest { .. } => FT_CHUNK_REQUEST,
            Frame::ChunkData { .. } => FT_CHUNK_DATA,
            Frame::ChunkMissing { .. } => FT_CHUNK_MISSING,
            Frame::ReplicaAnnounce { .. } => FT_REPLICA_ANNOUNCE,
            Frame::MetricsReport { .. } => FT_METRICS_REPORT,
            Frame::StatusRequest => FT_STATUS_REQUEST,
            Frame::StatusReport { .. } => FT_STATUS_REPORT,
        }
    }
}

/// Why a byte string failed to decode as a frame.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// Not enough bytes yet — read more and retry (streaming).
    Incomplete,
    /// First four bytes are not the protocol magic.
    BadMagic(u32),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame type byte.
    BadFrameType(u8),
    /// The header checksum failed; the length cannot be trusted and the
    /// stream is unrecoverable.
    HeaderCrc,
    /// Declared body length exceeds [`MAX_BODY`].
    Oversized(u32),
    /// The body checksum failed. The header (and thus the frame span)
    /// was valid, so the stream can resync past the frame; the body
    /// prefix is carried so a corrupt result can still be routed to the
    /// reissue path.
    BodyCrc {
        /// The frame's type byte (already header-CRC-validated).
        frame_type: u8,
        /// Up to the first 24 body bytes (ids for a `SubmitResult`).
        body_prefix: Vec<u8>,
    },
    /// The body checksum passed but the payload did not parse.
    Body(WireError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Incomplete => write!(f, "incomplete frame"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            DecodeError::HeaderCrc => write!(f, "header checksum mismatch"),
            DecodeError::Oversized(n) => write!(f, "body length {n} exceeds {MAX_BODY}"),
            DecodeError::BodyCrc { frame_type, .. } => {
                write!(f, "body checksum mismatch on frame type {frame_type}")
            }
            DecodeError::Body(e) => write!(f, "body parse failure: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table built at compile
// time — the workspace carries no checksum dependency.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encodes one frame to wire bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body = ByteWriter::new();
    match frame {
        Frame::Hello { client }
        | Frame::RequestWork { client }
        | Frame::Heartbeat { client }
        | Frame::Goodbye { client } => body.u64(*client),
        Frame::AssignUnit {
            problem,
            unit,
            cost_ops,
            payload,
        } => {
            body.u64(*problem);
            body.u64(*unit);
            body.f64(*cost_ops);
            body.bytes(payload);
        }
        Frame::Wait | Frame::Finished | Frame::HeartbeatAck => {}
        Frame::SubmitResult {
            client,
            problem,
            unit,
            payload,
        } => {
            body.u64(*client);
            body.u64(*problem);
            body.u64(*unit);
            body.bytes(payload);
        }
        Frame::ResultAck {
            problem,
            unit,
            accepted,
        } => {
            body.u64(*problem);
            body.u64(*unit);
            body.u8(u8::from(*accepted));
        }
        Frame::ChunkRequest {
            client,
            problem,
            chunk,
        } => {
            body.u64(*client);
            body.u64(*problem);
            body.u64(*chunk);
        }
        Frame::ChunkData {
            problem,
            chunk,
            digest,
            payload,
        } => {
            body.u64(*problem);
            body.u64(*chunk);
            body.u64(*digest);
            body.bytes(payload);
        }
        Frame::ChunkMissing { problem, chunk } => {
            body.u64(*problem);
            body.u64(*chunk);
        }
        Frame::ReplicaAnnounce { endpoints } => {
            body.u32(endpoints.len() as u32);
            for ep in endpoints {
                body.str(&ep.to_string());
            }
        }
        Frame::MetricsReport { client, snapshot } => {
            body.u64(*client);
            body.bytes(snapshot);
        }
        Frame::StatusRequest => {}
        Frame::StatusReport { snapshot } => body.bytes(snapshot),
    }
    let body = body.into_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 4);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(frame.type_code());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    let header_crc = crc32(&out[..10]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Parses and validates a frame header, returning `(frame_type,
/// body_len)`. The caller may trust the length (it is header-CRC
/// protected) even when the body later fails its own checksum.
pub fn parse_header(buf: &[u8]) -> Result<(u8, u32), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Incomplete);
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let declared_crc = u32::from_le_bytes(buf[10..14].try_into().expect("4 bytes"));
    if crc32(&buf[..10]) != declared_crc {
        return Err(DecodeError::HeaderCrc);
    }
    let version = buf[4];
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let frame_type = buf[5];
    if !(FT_HELLO..=FT_STATUS_REPORT).contains(&frame_type) {
        return Err(DecodeError::BadFrameType(frame_type));
    }
    let body_len = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes"));
    if body_len > MAX_BODY {
        return Err(DecodeError::Oversized(body_len));
    }
    Ok((frame_type, body_len))
}

/// Decodes one frame from the front of `buf`; returns the frame and the
/// bytes consumed. [`DecodeError::Incomplete`] means "read more".
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), DecodeError> {
    let (frame_type, body_len) = parse_header(buf)?;
    let total = HEADER_LEN + body_len as usize + 4;
    if buf.len() < total {
        return Err(DecodeError::Incomplete);
    }
    let body = &buf[HEADER_LEN..HEADER_LEN + body_len as usize];
    let declared_crc = u32::from_le_bytes(buf[total - 4..total].try_into().expect("4 bytes"));
    if crc32(body) != declared_crc {
        return Err(DecodeError::BodyCrc {
            frame_type,
            body_prefix: body[..body.len().min(24)].to_vec(),
        });
    }
    let mut r = ByteReader::new(body);
    let frame = (|| -> Result<Frame, WireError> {
        let frame = match frame_type {
            FT_HELLO => Frame::Hello { client: r.u64()? },
            FT_REQUEST_WORK => Frame::RequestWork { client: r.u64()? },
            FT_ASSIGN_UNIT => Frame::AssignUnit {
                problem: r.u64()?,
                unit: r.u64()?,
                cost_ops: r.f64()?,
                payload: r.bytes()?.to_vec(),
            },
            FT_WAIT => Frame::Wait,
            FT_FINISHED => Frame::Finished,
            FT_SUBMIT_RESULT => Frame::SubmitResult {
                client: r.u64()?,
                problem: r.u64()?,
                unit: r.u64()?,
                payload: r.bytes()?.to_vec(),
            },
            FT_RESULT_ACK => Frame::ResultAck {
                problem: r.u64()?,
                unit: r.u64()?,
                accepted: r.u8()? != 0,
            },
            FT_HEARTBEAT => Frame::Heartbeat { client: r.u64()? },
            FT_HEARTBEAT_ACK => Frame::HeartbeatAck,
            FT_GOODBYE => Frame::Goodbye { client: r.u64()? },
            FT_CHUNK_REQUEST => Frame::ChunkRequest {
                client: r.u64()?,
                problem: r.u64()?,
                chunk: r.u64()?,
            },
            FT_CHUNK_DATA => Frame::ChunkData {
                problem: r.u64()?,
                chunk: r.u64()?,
                digest: r.u64()?,
                payload: r.bytes()?.to_vec(),
            },
            FT_CHUNK_MISSING => Frame::ChunkMissing {
                problem: r.u64()?,
                chunk: r.u64()?,
            },
            FT_REPLICA_ANNOUNCE => {
                let n = r.count(4)?; // each endpoint is a length-prefixed string
                let mut endpoints = Vec::with_capacity(n);
                for _ in 0..n {
                    let s = r.str()?;
                    let ep = s
                        .parse::<std::net::SocketAddr>()
                        .map_err(|_| WireError::new(format!("bad socket address {s:?}")))?;
                    endpoints.push(ep);
                }
                Frame::ReplicaAnnounce { endpoints }
            }
            FT_METRICS_REPORT => Frame::MetricsReport {
                client: r.u64()?,
                snapshot: r.bytes()?.to_vec(),
            },
            FT_STATUS_REQUEST => Frame::StatusRequest,
            FT_STATUS_REPORT => Frame::StatusReport {
                snapshot: r.bytes()?.to_vec(),
            },
            _ => unreachable!("parse_header validated the type"),
        };
        r.finish()?;
        Ok(frame)
    })()
    .map_err(DecodeError::Body)?;
    Ok((frame, total))
}

/// A frame-read failure at the transport layer.
#[derive(Debug)]
pub enum ReadError {
    /// Socket-level failure (includes EOF as `UnexpectedEof`).
    Io(std::io::Error),
    /// The bytes were read but did not decode.
    Decode(DecodeError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "frame read i/o error: {e}"),
            ReadError::Decode(e) => write!(f, "frame decode error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// The frame-reassembly state machine: push bytes in whatever split
/// points the transport produced, pull whole frames out. This is the
/// single home of the resync logic — the blocking [`FrameReader`] and
/// the nonblocking event-loop connections both wrap it, so a split
/// point can never behave differently between transports.
///
/// `next` returns `Ok(None)` when more bytes are needed. A
/// [`DecodeError::BodyCrc`] consumes the whole offending frame before
/// being returned (its span is header-CRC-trusted), so the caller can
/// report the corruption and keep pulling frames from the same buffer;
/// every other error leaves the buffer untrustworthy and the caller
/// should drop the connection.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw transport bytes at any split point.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pulls the next complete frame, if the buffered bytes hold one.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        match decode_frame(&self.buf) {
            Ok((frame, used)) => {
                self.buf.drain(..used);
                Ok(Some(frame))
            }
            Err(DecodeError::Incomplete) => Ok(None),
            Err(e @ DecodeError::BodyCrc { .. }) => {
                // The header was sound, so the frame's span is known:
                // skip it whole and let the caller keep the stream.
                if let Ok((_, body_len)) = parse_header(&self.buf) {
                    let total = HEADER_LEN + body_len as usize + 4;
                    self.buf.drain(..total.min(self.buf.len()));
                }
                Err(e)
            }
            Err(e) => Err(e),
        }
    }
}

/// Incremental frame reader over a (possibly timeout-configured)
/// stream. Partial reads are buffered, so a read timeout mid-frame
/// never desynchronises the stream; `poll` returns `Ok(None)` on
/// timeout so the caller can check shutdown flags and retry.
///
/// A [`DecodeError::BodyCrc`] consumes the whole offending frame (its
/// span is header-CRC-trusted) before being returned, so the caller can
/// report the corruption and keep reading the same connection.
#[derive(Debug, Default)]
pub struct FrameReader {
    asm: FrameAssembler,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads until one full frame is available, the stream times out
    /// (`Ok(None)`), or the connection fails.
    pub fn poll<R: Read>(&mut self, stream: &mut R) -> Result<Option<Frame>, ReadError> {
        loop {
            match self.asm.next_frame() {
                Ok(Some(frame)) => return Ok(Some(frame)),
                Ok(None) => {
                    let mut chunk = [0u8; 4096];
                    match stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(ReadError::Io(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "peer closed the connection",
                            )))
                        }
                        Ok(n) => self.asm.push(&chunk[..n]),
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            return Ok(None)
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(ReadError::Io(e)),
                    }
                }
                Err(e) => return Err(ReadError::Decode(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_util::rng::{Rng, SplitMix64};

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { client: 3 },
            Frame::RequestWork { client: u64::MAX },
            Frame::AssignUnit {
                problem: 1,
                unit: 42,
                cost_ops: 1.5e9,
                payload: vec![0xAB; 257],
            },
            Frame::Wait,
            Frame::Finished,
            Frame::SubmitResult {
                client: 2,
                problem: 0,
                unit: 7,
                payload: (0..=255).collect(),
            },
            Frame::ResultAck {
                problem: 0,
                unit: 7,
                accepted: true,
            },
            Frame::Heartbeat { client: 5 },
            Frame::HeartbeatAck,
            Frame::Goodbye { client: 0 },
            Frame::ChunkRequest {
                client: 6,
                problem: 1,
                chunk: 13,
            },
            Frame::ChunkData {
                problem: 1,
                chunk: 13,
                digest: 0xDEAD_BEEF_CAFE_F00D,
                payload: (0..=127).rev().collect(),
            },
            Frame::ChunkMissing {
                problem: 1,
                chunk: u64::MAX,
            },
            Frame::ReplicaAnnounce {
                endpoints: Vec::new(),
            },
            Frame::ReplicaAnnounce {
                endpoints: vec![
                    "127.0.0.1:9001".parse().unwrap(),
                    "[::1]:65535".parse().unwrap(),
                    "10.0.0.7:80".parse().unwrap(),
                ],
            },
            Frame::MetricsReport {
                client: 9,
                snapshot: (0..64).collect(),
            },
            Frame::StatusRequest,
            Frame::StatusReport {
                snapshot: vec![0x42; 96],
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn every_frame_type_round_trips() {
        for frame in all_frames() {
            let bytes = encode_frame(&frame);
            let (decoded, used) = decode_frame(&bytes).expect("clean frame decodes");
            assert_eq!(decoded, frame);
            assert_eq!(used, bytes.len(), "whole frame consumed");
            // Concatenated frames decode one at a time.
            let mut double = bytes.clone();
            double.extend_from_slice(&bytes);
            let (first, used) = decode_frame(&double).unwrap();
            assert_eq!(first, frame);
            let (second, _) = decode_frame(&double[used..]).unwrap();
            assert_eq!(second, frame);
        }
    }

    #[test]
    fn every_truncation_is_incomplete_never_a_panic() {
        for frame in all_frames() {
            let bytes = encode_frame(&frame);
            for cut in 0..bytes.len() {
                match decode_frame(&bytes[..cut]) {
                    Err(DecodeError::Incomplete) => {}
                    other => panic!("truncated at {cut}: expected Incomplete, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        // Flip every byte of every frame through several XOR masks; the
        // double CRC must reject all of them (single-byte corruption is
        // well inside CRC-32's guarantee) without panicking.
        for frame in all_frames() {
            let clean = encode_frame(&frame);
            for pos in 0..clean.len() {
                for mask in [0x01u8, 0x80, 0xFF] {
                    let mut bad = clean.clone();
                    bad[pos] ^= mask;
                    // Any Err is fine — Oversized/Incomplete would need
                    // the flip to land in the length field and the
                    // header CRC simultaneously, so the errors seen
                    // here are the magic/version/type/CRC family. The
                    // requirement is "never accept, never panic".
                    if let Ok((decoded, _)) = decode_frame(&bad) {
                        panic!(
                            "corruption at byte {pos} (mask {mask:#04x}) of {frame:?} \
                             decoded as {decoded:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn corrupt_body_reports_type_and_prefix_for_reissue_routing() {
        let frame = Frame::SubmitResult {
            client: 4,
            problem: 1,
            unit: 99,
            payload: vec![7; 64],
        };
        let mut bytes = encode_frame(&frame);
        // Corrupt a payload byte well past the id fields.
        let idx = HEADER_LEN + 24 + 10;
        bytes[idx] ^= 0xFF;
        match decode_frame(&bytes) {
            Err(DecodeError::BodyCrc {
                frame_type,
                body_prefix,
            }) => {
                assert_eq!(frame_type, SUBMIT_RESULT_TYPE);
                let mut r = ByteReader::new(&body_prefix);
                assert_eq!(r.u64().unwrap(), 4, "client id survives");
                assert_eq!(r.u64().unwrap(), 1, "problem id survives");
                assert_eq!(r.u64().unwrap(), 99, "unit id survives");
            }
            other => panic!("expected BodyCrc, got {other:?}"),
        }
    }

    #[test]
    fn replica_announce_rejects_malformed_addresses() {
        // A syntactically valid frame whose body is not a parseable
        // socket address must fail as a Body error, never panic or
        // yield a bogus endpoint.
        let mut body = ByteWriter::new();
        body.u32(1);
        body.str("not-an-address");
        let body = body.into_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(VERSION);
        out.push(FT_REPLICA_ANNOUNCE);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        let crc = crc32(&out[..10]);
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        match decode_frame(&out) {
            Err(DecodeError::Body(_)) => {}
            other => panic!("expected Body error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_any_body_read() {
        // Hand-build a header claiming a body far past MAX_BODY, with a
        // *valid* header CRC, so only the length check can reject it.
        let mut h = Vec::new();
        h.extend_from_slice(&MAGIC.to_le_bytes());
        h.push(VERSION);
        h.push(FT_WAIT);
        h.extend_from_slice(&(MAX_BODY + 1).to_le_bytes());
        let crc = crc32(&h);
        h.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&h),
            Err(DecodeError::Oversized(MAX_BODY + 1)),
            "must reject by length, not demand MAX_BODY bytes first"
        );
    }

    #[test]
    fn random_garbage_never_panics_or_decodes() {
        let mut rng = SplitMix64::new(0xB10D);
        for round in 0..500 {
            let len = (rng.next_u64() % 200) as usize;
            let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            if let Ok((frame, _)) = decode_frame(&garbage) {
                panic!("round {round}: garbage decoded as {frame:?}");
            }
        }
    }

    #[test]
    fn frame_reader_resyncs_past_a_corrupt_body() {
        // A corrupt frame followed by a clean one: the reader reports
        // the corruption, then yields the clean frame from the same
        // stream.
        let mut corrupt = encode_frame(&Frame::SubmitResult {
            client: 1,
            problem: 0,
            unit: 5,
            payload: vec![9; 32],
        });
        let n = corrupt.len();
        corrupt[n - 1] ^= 0x55; // break the body CRC
        let clean = encode_frame(&Frame::Heartbeat { client: 1 });
        let mut stream: Vec<u8> = corrupt;
        stream.extend_from_slice(&clean);
        let mut cursor = std::io::Cursor::new(stream);
        let mut reader = FrameReader::new();
        match reader.poll(&mut cursor) {
            Err(ReadError::Decode(DecodeError::BodyCrc { frame_type, .. })) => {
                assert_eq!(frame_type, SUBMIT_RESULT_TYPE)
            }
            other => panic!("expected BodyCrc, got {other:?}"),
        }
        match reader.poll(&mut cursor) {
            Ok(Some(Frame::Heartbeat { client: 1 })) => {}
            other => panic!("expected the clean heartbeat, got {other:?}"),
        }
    }
}
