//! Crash-recoverable server durability: an append-only checkpoint log.
//!
//! The Java system's server was a single point of failure; volunteer
//! platforms like Folding@Home treat server restarts as routine
//! (PAPERS.md). This module gives the TCP backend the same property:
//! the server journals, inside its own critical section, every event a
//! fresh [`crate::DataManager`] needs to reach the crashed one's state —
//!
//! * `Issue` records: which unit the manager produced, and the
//!   granularity hint that produced it (managers are deterministic
//!   functions of the interleaved hint/result sequence);
//! * `Result` records: the codec-encoded result folded for a unit,
//!   written **before** the fold (write-ahead);
//! * `Sched` records: periodic [`SchedSnapshot`]s so recovery resumes
//!   with warm speed estimates;
//! * `Vote` records: quorum ballots cast before a unit reached
//!   agreement, so a restarted server resumes interrupted elections
//!   (re-capped below the quorum — only a live result can fold);
//! * `Reputation` records: periodic [`ReputationSnapshot`]s so donors
//!   that earned single-issue trust keep it across a restart.
//!
//! Log framing: `[body_len: u32][record_type: u8][body][crc32(type ‖
//! body): u32]`, little-endian. The reader stops at the first record
//! that is truncated or fails its CRC — a *torn tail* from a crash
//! mid-write — and recovery proceeds from what survived: any unit whose
//! result record was lost is simply recomputed. [`recover`] replays the
//! surviving records against freshly-built problems and returns a
//! server that resumes without recombining any completed unit (the
//! exactly-once property the chaos suite's `audited()` checker
//! verifies).

use crate::codec::{ByteReader, ByteWriter};
use crate::problem::{Problem, TaskResult, UnitId, WorkUnit};
use crate::sched::{
    AffinitySnapshot, ClientId, ReputationSnapshot, SchedSnapshot, SchedulerConfig,
};
use crate::server::{ProblemId, RunJournal, Server};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

const REC_ISSUE: u8 = 1;
const REC_RESULT: u8 = 2;
const REC_SCHED: u8 = 3;
const REC_AFFINITY: u8 = 4;
const REC_REPUTATION: u8 = 5;
const REC_VOTE: u8 = 6;
const REC_REPLICA: u8 = 7;

/// Largest record body the reader will accept; larger means the length
/// field itself is torn garbage.
const MAX_RECORD: u32 = 256 * 1024 * 1024;

/// One decoded checkpoint record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A data manager issued `unit` in response to `hint_ops`.
    Issue {
        /// Problem the unit belongs to.
        problem: ProblemId,
        /// The issued unit id.
        unit: UnitId,
        /// Granularity hint that produced the unit.
        hint_ops: f64,
    },
    /// A result was accepted for folding.
    Result {
        /// Problem the unit belongs to.
        problem: ProblemId,
        /// The completed unit.
        unit: UnitId,
        /// Codec-encoded result payload.
        payload: Vec<u8>,
    },
    /// A scheduler snapshot (the last one in the log wins).
    Sched(SchedSnapshot),
    /// A chunk-affinity snapshot (the last one in the log wins), so a
    /// recovered server keeps steering units toward the donors whose
    /// caches are already warm.
    Affinity(AffinitySnapshot),
    /// A donor-reputation snapshot (the last one in the log wins), so a
    /// recovered server keeps trusting the donors that earned
    /// single-issue before the crash.
    Reputation(ReputationSnapshot),
    /// A quorum vote recorded before the unit reached agreement. A unit
    /// whose `Result` record never made it to the log resumes its
    /// election from these instead of from scratch — and because the
    /// server re-caps restored votes below the quorum, a half-voted
    /// unit can never fold twice.
    Vote {
        /// Problem the unit belongs to.
        problem: ProblemId,
        /// The contested unit.
        unit: UnitId,
        /// Byte-identical copies required to fold.
        needed: u32,
        /// Donor that cast the vote.
        client: ClientId,
        /// The codec-encoded candidate bytes the donor submitted.
        payload: Vec<u8>,
    },
    /// The replica topology the server was announcing (the last record
    /// in the log wins), so an operator restarting a crashed server can
    /// re-point donors at the same replica tier.
    Replica(Vec<std::net::SocketAddr>),
}

/// Append-only, cloneable checkpoint writer; install a clone as the
/// server's [`RunJournal`] and keep one for periodic snapshots.
///
/// Every record is flushed as it is written (the log is small and the
/// write-ahead ordering is what recovery correctness rests on). Write
/// failures are swallowed: a full disk degrades durability — lost
/// records mean recomputed units — but never takes down the run.
#[derive(Debug, Clone)]
pub struct CheckpointWriter {
    file: Arc<Mutex<File>>,
    telemetry: crate::telemetry::Telemetry,
}

impl CheckpointWriter {
    /// Creates (truncating) a fresh log at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            file: Arc::new(Mutex::new(file)),
            telemetry: crate::telemetry::Telemetry::disabled(),
        })
    }

    /// Opens an existing log for appending (a recovered server keeps
    /// journaling to the same file; the replayed prefix stays valid).
    pub fn append(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            file: Arc::new(Mutex::new(file)),
            telemetry: crate::telemetry::Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle: every appended record becomes a
    /// `checkpoint_write` trace event (kind `issue` / `result` /
    /// `sched`) plus a `ckpt.records` counter bump.
    pub fn with_telemetry(mut self, telemetry: crate::telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn write_record(&self, rtype: u8, body: &[u8]) {
        if self.telemetry.is_enabled() {
            let kind = match rtype {
                REC_ISSUE => "issue",
                REC_RESULT => "result",
                REC_AFFINITY => "affinity",
                REC_REPUTATION => "reputation",
                REC_VOTE => "vote",
                REC_REPLICA => "replica",
                _ => "sched",
            };
            self.telemetry
                .emit(crate::telemetry::EventKind::CheckpointWrite {
                    kind: kind.to_string(),
                });
            self.telemetry.counter_add("ckpt.records", 1);
            self.telemetry
                .counter_add("ckpt.bytes", body.len() as u64 + 9);
        }
        let mut framed = Vec::with_capacity(body.len() + 9);
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.push(rtype);
        framed.extend_from_slice(body);
        let mut crc_input = Vec::with_capacity(body.len() + 1);
        crc_input.push(rtype);
        crc_input.extend_from_slice(body);
        framed.extend_from_slice(&super::wire::crc32(&crc_input).to_le_bytes());
        let mut f = self.file.lock().expect("checkpoint lock");
        // One write + flush per record: a crash can tear at most the
        // final record, which the reader's CRC check drops.
        let _ = f.write_all(&framed);
        let _ = f.flush();
    }

    /// Appends a scheduler snapshot record.
    pub fn append_snapshot(&self, snap: &SchedSnapshot) {
        let mut w = ByteWriter::new();
        w.u32(snap.clients.len() as u32);
        for &(client, speed, units) in &snap.clients {
            w.u64(client as u64);
            w.f64(speed);
            w.u64(units);
        }
        self.write_record(REC_SCHED, &w.into_bytes());
    }

    /// Appends a chunk-affinity snapshot record.
    pub fn append_affinity(&self, snap: &AffinitySnapshot) {
        let mut w = ByteWriter::new();
        w.u32(snap.clients.len() as u32);
        for (client, digests) in &snap.clients {
            w.u64(*client as u64);
            w.u32(digests.len() as u32);
            for &d in digests {
                w.u64(d);
            }
        }
        self.write_record(REC_AFFINITY, &w.into_bytes());
    }

    /// Appends a donor-reputation snapshot record.
    pub fn append_reputation(&self, snap: &ReputationSnapshot) {
        let mut w = ByteWriter::new();
        w.u32(snap.clients.len() as u32);
        for &(client, agreements, disputes, trusted) in &snap.clients {
            w.u64(client as u64);
            w.u64(agreements);
            w.u64(disputes);
            w.u8(trusted as u8);
        }
        self.write_record(REC_REPUTATION, &w.into_bytes());
    }

    /// Appends the current replica topology (written whenever snapshots
    /// are taken; the last record wins on replay).
    pub fn append_replicas(&self, endpoints: &[std::net::SocketAddr]) {
        let mut w = ByteWriter::new();
        w.u32(endpoints.len() as u32);
        for ep in endpoints {
            w.str(&ep.to_string());
        }
        self.write_record(REC_REPLICA, &w.into_bytes());
    }
}

impl RunJournal for CheckpointWriter {
    fn unit_issued(&mut self, problem: ProblemId, unit: &WorkUnit, hint_ops: f64) {
        let mut w = ByteWriter::new();
        w.usize(problem);
        w.u64(unit.id);
        w.f64(hint_ops);
        self.write_record(REC_ISSUE, &w.into_bytes());
    }

    fn result_folded(&mut self, problem: ProblemId, unit: UnitId, encoded: &[u8]) {
        let mut w = ByteWriter::new();
        w.usize(problem);
        w.u64(unit);
        w.bytes(encoded);
        self.write_record(REC_RESULT, &w.into_bytes());
    }

    fn vote_recorded(
        &mut self,
        problem: ProblemId,
        unit: UnitId,
        needed: u32,
        client: ClientId,
        encoded: &[u8],
    ) {
        let mut w = ByteWriter::new();
        w.usize(problem);
        w.u64(unit);
        w.u32(needed);
        w.u64(client as u64);
        w.bytes(encoded);
        self.write_record(REC_VOTE, &w.into_bytes());
    }
}

/// Reads every intact record from a checkpoint log. The second return
/// is `true` when a torn tail (truncated or CRC-failed trailing bytes)
/// was dropped.
pub fn read_log(path: &Path) -> std::io::Result<(Vec<LogRecord>, bool)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some((record, next)) = parse_record(&bytes[pos..]) else {
            return Ok((records, true)); // torn tail: keep the prefix
        };
        records.push(record);
        pos += next;
    }
    Ok((records, false))
}

fn parse_record(buf: &[u8]) -> Option<(LogRecord, usize)> {
    if buf.len() < 5 {
        return None;
    }
    let body_len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if body_len > MAX_RECORD {
        return None;
    }
    let total = 4 + 1 + body_len as usize + 4;
    if buf.len() < total {
        return None;
    }
    let rtype = buf[4];
    let body = &buf[5..5 + body_len as usize];
    let declared = u32::from_le_bytes(buf[total - 4..total].try_into().expect("4 bytes"));
    let mut crc_input = Vec::with_capacity(body.len() + 1);
    crc_input.push(rtype);
    crc_input.extend_from_slice(body);
    if super::wire::crc32(&crc_input) != declared {
        return None;
    }
    let mut r = ByteReader::new(body);
    let record = match rtype {
        REC_ISSUE => LogRecord::Issue {
            problem: r.usize().ok()?,
            unit: r.u64().ok()?,
            hint_ops: r.f64().ok()?,
        },
        REC_RESULT => LogRecord::Result {
            problem: r.usize().ok()?,
            unit: r.u64().ok()?,
            payload: r.bytes().ok()?.to_vec(),
        },
        REC_SCHED => {
            let n = r.count(24).ok()?;
            let mut clients = Vec::with_capacity(n);
            for _ in 0..n {
                let client = r.usize().ok()?;
                let speed = r.f64().ok()?;
                let units = r.u64().ok()?;
                clients.push((client, speed, units));
            }
            LogRecord::Sched(SchedSnapshot { clients })
        }
        REC_AFFINITY => {
            let n = r.count(12).ok()?;
            let mut clients = Vec::with_capacity(n);
            for _ in 0..n {
                let client = r.usize().ok()?;
                let k = r.count(8).ok()?;
                let mut digests = Vec::with_capacity(k);
                for _ in 0..k {
                    digests.push(r.u64().ok()?);
                }
                clients.push((client, digests));
            }
            LogRecord::Affinity(AffinitySnapshot { clients })
        }
        REC_REPUTATION => {
            let n = r.count(25).ok()?;
            let mut clients = Vec::with_capacity(n);
            for _ in 0..n {
                let client = r.usize().ok()?;
                let agreements = r.u64().ok()?;
                let disputes = r.u64().ok()?;
                let trusted = r.u8().ok()? != 0;
                clients.push((client, agreements, disputes, trusted));
            }
            LogRecord::Reputation(ReputationSnapshot { clients })
        }
        REC_VOTE => LogRecord::Vote {
            problem: r.usize().ok()?,
            unit: r.u64().ok()?,
            needed: r.u32().ok()?,
            client: r.usize().ok()?,
            payload: r.bytes().ok()?.to_vec(),
        },
        REC_REPLICA => {
            let n = r.count(4).ok()?;
            let mut endpoints = Vec::with_capacity(n);
            for _ in 0..n {
                endpoints.push(r.str().ok()?.parse().ok()?);
            }
            LogRecord::Replica(endpoints)
        }
        _ => return None,
    };
    r.finish().ok()?;
    Some((record, total))
}

/// What [`recover`] reconstructed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Issue records replayed against the fresh data managers.
    pub replayed_issues: u64,
    /// Result records folded back in (units that will NOT recompute).
    pub replayed_results: u64,
    /// Issued-but-uncompleted units queued for reassignment.
    pub pending_restored: u64,
    /// Quorum votes re-seeded onto still-pending units (always capped
    /// below the quorum, so none of them can fold without a live
    /// result).
    pub restored_votes: u64,
    /// Replica endpoints the crashed server was announcing (count from
    /// the last surviving topology record; a restarted deployment
    /// re-registers live replicas via [`super::NetServer::set_replicas`]).
    pub replica_endpoints: usize,
    /// Whether a torn tail or a replay divergence cut the log short.
    pub torn_tail: bool,
}

/// Rebuilds a server from `problems` (freshly constructed, in the same
/// order as the crashed run's submissions) and the checkpoint log at
/// `path`. Records are replayed in log order — each `Issue` re-drives
/// the data manager with its original hint, each `Result` re-folds the
/// decoded payload — so the managers march through the exact state
/// sequence the crashed server observed. Units issued without a
/// surviving result record are queued for reassignment; no completed
/// unit is ever recombined.
///
/// Replay stops early (reported as `torn_tail`) if a record refers to
/// an unknown problem, the manager produces a different unit than the
/// log recorded, or a payload no longer decodes — the remaining records
/// describe state this run never reached, and the affected units fall
/// back to recomputation.
pub fn recover(
    cfg: SchedulerConfig,
    problems: Vec<Problem>,
    path: &Path,
) -> std::io::Result<(Server, RecoveryReport)> {
    recover_traced(cfg, problems, path, crate::telemetry::Telemetry::disabled())
}

/// [`recover`] with a telemetry handle installed *before* replay, so the
/// trace records every `replay_issue` / `replay_result` and ends with a
/// `recovery_done` summary event.
pub fn recover_traced(
    cfg: SchedulerConfig,
    problems: Vec<Problem>,
    path: &Path,
    telemetry: crate::telemetry::Telemetry,
) -> std::io::Result<(Server, RecoveryReport)> {
    let (records, torn) = read_log(path)?;
    let mut server = Server::new(cfg);
    server.set_telemetry(telemetry.clone());
    for p in problems {
        server.submit(p);
    }
    let mut report = RecoveryReport {
        torn_tail: torn,
        ..Default::default()
    };
    let mut pending: BTreeMap<(ProblemId, UnitId), WorkUnit> = BTreeMap::new();
    let mut snapshot: Option<SchedSnapshot> = None;
    let mut affinity: Option<AffinitySnapshot> = None;
    let mut reputation: Option<ReputationSnapshot> = None;
    type VoteStash = BTreeMap<(ProblemId, UnitId), (u32, Vec<(ClientId, Vec<u8>)>)>;
    let mut votes: VoteStash = BTreeMap::new();
    for record in records {
        match record {
            LogRecord::Issue {
                problem,
                unit,
                hint_ops,
            } => {
                if problem >= server.problem_count() {
                    report.torn_tail = true;
                    break;
                }
                match server.replay_issue(problem, unit, hint_ops) {
                    Some(u) => {
                        pending.insert((problem, unit), u);
                        report.replayed_issues += 1;
                    }
                    None => {
                        report.torn_tail = true;
                        break;
                    }
                }
            }
            LogRecord::Result {
                problem,
                unit,
                payload,
            } => {
                if problem >= server.problem_count() || pending.remove(&(problem, unit)).is_none() {
                    report.torn_tail = true;
                    break;
                }
                let Some(codec) = server.codec(problem) else {
                    report.torn_tail = true;
                    break;
                };
                let Ok(decoded) = codec.decode_result(&payload) else {
                    report.torn_tail = true;
                    break;
                };
                server.replay_result(
                    problem,
                    TaskResult {
                        unit_id: unit,
                        payload: decoded,
                    },
                    0.0,
                );
                // The election this unit may have been running is over;
                // any of its surviving vote records are stale.
                votes.remove(&(problem, unit));
                report.replayed_results += 1;
            }
            LogRecord::Sched(snap) => snapshot = Some(snap),
            LogRecord::Affinity(snap) => affinity = Some(snap),
            LogRecord::Reputation(snap) => reputation = Some(snap),
            LogRecord::Replica(endpoints) => report.replica_endpoints = endpoints.len(),
            LogRecord::Vote {
                problem,
                unit,
                needed,
                client,
                payload,
            } => {
                if problem >= server.problem_count() {
                    report.torn_tail = true;
                    break;
                }
                let entry = votes.entry((problem, unit)).or_insert((needed, Vec::new()));
                entry.0 = needed;
                entry.1.push((client, payload));
            }
        }
    }
    // Everything issued but not completed goes back on the queue,
    // grouped per problem in unit order (BTreeMap iteration).
    let mut by_problem: BTreeMap<ProblemId, Vec<WorkUnit>> = BTreeMap::new();
    let mut restored_keys: std::collections::BTreeSet<(ProblemId, UnitId)> =
        std::collections::BTreeSet::new();
    for ((pid, uid), unit) in pending {
        by_problem.entry(pid).or_default().push(unit);
        restored_keys.insert((pid, uid));
        report.pending_restored += 1;
    }
    for (pid, units) in by_problem {
        server.restore_pending(pid, units);
    }
    // Re-seed the interrupted elections, but only for units that came
    // back as pending — votes for units we never re-issued describe
    // state this run cannot reach.
    for ((pid, unit), (needed, ballots)) in votes {
        if restored_keys.contains(&(pid, unit)) {
            report.restored_votes += server.restore_votes(pid, unit, needed, &ballots);
        }
    }
    if let Some(snap) = snapshot {
        server.restore_scheduler(&snap);
    }
    if let Some(snap) = affinity {
        server.restore_affinity(&snap);
    }
    if let Some(snap) = reputation {
        server.restore_reputation(&snap);
    }
    telemetry.emit(crate::telemetry::EventKind::RecoveryDone {
        replayed_issues: report.replayed_issues,
        replayed_results: report.replayed_results,
        pending_restored: report.pending_restored,
        torn_tail: report.torn_tail,
    });
    Ok((server, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::integration_problem;
    use crate::server::Assignment;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_log(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("biodist-ckpt-{}-{tag}-{n}.log", std::process::id()))
    }

    // Fixed granularity (min == max) so the crashed, recovered and
    // sequential runs all decompose the problem identically — the
    // precondition for bit-identical outputs.
    fn fixed_cfg() -> SchedulerConfig {
        SchedulerConfig {
            min_unit_ops: 1.25e6, // 6250 grid points per unit
            max_unit_ops: 1.25e6,
            ..Default::default()
        }
    }

    fn sequential_pi(n: u64) -> f64 {
        let mut server = Server::new(fixed_cfg());
        let pid = server.submit(integration_problem(n));
        drive(&mut server);
        server.take_output(pid).unwrap().into_inner::<f64>()
    }

    fn drive(server: &mut Server) {
        let mut now = 0.0;
        loop {
            match server.request_work(0, now) {
                Assignment::Unit {
                    problem,
                    unit,
                    algorithm,
                } => {
                    let r = algorithm.compute(&unit);
                    now += 1.0;
                    server.submit_result(0, problem, r, now);
                }
                Assignment::Wait => now += 1.0,
                Assignment::Finished => break,
            }
        }
    }

    #[test]
    fn kill_mid_run_recover_and_finish_exactly_once() {
        let path = temp_log("midrun");
        let n = 100_000;
        let writer = CheckpointWriter::create(&path).unwrap();
        let mut server = Server::new(fixed_cfg());
        let pid = server.submit(integration_problem(n));
        server.set_journal(Box::new(writer.clone()));
        // Drive a handful of units, leaving two issued-but-unfinished
        // at the "crash": one in flight, one queued behind it.
        let mut completed = 0;
        let mut now = 0.0;
        let mut abandoned = 0;
        while completed < 4 {
            match server.request_work(0, now) {
                Assignment::Unit {
                    problem,
                    unit,
                    algorithm,
                } => {
                    let r = algorithm.compute(&unit);
                    now += 1.0;
                    server.submit_result(0, problem, r, now);
                    completed += 1;
                }
                _ => panic!("work must be available"),
            }
        }
        for c in [1, 2] {
            let Assignment::Unit { .. } = server.request_work(c, now) else {
                panic!("expected in-flight unit")
            };
            abandoned += 1;
        }
        writer.append_snapshot(&server.scheduler_snapshot());
        drop(server); // the crash: all in-memory state gone

        let (mut recovered, report) =
            recover(fixed_cfg(), vec![integration_problem(n)], &path).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(report.replayed_results, 4);
        assert_eq!(report.pending_restored, abandoned);
        assert_eq!(report.replayed_issues, 4 + abandoned);
        assert_eq!(recovered.stats(pid).completed_units, 4);
        // Warm scheduler state came back.
        assert!(recovered
            .scheduler_snapshot()
            .clients
            .iter()
            .any(|c| c.0 == 0));

        drive(&mut recovered);
        let pi = recovered.take_output(pid).unwrap().into_inner::<f64>();
        let reference = sequential_pi(n);
        assert_eq!(pi.to_bits(), reference.to_bits(), "bit-identical recovery");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_units_recomputed() {
        let path = temp_log("torn");
        let n = 50_000;
        let writer = CheckpointWriter::create(&path).unwrap();
        let mut server = Server::new(fixed_cfg());
        let pid = server.submit(integration_problem(n));
        server.set_journal(Box::new(writer));
        let mut now = 0.0;
        for _ in 0..3 {
            let Assignment::Unit {
                problem,
                unit,
                algorithm,
            } = server.request_work(0, now)
            else {
                panic!()
            };
            let r = algorithm.compute(&unit);
            now += 1.0;
            server.submit_result(0, problem, r, now);
        }
        drop(server);
        // Tear the tail: truncate the file mid-way through the last
        // record, as a crash during a write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (mut recovered, report) =
            recover(fixed_cfg(), vec![integration_problem(n)], &path).unwrap();
        assert!(report.torn_tail, "truncation must be noticed");
        // The torn record was the third result; its unit is recomputed.
        assert_eq!(report.replayed_results, 2);
        assert_eq!(report.pending_restored, 1);
        drive(&mut recovered);
        let pi = recovered.take_output(pid).unwrap().into_inner::<f64>();
        assert_eq!(pi.to_bits(), sequential_pi(n).to_bits());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_garbage_logs_recover_to_a_fresh_run() {
        let path = temp_log("garbage");
        std::fs::write(&path, [0xDE, 0xAD, 0xBE]).unwrap();
        let (mut server, report) = recover(
            SchedulerConfig::default(),
            vec![integration_problem(10_000)],
            &path,
        )
        .unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.replayed_issues, 0);
        drive(&mut server);
        let pi = server.take_output(0).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sched_snapshot_record_round_trips() {
        let path = temp_log("sched");
        let writer = CheckpointWriter::create(&path).unwrap();
        let snap = SchedSnapshot {
            clients: vec![(0, 1.5e7, 12), (3, 9.0e6, 4)],
        };
        writer.append_snapshot(&snap);
        let (records, torn) = read_log(&path).unwrap();
        assert!(!torn);
        assert_eq!(records, vec![LogRecord::Sched(snap)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vote_and_reputation_records_round_trip() {
        let path = temp_log("vote-rt");
        let mut writer = CheckpointWriter::create(&path).unwrap();
        let rep = ReputationSnapshot {
            clients: vec![(0, 5, 0, true), (2, 1, 3, false)],
        };
        writer.append_reputation(&rep);
        writer.vote_recorded(0, 7, 3, 2, &[0xAB, 0xCD]);
        let (records, torn) = read_log(&path).unwrap();
        assert!(!torn);
        assert_eq!(
            records,
            vec![
                LogRecord::Reputation(rep.clone()),
                LogRecord::Vote {
                    problem: 0,
                    unit: 7,
                    needed: 3,
                    client: 2,
                    payload: vec![0xAB, 0xCD],
                },
            ]
        );
        // A recovered server resumes with the reputation map warm
        // (default threshold 4: client 0's five agreements keep its
        // trust, client 2 stays demoted).
        let (server, report) = recover(
            SchedulerConfig::default(),
            vec![integration_problem(10_000)],
            &path,
        )
        .unwrap();
        assert!(!report.torn_tail);
        assert_eq!(server.reputation_snapshot(), rep);
        let _ = std::fs::remove_file(&path);
    }

    // Fixed granularity plus a 2-way quorum: every unit needs two
    // byte-identical votes from untrusted donors before it folds.
    fn quorum_cfg() -> SchedulerConfig {
        SchedulerConfig {
            quorum_k: 2,
            reputation_threshold: 1_000,
            ..fixed_cfg()
        }
    }

    #[test]
    fn kill_mid_quorum_recovers_without_double_combine() {
        let path = temp_log("midquorum");
        let n = 50_000;
        let writer = CheckpointWriter::create(&path).unwrap();
        let mut server = Server::new(quorum_cfg());
        let pid = server.submit(integration_problem(n));
        server.set_journal(Box::new(writer.clone()));
        // Donor 0 casts the first of two required votes on the first
        // unit; the server crashes before anyone seconds it.
        let Assignment::Unit {
            problem,
            unit,
            algorithm,
        } = server.request_work(0, 0.0)
        else {
            panic!("work must be available")
        };
        let first = algorithm.compute(&unit);
        assert!(server.submit_result(0, problem, first, 1.0));
        assert_eq!(
            server.stats(pid).completed_units,
            0,
            "no fold before quorum"
        );
        drop(server); // the crash, mid-election

        let (mut recovered, report) =
            recover(quorum_cfg(), vec![integration_problem(n)], &path).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(report.replayed_results, 0);
        assert_eq!(report.pending_restored, 1);
        assert_eq!(report.restored_votes, 1);

        // Two fresh donors finish the run: the restored vote plus one
        // live agreeing result resolves the interrupted election, and
        // every later unit gathers its two votes normally.
        let mut now = 1.0;
        let mut finished = 0;
        while finished < 2 {
            finished = 0;
            for c in [1usize, 2] {
                match recovered.request_work(c, now) {
                    Assignment::Unit {
                        problem,
                        unit,
                        algorithm,
                    } => {
                        let r = algorithm.compute(&unit);
                        now += 1.0;
                        recovered.submit_result(c, problem, r, now);
                    }
                    Assignment::Wait => now += 1.0,
                    Assignment::Finished => finished += 1,
                }
            }
            assert!(now < 1e6, "quorum run must make progress");
        }
        let pi = recovered.take_output(pid).unwrap().into_inner::<f64>();
        assert_eq!(
            pi.to_bits(),
            sequential_pi(n).to_bits(),
            "exactly-once fold across a mid-quorum crash"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replica_topology_record_round_trips_and_last_wins() {
        let path = temp_log("replica");
        let writer = CheckpointWriter::create(&path).unwrap();
        let first: Vec<std::net::SocketAddr> = vec!["127.0.0.1:9001".parse().unwrap()];
        let second: Vec<std::net::SocketAddr> = vec![
            "127.0.0.1:9002".parse().unwrap(),
            "[::1]:9003".parse().unwrap(),
        ];
        writer.append_replicas(&first);
        writer.append_replicas(&second);
        let (records, torn) = read_log(&path).unwrap();
        assert!(!torn);
        assert_eq!(
            records,
            vec![
                LogRecord::Replica(first),
                LogRecord::Replica(second.clone()),
            ]
        );
        let (_server, report) = recover(
            SchedulerConfig::default(),
            vec![integration_problem(10_000)],
            &path,
        )
        .unwrap();
        assert!(!report.torn_tail);
        assert_eq!(report.replica_endpoints, second.len(), "last record wins");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn affinity_snapshot_record_round_trips_and_restores() {
        let path = temp_log("affinity");
        let writer = CheckpointWriter::create(&path).unwrap();
        let snap = AffinitySnapshot {
            clients: vec![(1, vec![0xAA, 0xBB, 0xCC]), (4, vec![0xDD])],
        };
        writer.append_affinity(&snap);
        let (records, torn) = read_log(&path).unwrap();
        assert!(!torn);
        assert_eq!(records, vec![LogRecord::Affinity(snap.clone())]);
        // A recovered server resumes with the affinity map warm.
        let (server, report) = recover(
            SchedulerConfig::default(),
            vec![integration_problem(10_000)],
            &path,
        )
        .unwrap();
        assert!(!report.torn_tail);
        assert_eq!(server.affinity_snapshot(), snap);
        let _ = std::fs::remove_file(&path);
    }
}
