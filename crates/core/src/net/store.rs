//! The content-addressed chunk store and the replica endpoints that
//! serve it.
//!
//! PR 5 moved chunk bytes off the work-unit path; this module moves
//! them off the *origin server*: a [`ChunkStore`] holds chunks keyed by
//! their FNV-1a digest, and N [`ReplicaServer`]s each expose one over
//! TCP. Replicas are lazy mirrors — a chunk is pulled through from the
//! origin on the first request that needs it, verified against its
//! digest before it is stored or served, so a replica can never launder
//! corrupt bytes into the donor pool. Donors route each fetch across
//! the replica set with rendezvous hashing ([`rendezvous_score`]): the
//! same digest prefers the same replicas, so a chunk crosses the
//! origin link O(replicas) times instead of O(donors), and candidate
//! order is deterministic per (digest, seed) for replayability.
//!
//! Replicas are also first-class chaos targets:
//! [`crate::fault::FaultKind::ReplicaCrash`] windows make a replica
//! refuse connections (its store survives, like a rebooted mirror) and
//! [`crate::fault::FaultKind::ReplicaStall`] windows make it accept
//! but not answer — the two failure shapes a donor's failover ladder
//! must distinguish from success by timeout alone.

use super::cache::chunk_digest;
use super::wire::{encode_frame, Frame, FrameReader, ReadError};
use super::{Clock, Directory};
use crate::telemetry::Telemetry;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// The reserved client id replicas use when pulling chunks through
/// from the origin. The origin recognises it and skips donor-side
/// bookkeeping (liveness, chunk affinity) — a replica is infrastructure,
/// not a donor, and must never attract unit placement.
pub const REPLICA_CLIENT_ID: u64 = u64::MAX;

/// Rendezvous (highest-random-weight) score for routing `digest` to an
/// endpoint identified by `key`, salted with the requester's `seed`.
/// Pure and stable: candidate order is a function of its inputs alone,
/// which is what makes seeded replica-selection tests replayable.
pub fn rendezvous_score(digest: u64, seed: u64, key: u64) -> u64 {
    // SplitMix64 finalizer over the XOR-combined inputs: cheap, well
    // mixed, and dependency-free.
    let mut z = digest ^ key.rotate_left(32) ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The full rendezvous order of replica *indices* `0..n` for `digest`,
/// highest score first. The simulator uses this directly (its replicas
/// are indices, not sockets); the TCP directory applies the same score
/// to endpoint-address keys.
pub fn rendezvous_order(digest: u64, seed: u64, n: usize) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> = (0..n)
        .map(|r| (rendezvous_score(digest, seed, r as u64), r))
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, r)| r).collect()
}

#[derive(Debug, Default)]
struct StoreState {
    by_digest: HashMap<u64, Arc<Vec<u8>>>,
    /// `(problem, chunk)` → digest: the request-key index into the
    /// content-addressed body, learned at insert time.
    by_chunk: HashMap<(u64, u64), u64>,
    bytes: u64,
}

/// A content-addressed chunk store: bytes keyed by their FNV-1a digest,
/// with a `(problem, chunk)` index on top so wire requests (which name
/// chunks, not digests) can be answered. Inserts are digest-verified —
/// bytes that do not hash to the claimed digest are refused, so a store
/// can never serve data it could not re-verify.
#[derive(Debug, Default)]
pub struct ChunkStore {
    inner: Mutex<StoreState>,
}

impl ChunkStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks a chunk up by its wire request key.
    pub fn get(&self, problem: u64, chunk: u64) -> Option<(u64, Arc<Vec<u8>>)> {
        let state = self.inner.lock().unwrap();
        let digest = *state.by_chunk.get(&(problem, chunk))?;
        state.by_digest.get(&digest).map(|b| (digest, b.clone()))
    }

    /// Looks chunk bytes up by content digest.
    pub fn get_digest(&self, digest: u64) -> Option<Arc<Vec<u8>>> {
        self.inner.lock().unwrap().by_digest.get(&digest).cloned()
    }

    /// Inserts verified bytes under `(problem, chunk)` and `digest`;
    /// returns `false` (and stores nothing) if the bytes do not hash to
    /// `digest`.
    pub fn insert(&self, problem: u64, chunk: u64, digest: u64, bytes: Arc<Vec<u8>>) -> bool {
        if chunk_digest(&bytes) != digest {
            return false;
        }
        let mut state = self.inner.lock().unwrap();
        if state.by_digest.insert(digest, bytes.clone()).is_none() {
            state.bytes += bytes.len() as u64;
        }
        state.by_chunk.insert((problem, chunk), digest);
        true
    }

    /// Number of distinct chunks held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().by_digest.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored bytes.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().unwrap().bytes
    }
}

struct ReplicaShared {
    store: ChunkStore,
    /// Where the origin lives (re-read per sync, so a restarted origin
    /// is found at its new address).
    origin: Directory,
    kill: AtomicBool,
    /// `(start, end)` windows during which the replica refuses service
    /// (connections are dropped on the floor).
    crash_windows: Vec<(f64, f64)>,
    /// `(start, end)` windows during which requests go unanswered until
    /// the window closes.
    stall_windows: Vec<(f64, f64)>,
    clock: Clock,
    telemetry: Telemetry,
}

impl ReplicaShared {
    fn in_window(windows: &[(f64, f64)], now: f64) -> bool {
        windows.iter().any(|&(s, e)| s <= now && now < e)
    }

    /// The end of the stall window covering `now`, if any.
    fn stall_end(&self, now: f64) -> Option<f64> {
        self.stall_windows
            .iter()
            .find(|&&(s, e)| s <= now && now < e)
            .map(|&(_, e)| e)
    }
}

/// One replica endpoint: a TCP listener serving [`Frame::ChunkRequest`]
/// out of its own [`ChunkStore`], pulling misses through from the
/// origin. Start with [`ReplicaServer::start`]; donors discover it via
/// the directory's replica map / `ReplicaAnnounce`.
pub struct ReplicaServer {
    addr: SocketAddr,
    shared: Arc<ReplicaShared>,
    accept_thread: JoinHandle<()>,
}

impl ReplicaServer {
    /// Binds an ephemeral loopback port and starts serving. The fault
    /// windows come straight from a plan's
    /// [`crate::fault::FaultPlan::replica_crashes`] /
    /// [`crate::fault::FaultPlan::replica_stalls`] accessors.
    pub fn start(
        origin: Directory,
        clock: Clock,
        telemetry: Telemetry,
        crash_windows: Vec<(f64, f64)>,
        stall_windows: Vec<(f64, f64)>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ReplicaShared {
            store: ChunkStore::new(),
            origin,
            kill: AtomicBool::new(false),
            crash_windows,
            stall_windows,
            clock,
            telemetry,
        });
        let accept_thread = {
            let shared = shared.clone();
            thread::spawn(move || replica_accept_loop(&listener, &shared))
        };
        Ok(Self {
            addr,
            shared,
            accept_thread,
        })
    }

    /// The address donors fetch from.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Distinct chunks currently mirrored.
    pub fn chunks_held(&self) -> usize {
        self.shared.store.len()
    }

    /// Kills the replica permanently: the listener closes and every
    /// open connection is severed. Unlike a crash window there is no
    /// coming back — donors must fail over for the rest of the run.
    pub fn kill(&self) {
        self.shared.kill.store(true, Ordering::SeqCst);
    }

    /// Tears the replica down and reaps its threads.
    pub fn stop(self) {
        self.shared.kill.store(true, Ordering::SeqCst);
        let _ = self.accept_thread.join();
    }
}

fn replica_accept_loop(listener: &TcpListener, shared: &Arc<ReplicaShared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.kill.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let now = shared.clock.now();
                if ReplicaShared::in_window(&shared.crash_windows, now) {
                    drop(stream); // crashed: connection reset, no service
                    continue;
                }
                let shared = shared.clone();
                handlers.push(thread::spawn(move || replica_connection(stream, &shared)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(500));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn replica_connection(mut stream: TcpStream, shared: &ReplicaShared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
    let mut reader = FrameReader::new();
    loop {
        if shared.kill.load(Ordering::SeqCst) {
            return;
        }
        let frame = match reader.poll(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            Err(ReadError::Decode(_)) => continue, // mangled inbound frame: skip
            Err(ReadError::Io(_)) => return,
        };
        let Frame::ChunkRequest { problem, chunk, .. } = frame else {
            continue; // replicas speak only the chunk sub-protocol
        };
        let now = shared.clock.now();
        if ReplicaShared::in_window(&shared.crash_windows, now) {
            return; // crashed mid-connection: sever, donor fails over
        }
        if let Some(end) = shared.stall_end(now) {
            // Wedged: sit on the request until the window closes (the
            // donor's ack timeout fires long before, and it fails
            // over), but keep noticing kill so teardown never hangs.
            while shared.clock.now() < end && !shared.kill.load(Ordering::SeqCst) {
                thread::sleep(Duration::from_millis(1));
            }
            if shared.kill.load(Ordering::SeqCst) {
                return;
            }
        }
        let reply = match shared.store.get(problem, chunk) {
            Some((digest, payload)) => {
                shared.telemetry.counter_add("replica.chunks_served", 1);
                Frame::ChunkData {
                    problem,
                    chunk,
                    digest,
                    payload: payload.as_ref().clone(),
                }
            }
            None => match sync_from_origin(shared, problem, chunk) {
                Some((digest, payload)) => {
                    shared.telemetry.counter_add("replica.chunks_served", 1);
                    Frame::ChunkData {
                        problem,
                        chunk,
                        digest,
                        payload: payload.as_ref().clone(),
                    }
                }
                // Origin unreachable or it does not hold the chunk
                // either: answer explicitly so the donor fails over
                // instead of hanging into its ack timeout.
                None => Frame::ChunkMissing { problem, chunk },
            },
        };
        if stream.write_all(&encode_frame(&reply)).is_err() {
            return;
        }
    }
}

/// Pull-through sync: fetches `(problem, chunk)` from the origin,
/// verifies the bytes against the digest they arrived under, and
/// stores them. `None` if the origin is unreachable, answers
/// [`Frame::ChunkMissing`], or ships bytes that fail verification.
fn sync_from_origin(
    shared: &ReplicaShared,
    problem: u64,
    chunk: u64,
) -> Option<(u64, Arc<Vec<u8>>)> {
    let addr = shared.origin.origin()?;
    let mut stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
    stream
        .write_all(&encode_frame(&Frame::ChunkRequest {
            client: REPLICA_CLIENT_ID,
            problem,
            chunk,
        }))
        .ok()?;
    let mut reader = FrameReader::new();
    // Generous wall deadline: a sync is one loopback round trip; the
    // donor's own ack timeout is the real back-pressure.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if shared.kill.load(Ordering::SeqCst) || std::time::Instant::now() > deadline {
            return None;
        }
        match reader.poll(&mut stream) {
            Ok(Some(Frame::ChunkData {
                problem: p,
                chunk: c,
                digest,
                payload,
            })) if p == problem && c == chunk => {
                let payload = Arc::new(payload);
                if !shared.store.insert(problem, chunk, digest, payload.clone()) {
                    return None; // digest mismatch: refuse to launder it
                }
                shared.telemetry.counter_add("replica.syncs", 1);
                shared
                    .telemetry
                    .counter_add("replica.sync_bytes_in", payload.len() as u64);
                return Some((digest, payload));
            }
            Ok(Some(Frame::ChunkMissing {
                problem: p,
                chunk: c,
            })) if p == problem && c == chunk => return None,
            Ok(Some(_)) | Ok(None) => {}
            Err(ReadError::Decode(_)) => {}
            Err(ReadError::Io(_)) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_refuses_bytes_that_fail_their_digest() {
        let store = ChunkStore::new();
        let bytes = Arc::new(vec![1u8, 2, 3, 4]);
        let digest = chunk_digest(&bytes);
        assert!(!store.insert(0, 0, digest ^ 1, bytes.clone()), "bad digest");
        assert!(store.is_empty());
        assert!(store.insert(0, 0, digest, bytes.clone()));
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), 4);
        let (d, b) = store.get(0, 0).expect("indexed by request key");
        assert_eq!(d, digest);
        assert_eq!(*b, *bytes);
        assert!(store.get_digest(digest).is_some());
        assert!(store.get(0, 1).is_none());
        // Re-inserting the same content under another chunk key adds an
        // index entry, not a second copy.
        assert!(store.insert(0, 7, digest, bytes));
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), 4);
    }

    #[test]
    fn rendezvous_order_is_deterministic_and_digest_sensitive() {
        let a = rendezvous_order(0xABCD, 1, 5);
        assert_eq!(a, rendezvous_order(0xABCD, 1, 5), "pure function");
        assert_eq!(a.len(), 5);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "a permutation of 0..n");
        // Different digests should spread across different heads often
        // enough to balance load: over many digests, every replica
        // leads at least once.
        let mut led = [false; 5];
        for digest in 0..200u64 {
            led[rendezvous_order(digest, 1, 5)[0]] = true;
        }
        assert!(led.iter().all(|&l| l), "every replica leads somewhere");
    }
}
